/**
 * @file
 * cams_chaos -- the kill -9 chaos harness for camsd.
 *
 * Orchestrates the full crash-recovery story end to end: it launches
 * a camsd with fault injection armed, drives it with a cams_load
 * burst (whose resilient clients carry idempotent retry keys and
 * their own client-side chaos), then SIGKILLs the daemon at seeded
 * points mid-burst and restarts it -- several times. Every restart
 * runs camsd's startup scrub, so entries torn by the kill are
 * quarantined before the cache serves again.
 *
 * The run passes only when
 *   - cams_load exits 0: every request reached exactly one terminal,
 *     no protocol errors, no served-result disagreements, and (via
 *     --check-direct) every served image byte-identical to a local
 *     compile -- through every kill;
 *   - the final, gracefully-SIGTERMed camsd exits 0;
 *   - a last offline scrub of the tenant caches finds nothing left
 *     to quarantine: torn writes never outlive the restart that
 *     follows them.
 *
 * Usage:
 *   cams_chaos --camsd PATH --cams-load PATH [--dir DIR]
 *              [--kills N] [--chaos P] [--seed S]
 *              [--rate R] [--duration S] [--corpus N]
 *              [--connections C] [--jobs N] [--out FILE]
 */

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "pipeline/cache/compile_cache.hh"
#include "support/random.hh"
#include "support/socket.hh"
#include "support/str.hh"

namespace
{

using namespace cams;
namespace fs = std::filesystem;

int
usage()
{
    std::cerr
        << "usage: cams_chaos --camsd PATH --cams-load PATH "
           "[options]\n"
           "  --dir DIR        working directory for socket + cache "
           "(default ./chaos-run)\n"
           "  --kills N        SIGKILL/restart cycles mid-burst "
           "(default 3)\n"
           "  --chaos P        fault-injection probability, both "
           "sides (default 0.02)\n"
           "  --seed S         master seed for kill times and chaos "
           "coins (default 1)\n"
           "  --rate R         offered load in req/s (default 150)\n"
           "  --duration S     load length in seconds (default 12)\n"
           "  --corpus N       distinct loops (default 60)\n"
           "  --connections C  client connections (default 4)\n"
           "  --jobs N         camsd worker threads (default 4)\n"
           "  --out FILE       report JSON (default "
           "BENCH_chaos.json)\n";
    return 2;
}

/** fork/exec one child; -1 on fork failure, else its pid. */
pid_t
spawn(const std::vector<std::string> &argvStrings)
{
    std::vector<char *> argvPtrs;
    argvPtrs.reserve(argvStrings.size() + 1);
    for (const std::string &arg : argvStrings)
        argvPtrs.push_back(const_cast<char *>(arg.c_str()));
    argvPtrs.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid == 0) {
        ::execv(argvPtrs[0], argvPtrs.data());
        std::cerr << "cams_chaos: cannot exec " << argvStrings[0]
                  << ": " << std::strerror(errno) << "\n";
        ::_exit(127);
    }
    return pid;
}

/** Blocks until the daemon accepts connections; false on timeout. */
bool
waitListening(const std::string &socketPath, double timeoutS)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(
            static_cast<long>(timeoutS * 1000.0));
    while (std::chrono::steady_clock::now() < deadline) {
        std::string error;
        SocketFd fd = connectUnix(socketPath, error);
        if (fd.valid())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
}

/** waitpid wrapper: exit status, or 128+signal, or -1. */
int
reapChild(pid_t pid)
{
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR)
            return -1;
    }
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return -1;
}

/** True while the child has not exited; reaps it when it has. */
bool
stillRunning(pid_t pid, int &exitCode)
{
    int status = 0;
    const pid_t done = ::waitpid(pid, &status, WNOHANG);
    if (done == 0)
        return true;
    if (done == pid) {
        exitCode = WIFEXITED(status) ? WEXITSTATUS(status)
                   : WIFSIGNALED(status)
                       ? 128 + WTERMSIG(status)
                       : -1;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string camsd_path;
    std::string load_path;
    std::string dir = "chaos-run";
    std::string out_path = "BENCH_chaos.json";
    int kills = 3;
    double chaos_p = 0.02;
    uint64_t seed = 1;
    double rate = 150.0;
    double duration_s = 12.0;
    int corpus_size = 60;
    int connections = 4;
    int jobs = 4;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--camsd") {
            const char *value = next();
            if (!value)
                return usage();
            camsd_path = value;
        } else if (arg == "--cams-load") {
            const char *value = next();
            if (!value)
                return usage();
            load_path = value;
        } else if (arg == "--dir") {
            const char *value = next();
            if (!value)
                return usage();
            dir = value;
        } else if (arg == "--kills") {
            const char *value = next();
            if (!value || std::atoi(value) < 0)
                return usage();
            kills = std::atoi(value);
        } else if (arg == "--chaos") {
            const char *value = next();
            if (!value)
                return usage();
            chaos_p = std::atof(value);
        } else if (arg == "--seed") {
            const char *value = next();
            if (!value)
                return usage();
            seed = std::strtoull(value, nullptr, 10);
        } else if (arg == "--rate") {
            const char *value = next();
            if (!value || std::atof(value) <= 0.0)
                return usage();
            rate = std::atof(value);
        } else if (arg == "--duration") {
            const char *value = next();
            if (!value || std::atof(value) <= 0.0)
                return usage();
            duration_s = std::atof(value);
        } else if (arg == "--corpus") {
            const char *value = next();
            if (!value || std::atoi(value) <= 0)
                return usage();
            corpus_size = std::atoi(value);
        } else if (arg == "--connections") {
            const char *value = next();
            if (!value || std::atoi(value) <= 0)
                return usage();
            connections = std::atoi(value);
        } else if (arg == "--jobs") {
            const char *value = next();
            if (!value || std::atoi(value) <= 0)
                return usage();
            jobs = std::atoi(value);
        } else if (arg == "--out") {
            const char *value = next();
            if (!value)
                return usage();
            out_path = value;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return usage();
        }
    }
    if (camsd_path.empty() || load_path.empty())
        return usage();

    // The daemons we SIGKILL die mid-write into our pipes too.
    ::signal(SIGPIPE, SIG_IGN);

    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        std::cerr << "cams_chaos: cannot create " << dir << ": "
                  << ec.message() << "\n";
        return 2;
    }
    const std::string socket_path = dir + "/camsd.sock";
    const std::string cache_root = dir + "/cache";
    const std::string load_out = dir + "/BENCH_serve_chaos.json";
    fs::remove(socket_path, ec);

    const std::vector<std::string> camsd_argv = {
        camsd_path,
        "--socket", socket_path,
        "--jobs", std::to_string(jobs),
        "--cache-dir", cache_root,
        "--chaos", formatFixed(chaos_p, 4),
        "--chaos-seed", std::to_string(seed),
        "--watchdog-ms", "auto",
    };
    const std::vector<std::string> load_argv = {
        load_path,
        "--socket", socket_path,
        "--tenant", "chaos",
        "--rate", formatFixed(rate, 1),
        "--duration", formatFixed(duration_s, 1),
        "--corpus", std::to_string(corpus_size),
        "--connections", std::to_string(connections),
        "--chaos", formatFixed(chaos_p, 4),
        "--chaos-seed", std::to_string(seed + 1000),
        "--retry-shed",
        "--check-direct",
        "--wait-server-s", "30",
        "--out", load_out,
    };

    pid_t daemon = spawn(camsd_argv);
    if (daemon < 0 || !waitListening(socket_path, 10.0)) {
        std::cerr << "cams_chaos: camsd never started listening\n";
        return 2;
    }

    pid_t load = spawn(load_argv);
    if (load < 0) {
        std::cerr << "cams_chaos: cannot start cams_load\n";
        ::kill(daemon, SIGKILL);
        reapChild(daemon);
        return 2;
    }

    // Seeded kill schedule: N SIGKILLs spread across the middle of
    // the burst, each jittered so no kill lands on a quiet phase
    // boundary, with an immediate restart. The clients must ride
    // every one of them.
    Rng rng(seed);
    const auto t0 = std::chrono::steady_clock::now();
    int restarts = 0;
    int load_exit = -1;
    bool load_done = false;
    for (int k = 0; k < kills; ++k) {
        const double slot_s = duration_s / (kills + 1);
        const double at_s =
            slot_s * (k + 1) + slot_s * 0.5 * rng.uniformReal();
        std::this_thread::sleep_until(
            t0 + std::chrono::milliseconds(
                     static_cast<long>(at_s * 1000.0)));
        if (!stillRunning(load, load_exit)) {
            load_done = true;
            break;
        }
        std::cout << "cams_chaos: kill -9 camsd at "
                  << formatFixed(at_s, 2) << " s" << std::endl;
        ::kill(daemon, SIGKILL);
        reapChild(daemon);
        fs::remove(socket_path, ec);
        daemon = spawn(camsd_argv);
        if (daemon < 0 || !waitListening(socket_path, 10.0)) {
            std::cerr
                << "cams_chaos: camsd never came back after kill "
                << (k + 1) << "\n";
            ::kill(load, SIGKILL);
            reapChild(load);
            return 2;
        }
        ++restarts;
    }

    if (!load_done)
        load_exit = reapChild(load);

    // Graceful end: SIGTERM drains the final daemon; it owes a clean
    // exit with every accepted request answered.
    ::kill(daemon, SIGTERM);
    const int camsd_exit = reapChild(daemon);

    // Offline scrub over every tenant directory: the kills may have
    // torn writes, but each restart's startup scrub must already
    // have quarantined them. Nothing may be left for us.
    ScrubReport scrub;
    fs::directory_iterator tenants(cache_root, ec);
    if (!ec) {
        for (const auto &entry : tenants) {
            if (!entry.is_directory(ec) || ec ||
                entry.path().filename() == "corrupt")
                continue;
            const ScrubReport report =
                scrubCacheDir(entry.path().string());
            if (!report.error.empty()) {
                std::cerr << "cams_chaos: scrub failed: "
                          << report.error << "\n";
                return 2;
            }
            scrub.entriesScanned += report.entriesScanned;
            scrub.entriesOk += report.entriesOk;
            scrub.quarantined += report.quarantined;
            scrub.tmpRemoved += report.tmpRemoved;
        }
    }

    const bool ok = load_exit == 0 && camsd_exit == 0 &&
                    restarts == kills && scrub.quarantined == 0 &&
                    scrub.tmpRemoved == 0;

    std::ostringstream json;
    json << "{\"bench\":\"cams_chaos\","
         << "\"seed\":" << seed << ","
         << "\"chaos\":" << formatFixed(chaos_p, 4) << ","
         << "\"kills\":" << kills << ","
         << "\"restarts\":" << restarts << ","
         << "\"load_exit\":" << load_exit << ","
         << "\"camsd_final_exit\":" << camsd_exit << ","
         << "\"scrub\":{\"entries_scanned\":" << scrub.entriesScanned
         << ",\"entries_ok\":" << scrub.entriesOk
         << ",\"quarantined\":" << scrub.quarantined
         << ",\"tmp_removed\":" << scrub.tmpRemoved << "},"
         << "\"load_report\":\"" << load_out << "\","
         << "\"ok\":" << (ok ? "true" : "false") << "}";
    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cams_chaos: cannot write " << out_path << "\n";
        return 2;
    }
    out << json.str() << "\n";

    std::cout << "cams_chaos: " << restarts << "/" << kills
              << " kill/restart cycles, load exit " << load_exit
              << ", final camsd exit " << camsd_exit << ", scrub "
              << scrub.entriesOk << "/" << scrub.entriesScanned
              << " ok with " << scrub.quarantined
              << " quarantined -- " << (ok ? "PASS" : "FAIL") << " ("
              << out_path << " written)" << std::endl;
    return ok ? 0 : 1;
}
