/**
 * @file
 * cams_load -- the seeded open-loop load generator for camsd.
 *
 * Replays a synthetic workload corpus against a running camsd at a
 * fixed offered rate: requests are issued on their schedule
 * regardless of completions (open loop), so the server's admission
 * control -- not the client's patience -- decides what happens under
 * overload. An optional second phase offers a burst at a higher rate
 * to probe the shed path on purpose.
 *
 * Reports sustained loops-compiled/sec plus client-observed p50/p99
 * latency (from the metrics registry) and the server-reported
 * queue/compile-time split into BENCH_serve.json. With
 * --check-direct it recompiles every distinct corpus loop in-process
 * afterwards and byte-compares writeCompileResult images against the
 * served ones, proving served == local.
 *
 * Each connection is a resilient CamsClient: requests carry idempotent
 * retry keys, connection loss triggers reconnect-and-resubmit, and
 * per-phase retry/reconnect/duplicate-suppressed counts land in the
 * report. With --chaos the client's own socket layer injects seeded
 * faults (the server side is armed via camsd --chaos), which is how
 * the chaos harness proves results stay byte-identical through torn
 * wires and daemon kills.
 *
 * Usage:
 *   cams_load --socket PATH [--rate R] [--duration S]
 *             [--burst-rate R2] [--burst-duration S2]
 *             [--connections C] [--corpus N] [--seed S]
 *             [--machine FILE] [--tenant NAME] [--deadline-ms D]
 *             [--check-direct] [--out FILE]
 *             [--chaos P] [--chaos-seed N] [--retry-shed]
 *             [--trace-sample N] [--no-poll-stats]
 *
 * Telemetry. Every Submit carries a client-generated 64-bit trace id;
 * --trace-sample=N marks every Nth request sampled, so a camsd armed
 * with --trace records those requests end to end under one
 * "req-<id>" tag. After the send phases the generator polls the
 * server's StatsRequest endpoint on a dedicated connection and lands
 * the windowed server view (queue depth, compile/queue latency,
 * shed/cache tallies) in BENCH_serve.json as "server_stats", next to
 * the client-observed numbers -- the two sides of the same run.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "machine/configs.hh"
#include "machine/machinetext.hh"
#include "pipeline/cache/serialize.hh"
#include "pipeline/serve/client.hh"
#include "pipeline/serve/retry_client.hh"
#include "pipeline/serve/stats_text.hh"
#include "support/metrics.hh"
#include "support/str.hh"
#include "support/time.hh"
#include "workload/suite.hh"

namespace
{

using namespace cams;

int
usage()
{
    std::cerr
        << "usage: cams_load --socket PATH [options]\n"
           "  --rate R            offered request rate per second "
           "(default 100)\n"
           "  --duration S        steady-phase length in seconds "
           "(default 5)\n"
           "  --burst-rate R2     overload-phase rate (0 = no "
           "burst)\n"
           "  --burst-duration S2 overload-phase length in seconds "
           "(default 2)\n"
           "  --connections C     client connections (default 4)\n"
           "  --corpus N          distinct loops replayed round-"
           "robin (default 200)\n"
           "  --seed S            corpus master seed\n"
           "  --machine FILE      machine description (default: 2 "
           "clusters x 4 GP, 2 buses, 1 port)\n"
           "  --tenant NAME       cache namespace (default 'load')\n"
           "  --deadline-ms D     per-request deadline (default 0 = "
           "none)\n"
           "  --debug-sleep-ms D  ask the server to stall each "
           "request (needs camsd --allow-debug)\n"
           "  --wait-server-s W   connect retry window (default "
           "10)\n"
           "  --drain-wait-s W    response collection window after "
           "the last send (default 60)\n"
           "  --check-direct      byte-compare served results "
           "against local compiles\n"
           "  --out FILE          output JSON (default "
           "BENCH_serve.json)\n"
           "  --chaos P           arm client-side fault injection "
           "with probability P at every site\n"
           "  --chaos-seed N      chaos coin-flip seed (default 1)\n"
           "  --retry-shed        resubmit shed requests after the "
           "server's retry-after hint (off: Shed is terminal,\n"
           "                      keeping the overload-phase "
           "accounting honest)\n"
           "  --trace-sample N    mark every Nth request trace-"
           "sampled (default 0 = none)\n"
           "  --no-poll-stats     skip the post-run server stats "
           "poll (server_stats in the JSON)\n";
    return 2;
}

/** What the generator remembers about one submitted request. */
struct Pending
{
    int loopIndex = 0;
    int phase = 0; ///< 0 = steady, 1 = burst
    int64_t sendMicros = 0;
    bool terminal = false;
    ServeMsgType outcome = ServeMsgType::Error;
    bool resultSuccess = false;
    bool resultTimeout = false;
};

/** Shared tally across sender and client callback threads. */
struct Collector
{
    std::mutex mutex;
    std::condition_variable allDone;
    std::map<uint64_t, Pending> pending;
    long terminal = 0;
    long protocolErrors = 0;
    /** First served writeCompileResult image per corpus loop. */
    std::map<int, std::string> servedBytes;
    long servedDisagreements = 0;
    /** Distinct Error-terminal messages, for the console summary. */
    std::map<std::string, long> errorMessages;
    /** Recovery activity, split by the phase of the involved id. */
    long retries[2] = {0, 0};
    long shedRetries[2] = {0, 0};
    long duplicatesSuppressed[2] = {0, 0};
    long gaveUp[2] = {0, 0};
    long reconnects = 0;
    MetricsRegistry registry;

    void finish(uint64_t id, ServeMsgType outcome,
                const ServerMsg *msg);
    void onEvent(uint64_t id, CamsClient::Event event);
};

const char *phaseNames[2] = {"steady", "burst"};

/**
 * Re-encodes a result with its wall-clock phase timings zeroed --
 * the one non-deterministic part of the image. Everything else
 * (schedule, placement, II, failure taxonomy, search counters) must
 * agree bit for bit between any two compiles of the same request.
 */
std::string
canonicalResultBytes(const CompileResult &result)
{
    CompileResult copy = result;
    copy.phaseMs = PhaseTimes{};
    ByteWriter writer;
    writeCompileResult(writer, copy);
    return writer.data();
}

void
Collector::finish(uint64_t id, ServeMsgType outcome,
                  const ServerMsg *msg)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = pending.find(id);
    if (it == pending.end() || it->second.terminal) {
        ++protocolErrors; // unknown id or duplicate terminal reply
        return;
    }
    Pending &entry = it->second;
    entry.terminal = true;
    entry.outcome = outcome;
    const char *phase = phaseNames[entry.phase];
    if (outcome == ServeMsgType::Result && msg != nullptr) {
        const double latencyMs =
            static_cast<double>(nowMicros() - entry.sendMicros) /
            1000.0;
        registry.record(std::string("latency_ms.") + phase,
                        latencyMs);
        registry.record(std::string("queue_ms.") + phase,
                        msg->queueMs);
        registry.record(std::string("compile_ms.") + phase,
                        msg->compileMs);
        CompileResult result;
        ByteReader reader(msg->resultBytes);
        if (readCompileResult(reader, result)) {
            entry.resultSuccess = result.success;
            entry.resultTimeout =
                result.failure == FailureKind::Timeout;
            // Every serve of one corpus loop must produce the same
            // canonical bytes, cached or not.
            std::string bytes = canonicalResultBytes(result);
            auto served = servedBytes.find(entry.loopIndex);
            if (served == servedBytes.end())
                servedBytes.emplace(entry.loopIndex,
                                    std::move(bytes));
            else if (served->second != bytes)
                ++servedDisagreements;
        } else {
            ++protocolErrors;
        }
    } else if (outcome == ServeMsgType::Error && msg != nullptr) {
        ++errorMessages[msg->message];
    }
    ++terminal;
    allDone.notify_all();
}

void
Collector::onEvent(uint64_t id, CamsClient::Event event)
{
    std::lock_guard<std::mutex> lock(mutex);
    int phase = 0;
    const auto it = pending.find(id);
    if (it != pending.end())
        phase = it->second.phase;
    switch (event) {
        case CamsClient::Event::Reconnect:
            ++reconnects;
            break;
        case CamsClient::Event::Resubmit:
            ++retries[phase];
            break;
        case CamsClient::Event::ShedRetry:
            ++shedRetries[phase];
            break;
        case CamsClient::Event::DuplicateSuppressed:
            ++duplicatesSuppressed[phase];
            break;
        case CamsClient::Event::GaveUp:
            ++gaveUp[phase];
            break;
    }
}

/** Per-phase tally derived from the pending table. */
struct PhaseTally
{
    long requests = 0;
    long completed = 0; ///< Result with success
    long failed = 0;    ///< Result with a non-timeout failure
    long timeouts = 0;  ///< Result with FailureKind::Timeout
    long shed = 0;
    long cancelled = 0;
    long errors = 0;
    long unanswered = 0;
};

std::string
histogramJson(const HistogramSummary &s)
{
    std::ostringstream os;
    os << "{\"count\":" << s.count << ",\"min\":"
       << formatFixed(s.min, 3) << ",\"mean\":"
       << formatFixed(s.mean, 3) << ",\"max\":"
       << formatFixed(s.max, 3) << ",\"p50\":"
       << formatFixed(s.p50, 3) << ",\"p90\":"
       << formatFixed(s.p90, 3) << ",\"p99\":"
       << formatFixed(s.p99, 3) << "}";
    return os.str();
}

std::string
phaseJson(const PhaseTally &tally, double ratePerS, double durationS,
          Collector &collector, const char *phase, int phaseIndex)
{
    const double loopsPerSec =
        durationS > 0.0
            ? static_cast<double>(tally.completed) / durationS
            : 0.0;
    std::ostringstream os;
    os << "{\"rate_per_s\":" << formatFixed(ratePerS, 3)
       << ",\"duration_s\":" << formatFixed(durationS, 3)
       << ",\"requests\":" << tally.requests
       << ",\"completed\":" << tally.completed
       << ",\"failed\":" << tally.failed
       << ",\"timeouts\":" << tally.timeouts
       << ",\"shed\":" << tally.shed
       << ",\"cancelled\":" << tally.cancelled
       << ",\"errors\":" << tally.errors
       << ",\"unanswered\":" << tally.unanswered
       << ",\"retries\":" << collector.retries[phaseIndex]
       << ",\"shed_retries\":" << collector.shedRetries[phaseIndex]
       << ",\"duplicates_suppressed\":"
       << collector.duplicatesSuppressed[phaseIndex]
       << ",\"gave_up\":" << collector.gaveUp[phaseIndex]
       << ",\"loops_per_sec\":" << formatFixed(loopsPerSec, 3)
       << ",\"latency_ms\":"
       << histogramJson(collector.registry.histogram(
              std::string("latency_ms.") + phase))
       << ",\"queue_ms\":"
       << histogramJson(collector.registry.histogram(
              std::string("queue_ms.") + phase))
       << ",\"compile_ms\":"
       << histogramJson(collector.registry.histogram(
              std::string("compile_ms.") + phase))
       << "}";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string machine_path;
    std::string tenant = "load";
    std::string out_path = "BENCH_serve.json";
    double rate = 100.0;
    double duration_s = 5.0;
    double burst_rate = 0.0;
    double burst_duration_s = 2.0;
    int connections = 4;
    int corpus_size = 200;
    uint64_t seed = defaultSuiteSeed;
    double deadline_ms = 0.0;
    double debug_sleep_ms = 0.0;
    double wait_server_s = 10.0;
    double drain_wait_s = 60.0;
    bool check_direct = false;
    double chaos_p = 0.0;
    uint64_t chaos_seed = 1;
    bool retry_shed = false;
    long trace_sample = 0;
    bool poll_stats = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        const size_t eq = arg.find('=');
        if (eq != std::string::npos && arg.rfind("--", 0) == 0) {
            inline_value = arg.substr(eq + 1);
            arg.resize(eq);
        }
        auto next = [&]() -> const char * {
            if (!inline_value.empty())
                return inline_value.c_str();
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--socket") {
            const char *value = next();
            if (!value)
                return usage();
            socket_path = value;
        } else if (arg == "--rate") {
            const char *value = next();
            if (!value || std::atof(value) <= 0.0)
                return usage();
            rate = std::atof(value);
        } else if (arg == "--duration") {
            const char *value = next();
            if (!value || std::atof(value) <= 0.0)
                return usage();
            duration_s = std::atof(value);
        } else if (arg == "--burst-rate") {
            const char *value = next();
            if (!value)
                return usage();
            burst_rate = std::atof(value);
        } else if (arg == "--burst-duration") {
            const char *value = next();
            if (!value || std::atof(value) <= 0.0)
                return usage();
            burst_duration_s = std::atof(value);
        } else if (arg == "--connections") {
            const char *value = next();
            if (!value || std::atoi(value) <= 0)
                return usage();
            connections = std::atoi(value);
        } else if (arg == "--corpus") {
            const char *value = next();
            if (!value || std::atoi(value) <= 0)
                return usage();
            corpus_size = std::atoi(value);
        } else if (arg == "--seed") {
            const char *value = next();
            if (!value)
                return usage();
            seed = std::strtoull(value, nullptr, 0);
        } else if (arg == "--machine") {
            const char *value = next();
            if (!value)
                return usage();
            machine_path = value;
        } else if (arg == "--tenant") {
            const char *value = next();
            if (!value)
                return usage();
            tenant = value;
        } else if (arg == "--deadline-ms") {
            const char *value = next();
            if (!value)
                return usage();
            deadline_ms = std::atof(value);
        } else if (arg == "--debug-sleep-ms") {
            const char *value = next();
            if (!value)
                return usage();
            debug_sleep_ms = std::atof(value);
        } else if (arg == "--wait-server-s") {
            const char *value = next();
            if (!value)
                return usage();
            wait_server_s = std::atof(value);
        } else if (arg == "--drain-wait-s") {
            const char *value = next();
            if (!value)
                return usage();
            drain_wait_s = std::atof(value);
        } else if (arg == "--check-direct") {
            check_direct = true;
        } else if (arg == "--chaos") {
            const char *value = next();
            if (!value)
                return usage();
            chaos_p = std::atof(value);
        } else if (arg == "--chaos-seed") {
            const char *value = next();
            if (!value)
                return usage();
            chaos_seed = std::strtoull(value, nullptr, 10);
        } else if (arg == "--retry-shed") {
            retry_shed = true;
        } else if (arg == "--trace-sample") {
            const char *value = next();
            if (!value || std::atol(value) < 0)
                return usage();
            trace_sample = std::atol(value);
        } else if (arg == "--no-poll-stats") {
            poll_stats = false;
        } else if (arg == "--out") {
            const char *value = next();
            if (!value)
                return usage();
            out_path = value;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return usage();
        }
    }
    if (socket_path.empty())
        return usage();

    // A server that dies mid-write must cost a retried request, not
    // a dead load generator.
    ::signal(SIGPIPE, SIG_IGN);

    MachineDesc machine = busedGpMachine(2, 2, 1);
    if (!machine_path.empty()) {
        std::ifstream input(machine_path);
        std::ostringstream buffer;
        buffer << input.rdbuf();
        std::string error;
        if (!input || !parseMachine(buffer.str(), machine, error)) {
            std::cerr << "cannot load machine " << machine_path
                      << ": " << error << "\n";
            return 1;
        }
    }

    // Pre-pack the corpus so the send path does no compile-side work.
    const std::vector<Dfg> corpus = buildSuite(corpus_size, seed);
    std::vector<std::string> dfgBytes;
    dfgBytes.reserve(corpus.size());
    for (const Dfg &loop : corpus)
        dfgBytes.push_back(packDfg(loop));
    const std::string machineBytes = packMachine(machine);

    // Connect (retrying while the server comes up). Every
    // connection is a resilient CamsClient: it reconnects and
    // resubmits on its own, so the collector only ever sees terminal
    // messages and recovery events.
    Collector collector;
    std::vector<std::unique_ptr<CamsClient>> clients;
    for (int c = 0; c < connections; ++c) {
        CamsClientConfig client_config;
        client_config.socketPath = socket_path;
        client_config.tenant = tenant;
        client_config.retry.connectBudgetMs =
            wait_server_s * 1000.0;
        client_config.retry.retryOnShed = retry_shed;
        // Every reconnect resubmits all pending ids, and the server
        // dedups them, so under sustained chaos the production
        // default of 32 gives up on requests that would still win.
        // The generator's contract is a terminal for every request.
        client_config.retry.maxResubmits = 100000;
        // Mid-frame gaps on a loopback socket are microseconds; the
        // only way a frame stalls for seconds is a fault (torn wire,
        // flipped length prefix). Cut those short so a stall costs
        // one reconnect, not the default 30 s.
        client_config.retry.readTimeoutMs = 2000.0;
        client_config.retry.seed =
            seed + static_cast<uint64_t>(c);
        if (chaos_p > 0.0)
            client_config.chaos = ChaosConfig::uniform(
                chaos_p, chaos_seed + static_cast<uint64_t>(c));
        auto client = std::make_unique<CamsClient>();
        client->setTerminalHandler(
            [&collector](const ServerMsg &msg) {
                collector.finish(msg.id, msg.type, &msg);
            });
        client->setEventHandler(
            [&collector](uint64_t id, CamsClient::Event event) {
                collector.onEvent(id, event);
            });
        std::string error;
        if (!client->start(client_config, error)) {
            std::cerr << "cams_load: cannot connect to "
                      << socket_path << ": " << error << "\n";
            return 1;
        }
        clients.push_back(std::move(client));
    }

    struct Phase
    {
        double rate;
        double durationS;
    };
    std::vector<Phase> phases = {{rate, duration_s}};
    if (burst_rate > 0.0)
        phases.push_back({burst_rate, burst_duration_s});

    std::cerr << "cams_load: " << corpus.size() << " loops over "
              << connections << " connections at " << rate
              << " req/s for " << duration_s << " s"
              << (burst_rate > 0.0
                      ? " + burst " + formatFixed(burst_rate, 0) +
                            " req/s"
                      : std::string())
              << "..." << std::endl;

    // The open-loop sender: each request has an absolute send time;
    // falling behind is never allowed to thin the offered load.
    uint64_t nextId = 1;
    long sendFailures = 0;
    int loopCursor = 0;
    const auto t0 = std::chrono::steady_clock::now();
    auto phaseStart = t0;
    for (size_t p = 0; p < phases.size(); ++p) {
        const long count = static_cast<long>(
            std::llround(phases[p].rate * phases[p].durationS));
        const std::chrono::nanoseconds interval(static_cast<long>(
            1e9 / phases[p].rate));
        for (long k = 0; k < count; ++k) {
            std::this_thread::sleep_until(phaseStart +
                                          interval * k);
            SubmitMsg msg;
            msg.id = nextId++;
            msg.deadlineMs = deadline_ms;
            msg.debugSleepMs = debug_sleep_ms;
            msg.dfgBytes = dfgBytes[loopCursor];
            msg.machineBytes = machineBytes;
            // splitmix64 of (seed, id): ids from concurrent
            // generators against one daemon stay distinct, and the
            // head-based sampling decision is made here, once.
            uint64_t z = (seed ^ msg.id) + 0x9e3779b97f4a7c15ull;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            msg.traceId = z ^ (z >> 31);
            msg.traceSampled =
                trace_sample > 0 &&
                static_cast<long>(msg.id) % trace_sample == 0;
            {
                std::lock_guard<std::mutex> lock(collector.mutex);
                Pending entry;
                entry.loopIndex = loopCursor;
                entry.phase = static_cast<int>(p);
                entry.sendMicros = nowMicros();
                collector.pending.emplace(msg.id, entry);
            }
            CamsClient &client =
                *clients[msg.id % clients.size()];
            if (!client.submit(msg)) {
                ++sendFailures;
                collector.finish(msg.id, ServeMsgType::Error,
                                 nullptr);
            }
            loopCursor = (loopCursor + 1) %
                         static_cast<int>(corpus.size());
        }
        phaseStart += std::chrono::nanoseconds(
            static_cast<long>(1e9 * phases[p].durationS));
    }

    // Collect the tail: every request must reach a terminal state.
    {
        std::unique_lock<std::mutex> lock(collector.mutex);
        collector.allDone.wait_for(
            lock,
            std::chrono::milliseconds(
                static_cast<long>(drain_wait_s * 1000.0)),
            [&] {
                return collector.terminal ==
                       static_cast<long>(collector.pending.size());
            });
    }
    for (auto &client : clients)
        client->close();

    // Server-side view of the same run: one StatsRequest poll on a
    // dedicated monitoring connection, landed verbatim in the report
    // next to the client-observed numbers. Best-effort -- a daemon
    // the chaos harness already killed just leaves the section out.
    std::string serverStatsJson;
    if (poll_stats) {
        ServeClient monitor;
        monitor.setReadTimeoutMs(2000.0);
        std::string error;
        StatsReplyMsg serverStats;
        if (monitor.connect(socket_path, "monitor", error) &&
            monitor.stats(serverStats, error)) {
            serverStatsJson = renderStatsJson(serverStats);
        } else {
            std::cerr << "cams_load: server stats poll skipped: "
                      << error << "\n";
        }
    }

    // Tally.
    PhaseTally tallies[2];
    {
        std::lock_guard<std::mutex> lock(collector.mutex);
        for (const auto &[id, entry] : collector.pending) {
            (void)id;
            PhaseTally &tally = tallies[entry.phase];
            ++tally.requests;
            if (!entry.terminal) {
                ++tally.unanswered;
                continue;
            }
            switch (entry.outcome) {
                case ServeMsgType::Result:
                    if (entry.resultSuccess)
                        ++tally.completed;
                    else if (entry.resultTimeout)
                        ++tally.timeouts;
                    else
                        ++tally.failed;
                    break;
                case ServeMsgType::Shed:
                    ++tally.shed;
                    break;
                case ServeMsgType::Cancelled:
                    ++tally.cancelled;
                    break;
                default:
                    ++tally.errors;
                    break;
            }
        }
    }

    // Optional ground-truth pass: recompile every distinct loop the
    // server answered and byte-compare the canonical result images.
    long directChecked = 0;
    long directMismatches = 0;
    if (check_direct) {
        CompileOptions options; // camsd's baseOptions defaults
        options.timeBudgetMs = 5000.0;
        std::lock_guard<std::mutex> lock(collector.mutex);
        for (const auto &[loopIndex, served] :
             collector.servedBytes) {
            ++directChecked;
            const CompileResult local = compileClustered(
                corpus[loopIndex], machine, options);
            if (canonicalResultBytes(local) != served)
                ++directMismatches;
        }
    }

    long protocolErrors;
    long servedDisagreements;
    long reconnects;
    long resubmitsTotal;
    long gaveUpTotal;
    {
        std::lock_guard<std::mutex> lock(collector.mutex);
        protocolErrors = collector.protocolErrors;
        servedDisagreements = collector.servedDisagreements;
        reconnects = collector.reconnects;
        resubmitsTotal = collector.retries[0] + collector.retries[1];
        gaveUpTotal = collector.gaveUp[0] + collector.gaveUp[1];
    }

    std::ostringstream json;
    json << "{\"bench\":\"cams_load\","
         << "\"socket\":\"" << socket_path << "\","
         << "\"machine\":\"" << machine.name << "\","
         << "\"corpus\":" << corpus.size() << ","
         << "\"seed\":" << seed << ","
         << "\"connections\":" << connections << ","
         << "\"tenant\":\"" << tenant << "\","
         << "\"deadline_ms\":" << formatFixed(deadline_ms, 3) << ","
         << "\"debug_sleep_ms\":" << formatFixed(debug_sleep_ms, 3)
         << ","
         << "\"send_failures\":" << sendFailures << ","
         << "\"protocol_errors\":" << protocolErrors << ","
         << "\"served_disagreements\":" << servedDisagreements << ","
         << "\"reconnects\":" << reconnects << ","
         << "\"gave_up\":" << gaveUpTotal << ","
         << "\"chaos\":" << formatFixed(chaos_p, 4) << ","
         << "\"steady\":"
         << phaseJson(tallies[0], rate, duration_s, collector,
                      "steady", 0);
    if (burst_rate > 0.0) {
        json << ",\"burst\":"
             << phaseJson(tallies[1], burst_rate, burst_duration_s,
                          collector, "burst", 1);
    }
    if (check_direct) {
        json << ",\"direct\":{\"checked\":" << directChecked
             << ",\"mismatches\":" << directMismatches
             << ",\"identical\":"
             << (directMismatches == 0 ? "true" : "false") << "}";
    }
    if (!serverStatsJson.empty())
        json << ",\"server_stats\":" << serverStatsJson;
    json << ",\"metrics\":" << collector.registry.toJson() << "}";

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cams_load: cannot write " << out_path << "\n";
        return 1;
    }
    out << json.str() << "\n";

    const HistogramSummary latency =
        collector.registry.histogram("latency_ms.steady");
    std::cout << "cams_load: steady " << tallies[0].completed << "/"
              << tallies[0].requests << " ok ("
              << formatFixed(static_cast<double>(
                                 tallies[0].completed) /
                                 duration_s,
                             1)
              << " loops/s), latency p50 "
              << formatFixed(latency.p50, 2) << " ms p99 "
              << formatFixed(latency.p99, 2) << " ms";
    if (burst_rate > 0.0) {
        std::cout << "; burst " << tallies[1].completed << " ok, "
                  << tallies[1].shed << " shed of "
                  << tallies[1].requests;
    }
    std::cout << "; " << protocolErrors << " protocol errors, "
              << reconnects << " reconnects, " << resubmitsTotal
              << " resubmits, " << gaveUpTotal << " gave up ("
              << out_path << " written)" << std::endl;
    {
        std::lock_guard<std::mutex> lock(collector.mutex);
        for (const auto &[message, count] : collector.errorMessages)
            std::cerr << "cams_load: " << count << " x error: "
                      << message << "\n";
    }

    const bool ok =
        protocolErrors == 0 && servedDisagreements == 0 &&
        sendFailures == 0 && gaveUpTotal == 0 &&
        tallies[0].unanswered == 0 && tallies[1].unanswered == 0 &&
        (!check_direct || directMismatches == 0);
    return ok ? 0 : 1;
}
