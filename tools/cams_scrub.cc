/**
 * @file
 * cams_scrub -- offline durability scrubber for compile cache
 * directories.
 *
 * Validates every .cce entry (magic, version, checksum, stored-hash /
 * file-name consistency, full payload decode), quarantines anything
 * torn or bit-rotted into <dir>/corrupt/, removes .tmp-* writer
 * debris, and repairs a torn hints.log tail. camsd runs the same
 * scrub on startup; this tool exists for offline use -- after a crash,
 * in cron, or as a CI gate (--expect-clean).
 *
 * Usage:
 *   cams_scrub [--root DIR] [--json FILE] [--expect-clean] [DIR...]
 *
 * Positional DIRs are scrubbed directly; --root DIR scrubs every
 * immediate subdirectory (camsd's per-tenant cache layout). Exit
 * status: 0 on a clean pass, 1 when --expect-clean found anything to
 * quarantine, 2 on usage or I/O errors.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pipeline/cache/compile_cache.hh"

namespace
{

using namespace cams;
namespace fs = std::filesystem;

int
usage()
{
    std::cerr
        << "usage: cams_scrub [options] [DIR...]\n"
           "  --root DIR      scrub every immediate subdirectory of "
           "DIR (camsd's per-tenant layout)\n"
           "  --json FILE     write the aggregate report as JSON "
           "('-' = stdout)\n"
           "  --expect-clean  exit 1 when anything was quarantined "
           "(CI gate)\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> dirs;
    std::string root;
    std::string json_path;
    bool expect_clean = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc)
                return usage();
            root = argv[++i];
        } else if (arg == "--json") {
            if (i + 1 >= argc)
                return usage();
            json_path = argv[++i];
        } else if (arg == "--expect-clean") {
            expect_clean = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "unknown option: " << arg << "\n";
            return usage();
        } else {
            dirs.push_back(arg);
        }
    }
    if (!root.empty()) {
        std::error_code ec;
        fs::directory_iterator it(root, ec);
        if (ec) {
            std::cerr << "error: cannot open root " << root << ": "
                      << ec.message() << "\n";
            return 2;
        }
        for (const auto &entry : it) {
            if (entry.is_directory(ec) && !ec &&
                entry.path().filename() != "corrupt")
                dirs.push_back(entry.path().string());
        }
    }
    if (dirs.empty())
        return usage();

    ScrubReport total;
    bool failed = false;
    for (const std::string &dir : dirs) {
        const ScrubReport report = scrubCacheDir(dir);
        if (!report.error.empty()) {
            std::cerr << "error: " << report.error << "\n";
            failed = true;
            continue;
        }
        total.entriesScanned += report.entriesScanned;
        total.entriesOk += report.entriesOk;
        total.quarantined += report.quarantined;
        total.tmpRemoved += report.tmpRemoved;
        total.hintLinesKept += report.hintLinesKept;
        total.hintLinesDropped += report.hintLinesDropped;
        total.hintLogRepaired |= report.hintLogRepaired;
        std::cout << "cams_scrub: " << dir << ": "
                  << report.entriesScanned << " scanned, "
                  << report.entriesOk << " ok, "
                  << report.quarantined << " quarantined, "
                  << report.tmpRemoved << " tmp removed, hints "
                  << report.hintLinesKept << " kept / "
                  << report.hintLinesDropped << " dropped"
                  << (report.hintLogRepaired ? " (log repaired)"
                                             : "")
                  << "\n";
    }

    if (!json_path.empty()) {
        std::ostringstream json;
        json << "{\n"
             << "  \"bench\": \"cams_scrub\",\n"
             << "  \"directories\": " << dirs.size() << ",\n"
             << "  \"entries_scanned\": " << total.entriesScanned
             << ",\n"
             << "  \"entries_ok\": " << total.entriesOk << ",\n"
             << "  \"quarantined\": " << total.quarantined << ",\n"
             << "  \"tmp_removed\": " << total.tmpRemoved << ",\n"
             << "  \"hint_lines_kept\": " << total.hintLinesKept
             << ",\n"
             << "  \"hint_lines_dropped\": "
             << total.hintLinesDropped << "\n"
             << "}\n";
        if (json_path == "-") {
            std::cout << json.str();
        } else {
            std::ofstream out(json_path);
            if (!out) {
                std::cerr << "error: cannot write " << json_path
                          << "\n";
                return 2;
            }
            out << json.str();
        }
    }

    if (failed)
        return 2;
    if (expect_clean &&
        (total.quarantined > 0 || total.tmpRemoved > 0)) {
        std::cerr << "error: cache not clean: " << total.quarantined
                  << " quarantined, " << total.tmpRemoved
                  << " tmp removed\n";
        return 1;
    }
    return 0;
}
