#!/usr/bin/env python3
"""Schema-validates the BENCH_*.json files the benches and tools emit.

Every CI artifact consumer (trend dashboards, the gate scripts in this
directory) assumes three invariants that used to go unchecked:

  * each file identifies itself with a known "bench" kind and carries
    that kind's required keys;
  * every counter field is a non-negative integer (a negative or
    non-numeric counter means a tally bug, not a slow run);
  * every histogram summary is internally consistent: count >= 0 and,
    when non-empty, min <= p50 <= p90 [<= p99] <= max with the mean
    inside [min, max].

Validates each FILE independently, prints one OK line per valid file,
and exits 1 after listing every problem found. Unreadable or
non-JSON input stops immediately with a one-line error.

Usage: check_bench_json.py FILE [FILE ...]
"""

import json
import sys

# Keys whose values must be non-negative integers wherever they appear.
COUNTER_KEYS = {
    "loops", "jobs", "succeeded", "failed", "degraded",
    "captured_exceptions", "threads", "ii_attempts", "assign_retries",
    "evictions", "copies", "invariant_recoveries", "verifier_rejects",
    "fault_trips", "ctx_hits", "ctx_misses", "mrt_word_scans",
    "cache_hits", "cache_misses", "hint_used", "hint_stale",
    "iters", "violations", "degraded_exhaustive",
    "degraded_single_cluster", "reps",
    "corpus", "connections", "requests", "completed", "shed",
    "timeouts", "cancelled", "errors", "unanswered",
    "protocol_errors", "served_disagreements", "send_failures",
    "count", "checked", "mismatches",
    "retries", "shed_retries", "duplicates_suppressed", "gave_up",
    "reconnects",
    "kills", "restarts",
    "directories", "entries_scanned", "entries_ok", "quarantined",
    "tmp_removed", "hint_lines_kept", "hint_lines_dropped",
    "tightened", "certified", "unsupported", "spot_checks",
    "max_gap", "exact_conflicts",
}

# Per-kind required top-level keys ("bench" selects the row).
REQUIRED = {
    "scheduler_compare": (
        "loops", "machine", "jobs", "serial_wall_ms",
        "parallel_wall_ms", "speedup", "serial", "parallel",
    ),
    "cams_fuzz": ("iters", "seed", "jobs", "violations", "stats"),
    "compile_perf": (
        "loops", "reps", "identical_schedules", "speedup_mean",
        "normalized_mean", "incremental", "baseline",
    ),
    "cams_load": (
        "corpus", "connections", "send_failures", "protocol_errors",
        "served_disagreements", "reconnects", "gave_up", "steady",
    ),
    "cams_chaos": (
        "seed", "kills", "restarts", "load_exit",
        "camsd_final_exit", "scrub", "ok",
    ),
    "cams_scrub": (
        "directories", "entries_scanned", "entries_ok",
        "quarantined", "tmp_removed",
    ),
    "exact_gap": (
        "loops", "violations", "timeout_fraction", "machines",
    ),
}

# Required keys of a BatchStats object and of a cams_load phase.
BATCH_STATS_KEYS = (
    "jobs", "succeeded", "failed", "wall_ms", "failure_kinds",
)
PHASE_KEYS = (
    "requests", "completed", "shed", "timeouts", "unanswered",
    "retries", "shed_retries", "duplicates_suppressed", "gave_up",
    "loops_per_sec", "latency_ms",
)
SCRUB_KEYS = (
    "entries_scanned", "entries_ok", "quarantined", "tmp_removed",
)

# Required keys of one machine's audit in an exact_gap file.
EXACT_GAP_MACHINE_KEYS = (
    "machine", "jobs", "succeeded", "tightened", "certified",
    "timeouts", "unsupported", "spot_checks", "violations",
    "max_gap", "timeout_fraction", "gap_histogram",
    "violation_details",
)

# Required keys of the live-telemetry snapshot cams_load polls from
# the daemon after a run (the renderStatsJson shape).
SERVER_STATS_KEYS = (
    "uptime_seconds", "window_seconds", "queue_depth", "in_flight",
    "workers", "queue_capacity", "draining", "counters",
    "histograms", "tenants",
)


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_histogram(where, hist, problems):
    """A dict with count/p50/p90 is a histogram summary; verify it."""
    for key in ("count", "min", "mean", "max", "p50", "p90"):
        if not is_number(hist.get(key)):
            problems.append(
                f"{where}: histogram field '{key}' missing or "
                f"non-numeric ({hist.get(key)!r})"
            )
            return
    count = hist["count"]
    if not isinstance(count, int) or count < 0:
        problems.append(f"{where}: histogram count {count!r} invalid")
        return
    if count == 0:
        return
    order = [("min", hist["min"]), ("p50", hist["p50"]),
             ("p90", hist["p90"])]
    if is_number(hist.get("p99")):
        order.append(("p99", hist["p99"]))
    order.append(("max", hist["max"]))
    for (lo_name, lo), (hi_name, hi) in zip(order, order[1:]):
        if lo > hi:
            problems.append(
                f"{where}: percentiles not monotone: "
                f"{lo_name}={lo} > {hi_name}={hi}"
            )
    if not hist["min"] <= hist["mean"] <= hist["max"]:
        problems.append(
            f"{where}: mean {hist['mean']} outside "
            f"[{hist['min']}, {hist['max']}]"
        )


def check_server_stats(where, stats, problems):
    """A server_stats snapshot: required gauges plus windowed
    counters where 0 <= last1m <= last5m <= total. Histogram
    summaries inside it are covered by the generic walk()."""
    if not require_keys(where, stats, SERVER_STATS_KEYS, problems):
        return
    counters = stats["counters"]
    if not isinstance(counters, dict):
        problems.append(f"{where}.counters: expected an object")
        return
    for name, counter in counters.items():
        child = f"{where}.counters.{name}"
        if not isinstance(counter, dict):
            problems.append(f"{child}: expected an object")
            continue
        values = {}
        for key in ("total", "last1m", "last5m"):
            value = counter.get(key)
            if not isinstance(value, int) or isinstance(
                    value, bool) or value < 0:
                problems.append(
                    f"{child}.{key}: must be a non-negative "
                    f"integer, got {value!r}"
                )
            else:
                values[key] = value
        if len(values) == 3 and not (
                values["last1m"] <= values["last5m"]
                <= values["total"]):
            problems.append(
                f"{child}: windows not nested: last1m="
                f"{values['last1m']} last5m={values['last5m']} "
                f"total={values['total']}"
            )


def walk(where, node, problems):
    """Recursively applies the counter and histogram invariants."""
    if isinstance(node, dict):
        if all(key in node for key in ("count", "p50", "p90")):
            check_histogram(where, node, problems)
        for key, value in node.items():
            child = f"{where}.{key}" if where else key
            if key in COUNTER_KEYS and not (
                isinstance(value, int)
                and not isinstance(value, bool)
                and value >= 0
            ):
                problems.append(
                    f"{child}: counter must be a non-negative "
                    f"integer, got {value!r}"
                )
            if key == "failure_kinds" and isinstance(value, dict):
                for kind, tally in value.items():
                    if not isinstance(tally, int) or tally < 0:
                        problems.append(
                            f"{child}.{kind}: failure tally must be "
                            f"a non-negative integer, got {tally!r}"
                        )
            walk(child, value, problems)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            walk(f"{where}[{i}]", value, problems)


def require_keys(where, node, keys, problems):
    if not isinstance(node, dict):
        problems.append(
            f"{where}: expected a JSON object, got "
            f"{type(node).__name__}"
        )
        return False
    missing = [key for key in keys if key not in node]
    if missing:
        problems.append(f"{where}: missing keys: {', '.join(missing)}")
    return not missing


def check_file(path):
    """Returns a list of problems (empty = valid)."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as err:
        sys.exit(f"error: cannot read '{path}': {err.strerror}")
    except json.JSONDecodeError as err:
        sys.exit(f"error: '{path}' is not valid JSON: {err}")
    if not isinstance(data, dict):
        sys.exit(
            f"error: '{path}' must be a JSON object, got "
            f"{type(data).__name__}"
        )

    problems = []
    kind = data.get("bench")
    if kind not in REQUIRED:
        problems.append(
            f"bench: unknown kind {kind!r} (expected one of "
            f"{', '.join(sorted(REQUIRED))})"
        )
        walk("", data, problems)
        return kind, problems

    require_keys("(top level)", data, REQUIRED[kind], problems)
    if kind == "scheduler_compare":
        for arm in ("serial", "parallel"):
            if arm in data:
                require_keys(arm, data[arm], BATCH_STATS_KEYS,
                             problems)
    elif kind == "cams_fuzz":
        if "stats" in data:
            require_keys("stats", data["stats"], BATCH_STATS_KEYS,
                         problems)
    elif kind == "cams_load":
        for phase in ("steady", "burst"):
            if phase in data:
                require_keys(phase, data[phase], PHASE_KEYS, problems)
        if "server_stats" in data:
            check_server_stats("server_stats", data["server_stats"],
                               problems)
    elif kind == "exact_gap":
        machines = data.get("machines")
        if isinstance(machines, list):
            for i, machine in enumerate(machines):
                require_keys(f"machines[{i}]", machine,
                             EXACT_GAP_MACHINE_KEYS, problems)
    elif kind == "cams_chaos":
        if "scrub" in data:
            require_keys("scrub", data["scrub"], SCRUB_KEYS, problems)
        if data.get("ok") is not True:
            problems.append(
                f"ok: chaos run did not pass (ok={data.get('ok')!r}, "
                f"load_exit={data.get('load_exit')!r}, "
                f"camsd_final_exit={data.get('camsd_final_exit')!r})"
            )

    walk("", data, problems)
    return kind, problems


def main():
    if len(sys.argv) < 2:
        sys.exit("usage: check_bench_json.py FILE [FILE ...]")
    bad = 0
    for path in sys.argv[1:]:
        kind, problems = check_file(path)
        for problem in problems:
            print(f"FAIL: {path}: {problem}", file=sys.stderr)
        if problems:
            bad += 1
        else:
            print(f"check_bench_json: OK: {path} ({kind})")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
