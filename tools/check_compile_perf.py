#!/usr/bin/env python3
"""Gate the compile-perf benchmark against the checked-in baseline.

Reads a BENCH_compile_perf.json produced by bench/compile_perf and
fails (exit 1) when any of the following hold:

  * the A/B determinism harness reported a schedule mismatch
    (identical_schedules is false);
  * the incremental arm's machine-independent cost (normalized_mean =
    incremental / from-scratch per-loop time on the same machine)
    regressed more than --max-regression (default 25%) over the
    checked-in baseline;
  * --min-speedup was given and speedup_mean fell below it. Use this
    on full-suite runs; small CAMS_SUITE_SIZE subsets shift the loop
    mix enough that the absolute ratio is not comparable.

Usage:
  tools/check_compile_perf.py BENCH_compile_perf.json \
      --baseline bench/baselines/compile_perf_baseline.json \
      [--max-regression 0.25] [--min-speedup 1.5]
"""

import argparse
import json
import sys


def load_json(path: str, what: str) -> dict:
    """Loads one input file, translating every failure mode into a
    clear one-line error (exit 2) instead of a traceback."""
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as err:
        sys.exit(f"error: cannot read {what} '{path}': {err.strerror}")
    except json.JSONDecodeError as err:
        sys.exit(f"error: {what} '{path}' is not valid JSON: {err}")
    if not isinstance(data, dict):
        sys.exit(
            f"error: {what} '{path}' must be a JSON object, "
            f"got {type(data).__name__}"
        )
    return data


def require_number(data: dict, key: str, path: str, what: str) -> float:
    value = data.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        sys.exit(
            f"error: {what} '{path}' is missing numeric field "
            f"'{key}' (found {value!r}); was it produced by "
            "bench/compile_perf?"
        )
    return float(value)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench", help="BENCH_compile_perf.json to check")
    parser.add_argument(
        "--baseline",
        default="bench/baselines/compile_perf_baseline.json",
        help="checked-in baseline JSON",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional increase of normalized_mean",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="required speedup_mean (full-suite runs only)",
    )
    args = parser.parse_args()

    bench = load_json(args.bench, "bench JSON")
    baseline = load_json(args.baseline, "baseline JSON")

    failures = []

    if not bench.get("identical_schedules", False):
        failures.append(
            "A/B determinism: incremental and from-scratch arms "
            "produced different schedules"
        )

    norm = require_number(bench, "normalized_mean", args.bench, "bench JSON")
    base_norm = require_number(
        baseline, "normalized_mean", args.baseline, "baseline JSON"
    )
    bound = base_norm * (1.0 + args.max_regression)
    if norm > bound:
        failures.append(
            f"normalized_mean {norm:.4f} exceeds baseline "
            f"{base_norm:.4f} +{args.max_regression:.0%} "
            f"(bound {bound:.4f})"
        )

    speedup = require_number(bench, "speedup_mean", args.bench, "bench JSON")
    if args.min_speedup is not None:
        if speedup < args.min_speedup:
            failures.append(
                f"speedup_mean {speedup:.3f} below required "
                f"{args.min_speedup:.3f}"
            )

    print(
        f"compile perf: {bench.get('loops', '?')} loops, "
        f"speedup_mean {speedup:.3f}, "
        f"normalized_mean {norm:.4f} "
        f"(baseline {base_norm:.4f}, bound {bound:.4f}), "
        f"identical_schedules {bench.get('identical_schedules')}"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("compile perf gate: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
