/**
 * @file
 * camsd -- the compile-as-a-service daemon.
 *
 * Listens on a Unix-domain socket and serves compile requests
 * through the camsd wire protocol (pipeline/serve): bounded
 * admission queue with explicit shed responses under overload,
 * per-request deadlines, per-tenant persistent compile caches, and
 * graceful drain on SIGTERM/SIGINT (in-flight and queued work
 * completes, every response is delivered, then the process exits 0).
 *
 * Usage:
 *   camsd --socket PATH [--jobs N] [--queue-depth N]
 *         [--cache-dir DIR] [--cache off|ro|rw]
 *         [--compile-budget-ms D] [--metrics FILE] [--allow-debug]
 *         [--read-timeout-ms D] [--watchdog-ms D|auto] [--no-scrub]
 *         [--chaos P] [--chaos-seed N]
 *         [--stats-interval-ms N] [--trace FILE] [--trace-ring N]
 *
 * Telemetry. --stats-interval-ms=N prints a one-line stats heartbeat
 * to stderr every N ms (off by default) -- the same numbers a
 * StatsRequest poll returns, for operators without a polling client.
 * --trace FILE arms server-side request tracing into a bounded ring
 * (--trace-ring events, default 65536) and writes the Chrome trace
 * at exit; clients choose which requests are sampled.
 */

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "pipeline/serve/server.hh"
#include "pipeline/serve/stats_text.hh"
#include "support/threadpool.hh"

namespace
{

using namespace cams;

int
usage()
{
    std::cerr
        << "usage: camsd --socket PATH [options]\n"
           "  --socket PATH          Unix-domain socket to listen on "
           "(required)\n"
           "  --jobs N               compile worker threads "
           "(default: CAMS_JOBS or hardware)\n"
           "  --queue-depth N        bounded admission queue "
           "capacity (default 64)\n"
           "  --cache-dir DIR        root of the per-tenant "
           "persistent compile caches\n"
           "  --cache MODE           off, ro or rw (default rw with "
           "--cache-dir)\n"
           "  --compile-budget-ms D  per-compile wall-clock budget "
           "(default 5000, 0 = none); requests that select the\n"
           "                         race backend stop the exact arm "
           "at the same deadline, so a budget expiry\n"
           "                         never loses the heuristic "
           "answer (exact probes stay conflict-bounded\n"
           "                         for determinism; the wall "
           "budget is only the backstop)\n"
           "  --metrics FILE         write the serve metrics "
           "registry as JSON on exit\n"
           "  --allow-debug          honor the protocol's "
           "debug-sleep test hook\n"
           "  --read-timeout-ms D    mid-frame read deadline per "
           "connection (default 5000, 0 = none)\n"
           "  --watchdog-ms D        hung-compile watchdog; 'auto' "
           "derives it from the compile budget (default off)\n"
           "  --no-scrub             skip the startup scrub of the "
           "tenant cache directories\n"
           "  --chaos P              arm outbound fault injection "
           "with probability P at every site (tests only)\n"
           "  --chaos-seed N         chaos coin-flip seed "
           "(default 1)\n"
           "  --stats-interval-ms N  one-line stats heartbeat to "
           "stderr every N ms (default off)\n"
           "  --trace FILE           record sampled request traces; "
           "write Chrome trace JSON to FILE at exit\n"
           "  --trace-ring N         trace ring-buffer capacity in "
           "events (default 65536)\n";
    return 2;
}

/** Signal handlers may only poke async-signal-safe state: a write
 *  into this self-pipe wakes the main thread, which runs the real
 *  drain sequence outside signal context. */
int signalPipe[2] = {-1, -1};

void
onTermSignal(int)
{
    const char byte = 1;
    // The return value is deliberately ignored: if the pipe is full
    // a wakeup is already pending.
    [[maybe_unused]] const ssize_t n =
        ::write(signalPipe[1], &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    ServeConfig config;
    config.workers = ThreadPool::defaultThreads();
    std::string metrics_path;
    CacheMode cache_mode = CacheMode::ReadWrite;
    bool watchdog_auto = false;
    double chaos_p = 0.0;
    uint64_t chaos_seed = 1;
    int stats_interval_ms = 0;
    std::string trace_path;
    size_t trace_ring = 65536;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        const size_t eq = arg.find('=');
        if (eq != std::string::npos && arg.rfind("--", 0) == 0) {
            inline_value = arg.substr(eq + 1);
            arg.resize(eq);
        }
        auto next = [&]() -> const char * {
            if (!inline_value.empty())
                return inline_value.c_str();
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--socket") {
            const char *value = next();
            if (!value)
                return usage();
            config.socketPath = value;
        } else if (arg == "--jobs") {
            const char *value = next();
            if (!value || std::atoi(value) <= 0)
                return usage();
            config.workers = std::atoi(value);
        } else if (arg == "--queue-depth") {
            const char *value = next();
            if (!value || std::atoi(value) <= 0)
                return usage();
            config.queueCapacity = std::atoi(value);
        } else if (arg == "--cache-dir") {
            const char *value = next();
            if (!value)
                return usage();
            config.cacheRoot = value;
        } else if (arg == "--cache") {
            const char *value = next();
            if (!value || !parseCacheMode(value, cache_mode))
                return usage();
        } else if (arg == "--compile-budget-ms") {
            const char *value = next();
            if (!value)
                return usage();
            config.compileBudgetMs = std::atof(value);
        } else if (arg == "--metrics") {
            const char *value = next();
            if (!value)
                return usage();
            metrics_path = value;
        } else if (arg == "--allow-debug") {
            config.allowDebugSleep = true;
        } else if (arg == "--read-timeout-ms") {
            const char *value = next();
            if (!value)
                return usage();
            config.readTimeoutMs = std::atof(value);
        } else if (arg == "--watchdog-ms") {
            const char *value = next();
            if (!value)
                return usage();
            if (std::string(value) == "auto")
                watchdog_auto = true;
            else
                config.watchdogMs = std::atof(value);
        } else if (arg == "--no-scrub") {
            config.scrubOnStart = false;
        } else if (arg == "--chaos") {
            const char *value = next();
            if (!value)
                return usage();
            chaos_p = std::atof(value);
        } else if (arg == "--chaos-seed") {
            const char *value = next();
            if (!value)
                return usage();
            chaos_seed = std::strtoull(value, nullptr, 10);
        } else if (arg == "--stats-interval-ms") {
            const char *value = next();
            if (!value || std::atoi(value) < 0)
                return usage();
            stats_interval_ms = std::atoi(value);
        } else if (arg == "--trace") {
            const char *value = next();
            if (!value)
                return usage();
            trace_path = value;
        } else if (arg == "--trace-ring") {
            const char *value = next();
            if (!value || std::atoi(value) <= 0)
                return usage();
            trace_ring = static_cast<size_t>(std::atoi(value));
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return usage();
        }
    }
    if (config.socketPath.empty())
        return usage();
    config.cacheMode = cache_mode;
    if (watchdog_auto) {
        // Generous: the budget bounds the compile, the watchdog only
        // catches work that ignores the budget entirely.
        config.watchdogMs =
            config.compileBudgetMs > 0.0
                ? 4.0 * config.compileBudgetMs + 5000.0
                : 60000.0;
    }
    if (chaos_p > 0.0)
        config.chaos = ChaosConfig::uniform(chaos_p, chaos_seed);

    std::unique_ptr<TraceSink> traceSink;
    if (!trace_path.empty()) {
        traceSink = std::make_unique<TraceSink>(TraceLevel::Phase,
                                                trace_ring);
        config.traceSink = traceSink.get();
    }

    if (::pipe(signalPipe) != 0) {
        std::cerr << "camsd: cannot create signal pipe: "
                  << std::strerror(errno) << "\n";
        return 1;
    }
    struct sigaction action{};
    action.sa_handler = onTermSignal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    CamsServer server(config);
    std::string error;
    if (!server.start(error)) {
        std::cerr << "camsd: cannot start: " << error << "\n";
        return 1;
    }
    std::cout << "camsd: listening on " << config.socketPath
              << " (workers=" << config.workers
              << " queue=" << config.queueCapacity << " cache="
              << (config.cacheRoot.empty()
                      ? std::string("off")
                      : config.cacheRoot + " [" +
                            cacheModeName(config.cacheMode) + "]")
              << ")" << std::endl;

    // Sleep until SIGTERM/SIGINT pokes the self-pipe; with a stats
    // interval configured, wake on that cadence for the heartbeat.
    for (;;) {
        struct pollfd pfd{};
        pfd.fd = signalPipe[0];
        pfd.events = POLLIN;
        const int timeout =
            stats_interval_ms > 0 ? stats_interval_ms : -1;
        const int ready = ::poll(&pfd, 1, timeout);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0) {
            // Heartbeat tick: stderr so stdout stays clean for the
            // startup/shutdown lines scripts parse.
            std::cerr << "camsd: "
                      << renderStatsLine(server.statsReply())
                      << std::endl;
            continue;
        }
        char byte = 0;
        if (::read(signalPipe[0], &byte, 1) >= 0)
            break; // signal arrived: fall through to drain
    }

    std::cout << "camsd: draining..." << std::endl;
    server.requestDrain();
    server.waitDrained();

    const ServeStats stats = server.stats();
    const std::string metrics = server.metricsJson();
    server.stop();

    if (traceSink) {
        if (!traceSink->writeFile(trace_path)) {
            std::cerr << "camsd: cannot write " << trace_path << "\n";
        } else if (traceSink->droppedCount() > 0) {
            std::cerr << "camsd: trace ring dropped "
                      << traceSink->droppedCount()
                      << " oldest events (ring capacity "
                      << traceSink->capacity() << ")\n";
        }
    }

    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        if (!out) {
            std::cerr << "camsd: cannot write " << metrics_path
                      << "\n";
            return 1;
        }
        out << metrics << "\n";
    }
    std::cout << "camsd: drained: " << stats.completed
              << " results (" << stats.cacheHits << " cache hits), "
              << stats.shedFull + stats.shedDraining << " shed, "
              << stats.cancelledQueued + stats.cancelledInFlight
              << " cancelled, " << stats.deadlineExpired
              << " deadline-expired, " << stats.protocolErrors
              << " protocol errors, "
              << stats.dedupReplayed + stats.dedupJoined
              << " retries deduped, " << stats.readTimeouts
              << " read timeouts, " << stats.watchdogFired
              << " watchdog kills, " << stats.quarantined
              << " cache files quarantined over "
              << stats.connections << " connections" << std::endl;
    return 0;
}
