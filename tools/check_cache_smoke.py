#!/usr/bin/env python3
"""Gate a cold/warm compile-cache pair of BENCH_batch.json files.

The warm-cache contract (DESIGN.md section 10): a rerun of the same
suite against a populated cache must reproduce every figure of the
cold run exactly -- the cache serves stored results, it never invents
them -- while being substantially faster. This script compares the
BENCH_batch.json written by a cold run (empty --cache-dir) against the
one written by a warm rerun and fails (exit 1) when any of:

  * any non-timing figure differs between the two files (per-loop II
    aggregates, copies, attempts, failure kinds, ...); timing fields
    (wall/cpu milliseconds, speedups) and the cache/hint counters
    themselves are exempt, as is the embedded metrics snapshot whose
    histograms include wall-time series;
  * the warm run's full-result hit rate falls below --min-hit-rate
    (default 0.99) over its serial arm;
  * the warm wall time (--warm-wall, seconds, measured around the
    whole warm binary run by the caller) is not below
    --max-wall-fraction (default 0.5) of the cold wall time
    (--cold-wall). Whole-binary times are compared because the
    figures inside one binary run share the cache: the batch bench's
    serial arm is already warmed by the figure passes before it, so
    the in-JSON wall_ms fields cannot witness the cold/warm gap.

Usage:
  tools/check_cache_smoke.py COLD.json WARM.json \
      --cold-wall SECONDS --warm-wall SECONDS \
      [--min-hit-rate 0.99] [--max-wall-fraction 0.5]
"""

import argparse
import json
import sys

# Fields that legitimately differ between a cold and a warm run.
VOLATILE = {
    "wall_ms",
    "cpu_ms",
    "serial_wall_ms",
    "parallel_wall_ms",
    "speedup",
    "cache_hits",
    "cache_misses",
    "hint_used",
    "hint_stale",
    "metrics",
}


def load_json(path, what):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as err:
        sys.exit(f"error: cannot read {what} '{path}': {err.strerror}")
    except json.JSONDecodeError as err:
        sys.exit(f"error: {what} '{path}' is not valid JSON: {err}")
    if not isinstance(data, dict):
        sys.exit(
            f"error: {what} '{path}' must be a JSON object, "
            f"got {type(data).__name__}"
        )
    return data


def figures(data):
    """Strips volatile (timing/cache) fields, recursively."""
    if isinstance(data, dict):
        return {
            key: figures(value)
            for key, value in data.items()
            if key not in VOLATILE
        }
    if isinstance(data, list):
        return [figures(value) for value in data]
    return data


def diff_paths(a, b, prefix=""):
    """Paths at which two stripped documents disagree."""
    if isinstance(a, dict) and isinstance(b, dict):
        paths = []
        for key in sorted(set(a) | set(b)):
            where = f"{prefix}.{key}" if prefix else key
            if key not in a or key not in b:
                paths.append(f"{where} (only in one file)")
            else:
                paths.extend(diff_paths(a[key], b[key], where))
        return paths
    if a != b:
        return [f"{prefix}: cold={a!r} warm={b!r}"]
    return []


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("cold", help="BENCH_batch.json of the cold run")
    parser.add_argument("warm", help="BENCH_batch.json of the warm rerun")
    parser.add_argument(
        "--min-hit-rate",
        type=float,
        default=0.99,
        help="required warm full-result hit rate",
    )
    parser.add_argument(
        "--cold-wall",
        type=float,
        required=True,
        help="wall seconds of the whole cold run",
    )
    parser.add_argument(
        "--warm-wall",
        type=float,
        required=True,
        help="wall seconds of the whole warm run",
    )
    parser.add_argument(
        "--max-wall-fraction",
        type=float,
        default=0.5,
        help="warm wall time bound, as a fraction of cold",
    )
    args = parser.parse_args()

    cold = load_json(args.cold, "cold bench JSON")
    warm = load_json(args.warm, "warm bench JSON")

    failures = []

    mismatches = diff_paths(figures(cold), figures(warm))
    if mismatches:
        failures.append(
            "warm figures differ from cold: " + "; ".join(mismatches[:10])
        )

    serial = warm.get("serial")
    if not isinstance(serial, dict):
        sys.exit(
            f"error: warm bench JSON '{args.warm}' is missing its "
            f"'serial' section (found {type(serial).__name__}); was "
            "it produced by bench/scheduler_compare?"
        )
    jobs = serial.get("jobs", 0)
    hits = serial.get("cache_hits", 0)
    if not isinstance(hits, (int, float)) or isinstance(hits, bool):
        sys.exit(
            f"error: warm bench JSON '{args.warm}' has non-numeric "
            f"'cache_hits' ({hits!r})"
        )
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs <= 0:
        failures.append(f"warm serial arm reports no jobs ({jobs!r})")
        hit_rate = 0.0
    else:
        hit_rate = hits / jobs
    if hit_rate < args.min_hit_rate:
        failures.append(
            f"warm hit rate {hit_rate:.3f} ({hits}/{jobs}) below "
            f"required {args.min_hit_rate:.3f}"
        )

    if args.cold_wall <= 0:
        failures.append(f"bad --cold-wall {args.cold_wall}")
    elif args.warm_wall >= args.cold_wall * args.max_wall_fraction:
        failures.append(
            f"warm run {args.warm_wall:.2f} s not below "
            f"{args.max_wall_fraction:.0%} of cold "
            f"{args.cold_wall:.2f} s"
        )
    else:
        print(
            f"cache smoke: warm {args.warm_wall:.2f} s vs cold "
            f"{args.cold_wall:.2f} s "
            f"({args.warm_wall / args.cold_wall:.1%}), "
            f"hit rate {hit_rate:.3f}"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("cache smoke gate: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
