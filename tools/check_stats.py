#!/usr/bin/env python3
"""Validates live telemetry snapshots scraped from a running camsd.

Two input formats, both produced by cams_top one-shot modes:

  * --json files (renderStatsJson): checked for the full stats schema
    -- required top-level gauges, counter objects with total/last1m/
    last5m where 0 <= last1m <= last5m <= total, histogram summaries
    with monotone percentiles (min <= p50 <= p90 <= p99 <= max, mean
    in range) for the total and both windows, and tenant objects with
    non-negative tallies where completed + shed <= submitted.
  * --prom files (renderPrometheus): checked as Prometheus 0.0.4 text
    exposition -- every non-comment line is "name[{labels}] value",
    names are legal metric names, every TYPE declaration precedes its
    samples, and the required cams_* families are present.

With two JSON files (two polls of the same daemon, oldest first),
additionally checks cross-poll monotonicity: uptime advances and no
cumulative counter or histogram count ever decreases -- the invariant
every rate computation downstream depends on.

Exits 0 with one OK line per check on success; prints every problem
and exits 1 otherwise. Malformed input (not JSON, not exposition
format) is a clean failure, never a traceback.

Usage:
  check_stats.py --json SNAP.json [SNAP2.json]
  check_stats.py --prom SCRAPE.txt
"""

import json
import re
import sys

# Gauges every stats snapshot must carry at top level.
REQUIRED_GAUGES = (
    "uptime_seconds", "window_seconds", "queue_depth", "in_flight",
    "workers", "queue_capacity", "draining",
)

# Counter and histogram families a freshly started daemon registers
# up front; their absence means the scrape hit something else.
REQUIRED_COUNTERS = ("serve.connections", "serve.completed")
REQUIRED_HISTOGRAMS = ("serve.queue_ms", "serve.compile_ms")

SUMMARY_KEYS = ("count", "min", "mean", "max", "p50", "p90", "p99")
WINDOW_KEYS = ("total", "last1m", "last5m")

# Prometheus text-exposition sample line: name{labels} value.
PROM_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{[^{}]*\})?"
    r" (-?[0-9.eE+-]+|[+-]?Inf|NaN)$"
)
PROM_FAMILIES = (
    "cams_uptime_seconds", "cams_queue_depth", "cams_in_flight",
    "cams_draining", "cams_serve_connections_total",
    "cams_serve_completed_total", "cams_serve_compile_ms",
)


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_summary(where, summary, problems):
    """One HistogramSummary object: types, then percentile order."""
    if not isinstance(summary, dict):
        problems.append(f"{where}: expected a summary object")
        return
    for key in SUMMARY_KEYS:
        if not is_number(summary.get(key)):
            problems.append(
                f"{where}.{key}: missing or non-numeric "
                f"({summary.get(key)!r})"
            )
            return
    count = summary["count"]
    if not isinstance(count, int) or count < 0:
        problems.append(f"{where}.count: invalid count {count!r}")
        return
    if count == 0:
        return
    order = [(key, summary[key])
             for key in ("min", "p50", "p90", "p99", "max")]
    for (lo_name, lo), (hi_name, hi) in zip(order, order[1:]):
        if lo > hi:
            problems.append(
                f"{where}: percentiles not monotone: "
                f"{lo_name}={lo} > {hi_name}={hi}"
            )
    if not summary["min"] <= summary["mean"] <= summary["max"]:
        problems.append(
            f"{where}: mean {summary['mean']} outside "
            f"[{summary['min']}, {summary['max']}]"
        )


def check_snapshot(path, data, problems):
    """Full schema check of one renderStatsJson snapshot."""
    for key in REQUIRED_GAUGES:
        if key not in data:
            problems.append(f"missing top-level key '{key}'")
    for key in ("uptime_seconds", "window_seconds"):
        if key in data and (not is_number(data[key]) or data[key] < 0):
            problems.append(f"{key}: must be non-negative, got "
                            f"{data[key]!r}")
    for key in ("queue_depth", "in_flight", "workers",
                "queue_capacity"):
        value = data.get(key)
        if key in data and (not isinstance(value, int) or value < 0):
            problems.append(
                f"{key}: must be a non-negative integer, got "
                f"{value!r}"
            )
    if "draining" in data and not isinstance(data["draining"], bool):
        problems.append(
            f"draining: must be a boolean, got {data['draining']!r}"
        )
    if is_number(data.get("queue_depth")) and is_number(
            data.get("queue_capacity")):
        if data["queue_depth"] > data["queue_capacity"]:
            problems.append(
                f"queue_depth {data['queue_depth']} exceeds "
                f"queue_capacity {data['queue_capacity']}"
            )

    counters = data.get("counters")
    if not isinstance(counters, dict):
        problems.append("counters: missing or not an object")
        counters = {}
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            problems.append(f"counters: required counter '{name}' "
                            f"absent")
    for name, counter in counters.items():
        where = f"counters.{name}"
        if not isinstance(counter, dict):
            problems.append(f"{where}: expected an object")
            continue
        values = {}
        for key in WINDOW_KEYS:
            value = counter.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"{where}.{key}: must be a non-negative "
                    f"integer, got {value!r}"
                )
            else:
                values[key] = value
        # A window is a subset of history: 1m <= 5m <= total.
        if len(values) == 3 and not (
                values["last1m"] <= values["last5m"]
                <= values["total"]):
            problems.append(
                f"{where}: windows not nested: last1m="
                f"{values['last1m']} last5m={values['last5m']} "
                f"total={values['total']}"
            )

    histograms = data.get("histograms")
    if not isinstance(histograms, dict):
        problems.append("histograms: missing or not an object")
        histograms = {}
    for name in REQUIRED_HISTOGRAMS:
        if name not in histograms:
            problems.append(
                f"histograms: required histogram '{name}' absent"
            )
    for name, histogram in histograms.items():
        where = f"histograms.{name}"
        if not isinstance(histogram, dict):
            problems.append(f"{where}: expected an object")
            continue
        counts = {}
        for key in WINDOW_KEYS:
            check_summary(f"{where}.{key}", histogram.get(key),
                          problems)
            window = histogram.get(key)
            if isinstance(window, dict) and isinstance(
                    window.get("count"), int):
                counts[key] = window["count"]
        if len(counts) == 3 and not (
                counts["last1m"] <= counts["last5m"]
                <= counts["total"]):
            problems.append(
                f"{where}: window counts not nested: last1m="
                f"{counts['last1m']} last5m={counts['last5m']} "
                f"total={counts['total']}"
            )

    tenants = data.get("tenants")
    if not isinstance(tenants, dict):
        problems.append("tenants: missing or not an object")
        tenants = {}
    for name, tenant in tenants.items():
        where = f"tenants.{name}"
        if not isinstance(tenant, dict):
            problems.append(f"{where}: expected an object")
            continue
        values = {}
        for key in ("submitted", "completed", "shed", "cache_hits"):
            value = tenant.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"{where}.{key}: must be a non-negative "
                    f"integer, got {value!r}"
                )
            else:
                values[key] = value
        if ("submitted" in values and "completed" in values
                and "shed" in values):
            if values["completed"] + values["shed"] > values[
                    "submitted"]:
                problems.append(
                    f"{where}: completed {values['completed']} + "
                    f"shed {values['shed']} exceeds submitted "
                    f"{values['submitted']}"
                )


def check_monotone(old, new, problems):
    """Two polls of the same daemon, oldest first: nothing cumulative
    may go backwards."""
    if is_number(old.get("uptime_seconds")) and is_number(
            new.get("uptime_seconds")):
        if new["uptime_seconds"] < old["uptime_seconds"]:
            problems.append(
                f"uptime went backwards: {old['uptime_seconds']} -> "
                f"{new['uptime_seconds']} (daemon restarted between "
                f"polls?)"
            )
    old_counters = old.get("counters") or {}
    new_counters = new.get("counters") or {}
    for name, counter in old_counters.items():
        if not isinstance(counter, dict):
            continue
        before = counter.get("total")
        after = (new_counters.get(name) or {}).get("total")
        if name not in new_counters:
            problems.append(
                f"counters.{name}: present in first poll, absent in "
                f"second (counters never unregister)"
            )
        elif is_number(before) and is_number(after) and after < before:
            problems.append(
                f"counters.{name}: cumulative total decreased "
                f"{before} -> {after}"
            )
    old_hists = old.get("histograms") or {}
    new_hists = new.get("histograms") or {}
    for name, histogram in old_hists.items():
        if not isinstance(histogram, dict):
            continue
        before = (histogram.get("total") or {}).get("count")
        after = ((new_hists.get(name) or {}).get("total")
                 or {}).get("count")
        if is_number(before) and is_number(after) and after < before:
            problems.append(
                f"histograms.{name}: cumulative count decreased "
                f"{before} -> {after}"
            )


def load_json(path):
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as err:
        sys.exit(f"error: cannot read '{path}': {err.strerror}")
    except json.JSONDecodeError as err:
        sys.exit(f"error: '{path}' is not valid JSON: {err}")
    if not isinstance(data, dict):
        sys.exit(
            f"error: '{path}' must be a JSON object, got "
            f"{type(data).__name__}"
        )
    return data


def check_prom(path):
    """Returns a list of problems with one exposition file."""
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as err:
        sys.exit(f"error: cannot read '{path}': {err.strerror}")

    problems = []
    declared = set()
    seen = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "summary", "histogram",
                    "untyped"):
                problems.append(f"line {lineno}: malformed TYPE "
                                f"declaration: {line!r}")
            else:
                declared.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        match = PROM_SAMPLE.match(line)
        if not match:
            problems.append(
                f"line {lineno}: not a valid sample line: {line!r}"
            )
            continue
        name = match.group(1)
        seen.add(name)
        # Summary samples belong to the family without the suffix.
        family = re.sub(r"_(count|sum)$", "", name)
        if (name.startswith("cams_") and name not in declared
                and family not in declared
                and not name.startswith("cams_tenant_")):
            problems.append(
                f"line {lineno}: sample '{name}' has no preceding "
                f"TYPE declaration"
            )
    if not seen:
        problems.append("no sample lines found (empty exposition)")
    for family in PROM_FAMILIES:
        if family not in seen and not any(
                name.startswith(family) for name in seen):
            problems.append(f"required family '{family}' absent")
    return problems


def main():
    argv = sys.argv[1:]
    if not argv or argv[0] not in ("--json", "--prom"):
        sys.exit("usage: check_stats.py --json SNAP.json [SNAP2.json]"
                 " | --prom SCRAPE.txt")
    mode, paths = argv[0], argv[1:]
    if not paths or (mode == "--prom" and len(paths) != 1) or (
            mode == "--json" and len(paths) > 2):
        sys.exit("usage: check_stats.py --json SNAP.json [SNAP2.json]"
                 " | --prom SCRAPE.txt")

    problems = []
    if mode == "--prom":
        problems = [f"{paths[0]}: {p}" for p in check_prom(paths[0])]
    else:
        snapshots = []
        for path in paths:
            data = load_json(path)
            local = []
            check_snapshot(path, data, local)
            problems.extend(f"{path}: {p}" for p in local)
            snapshots.append(data)
        if len(snapshots) == 2:
            local = []
            check_monotone(snapshots[0], snapshots[1], local)
            problems.extend(
                f"{paths[0]} -> {paths[1]}: {p}" for p in local
            )

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        for path in paths:
            print(f"check_stats: OK: {path}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
