#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON produced by --trace.

Checks the shape Perfetto/chrome://tracing require: a traceEvents
list whose entries carry name/ph/pid/tid/ts, complete ('X') events
with a non-negative dur, and thread_name metadata for every lane that
recorded events. With --expect-decisions it additionally requires at
least one assignment-cascade decision event with per-cluster
verdicts.

cache_probe instants (emitted whenever a compile consults the
persistent compile cache) are always validated when present: the
outcome arg must be "hit" or "miss", and a hit must carry the served
II. hint_probe instants must carry outcome "used" or "stale" plus the
probed hint_ii. --expect-cache-probes N requires at least N
cache_probe events (use on runs driven with --cache-dir).

Usage: check_trace.py TRACE.json [--expect-decisions] [--min-lanes N]
       [--expect-cache-probes N]
"""

import argparse
import json
import sys


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("trace")
    parser.add_argument("--expect-decisions", action="store_true",
                        help="require assign_decide events with "
                             "per-cluster verdicts")
    parser.add_argument("--min-lanes", type=int, default=1,
                        help="minimum distinct tids with events")
    parser.add_argument("--expect-cache-probes", type=int, default=0,
                        metavar="N",
                        help="require at least N cache_probe events")
    args = parser.parse_args()

    try:
        with open(args.trace) as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot load {args.trace}: {err}")

    if not isinstance(trace, dict):
        fail(f"{args.trace}: top level must be a JSON object, "
             f"got {type(trace).__name__}")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    lanes = set()
    named_lanes = set()
    scopes = 0
    decisions = 0
    cache_probes = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"event {i} is not an object: {event!r}")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                fail(f"event {i} lacks '{key}': {event}")
        if not isinstance(event["tid"], (str, int)):
            fail(f"event {i} has non-scalar tid: {event!r}")
        ph = event["ph"]
        if ph == "M":
            if event["name"] == "thread_name":
                named_lanes.add(event["tid"])
            continue
        if "ts" not in event:
            fail(f"event {i} lacks 'ts': {event}")
        lanes.add(event["tid"])
        event_args = event.get("args")
        if not isinstance(event_args, dict):
            event_args = {}
        if ph == "X":
            scopes += 1
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) \
                    or isinstance(dur, bool) or dur < 0:
                fail(f"complete event {i} has negative/missing dur")
        elif ph == "i":
            if event["name"] == "assign_decide":
                verdicts = event_args.get("verdicts", "")
                if not isinstance(verdicts, str) \
                        or ":" not in verdicts:
                    fail(f"assign_decide without verdicts: {event}")
                decisions += 1
            elif event["name"] == "cache_probe":
                outcome = event_args.get("outcome")
                if outcome not in ("hit", "miss"):
                    fail(f"cache_probe with bad outcome: {event}")
                if outcome == "hit" and not str(
                        event_args.get("ii", "")).isdigit():
                    fail(f"cache_probe hit without served II: {event}")
                cache_probes += 1
            elif event["name"] == "hint_probe":
                if event_args.get("outcome") not in ("used", "stale"):
                    fail(f"hint_probe with bad outcome: {event}")
                if not str(event_args.get("hint_ii", "")).isdigit():
                    fail(f"hint_probe without hint_ii: {event}")
        else:
            fail(f"event {i} has unexpected ph '{ph}'")

    if scopes == 0:
        fail("no phase scopes ('X' events) recorded")
    if len(lanes) < args.min_lanes:
        fail(f"{len(lanes)} lanes recorded, expected >= "
             f"{args.min_lanes}")
    if missing := lanes - named_lanes:
        fail(f"lanes without thread_name metadata: {sorted(missing)}")
    if args.expect_decisions and decisions == 0:
        fail("no assign_decide events (is --trace-level decision on?)")
    if cache_probes < args.expect_cache_probes:
        fail(f"{cache_probes} cache_probe events, expected >= "
             f"{args.expect_cache_probes} (was --cache-dir set and "
             f"--trace-level decision on?)")

    print(f"check_trace: OK: {len(events)} events, {scopes} scopes, "
          f"{decisions} decisions, {cache_probes} cache probes, "
          f"{len(lanes)} lanes")


if __name__ == "__main__":
    main()
