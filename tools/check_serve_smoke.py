#!/usr/bin/env python3
"""Gate the camsd serve-smoke run from its BENCH_serve.json files.

Consumes one or two cams_load reports -- a steady-rate run and an
optional overload run with a burst phase -- and fails (exit 1) when
the serving contract is violated:

  * any protocol errors, send failures, served-result disagreements
    or unanswered requests anywhere (the server must answer every
    accepted request, identically for identical inputs);
  * the steady run shed or timed out anything: at the steady offered
    rate the bounded queue must never fill;
  * --check-direct was requested but the steady report carries no
    direct-comparison verdict, or it found mismatches (served results
    must be byte-identical to a direct in-process camsc-style
    compile, timings aside);
  * steady sustained throughput fell below --min-loops-per-sec, or
    steady p99 latency exceeded --max-p99-ms;
  * the overload run's burst phase shed a fraction outside
    [--min-shed, --max-shed]: too little shed means the overload did
    not actually overload (the gate proved nothing), too much means
    admission control collapsed and stopped serving even its fair
    share.

Unreadable or malformed input stops immediately with a one-line
error.

Usage:
  tools/check_serve_smoke.py STEADY.json [--overload OVERLOAD.json]
      [--min-loops-per-sec R] [--max-p99-ms MS]
      [--min-shed F] [--max-shed F] [--require-direct]
"""

import argparse
import json
import sys


def load_json(path, what):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as err:
        sys.exit(f"error: cannot read {what} '{path}': {err.strerror}")
    except json.JSONDecodeError as err:
        sys.exit(f"error: {what} '{path}' is not valid JSON: {err}")
    if not isinstance(data, dict):
        sys.exit(
            f"error: {what} '{path}' must be a JSON object, "
            f"got {type(data).__name__}"
        )
    return data


def require_number(data, key, path):
    value = data.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        sys.exit(
            f"error: '{path}' is missing numeric field '{key}' "
            f"(found {value!r}); was it produced by cams_load?"
        )
    return value


def require_section(data, key, path):
    value = data.get(key)
    if not isinstance(value, dict):
        sys.exit(
            f"error: '{path}' is missing its '{key}' section; "
            "was it produced by cams_load?"
        )
    return value


def check_clean(report, path, failures):
    """The invariants every cams_load run must satisfy."""
    for key in ("protocol_errors", "send_failures",
                "served_disagreements"):
        value = require_number(report, key, path)
        if value != 0:
            failures.append(f"{path}: {key} = {value} (must be 0)")
    for phase in ("steady", "burst"):
        if phase not in report:
            continue
        section = require_section(report, phase, path)
        unanswered = require_number(section, "unanswered", path)
        if unanswered != 0:
            failures.append(
                f"{path}: {phase} left {unanswered} requests "
                "unanswered (must be 0)"
            )
        errors = require_number(section, "errors", path)
        if errors != 0:
            failures.append(
                f"{path}: {phase} saw {errors} error responses "
                "(must be 0)"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("steady", help="BENCH_serve.json of the "
                        "steady-rate run")
    parser.add_argument("--overload", default=None,
                        help="BENCH_serve.json of the overload run "
                        "(burst phase required)")
    parser.add_argument("--min-loops-per-sec", type=float, default=None,
                        help="required steady sustained throughput")
    parser.add_argument("--max-p99-ms", type=float, default=None,
                        help="steady p99 latency ceiling")
    parser.add_argument("--min-shed", type=float, default=0.2,
                        help="minimum burst shed fraction (proves "
                        "the burst actually overloaded)")
    parser.add_argument("--max-shed", type=float, default=0.98,
                        help="maximum burst shed fraction")
    parser.add_argument("--require-direct", action="store_true",
                        help="require a passing direct-comparison "
                        "verdict in the steady report")
    args = parser.parse_args()

    steady_report = load_json(args.steady, "steady serve JSON")
    failures = []

    check_clean(steady_report, args.steady, failures)
    steady = require_section(steady_report, "steady", args.steady)

    for key in ("shed", "timeouts"):
        value = require_number(steady, key, args.steady)
        if value != 0:
            failures.append(
                f"steady run {key} = {value}: the queue must absorb "
                "the steady rate"
            )

    requests = require_number(steady, "requests", args.steady)
    completed = require_number(steady, "completed", args.steady)
    rate = require_number(steady, "loops_per_sec", args.steady)
    if args.min_loops_per_sec is not None and rate < args.min_loops_per_sec:
        failures.append(
            f"steady throughput {rate:.1f} loops/s below required "
            f"{args.min_loops_per_sec:.1f}"
        )

    latency = require_section(steady, "latency_ms", args.steady)
    p99 = require_number(latency, "p99", args.steady)
    if args.max_p99_ms is not None and p99 > args.max_p99_ms:
        failures.append(
            f"steady p99 latency {p99:.2f} ms exceeds ceiling "
            f"{args.max_p99_ms:.2f} ms"
        )

    if args.require_direct:
        direct = steady_report.get("direct")
        if not isinstance(direct, dict):
            failures.append(
                f"{args.steady}: no 'direct' section -- was "
                "--check-direct passed to cams_load?"
            )
        else:
            checked = require_number(direct, "checked", args.steady)
            mismatches = require_number(direct, "mismatches",
                                        args.steady)
            if checked == 0:
                failures.append("direct comparison checked 0 loops")
            if mismatches != 0:
                failures.append(
                    f"served results diverge from direct compiles "
                    f"on {mismatches}/{checked} loops"
                )

    shed_line = ""
    if args.overload is not None:
        overload_report = load_json(args.overload,
                                    "overload serve JSON")
        check_clean(overload_report, args.overload, failures)
        burst = require_section(overload_report, "burst",
                                args.overload)
        burst_requests = require_number(burst, "requests",
                                        args.overload)
        burst_shed = require_number(burst, "shed", args.overload)
        if burst_requests <= 0:
            failures.append(f"{args.overload}: empty burst phase")
        else:
            fraction = burst_shed / burst_requests
            shed_line = (
                f", burst shed {burst_shed}/{burst_requests} "
                f"({fraction:.1%})"
            )
            if fraction < args.min_shed:
                failures.append(
                    f"burst shed fraction {fraction:.1%} below "
                    f"{args.min_shed:.1%}: the burst did not "
                    "overload the queue, gate proves nothing"
                )
            elif fraction > args.max_shed:
                failures.append(
                    f"burst shed fraction {fraction:.1%} above "
                    f"{args.max_shed:.1%}: admission control served "
                    "almost nothing under burst"
                )

    print(
        f"serve smoke: steady {completed}/{requests} ok at "
        f"{rate:.1f} loops/s, p99 {p99:.2f} ms{shed_line}"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("serve smoke gate: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
