/**
 * @file
 * camsc -- the command-line loop compiler.
 *
 * Reads a loop in the text DFG format and a machine description,
 * runs cluster assignment + modulo scheduling, and reports the II
 * against the equally wide unified machine. Optional outputs: DOT of
 * the clustered graph, the VLIW kernel/pipeline listing with rotating
 * registers, a stage-scheduling register post-pass, and a pipelined
 * execution equivalence check.
 *
 * Usage:
 *   camsc --loop FILE [--machine FILE] [--scheduler sms|ims]
 *         [--simple] [--no-iterate] [--stage-schedule]
 *         [--asm] [--dot] [--simulate N]
 *
 * Suite mode compiles the whole synthetic suite through the parallel
 * batch engine instead of a single loop:
 *   camsc --suite N [--jobs N] [--seed S] [--machine FILE]
 *         [--scheduler sms|ims]
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "codegen/emit.hh"
#include "frontend/parser.hh"
#include "graph/dot.hh"
#include "graph/textio.hh"
#include "machine/configs.hh"
#include "machine/machinetext.hh"
#include "pipeline/batch.hh"
#include "pipeline/cache/compile_cache.hh"
#include "pipeline/driver.hh"
#include "regalloc/regalloc.hh"
#include "report/trace_summary.hh"
#include "sched/regmetrics.hh"
#include "sched/stage.hh"
#include "sim/compare.hh"
#include "support/metrics.hh"
#include "support/stats.hh"
#include "support/str.hh"
#include "support/threadpool.hh"
#include "support/trace.hh"
#include "workload/suite.hh"

namespace
{

using namespace cams;

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream input(path);
    if (!input)
        return false;
    std::ostringstream buffer;
    buffer << input.rdbuf();
    out = buffer.str();
    return true;
}

int
usage()
{
    std::cerr
        << "usage: camsc (--loop FILE | --source FILE | --suite N) "
           "[--machine FILE] [options]\n"
           "  --source FILE      loop body in C-like source (see "
           "frontend/parser.hh)\n"
           "  --suite N          compile the N-loop synthetic suite "
           "through the batch engine\n"
           "  --jobs N           batch worker threads (suite mode; "
           "default: CAMS_JOBS or hardware)\n"
           "  --seed S           master seed of the synthetic suite "
           "(suite mode)\n"
           "  --machine FILE     machine description (default: 2 "
           "clusters x 4 GP, 2 buses, 1 port)\n"
           "  --scheduler KIND   sms (default) or ims\n"
           "  --backend KIND     heuristic (default), exact, or race\n"
           "                     exact: SAT decisions replace the II "
           "search (optimal)\n"
           "                     race: heuristic answer, then the "
           "exact arm tightens\n"
           "                     the II or certifies it optimal\n"
           "  --exact-conflicts N  conflict budget per exact II "
           "decision\n"
           "                     (default 50000; deterministic, "
           "unlike wall budgets)\n"
           "  --simple           drop the selection heuristic\n"
           "  --no-iterate       drop the eviction/repair iteration\n"
           "  --no-fallback      disable the degradation ladder\n"
           "  --no-incremental   disable the per-loop analysis cache "
           "and word-scan MRTs (A/B baseline)\n"
           "  --fault P          inject faults with probability P per "
           "site (stress testing)\n"
           "  --fault-seed S     seed of the fault injector "
           "(default 1)\n"
           "  --deadline-ms D    wall-clock budget per compile; with "
           "--backend race\n"
           "                     the exact arm also stops at this "
           "deadline, so the\n"
           "                     heuristic answer always survives "
           "(camsd --budget-ms\n"
           "                     behaves the same way per request)\n"
           "  --cache-dir DIR    persistent compile cache directory\n"
           "  --cache MODE       off, ro or rw (default rw with "
           "--cache-dir)\n"
           "  --trace FILE       write a Chrome trace-event JSON "
           "(chrome://tracing, Perfetto)\n"
           "  --trace-level L    phase (default) or decision "
           "(per-node assignment verdicts)\n"
           "  --metrics FILE     write the counter/histogram registry "
           "as JSON\n"
           "  --stage-schedule   apply the register post-pass\n"
           "  --asm              print the kernel and pipeline listing\n"
           "  --emit-mve         print the MVE-unrolled kernel (no "
           "rotating files)\n"
           "  --dot              print the clustered graph as DOT\n"
           "  --simulate N       check pipelined-vs-sequential "
           "equivalence over N iterations\n";
    return 2;
}

/**
 * Suite mode: compiles the synthetic suite (clustered and unified
 * baseline) through the batch engine and reports the deviation
 * summary plus the machine-readable batch statistics.
 */
int
runSuiteMode(int count, uint64_t seed, int jobs,
             const MachineDesc &machine, const CompileOptions &options,
             const std::string &metrics_path, CompileCache *cache)
{
    const std::vector<Dfg> suite = buildSuite(count, seed);
    const MachineDesc unified = machine.unifiedEquivalent();
    std::cerr << "compiling " << suite.size() << " loops on "
              << machine.name << " with " << jobs << " jobs..."
              << std::endl;

    MetricsRegistry registry;
    const BatchOutcome base = BatchRunner::run(
        unifiedJobs(suite, unified, options), jobs, 0.0, &registry);
    const BatchOutcome clustered = BatchRunner::run(
        clusteredJobs(suite, machine, options), jobs, 0.0, &registry);

    IntHistogram deviations;
    int failures = 0;
    int degraded = 0;
    for (size_t i = 0; i < suite.size(); ++i) {
        const CompileResult &b = base.results[i];
        const CompileResult &c = clustered.results[i];
        // A degraded II measures the fallback, not the paper's
        // pipeline: exclude it from the deviation summary.
        if (b.degraded != DegradeLevel::None ||
            c.degraded != DegradeLevel::None) {
            ++degraded;
            ++failures;
            continue;
        }
        if (!b.success || !c.success) {
            ++failures;
            continue;
        }
        deviations.add(c.ii - b.ii);
    }

    std::cout << "suite:     " << suite.size() << " loops (seed 0x"
              << std::hex << seed << std::dec << ")\n";
    std::cout << "machine:   " << machine.name << "\n";
    std::cout << "matched:   " << deviations.countAt(0) << " of "
              << suite.size() << " at deviation 0";
    if (deviations.total() > 0) {
        std::cout << " (max deviation " << deviations.maxValue()
                  << ")";
    }
    std::cout << "\nfailures:  " << failures << " (" << degraded
              << " degraded)\n";
    std::cout << "batch:     " << clustered.stats.toJson() << "\n";
    if (cache != nullptr) {
        const CompileCache::Totals totals = cache->totals();
        std::cout << "cache:     mode=" << cacheModeName(cache->mode())
                  << " hits="
                  << base.stats.cacheHits + clustered.stats.cacheHits
                  << " misses="
                  << base.stats.cacheMisses +
                         clustered.stats.cacheMisses
                  << " hint_used="
                  << base.stats.hintUsed + clustered.stats.hintUsed
                  << " hint_stale="
                  << base.stats.hintStale + clustered.stats.hintStale
                  << " entries=" << totals.entries
                  << " bytes=" << totals.bytesOnDisk << "\n";
        cache->publish(registry);
    }

    if (options.trace.sink) {
        std::vector<std::string> names;
        names.reserve(suite.size());
        for (const Dfg &loop : suite)
            names.push_back(loop.name());
        std::cout << "\n" << renderTraceSummary(names, clustered);
    }
    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        if (!out) {
            std::cerr << "cannot write " << metrics_path << "\n";
            return 1;
        }
        out << registry.toJson() << "\n";
    }
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string loop_path;
    std::string source_path;
    std::string machine_path;
    CompileOptions options;
    bool want_asm = false;
    bool want_mve = false;
    bool want_dot = false;
    bool want_stage = false;
    int simulate = 0;
    int suite_count = 0;
    int jobs = ThreadPool::defaultThreads();
    uint64_t seed = defaultSuiteSeed;
    double fault_prob = 0.0;
    uint64_t fault_seed = 1;
    std::string trace_path;
    std::string metrics_path;
    std::string cache_dir;
    CacheMode cache_mode = CacheMode::ReadWrite;
    TraceLevel trace_level = TraceLevel::Phase;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Every value option accepts both "--opt VALUE" and
        // "--opt=VALUE".
        std::string inline_value;
        const size_t eq = arg.find('=');
        if (eq != std::string::npos && arg.rfind("--", 0) == 0) {
            inline_value = arg.substr(eq + 1);
            arg.resize(eq);
        }
        auto next = [&]() -> const char * {
            if (!inline_value.empty())
                return inline_value.c_str();
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--loop") {
            const char *value = next();
            if (!value)
                return usage();
            loop_path = value;
        } else if (arg == "--source") {
            const char *value = next();
            if (!value)
                return usage();
            source_path = value;
        } else if (arg == "--machine") {
            const char *value = next();
            if (!value)
                return usage();
            machine_path = value;
        } else if (arg == "--scheduler") {
            const char *value = next();
            if (!value)
                return usage();
            const std::string kind = value;
            if (kind == "sms") {
                options.scheduler = SchedulerKind::Swing;
            } else if (kind == "ims") {
                options.scheduler = SchedulerKind::Iterative;
            } else {
                return usage();
            }
        } else if (arg == "--backend") {
            const char *value = next();
            if (!value || !parseCompileBackend(value, options.backend))
                return usage();
        } else if (arg == "--exact-conflicts") {
            const char *value = next();
            if (!value)
                return usage();
            options.exact.conflictBudget = std::atol(value);
        } else if (arg == "--simple") {
            options.assign.fullHeuristic = false;
        } else if (arg == "--no-iterate") {
            options.assign.iterative = false;
        } else if (arg == "--no-fallback") {
            options.fallback = false;
        } else if (arg == "--no-incremental") {
            options.incremental = false;
        } else if (arg == "--fault") {
            const char *value = next();
            if (!value)
                return usage();
            fault_prob = std::atof(value);
            if (fault_prob < 0.0 || fault_prob > 1.0)
                return usage();
        } else if (arg == "--fault-seed") {
            const char *value = next();
            if (!value)
                return usage();
            fault_seed = std::strtoull(value, nullptr, 0);
        } else if (arg == "--deadline-ms") {
            const char *value = next();
            if (!value)
                return usage();
            options.timeBudgetMs = std::atof(value);
        } else if (arg == "--trace") {
            const char *value = next();
            if (!value)
                return usage();
            trace_path = value;
        } else if (arg == "--trace-level") {
            const char *value = next();
            if (!value || !parseTraceLevel(value, trace_level))
                return usage();
        } else if (arg == "--metrics") {
            const char *value = next();
            if (!value)
                return usage();
            metrics_path = value;
        } else if (arg == "--cache-dir") {
            const char *value = next();
            if (!value)
                return usage();
            cache_dir = value;
        } else if (arg == "--cache") {
            const char *value = next();
            if (!value || !parseCacheMode(value, cache_mode))
                return usage();
        } else if (arg == "--stage-schedule") {
            want_stage = true;
        } else if (arg == "--asm") {
            want_asm = true;
        } else if (arg == "--emit-mve") {
            want_mve = true;
        } else if (arg == "--dot") {
            want_dot = true;
        } else if (arg == "--simulate") {
            const char *value = next();
            if (!value)
                return usage();
            simulate = std::atoi(value);
        } else if (arg == "--suite") {
            const char *value = next();
            if (!value)
                return usage();
            suite_count = std::atoi(value);
            if (suite_count <= 0)
                return usage();
        } else if (arg == "--jobs") {
            const char *value = next();
            if (!value)
                return usage();
            jobs = std::atoi(value);
            if (jobs <= 0)
                return usage();
        } else if (arg == "--seed") {
            const char *value = next();
            if (!value)
                return usage();
            seed = std::strtoull(value, nullptr, 0);
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return usage();
        }
    }
    const int input_forms = (!loop_path.empty() ? 1 : 0) +
                            (!source_path.empty() ? 1 : 0) +
                            (suite_count > 0 ? 1 : 0);
    if (input_forms != 1)
        return usage(); // exactly one input form

    std::string text;
    Dfg loop;
    std::string error;

    MachineDesc machine = busedGpMachine(2, 2, 1);
    if (!machine_path.empty()) {
        if (!readFile(machine_path, text)) {
            std::cerr << "cannot read " << machine_path << "\n";
            return 1;
        }
        if (!parseMachine(text, machine, error)) {
            std::cerr << machine_path << ": " << error << "\n";
            return 1;
        }
    }

    if (fault_prob > 0.0) {
        options.faults = std::make_shared<FaultInjector>(
            FaultConfig::uniform(fault_prob, fault_seed));
    }

    std::unique_ptr<CompileCache> cache;
    if (!cache_dir.empty() && cache_mode != CacheMode::Off) {
        cache = std::make_unique<CompileCache>(cache_dir, cache_mode);
        if (!cache->enabled()) {
            std::cerr << "warning: " << cache->openError()
                      << "; continuing uncached\n";
            cache.reset();
        } else {
            options.cache = cache.get();
        }
    }

    std::unique_ptr<TraceSink> sink;
    if (!trace_path.empty()) {
        sink = std::make_unique<TraceSink>(trace_level);
        options.trace.sink = sink.get();
    }
    auto write_trace = [&]() {
        if (!sink)
            return true;
        if (!sink->writeFile(trace_path)) {
            std::cerr << "cannot write " << trace_path << "\n";
            return false;
        }
        return true;
    };

    if (suite_count > 0) {
        const int rc = runSuiteMode(suite_count, seed, jobs, machine,
                                    options, metrics_path, cache.get());
        return write_trace() ? rc : 1;
    }

    if (!loop_path.empty()) {
        if (!readFile(loop_path, text)) {
            std::cerr << "cannot read " << loop_path << "\n";
            return 1;
        }
        if (!parseDfg(text, loop, error)) {
            std::cerr << loop_path << ": " << error << "\n";
            return 1;
        }
    } else {
        if (!readFile(source_path, text)) {
            std::cerr << "cannot read " << source_path << "\n";
            return 1;
        }
        if (!parseLoopSource(text, loop, error)) {
            std::cerr << source_path << ": " << error << "\n";
            return 1;
        }
    }

    if (!loop.name().empty())
        options.trace.tag = loop.name();
    const CompileResult unified =
        compileUnified(loop, machine.unifiedEquivalent(), options);
    const CompileResult result =
        compileClustered(loop, machine, options);

    // Trace and metrics files are worth having even when the compile
    // failed -- that is when the timeline matters most.
    if (!write_trace())
        return 1;
    if (!metrics_path.empty()) {
        MetricsRegistry registry;
        registry.record("total_ms", result.phaseMs.totalMs);
        registry.record("assign_ms", result.phaseMs.assignMs);
        registry.record("schedule_ms", result.phaseMs.scheduleMs);
        registry.record("verify_ms", result.phaseMs.verifyMs);
        registry.add("ctx.hits", result.ctxHits);
        registry.add("ctx.misses", result.ctxMisses);
        registry.add("mrt.word_scans", result.mrtWordScans);
        for (const CompileResult *r : {&unified, &result}) {
            if (r->cacheProbed)
                registry.add(r->fromCache ? "cache.hits"
                                          : "cache.misses");
            if (r->hintUsed)
                registry.add("hint.used");
            if (r->hintStale)
                registry.add("hint.stale");
        }
        if (cache)
            cache->publish(registry);
        if (result.success && result.degraded == DegradeLevel::None)
            registry.record("ii_slack", result.ii - result.mii.mii);
        std::ofstream out(metrics_path);
        if (!out) {
            std::cerr << "cannot write " << metrics_path << "\n";
            return 1;
        }
        out << registry.toJson() << "\n";
    }

    if (!result.success) {
        std::cerr << "compilation failed: "
                  << failureKindName(result.failure) << " (final II "
                  << "tried " << result.finalIiTried << ")";
        if (!result.failureDetail.empty())
            std::cerr << "\n  " << result.failureDetail;
        std::cerr << "\n";
        return 1;
    }
    if (result.degraded != DegradeLevel::None) {
        std::cerr << "note: the primary pipeline failed; this is the "
                  << degradeLevelName(result.degraded)
                  << " fallback schedule\n";
    }

    Schedule schedule = result.schedule;
    if (want_stage) {
        const StageScheduleResult staged =
            stageSchedule(result.loop, schedule);
        std::cout << "stage scheduling: lifetime "
                  << staged.lifetimeBefore << " -> "
                  << staged.lifetimeAfter << " (" << staged.moves
                  << " moves)\n";
        schedule = staged.schedule;
    }

    const RegMetrics regs = computeRegMetrics(result.loop, schedule);
    std::cout << "loop:      " << loop.name() << " (" << loop.numNodes()
              << " ops)\n";
    std::cout << "machine:   " << machine.name << "\n";
    if (cache) {
        std::cout << "cache:     "
                  << (result.fromCache  ? "hit"
                      : result.hintUsed ? "warm start"
                                        : "miss")
                  << " (" << cacheModeName(cache->mode()) << " "
                  << cache->directory() << ")\n";
    }
    std::cout << "unified:   II=" << unified.ii << "\n";
    std::cout << "clustered: II=" << result.ii << " (deviation "
              << result.ii - unified.ii << "), copies=" << result.copies
              << ", stages=" << schedule.stageCount() << "\n";
    if (options.backend != CompileBackend::Heuristic) {
        std::cout << "exact:     outcome="
                  << exactOutcomeName(result.exact.outcome);
        if (result.exact.tightened) {
            std::cout << " (tightened " << result.exact.heuristicIi
                      << " -> " << result.exact.exactIi << ")";
        }
        if (result.exact.certified)
            std::cout << " (certified optimal at II=" << result.ii
                      << ")";
        std::cout << " probes=" << result.exact.probes
                  << " conflicts=" << result.exact.conflicts << " "
                  << formatFixed(result.exact.solveMs, 2) << "ms";
        if (!result.exact.detail.empty())
            std::cout << " detail=" << result.exact.detail;
        std::cout << "\n";
    }
    std::cout << "phases:    assign=" << formatFixed(
                     result.phaseMs.assignMs, 2)
              << "ms (order=" << formatFixed(result.phaseMs.orderMs, 2)
              << " route=" << formatFixed(result.phaseMs.routeMs, 2)
              << ") schedule="
              << formatFixed(result.phaseMs.scheduleMs, 2)
              << "ms verify=" << formatFixed(result.phaseMs.verifyMs, 2)
              << "ms total=" << formatFixed(result.phaseMs.totalMs, 2)
              << "ms over " << result.attempts << " II attempts\n";
    std::cout << "registers: MaxLive=" << regs.maxLive
              << " MVE=" << regs.mveFactor << "\n";

    const RegisterAllocation allocation =
        allocateRegisters(result.loop, schedule, machine);
    std::string why;
    if (!verifyAllocation(result.loop, schedule, allocation, &why)) {
        std::cerr << "register allocation invalid: " << why << "\n";
        return 1;
    }
    std::cout << "files:    ";
    for (int c = 0; c < machine.numClusters(); ++c)
        std::cout << " C" << c << "=" << allocation.registersPerFile[c];
    std::cout << " rotating registers\n";

    if (want_asm) {
        std::cout << "\n"
                  << emitPipeline(result.loop, schedule, allocation,
                                  machine);
    }
    if (want_mve) {
        std::cout << "\n"
                  << emitMveKernel(result.loop, schedule, allocation,
                                   machine);
    }
    if (want_dot) {
        std::vector<int> clusters;
        for (const auto &place : result.loop.placement)
            clusters.push_back(place.cluster);
        std::cout << "\n" << toDot(result.loop.graph, &clusters);
    }
    if (simulate > 0) {
        const EquivalenceReport report = checkEquivalence(
            loop, result.loop, schedule, machine, simulate);
        std::cout << "simulation: " << report.comparisons
                  << " values over " << simulate << " iterations -> "
                  << (report.equivalent ? "EQUIVALENT" : "MISMATCH")
                  << "\n";
        for (const std::string &issue : report.mismatches)
            std::cout << "  " << issue << "\n";
        if (!report.equivalent)
            return 1;
    }
    return 0;
}
