#!/usr/bin/env python3
"""Gate the exact-backend optimality audit (bench/optimality_gap).

Reads a BENCH_exact_gap.json and fails (exit 1) when any of the
following hold:

  * any machine reported an optimality violation -- a schedule that
    failed independent re-verification, a "tightened" result whose gap
    is not positive, or a heuristic schedule at an II the exact arm
    certified UNSAT. These are correctness bugs, never flakes, so the
    allowance is zero;
  * any gap is negative (the exact arm may never be worse than the
    heuristic it raced);
  * the overall timeout fraction exceeds --max-timeout-fraction: an
    audit that times out on most loops proves nothing, so bound how
    much of the suite the exact arm must actually decide.

Malformed or incomplete input fails with a one-line error.

Usage:
  tools/check_exact_gap.py BENCH_exact_gap.json \
      [--max-timeout-fraction 0.10]
"""

import argparse
import json
import sys


def load_json(path: str) -> dict:
    """Loads the audit file, translating every failure mode into a
    clear one-line error (exit 2) instead of a traceback."""
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as err:
        sys.exit(f"error: cannot read '{path}': {err.strerror}")
    except json.JSONDecodeError as err:
        sys.exit(f"error: '{path}' is not valid JSON: {err}")
    if not isinstance(data, dict):
        sys.exit(
            f"error: '{path}' must be a JSON object, got "
            f"{type(data).__name__}"
        )
    return data


def require(data: dict, key: str, kinds, where: str):
    value = data.get(key)
    if isinstance(value, bool) or not isinstance(value, kinds):
        sys.exit(
            f"error: {where} is missing field '{key}' (found "
            f"{value!r}); was it produced by bench/optimality_gap?"
        )
    return value


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench", help="BENCH_exact_gap.json to check")
    parser.add_argument(
        "--max-timeout-fraction",
        type=float,
        default=0.10,
        help="largest tolerated fraction of raced loops whose exact "
        "arm exhausted its budget (default 0.10)",
    )
    args = parser.parse_args()

    data = load_json(args.bench)
    if data.get("bench") != "exact_gap":
        sys.exit(
            f"error: '{args.bench}' has bench kind "
            f"{data.get('bench')!r}, expected 'exact_gap'"
        )
    require(data, "loops", int, args.bench)
    require(data, "violations", int, args.bench)
    timeout_fraction = require(
        data, "timeout_fraction", (int, float), args.bench
    )
    machines = require(data, "machines", list, args.bench)
    if not machines:
        sys.exit(f"error: '{args.bench}' audited zero machines")

    failures = []
    decided = 0
    for i, machine in enumerate(machines):
        where = f"{args.bench} machines[{i}]"
        if not isinstance(machine, dict):
            sys.exit(f"error: {where} is not a JSON object")
        name = require(machine, "machine", str, where)
        violations = require(machine, "violations", int, where)
        max_gap = require(machine, "max_gap", int, where)
        tightened = require(machine, "tightened", int, where)
        certified = require(machine, "certified", int, where)
        jobs = require(machine, "jobs", int, where)
        timeouts = require(machine, "timeouts", int, where)
        decided += tightened + certified

        if violations > 0:
            details = machine.get("violation_details") or []
            head = details[0] if details else "(no detail recorded)"
            failures.append(
                f"{name}: {violations} optimality violation(s), "
                f"first: {head}"
            )
        if max_gap < 0:
            failures.append(
                f"{name}: negative gap {max_gap} (exact arm worse "
                "than the heuristic)"
            )
        for gap in (machine.get("gap_histogram") or {}):
            try:
                if int(gap) < 0:
                    failures.append(
                        f"{name}: gap_histogram has negative gap {gap}"
                    )
            except ValueError:
                failures.append(
                    f"{name}: gap_histogram key {gap!r} is not an "
                    "integer"
                )
        print(
            f"{name}: {jobs} loops, {tightened} tightened "
            f"(max gap {max_gap}), {certified} certified, "
            f"{timeouts} timeouts, {violations} violations"
        )

    if decided == 0:
        failures.append(
            "exact arm decided zero loops (no tightened, no "
            "certified); the audit is vacuous"
        )
    if timeout_fraction > args.max_timeout_fraction:
        failures.append(
            f"timeout fraction {timeout_fraction:.4f} exceeds "
            f"ceiling {args.max_timeout_fraction:.4f}"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"exact gap gate: OK ({data['loops']} loops, "
            f"timeout fraction {timeout_fraction:.4f})"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
