/**
 * @file
 * cams_fuzz -- the randomized stress harness of the compile pipeline.
 *
 * Generates random loops x random machine descriptions, compiles the
 * lot through the batch engine with fault injection enabled, and
 * checks the robustness contract on every outcome:
 *
 *   - a success must carry a schedule the independent verifier
 *     re-approves (the oracle), with FailureKind::None;
 *   - a failure must carry a classified FailureKind;
 *   - nothing may crash, abort, or hang (per-job deadlines bound
 *     runaway searches; the CI job runs this under ASan/UBSan).
 *
 * Two deterministic job classes spice the sweep: every 16th job runs
 * with scheduler-slot denial at probability 1 so the degradation
 * ladder must rescue it, and every 31st job runs with a microscopic
 * deadline and no fallback so Timeout classification is exercised.
 *
 * Everything is a pure function of --seed; a failing job reproduces
 * exactly. Outcome counts per FailureKind land in BENCH_stress.json.
 *
 * Usage:
 *   cams_fuzz [--iters N] [--seed S] [--jobs N] [--fault P]
 *             [--deadline-ms D] [--max-nodes N] [--out FILE]
 *             [--trace FILE] [--trace-level L] [--metrics FILE]
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "machine/configs.hh"
#include "pipeline/batch.hh"
#include "pipeline/cache/compile_cache.hh"
#include "pipeline/driver.hh"
#include "sched/verifier.hh"
#include "support/metrics.hh"
#include "support/random.hh"
#include "support/threadpool.hh"
#include "support/trace.hh"
#include "workload/generator.hh"

namespace
{

using namespace cams;

int
usage()
{
    std::cerr
        << "usage: cams_fuzz [--iters N] [--seed S] [--jobs N]\n"
           "                 [--fault P] [--deadline-ms D]\n"
           "                 [--max-nodes N] [--out FILE]\n"
           "  --iters N        jobs to generate (default 200)\n"
           "  --seed S         master seed; everything derives from "
           "it (default 1)\n"
           "  --jobs N         batch worker threads\n"
           "  --fault P        per-site fault probability ceiling "
           "(default 0.25)\n"
           "  --deadline-ms D  per-job wall-clock budget "
           "(default 5000)\n"
           "  --max-nodes N    loop size ceiling (default 48)\n"
           "  --out FILE       stats JSON (default "
           "BENCH_stress.json)\n"
           "  --trace FILE     write a Chrome trace-event JSON\n"
           "  --trace-level L  phase (default) or decision\n"
           "  --metrics FILE   write the metrics registry as JSON\n"
           "  --cache-dir DIR  persistent compile cache directory "
           "(fault-injected jobs bypass it)\n"
           "  --cache MODE     off, ro or rw (default rw with "
           "--cache-dir)\n"
           "  --backend KIND   heuristic (default), exact, or race;\n"
           "                   race stresses the SAT arm against the "
           "oracle too\n";
    return 2;
}

/** Random machine: GP/FS/grid shapes plus a bus-starved variant. */
MachineDesc
randomMachine(Rng &rng)
{
    switch (rng.uniformInt(0, 3)) {
      case 0:
        return busedGpMachine(rng.uniformInt(2, 4), rng.uniformInt(1, 4),
                              rng.uniformInt(1, 2));
      case 1:
        return busedFsMachine(rng.uniformInt(2, 4), rng.uniformInt(1, 4),
                              rng.uniformInt(1, 2));
      case 2:
        return gridMachine(rng.uniformInt(1, 2));
      default:
        // Deliberately starved interconnect: one bus, one port.
        return busedGpMachine(rng.uniformInt(2, 4), 1, 1);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    int iters = 200;
    uint64_t seed = 1;
    int jobs = ThreadPool::defaultThreads();
    double fault_max = 0.25;
    double deadline_ms = 5000.0;
    int max_nodes = 48;
    std::string out_path = "BENCH_stress.json";
    std::string trace_path;
    std::string metrics_path;
    std::string cache_dir;
    CacheMode cache_mode = CacheMode::ReadWrite;
    TraceLevel trace_level = TraceLevel::Phase;
    CompileBackend backend = CompileBackend::Heuristic;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--iters" && value) {
            iters = std::atoi(value);
            ++i;
        } else if (arg == "--seed" && value) {
            seed = std::strtoull(value, nullptr, 0);
            ++i;
        } else if (arg == "--jobs" && value) {
            jobs = std::atoi(value);
            ++i;
        } else if (arg == "--fault" && value) {
            fault_max = std::atof(value);
            ++i;
        } else if (arg == "--deadline-ms" && value) {
            deadline_ms = std::atof(value);
            ++i;
        } else if (arg == "--max-nodes" && value) {
            max_nodes = std::atoi(value);
            ++i;
        } else if (arg == "--out" && value) {
            out_path = value;
            ++i;
        } else if (arg == "--trace" && value) {
            trace_path = value;
            ++i;
        } else if (arg == "--trace-level" && value) {
            if (!parseTraceLevel(value, trace_level))
                return usage();
            ++i;
        } else if (arg == "--metrics" && value) {
            metrics_path = value;
            ++i;
        } else if (arg == "--cache-dir" && value) {
            cache_dir = value;
            ++i;
        } else if (arg == "--cache" && value) {
            if (!parseCacheMode(value, cache_mode))
                return usage();
            ++i;
        } else if (arg == "--backend" && value) {
            if (!parseCompileBackend(value, backend))
                return usage();
            ++i;
        } else {
            return usage();
        }
    }
    if (iters <= 0 || jobs <= 0 || max_nodes < 2 || fault_max < 0.0 ||
        fault_max > 1.0) {
        return usage();
    }

    // Stable storage: jobs keep pointers into these.
    std::vector<Dfg> loops;
    std::vector<MachineDesc> machines;
    loops.reserve(iters);
    machines.reserve(iters);
    std::vector<CompileJob> batch_jobs;
    batch_jobs.reserve(iters);

    GeneratorParams params;
    params.maxNodes = max_nodes;
    params.sccLoopProbability = 0.35; // recurrences stress assignment

    for (int i = 0; i < iters; ++i) {
        // One private stream per job: any subset of jobs reproduces.
        Rng rng(seed + 0x9e3779b97f4a7c15ULL * (uint64_t(i) + 1));
        machines.push_back(randomMachine(rng));
        loops.push_back(generateLoop(
            rng.next(), params, "fuzz_" + std::to_string(i)));

        FaultConfig faults;
        faults.seed = rng.next();
        for (int site = 0; site < numFaultSites; ++site)
            faults.probability[site] = rng.uniformReal() * fault_max;

        CompileJob job;
        job.loop = &loops.back();
        job.machine = &machines.back();
        job.clustered = true;
        job.options.verify = true;
        job.options.backend = backend;
        job.options.trace.tag = "fuzz_" + std::to_string(i);
        if (i % 16 == 7) {
            // Guaranteed scheduler denial: the primary search cannot
            // succeed, so the degradation ladder must rescue the job.
            faults.probability[int(FaultSite::SchedulerSlotDeny)] = 1.0;
        }
        if (i % 31 == 11) {
            // Timeout classification: microscopic budget, no rescue.
            job.options.fallback = false;
            job.options.timeBudgetMs = 0.0001;
        }
        job.options.faults = std::make_shared<FaultInjector>(faults);
        batch_jobs.push_back(std::move(job));
    }

    std::unique_ptr<TraceSink> sink;
    if (!trace_path.empty()) {
        sink = std::make_unique<TraceSink>(trace_level);
        for (CompileJob &job : batch_jobs)
            job.options.trace.sink = sink.get();
    }

    // Exercises the cache under concurrent fuzz traffic. Jobs whose
    // injector can trip bypass it by design, so with --fault 0 the
    // cache serves everything and with faults on it mostly tests the
    // bypass; either way the oracle below re-verifies every success.
    std::unique_ptr<CompileCache> cache;
    if (!cache_dir.empty() && cache_mode != CacheMode::Off) {
        cache = std::make_unique<CompileCache>(cache_dir, cache_mode);
        if (!cache->enabled()) {
            std::cerr << "warning: " << cache->openError()
                      << "; continuing uncached\n";
            cache.reset();
        } else {
            for (CompileJob &job : batch_jobs)
                job.options.cache = cache.get();
        }
    }

    std::cerr << "cams_fuzz: " << iters << " jobs (seed " << seed
              << ", fault ceiling " << fault_max << ", " << jobs
              << " threads)..." << std::endl;
    MetricsRegistry registry;
    const BatchOutcome outcome =
        BatchRunner::run(batch_jobs, jobs, deadline_ms, &registry);

    // Oracle pass: every outcome is a verified schedule or a
    // classified failure.
    int violations = 0;
    int degraded_exhaustive = 0;
    int degraded_single = 0;
    for (int i = 0; i < iters; ++i) {
        const CompileResult &result = outcome.results[i];
        if (result.success) {
            if (result.failure != FailureKind::None) {
                std::cerr << "VIOLATION job " << i
                          << ": success with failure kind "
                          << failureKindName(result.failure) << "\n";
                ++violations;
            }
            const ResourceModel model(machines[i]);
            std::string why;
            if (!verifySchedule(result.loop, model, result.schedule,
                                &why)) {
                std::cerr << "VIOLATION job " << i
                          << ": oracle rejected the schedule: " << why
                          << "\n";
                ++violations;
            }
            if (result.degraded == DegradeLevel::ExhaustiveAssign)
                ++degraded_exhaustive;
            if (result.degraded == DegradeLevel::SingleCluster)
                ++degraded_single;
        } else {
            if (result.failure == FailureKind::None) {
                std::cerr << "VIOLATION job " << i
                          << ": failure without classification\n";
                ++violations;
            }
            if (result.failureDetail.empty()) {
                std::cerr << "VIOLATION job " << i
                          << ": failure without detail\n";
                ++violations;
            }
        }
    }

    const BatchStats &stats = outcome.stats;
    std::cout << "fuzz: " << stats.jobs << " jobs, " << stats.succeeded
              << " ok (" << degraded_exhaustive << " exhaustive + "
              << degraded_single << " single-cluster degraded), "
              << stats.failed << " classified failures, "
              << stats.faultTrips << " fault trips, "
              << stats.invariantRecoveries << " invariant recoveries, "
              << violations << " violations\n";
    std::cout << "failure kinds: ";
    for (int kind = 1; kind < numFailureKinds; ++kind) {
        std::cout << failureKindName(FailureKind(kind)) << "="
                  << stats.failuresByKind[kind]
                  << (kind + 1 < numFailureKinds ? " " : "\n");
    }

    std::ofstream json(out_path);
    json << "{\"bench\":\"cams_fuzz\","
         << "\"iters\":" << iters << ","
         << "\"seed\":" << seed << ","
         << "\"jobs\":" << jobs << ","
         << "\"fault_ceiling\":" << fault_max << ","
         << "\"deadline_ms\":" << deadline_ms << ","
         << "\"violations\":" << violations << ","
         << "\"degraded_exhaustive\":" << degraded_exhaustive << ","
         << "\"degraded_single_cluster\":" << degraded_single << ","
         << "\"stats\":" << stats.toJson() << "}\n";
    std::cout << out_path << " written\n";
    if (sink) {
        if (!sink->writeFile(trace_path)) {
            std::cerr << "cannot write " << trace_path << "\n";
            return 1;
        }
        std::cout << trace_path << " written (" << sink->eventCount()
                  << " events, " << sink->laneCount() << " lanes)\n";
    }
    if (!metrics_path.empty()) {
        if (cache)
            cache->publish(registry);
        std::ofstream metrics_out(metrics_path);
        if (!metrics_out) {
            std::cerr << "cannot write " << metrics_path << "\n";
            return 1;
        }
        metrics_out << registry.toJson() << "\n";
        std::cout << metrics_path << " written\n";
    }
    return violations == 0 ? 0 : 1;
}
