/**
 * @file
 * cams_top -- top(1) for a running camsd.
 *
 * Connects to a daemon's socket on a dedicated monitoring
 * connection, polls StatsRequest on an interval, and renders a
 * refreshing table: per-window throughput, compile/queue latency
 * p50/p99, queue depth, shed and cache-hit rates, and the per-tenant
 * breakdown. Throughput is derived from cumulative counter deltas
 * between consecutive polls, so it is exact over the poll interval
 * rather than smeared by the server's 10 s windows.
 *
 * One-shot modes for scripts and scrapers:
 *   --json    print one stats snapshot as JSON and exit
 *   --prom    print one snapshot as Prometheus text exposition
 *   --health  print the Health probe as one line; exit 0 iff "ok"
 *
 * Usage:
 *   cams_top --socket PATH [--tenant T] [--interval-ms N]
 *            [--count N] [--json | --prom | --health]
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "pipeline/serve/client.hh"
#include "pipeline/serve/stats_text.hh"
#include "support/str.hh"
#include "support/time.hh"

namespace
{

using namespace cams;

int
usage()
{
    std::cerr
        << "usage: cams_top --socket PATH [options]\n"
           "  --socket PATH     camsd Unix-domain socket (required)\n"
           "  --tenant T        tenant id for the monitoring "
           "connection (default 'top')\n"
           "  --interval-ms N   poll interval (default 1000)\n"
           "  --count N         exit after N refreshes (default: "
           "until killed)\n"
           "  --json            print one JSON snapshot and exit\n"
           "  --prom            print one Prometheus exposition "
           "snapshot and exit\n"
           "  --health          print the health probe; exit 0 iff "
           "status is ok\n";
    return 2;
}

const StatsCounter *
counterOf(const StatsReplyMsg &msg, const std::string &name)
{
    for (const StatsCounter &counter : msg.counters)
        if (counter.name == name)
            return &counter;
    return nullptr;
}

int64_t
totalOf(const StatsReplyMsg &msg, const std::string &name)
{
    const StatsCounter *counter = counterOf(msg, name);
    return counter ? counter->total : 0;
}

const StatsHistogram *
histogramOf(const StatsReplyMsg &msg, const std::string &name)
{
    for (const StatsHistogram &histogram : msg.histograms)
        if (histogram.name == name)
            return &histogram;
    return nullptr;
}

void
renderTable(const StatsReplyMsg &now, const StatsReplyMsg *prev,
            double intervalSeconds)
{
    // Home the cursor and clear below instead of a full clear: no
    // flicker, and scrollback stays usable.
    std::cout << "\x1b[H\x1b[J";
    std::cout << "camsd " << (now.draining ? "DRAINING" : "up") << " "
              << static_cast<long>(now.uptimeSeconds) << "s  queue "
              << now.queueDepth << "/" << now.queueCapacity
              << "  in-flight " << now.inFlight << "/" << now.workers
              << " workers\n\n";

    const auto rate = [&](const std::string &name) -> double {
        if (!prev || intervalSeconds <= 0.0)
            return 0.0;
        return static_cast<double>(totalOf(now, name) -
                                   totalOf(*prev, name)) /
               intervalSeconds;
    };
    const int64_t compiled = totalOf(now, "serve.compiled");
    const int64_t hits = totalOf(now, "serve.cache_hits");
    const int64_t shed = totalOf(now, "serve.shed_full") +
                         totalOf(now, "serve.shed_draining");
    std::cout << "throughput " << formatFixed(rate("serve.completed"), 1)
              << "/s  shed " << formatFixed(rate("serve.shed_full"), 1)
              << "/s (total " << shed << ")  cache "
              << (compiled > 0 ? static_cast<long>(
                                     100.0 *
                                     static_cast<double>(hits) /
                                     static_cast<double>(compiled))
                               : 0)
              << "%\n\n";

    std::cout << "histogram              window    count      p50      "
                 "p90      p99      max\n";
    for (const char *name :
         {"serve.queue_ms", "serve.compile_ms", "serve.queue_depth"}) {
        const StatsHistogram *histogram = histogramOf(now, name);
        if (!histogram)
            continue;
        const auto row = [&](const char *window,
                             const HistogramSummary &s) {
            std::cout << "  " << name;
            for (size_t pad = std::string(name).size(); pad < 19;
                 ++pad)
                std::cout << ' ';
            std::cout << "  " << window << "  ";
            std::string count = std::to_string(s.count);
            for (size_t pad = count.size(); pad < 7; ++pad)
                std::cout << ' ';
            std::cout << count;
            for (const double v : {s.p50, s.p90, s.p99, s.max}) {
                std::string cell = formatFixed(v, 1);
                for (size_t pad = cell.size(); pad < 9; ++pad)
                    std::cout << ' ';
                std::cout << cell;
            }
            std::cout << "\n";
        };
        row("   1m ", histogram->last1m);
        row("total ", histogram->total);
    }

    if (!now.tenants.empty()) {
        std::cout << "\ntenant            submitted  completed     "
                     "shed  cache-hits\n";
        for (const TenantStats &tenant : now.tenants) {
            std::cout << "  " << tenant.tenant;
            for (size_t pad = tenant.tenant.size(); pad < 16; ++pad)
                std::cout << ' ';
            for (const int64_t v :
                 {tenant.submitted, tenant.completed, tenant.shed,
                  tenant.cacheHits}) {
                std::string cell = std::to_string(v);
                for (size_t pad = cell.size(); pad < 11; ++pad)
                    std::cout << ' ';
                std::cout << cell;
            }
            std::cout << "\n";
        }
    }
    std::cout.flush();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string tenant = "top";
    int interval_ms = 1000;
    long count = -1;
    bool json_once = false;
    bool prom_once = false;
    bool health_once = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        const size_t eq = arg.find('=');
        if (eq != std::string::npos && arg.rfind("--", 0) == 0) {
            inline_value = arg.substr(eq + 1);
            arg.resize(eq);
        }
        auto next = [&]() -> const char * {
            if (!inline_value.empty())
                return inline_value.c_str();
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--socket") {
            const char *value = next();
            if (!value)
                return usage();
            socket_path = value;
        } else if (arg == "--tenant") {
            const char *value = next();
            if (!value)
                return usage();
            tenant = value;
        } else if (arg == "--interval-ms") {
            const char *value = next();
            if (!value || std::atoi(value) <= 0)
                return usage();
            interval_ms = std::atoi(value);
        } else if (arg == "--count") {
            const char *value = next();
            if (!value || std::atol(value) <= 0)
                return usage();
            count = std::atol(value);
        } else if (arg == "--json") {
            json_once = true;
        } else if (arg == "--prom") {
            prom_once = true;
        } else if (arg == "--health") {
            health_once = true;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return usage();
        }
    }
    if (socket_path.empty() ||
        (json_once + prom_once + health_once) > 1)
        return usage();

    ServeClient client;
    std::string error;
    client.setReadTimeoutMs(5000.0);
    if (!client.connect(socket_path, tenant, error)) {
        std::cerr << "cams_top: cannot connect to " << socket_path
                  << ": " << error << "\n";
        return 1;
    }

    if (health_once) {
        HealthReplyMsg health;
        if (!client.health(health, error)) {
            std::cerr << "cams_top: health poll failed: " << error
                      << "\n";
            return 1;
        }
        std::cout << "status " << health.status << " uptime "
                  << formatFixed(health.uptimeSeconds, 1)
                  << "s queue " << health.queueDepth << "/"
                  << health.queueCapacity << " in-flight "
                  << health.inFlight << " proto v" << health.version
                  << "\n";
        return health.status == "ok" ? 0 : 1;
    }

    if (json_once || prom_once) {
        StatsReplyMsg stats;
        if (!client.stats(stats, error)) {
            std::cerr << "cams_top: stats poll failed: " << error
                      << "\n";
            return 1;
        }
        std::cout << (json_once ? renderStatsJson(stats)
                                : renderPrometheus(stats))
                  << "\n";
        return 0;
    }

    StatsReplyMsg prev;
    bool havePrev = false;
    int64_t prevMicros = 0;
    for (long i = 0; count < 0 || i < count; ++i) {
        StatsReplyMsg stats;
        if (!client.stats(stats, error)) {
            std::cerr << "cams_top: stats poll failed: " << error
                      << "\n";
            return 1;
        }
        const int64_t now = nowMicros();
        const double interval =
            havePrev
                ? static_cast<double>(now - prevMicros) / 1e6
                : 0.0;
        renderTable(stats, havePrev ? &prev : nullptr, interval);
        prev = std::move(stats);
        prevMicros = now;
        havePrev = true;
        if (count < 0 || i + 1 < count)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(interval_ms));
    }
    return 0;
}
