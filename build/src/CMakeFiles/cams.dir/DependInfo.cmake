
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assign/assigner.cc" "src/CMakeFiles/cams.dir/assign/assigner.cc.o" "gcc" "src/CMakeFiles/cams.dir/assign/assigner.cc.o.d"
  "/root/repo/src/assign/assignment.cc" "src/CMakeFiles/cams.dir/assign/assignment.cc.o" "gcc" "src/CMakeFiles/cams.dir/assign/assignment.cc.o.d"
  "/root/repo/src/assign/exhaustive.cc" "src/CMakeFiles/cams.dir/assign/exhaustive.cc.o" "gcc" "src/CMakeFiles/cams.dir/assign/exhaustive.cc.o.d"
  "/root/repo/src/assign/router.cc" "src/CMakeFiles/cams.dir/assign/router.cc.o" "gcc" "src/CMakeFiles/cams.dir/assign/router.cc.o.d"
  "/root/repo/src/assign/selector.cc" "src/CMakeFiles/cams.dir/assign/selector.cc.o" "gcc" "src/CMakeFiles/cams.dir/assign/selector.cc.o.d"
  "/root/repo/src/codegen/emit.cc" "src/CMakeFiles/cams.dir/codegen/emit.cc.o" "gcc" "src/CMakeFiles/cams.dir/codegen/emit.cc.o.d"
  "/root/repo/src/frontend/parser.cc" "src/CMakeFiles/cams.dir/frontend/parser.cc.o" "gcc" "src/CMakeFiles/cams.dir/frontend/parser.cc.o.d"
  "/root/repo/src/graph/analysis.cc" "src/CMakeFiles/cams.dir/graph/analysis.cc.o" "gcc" "src/CMakeFiles/cams.dir/graph/analysis.cc.o.d"
  "/root/repo/src/graph/builder.cc" "src/CMakeFiles/cams.dir/graph/builder.cc.o" "gcc" "src/CMakeFiles/cams.dir/graph/builder.cc.o.d"
  "/root/repo/src/graph/dfg.cc" "src/CMakeFiles/cams.dir/graph/dfg.cc.o" "gcc" "src/CMakeFiles/cams.dir/graph/dfg.cc.o.d"
  "/root/repo/src/graph/dot.cc" "src/CMakeFiles/cams.dir/graph/dot.cc.o" "gcc" "src/CMakeFiles/cams.dir/graph/dot.cc.o.d"
  "/root/repo/src/graph/opcode.cc" "src/CMakeFiles/cams.dir/graph/opcode.cc.o" "gcc" "src/CMakeFiles/cams.dir/graph/opcode.cc.o.d"
  "/root/repo/src/graph/recmii.cc" "src/CMakeFiles/cams.dir/graph/recmii.cc.o" "gcc" "src/CMakeFiles/cams.dir/graph/recmii.cc.o.d"
  "/root/repo/src/graph/scc.cc" "src/CMakeFiles/cams.dir/graph/scc.cc.o" "gcc" "src/CMakeFiles/cams.dir/graph/scc.cc.o.d"
  "/root/repo/src/graph/textio.cc" "src/CMakeFiles/cams.dir/graph/textio.cc.o" "gcc" "src/CMakeFiles/cams.dir/graph/textio.cc.o.d"
  "/root/repo/src/machine/configs.cc" "src/CMakeFiles/cams.dir/machine/configs.cc.o" "gcc" "src/CMakeFiles/cams.dir/machine/configs.cc.o.d"
  "/root/repo/src/machine/machine.cc" "src/CMakeFiles/cams.dir/machine/machine.cc.o" "gcc" "src/CMakeFiles/cams.dir/machine/machine.cc.o.d"
  "/root/repo/src/machine/machinetext.cc" "src/CMakeFiles/cams.dir/machine/machinetext.cc.o" "gcc" "src/CMakeFiles/cams.dir/machine/machinetext.cc.o.d"
  "/root/repo/src/mrt/mrt.cc" "src/CMakeFiles/cams.dir/mrt/mrt.cc.o" "gcc" "src/CMakeFiles/cams.dir/mrt/mrt.cc.o.d"
  "/root/repo/src/order/scc_sets.cc" "src/CMakeFiles/cams.dir/order/scc_sets.cc.o" "gcc" "src/CMakeFiles/cams.dir/order/scc_sets.cc.o.d"
  "/root/repo/src/order/swing_order.cc" "src/CMakeFiles/cams.dir/order/swing_order.cc.o" "gcc" "src/CMakeFiles/cams.dir/order/swing_order.cc.o.d"
  "/root/repo/src/pipeline/driver.cc" "src/CMakeFiles/cams.dir/pipeline/driver.cc.o" "gcc" "src/CMakeFiles/cams.dir/pipeline/driver.cc.o.d"
  "/root/repo/src/regalloc/regalloc.cc" "src/CMakeFiles/cams.dir/regalloc/regalloc.cc.o" "gcc" "src/CMakeFiles/cams.dir/regalloc/regalloc.cc.o.d"
  "/root/repo/src/report/deviation.cc" "src/CMakeFiles/cams.dir/report/deviation.cc.o" "gcc" "src/CMakeFiles/cams.dir/report/deviation.cc.o.d"
  "/root/repo/src/report/interconnect.cc" "src/CMakeFiles/cams.dir/report/interconnect.cc.o" "gcc" "src/CMakeFiles/cams.dir/report/interconnect.cc.o.d"
  "/root/repo/src/report/table.cc" "src/CMakeFiles/cams.dir/report/table.cc.o" "gcc" "src/CMakeFiles/cams.dir/report/table.cc.o.d"
  "/root/repo/src/sched/ims.cc" "src/CMakeFiles/cams.dir/sched/ims.cc.o" "gcc" "src/CMakeFiles/cams.dir/sched/ims.cc.o.d"
  "/root/repo/src/sched/mii.cc" "src/CMakeFiles/cams.dir/sched/mii.cc.o" "gcc" "src/CMakeFiles/cams.dir/sched/mii.cc.o.d"
  "/root/repo/src/sched/regmetrics.cc" "src/CMakeFiles/cams.dir/sched/regmetrics.cc.o" "gcc" "src/CMakeFiles/cams.dir/sched/regmetrics.cc.o.d"
  "/root/repo/src/sched/schedule.cc" "src/CMakeFiles/cams.dir/sched/schedule.cc.o" "gcc" "src/CMakeFiles/cams.dir/sched/schedule.cc.o.d"
  "/root/repo/src/sched/sms.cc" "src/CMakeFiles/cams.dir/sched/sms.cc.o" "gcc" "src/CMakeFiles/cams.dir/sched/sms.cc.o.d"
  "/root/repo/src/sched/stage.cc" "src/CMakeFiles/cams.dir/sched/stage.cc.o" "gcc" "src/CMakeFiles/cams.dir/sched/stage.cc.o.d"
  "/root/repo/src/sched/verifier.cc" "src/CMakeFiles/cams.dir/sched/verifier.cc.o" "gcc" "src/CMakeFiles/cams.dir/sched/verifier.cc.o.d"
  "/root/repo/src/sim/compare.cc" "src/CMakeFiles/cams.dir/sim/compare.cc.o" "gcc" "src/CMakeFiles/cams.dir/sim/compare.cc.o.d"
  "/root/repo/src/sim/reference.cc" "src/CMakeFiles/cams.dir/sim/reference.cc.o" "gcc" "src/CMakeFiles/cams.dir/sim/reference.cc.o.d"
  "/root/repo/src/sim/semantics.cc" "src/CMakeFiles/cams.dir/sim/semantics.cc.o" "gcc" "src/CMakeFiles/cams.dir/sim/semantics.cc.o.d"
  "/root/repo/src/sim/vliw.cc" "src/CMakeFiles/cams.dir/sim/vliw.cc.o" "gcc" "src/CMakeFiles/cams.dir/sim/vliw.cc.o.d"
  "/root/repo/src/support/logging.cc" "src/CMakeFiles/cams.dir/support/logging.cc.o" "gcc" "src/CMakeFiles/cams.dir/support/logging.cc.o.d"
  "/root/repo/src/support/random.cc" "src/CMakeFiles/cams.dir/support/random.cc.o" "gcc" "src/CMakeFiles/cams.dir/support/random.cc.o.d"
  "/root/repo/src/support/stats.cc" "src/CMakeFiles/cams.dir/support/stats.cc.o" "gcc" "src/CMakeFiles/cams.dir/support/stats.cc.o.d"
  "/root/repo/src/support/str.cc" "src/CMakeFiles/cams.dir/support/str.cc.o" "gcc" "src/CMakeFiles/cams.dir/support/str.cc.o.d"
  "/root/repo/src/transform/unroll.cc" "src/CMakeFiles/cams.dir/transform/unroll.cc.o" "gcc" "src/CMakeFiles/cams.dir/transform/unroll.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/cams.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/cams.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/kernels.cc" "src/CMakeFiles/cams.dir/workload/kernels.cc.o" "gcc" "src/CMakeFiles/cams.dir/workload/kernels.cc.o.d"
  "/root/repo/src/workload/suite.cc" "src/CMakeFiles/cams.dir/workload/suite.cc.o" "gcc" "src/CMakeFiles/cams.dir/workload/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
