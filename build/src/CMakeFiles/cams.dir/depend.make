# Empty dependencies file for cams.
# This may be replaced when dependencies are built.
