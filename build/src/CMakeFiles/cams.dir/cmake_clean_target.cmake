file(REMOVE_RECURSE
  "libcams.a"
)
