file(REMOVE_RECURSE
  "CMakeFiles/example_livermore_pipeline.dir/livermore_pipeline.cpp.o"
  "CMakeFiles/example_livermore_pipeline.dir/livermore_pipeline.cpp.o.d"
  "livermore_pipeline"
  "livermore_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_livermore_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
