# Empty dependencies file for example_livermore_pipeline.
# This may be replaced when dependencies are built.
