file(REMOVE_RECURSE
  "CMakeFiles/example_grid_machine.dir/grid_machine.cpp.o"
  "CMakeFiles/example_grid_machine.dir/grid_machine.cpp.o.d"
  "grid_machine"
  "grid_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_grid_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
