# Empty compiler generated dependencies file for example_grid_machine.
# This may be replaced when dependencies are built.
