file(REMOVE_RECURSE
  "CMakeFiles/example_frontend_compile.dir/frontend_compile.cpp.o"
  "CMakeFiles/example_frontend_compile.dir/frontend_compile.cpp.o.d"
  "frontend_compile"
  "frontend_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_frontend_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
