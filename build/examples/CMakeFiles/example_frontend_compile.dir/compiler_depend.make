# Empty compiler generated dependencies file for example_frontend_compile.
# This may be replaced when dependencies are built.
