file(REMOVE_RECURSE
  "CMakeFiles/assign_test.dir/assign_test.cc.o"
  "CMakeFiles/assign_test.dir/assign_test.cc.o.d"
  "assign_test"
  "assign_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
