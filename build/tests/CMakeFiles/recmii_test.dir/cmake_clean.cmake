file(REMOVE_RECURSE
  "CMakeFiles/recmii_test.dir/recmii_test.cc.o"
  "CMakeFiles/recmii_test.dir/recmii_test.cc.o.d"
  "recmii_test"
  "recmii_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recmii_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
