# Empty dependencies file for recmii_test.
# This may be replaced when dependencies are built.
