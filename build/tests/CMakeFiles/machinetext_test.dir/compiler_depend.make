# Empty compiler generated dependencies file for machinetext_test.
# This may be replaced when dependencies are built.
