file(REMOVE_RECURSE
  "CMakeFiles/machinetext_test.dir/machinetext_test.cc.o"
  "CMakeFiles/machinetext_test.dir/machinetext_test.cc.o.d"
  "machinetext_test"
  "machinetext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machinetext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
