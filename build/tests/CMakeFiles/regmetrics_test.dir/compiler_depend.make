# Empty compiler generated dependencies file for regmetrics_test.
# This may be replaced when dependencies are built.
