file(REMOVE_RECURSE
  "CMakeFiles/regmetrics_test.dir/regmetrics_test.cc.o"
  "CMakeFiles/regmetrics_test.dir/regmetrics_test.cc.o.d"
  "regmetrics_test"
  "regmetrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regmetrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
