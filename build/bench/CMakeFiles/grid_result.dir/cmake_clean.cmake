file(REMOVE_RECURSE
  "CMakeFiles/grid_result.dir/grid_result.cpp.o"
  "CMakeFiles/grid_result.dir/grid_result.cpp.o.d"
  "grid_result"
  "grid_result.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_result.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
