# Empty dependencies file for grid_result.
# This may be replaced when dependencies are built.
