file(REMOVE_RECURSE
  "CMakeFiles/ablation_registers.dir/ablation_registers.cpp.o"
  "CMakeFiles/ablation_registers.dir/ablation_registers.cpp.o.d"
  "ablation_registers"
  "ablation_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
