file(REMOVE_RECURSE
  "CMakeFiles/related_bug.dir/related_bug.cpp.o"
  "CMakeFiles/related_bug.dir/related_bug.cpp.o.d"
  "related_bug"
  "related_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
