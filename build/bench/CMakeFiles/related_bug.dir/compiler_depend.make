# Empty compiler generated dependencies file for related_bug.
# This may be replaced when dependencies are built.
