# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig19_buses_4c_fs.
