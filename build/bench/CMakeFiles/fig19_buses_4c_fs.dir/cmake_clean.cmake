file(REMOVE_RECURSE
  "CMakeFiles/fig19_buses_4c_fs.dir/fig19_buses_4c_fs.cpp.o"
  "CMakeFiles/fig19_buses_4c_fs.dir/fig19_buses_4c_fs.cpp.o.d"
  "fig19_buses_4c_fs"
  "fig19_buses_4c_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_buses_4c_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
