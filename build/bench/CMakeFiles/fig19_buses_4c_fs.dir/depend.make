# Empty dependencies file for fig19_buses_4c_fs.
# This may be replaced when dependencies are built.
