file(REMOVE_RECURSE
  "CMakeFiles/fig15_ports_2c.dir/fig15_ports_2c.cpp.o"
  "CMakeFiles/fig15_ports_2c.dir/fig15_ports_2c.cpp.o.d"
  "fig15_ports_2c"
  "fig15_ports_2c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ports_2c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
