# Empty compiler generated dependencies file for fig15_ports_2c.
# This may be replaced when dependencies are built.
