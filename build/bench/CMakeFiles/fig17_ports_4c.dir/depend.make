# Empty dependencies file for fig17_ports_4c.
# This may be replaced when dependencies are built.
