file(REMOVE_RECURSE
  "CMakeFiles/fig17_ports_4c.dir/fig17_ports_4c.cpp.o"
  "CMakeFiles/fig17_ports_4c.dir/fig17_ports_4c.cpp.o.d"
  "fig17_ports_4c"
  "fig17_ports_4c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_ports_4c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
