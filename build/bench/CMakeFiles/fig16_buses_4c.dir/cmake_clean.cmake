file(REMOVE_RECURSE
  "CMakeFiles/fig16_buses_4c.dir/fig16_buses_4c.cpp.o"
  "CMakeFiles/fig16_buses_4c.dir/fig16_buses_4c.cpp.o.d"
  "fig16_buses_4c"
  "fig16_buses_4c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_buses_4c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
