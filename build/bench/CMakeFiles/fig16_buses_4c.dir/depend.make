# Empty dependencies file for fig16_buses_4c.
# This may be replaced when dependencies are built.
