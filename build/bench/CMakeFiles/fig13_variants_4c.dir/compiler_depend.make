# Empty compiler generated dependencies file for fig13_variants_4c.
# This may be replaced when dependencies are built.
