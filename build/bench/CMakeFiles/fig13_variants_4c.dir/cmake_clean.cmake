file(REMOVE_RECURSE
  "CMakeFiles/fig13_variants_4c.dir/fig13_variants_4c.cpp.o"
  "CMakeFiles/fig13_variants_4c.dir/fig13_variants_4c.cpp.o.d"
  "fig13_variants_4c"
  "fig13_variants_4c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_variants_4c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
