file(REMOVE_RECURSE
  "CMakeFiles/table2_latencies.dir/table2_latencies.cpp.o"
  "CMakeFiles/table2_latencies.dir/table2_latencies.cpp.o.d"
  "table2_latencies"
  "table2_latencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_latencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
