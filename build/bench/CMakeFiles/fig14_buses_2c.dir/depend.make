# Empty dependencies file for fig14_buses_2c.
# This may be replaced when dependencies are built.
