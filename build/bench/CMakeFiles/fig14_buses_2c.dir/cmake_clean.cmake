file(REMOVE_RECURSE
  "CMakeFiles/fig14_buses_2c.dir/fig14_buses_2c.cpp.o"
  "CMakeFiles/fig14_buses_2c.dir/fig14_buses_2c.cpp.o.d"
  "fig14_buses_2c"
  "fig14_buses_2c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_buses_2c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
