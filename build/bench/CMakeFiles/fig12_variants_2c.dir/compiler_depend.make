# Empty compiler generated dependencies file for fig12_variants_2c.
# This may be replaced when dependencies are built.
