file(REMOVE_RECURSE
  "CMakeFiles/fig12_variants_2c.dir/fig12_variants_2c.cpp.o"
  "CMakeFiles/fig12_variants_2c.dir/fig12_variants_2c.cpp.o.d"
  "fig12_variants_2c"
  "fig12_variants_2c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_variants_2c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
