# Empty compiler generated dependencies file for table1_loop_stats.
# This may be replaced when dependencies are built.
