file(REMOVE_RECURSE
  "CMakeFiles/interconnect_utilization.dir/interconnect_utilization.cpp.o"
  "CMakeFiles/interconnect_utilization.dir/interconnect_utilization.cpp.o.d"
  "interconnect_utilization"
  "interconnect_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
