# Empty compiler generated dependencies file for interconnect_utilization.
# This may be replaced when dependencies are built.
