# Empty dependencies file for ablation_assign.
# This may be replaced when dependencies are built.
