file(REMOVE_RECURSE
  "CMakeFiles/ablation_assign.dir/ablation_assign.cpp.o"
  "CMakeFiles/ablation_assign.dir/ablation_assign.cpp.o.d"
  "ablation_assign"
  "ablation_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
