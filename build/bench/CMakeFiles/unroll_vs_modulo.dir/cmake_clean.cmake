file(REMOVE_RECURSE
  "CMakeFiles/unroll_vs_modulo.dir/unroll_vs_modulo.cpp.o"
  "CMakeFiles/unroll_vs_modulo.dir/unroll_vs_modulo.cpp.o.d"
  "unroll_vs_modulo"
  "unroll_vs_modulo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unroll_vs_modulo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
