# Empty compiler generated dependencies file for unroll_vs_modulo.
# This may be replaced when dependencies are built.
