file(REMOVE_RECURSE
  "CMakeFiles/fig18_buses_2c_fs.dir/fig18_buses_2c_fs.cpp.o"
  "CMakeFiles/fig18_buses_2c_fs.dir/fig18_buses_2c_fs.cpp.o.d"
  "fig18_buses_2c_fs"
  "fig18_buses_2c_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_buses_2c_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
