# Empty dependencies file for fig18_buses_2c_fs.
# This may be replaced when dependencies are built.
