# Empty dependencies file for camsc.
# This may be replaced when dependencies are built.
