file(REMOVE_RECURSE
  "CMakeFiles/camsc.dir/camsc.cc.o"
  "CMakeFiles/camsc.dir/camsc.cc.o.d"
  "camsc"
  "camsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
