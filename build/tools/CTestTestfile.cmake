# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(camsc_bused "/root/repo/build/tools/camsc" "--loop" "/root/repo/configs/dot_product.loop" "--machine" "/root/repo/configs/2c-gp.mach" "--simulate" "8" "--asm")
set_tests_properties(camsc_bused PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(camsc_grid "/root/repo/build/tools/camsc" "--loop" "/root/repo/configs/tridiag.loop" "--machine" "/root/repo/configs/4c-grid.mach" "--simulate" "8" "--stage-schedule")
set_tests_properties(camsc_grid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(camsc_fs_ims "/root/repo/build/tools/camsc" "--loop" "/root/repo/configs/tridiag.loop" "--machine" "/root/repo/configs/4c-fs.mach" "--scheduler" "ims" "--simulate" "6" "--dot")
set_tests_properties(camsc_fs_ims PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(camsc_rejects_missing_loop "/root/repo/build/tools/camsc" "--loop" "/nonexistent")
set_tests_properties(camsc_rejects_missing_loop PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(camsc_source_frontend "/root/repo/build/tools/camsc" "--source" "/root/repo/configs/smooth.src" "--machine" "/root/repo/configs/2c-gp.mach" "--simulate" "8")
set_tests_properties(camsc_source_frontend PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
