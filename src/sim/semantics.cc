#include "sim/semantics.hh"

#include "support/logging.hh"

namespace cams
{

namespace
{

SimValue
mix(SimValue h, SimValue x)
{
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
}

} // namespace

SimValue
liveInValue(NodeId node, long iteration)
{
    cams_assert(iteration < 0, "live-in for a computed iteration");
    SimValue h = 0x426c756553656564ULL;
    h = mix(h, static_cast<SimValue>(node));
    h = mix(h, static_cast<SimValue>(-iteration));
    return h;
}

SimValue
applyOp(Opcode op, NodeId node, const std::vector<SimValue> &inputs)
{
    cams_assert(op != Opcode::Copy, "copies forward values; not applied");
    SimValue h = 0x43616d73536930ULL;
    h = mix(h, static_cast<SimValue>(op));
    h = mix(h, static_cast<SimValue>(node));
    for (SimValue input : inputs)
        h = mix(h, input);
    return h;
}

} // namespace cams
