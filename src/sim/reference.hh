/**
 * @file
 * Sequential reference executor: runs the *original* loop graph
 * iteration by iteration under the functional semantics, with no
 * machine model at all. Its value trace is the ground truth the
 * pipelined VLIW simulation must match.
 */

#ifndef CAMS_SIM_REFERENCE_HH
#define CAMS_SIM_REFERENCE_HH

#include <vector>

#include "graph/dfg.hh"
#include "sim/semantics.hh"

namespace cams
{

/** Value trace of a sequential execution. */
class ReferenceTrace
{
  public:
    /**
     * Executes @p iterations iterations of the loop.
     *
     * The graph must not contain copies (it is the pre-assignment
     * loop) and must be well formed; zero-distance dependence cycles
     * are fatal.
     */
    ReferenceTrace(const Dfg &graph, int iterations);

    /** Value produced by a node in an iteration (checked). */
    SimValue value(NodeId node, long iteration) const;

    int iterations() const { return iterations_; }

  private:
    const Dfg &graph_;
    int iterations_;
    /** values_[iter * numNodes + node]. */
    std::vector<SimValue> values_;
};

} // namespace cams

#endif // CAMS_SIM_REFERENCE_HH
