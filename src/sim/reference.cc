#include "sim/reference.hh"

#include <algorithm>

#include "graph/scc.hh"
#include "support/logging.hh"

namespace cams
{

ReferenceTrace::ReferenceTrace(const Dfg &graph, int iterations)
    : graph_(graph), iterations_(iterations)
{
    cams_assert(iterations >= 0, "negative iteration count");
    const int n = graph.numNodes();
    for (const DfgNode &node : graph.nodes()) {
        if (node.op == Opcode::Copy)
            cams_fatal("reference execution of an annotated graph");
    }
    values_.assign(static_cast<size_t>(iterations) * n, 0);

    // Within one iteration, nodes must be evaluated in dependence
    // order over the distance-0 edges (which are acyclic in a
    // well-formed loop). Kahn topological sort on the dist-0 subgraph.
    std::vector<int> pending(n, 0);
    for (const DfgEdge &edge : graph.edges()) {
        if (edge.distance == 0)
            ++pending[edge.dst];
    }
    std::vector<NodeId> topo;
    std::vector<NodeId> ready;
    for (NodeId v = 0; v < n; ++v) {
        if (pending[v] == 0)
            ready.push_back(v);
    }
    while (!ready.empty()) {
        const NodeId v = ready.back();
        ready.pop_back();
        topo.push_back(v);
        for (EdgeId e : graph.outEdges(v)) {
            const DfgEdge &edge = graph.edge(e);
            if (edge.distance == 0 && --pending[edge.dst] == 0)
                ready.push_back(edge.dst);
        }
    }
    if (static_cast<int>(topo.size()) != n)
        cams_fatal("zero-distance dependence cycle in the loop");

    std::vector<SimValue> inputs;
    for (long iter = 0; iter < iterations; ++iter) {
        for (NodeId v : topo) {
            inputs.clear();
            for (EdgeId e : graph.inEdges(v)) {
                const DfgEdge &edge = graph.edge(e);
                const long src_iter = iter - edge.distance;
                inputs.push_back(src_iter < 0
                                     ? liveInValue(edge.src, src_iter)
                                     : value(edge.src, src_iter));
            }
            values_[static_cast<size_t>(iter) * n + v] =
                applyOp(graph.node(v).op, v, inputs);
        }
    }
}

SimValue
ReferenceTrace::value(NodeId node, long iteration) const
{
    cams_assert(node >= 0 && node < graph_.numNodes(), "bad node");
    if (iteration < 0)
        return liveInValue(node, iteration);
    cams_assert(iteration < iterations_, "iteration out of range");
    return values_[static_cast<size_t>(iteration) * graph_.numNodes() +
                   node];
}

} // namespace cams
