#include "sim/vliw.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cams
{

VliwSimulator::VliwSimulator(const AnnotatedLoop &loop,
                             const Schedule &schedule,
                             const MachineDesc &machine)
    : loop_(loop), schedule_(schedule), machine_(machine)
{
    cams_assert(static_cast<int>(schedule.startCycle.size()) ==
                    loop.graph.numNodes(),
                "schedule does not match the loop");
}

VliwRun
VliwSimulator::run(int iterations)
{
    VliwRun result;
    result.iterations = iterations;
    tokens_.clear();

    const Dfg &graph = loop_.graph;
    const int n = graph.numNodes();
    const int ii = schedule_.ii;

    // All dynamic operation instances in issue order. Reads happen at
    // issue and writes strictly later (every latency >= 1), so issue
    // order is a legal simulation order; ties are irrelevant.
    struct Instance
    {
        long issue;
        NodeId node;
        long iteration;
    };
    std::vector<Instance> instances;
    instances.reserve(static_cast<size_t>(n) * iterations);
    for (long k = 0; k < iterations; ++k) {
        for (NodeId v = 0; v < n; ++v) {
            instances.push_back(
                {schedule_.startCycle[v] + k * ii, v, k});
        }
    }
    std::stable_sort(instances.begin(), instances.end(),
                     [](const Instance &a, const Instance &b) {
                         return a.issue < b.issue;
                     });

    auto report = [&](const std::string &message) {
        if (result.errors.size() < 16)
            result.errors.push_back(message);
    };

    // A copy forwards its producer's value, so a live-in read through
    // a copy chain must take the identity of the ultimate original
    // producer, exactly as the sequential loop sees it.
    auto resolveProducer = [&](NodeId v) {
        while (graph.node(v).op == Opcode::Copy) {
            const auto &in = graph.inEdges(v);
            cams_assert(in.size() == 1, "copy with fan-in != 1");
            v = graph.edge(in[0]).src;
        }
        return v;
    };

    long last_completion = 0;
    std::vector<SimValue> inputs;
    for (const Instance &inst : instances) {
        const DfgNode &node = graph.node(inst.node);
        const OpPlacement &place = loop_.placement[inst.node];
        const ClusterId home = place.cluster;

        // Gather inputs, checking presence and timing on this cluster.
        inputs.clear();
        bool inputs_ok = true;
        for (EdgeId e : graph.inEdges(inst.node)) {
            const DfgEdge &edge = graph.edge(e);
            const long src_iter = inst.iteration - edge.distance;
            if (src_iter < 0) {
                // Loop live-ins are preloaded into every register
                // file by the (unmodeled) loop prologue.
                inputs.push_back(
                    liveInValue(resolveProducer(edge.src), src_iter));
                continue;
            }
            auto it = tokens_.find({edge.src, src_iter});
            if (it == tokens_.end()) {
                report(node.name + " iter " +
                       std::to_string(inst.iteration) +
                       " reads a value never produced");
                inputs_ok = false;
                break;
            }
            auto where = it->second.availableAt.find(home);
            if (where == it->second.availableAt.end()) {
                report(node.name + " iter " +
                       std::to_string(inst.iteration) + " on C" +
                       std::to_string(home) + " reads " +
                       graph.node(edge.src).name +
                       " which never reaches that cluster");
                inputs_ok = false;
                break;
            }
            if (where->second > inst.issue) {
                report(node.name + " iter " +
                       std::to_string(inst.iteration) + " at cycle " +
                       std::to_string(inst.issue) + " reads " +
                       graph.node(edge.src).name + " available at " +
                       std::to_string(where->second));
                inputs_ok = false;
                break;
            }
            inputs.push_back(it->second.value);
        }
        if (!inputs_ok)
            continue;

        Token token;
        if (node.op == Opcode::Copy) {
            cams_assert(inputs.size() == 1, "copy with fan-in != 1");
            token.value = inputs[0];
            for (ClusterId dst : place.copyDsts) {
                token.availableAt[dst] = inst.issue + node.latency;
                ++result.transfers;
            }
        } else {
            token.value = applyOp(node.op, inst.node, inputs);
            token.availableAt[home] = inst.issue + node.latency;
        }
        last_completion =
            std::max(last_completion, inst.issue + node.latency);
        tokens_[{inst.node, inst.iteration}] = std::move(token);
    }

    result.cycles = last_completion;
    return result;
}

SimValue
VliwSimulator::value(NodeId node, long iteration) const
{
    if (iteration < 0)
        return liveInValue(node, iteration);
    auto it = tokens_.find({node, iteration});
    cams_assert(it != tokens_.end(), "value(", node, ",", iteration,
                ") was not computed");
    return it->second.value;
}

} // namespace cams
