/**
 * @file
 * Deterministic functional semantics for simulated loop execution.
 *
 * The schedulers only see dependence shapes, so for validating that a
 * software-pipelined schedule computes *the same thing* as the
 * sequential loop we give every operation a concrete, deterministic
 * meaning: the value produced by node v in iteration i is a hash of
 * the opcode, the node id and the values of its dependence inputs
 * (each input being the producer's value from iteration
 * i - distance). Values flowing in from before the first iteration
 * (loop live-ins) are seeded deterministically from (node, iteration).
 *
 * Copies are identity: they transport their input value unchanged.
 * Under these semantics, two executions agree iff every dependence
 * was routed to the right place at the right time -- exactly the
 * property cluster assignment must preserve.
 */

#ifndef CAMS_SIM_SEMANTICS_HH
#define CAMS_SIM_SEMANTICS_HH

#include <cstdint>
#include <vector>

#include "graph/dfg.hh"

namespace cams
{

/** The value domain of the simulators. */
using SimValue = uint64_t;

/** Deterministic live-in value of a node for a pre-loop iteration. */
SimValue liveInValue(NodeId node, long iteration);

/**
 * Applies one operation: mixes the opcode, the node id and the input
 * values (order-sensitive: inputs must be passed in in-edge order).
 * Copy opcodes must not be evaluated here -- they forward their
 * single input unchanged.
 */
SimValue applyOp(Opcode op, NodeId node,
                 const std::vector<SimValue> &inputs);

} // namespace cams

#endif // CAMS_SIM_SEMANTICS_HH
