/**
 * @file
 * Cycle-accurate execution of a modulo schedule on a clustered VLIW.
 *
 * Iteration k of the loop issues operation v at cycle
 * startCycle[v] + k * II. The simulator tracks every produced value
 * as a token that lives in specific clusters' register files from a
 * specific cycle on: an operation writes its token into its own
 * cluster's file after its latency; a copy reads a token from its
 * source cluster and deposits it into its destination clusters one
 * cycle later (multi-hop chains relay tokens across the machine).
 *
 * An operation may only read a token that is present in its own
 * cluster's register file by its issue cycle. Any violation --
 * reading a value that never reached the cluster, or reading it too
 * early -- is recorded as a simulation error. This dynamically
 * validates exactly what cluster assignment promises: all
 * communication is explicit, routed, and on time.
 */

#ifndef CAMS_SIM_VLIW_HH
#define CAMS_SIM_VLIW_HH

#include <map>
#include <string>
#include <vector>

#include "assign/assignment.hh"
#include "sched/schedule.hh"
#include "sim/semantics.hh"

namespace cams
{

/** Result of simulating one pipelined execution. */
struct VliwRun
{
    /** Timing/placement violations found (empty = clean run). */
    std::vector<std::string> errors;

    /** Iterations executed. */
    int iterations = 0;

    /** Total simulated kernel cycles (iterations * II + drain). */
    long cycles = 0;

    /** Inter-cluster value transfers performed. */
    long transfers = 0;

    bool ok() const { return errors.empty(); }
};

/** Executes an annotated loop's schedule for a number of iterations. */
class VliwSimulator
{
  public:
    /** Binds the simulator to one compiled loop. */
    VliwSimulator(const AnnotatedLoop &loop, const Schedule &schedule,
                  const MachineDesc &machine);

    /** Runs the pipeline; value traces are kept for inspection. */
    VliwRun run(int iterations);

    /**
     * Value computed by an (original or copy) node in an iteration of
     * the last run; live-ins for negative iterations.
     */
    SimValue value(NodeId node, long iteration) const;

  private:
    const AnnotatedLoop &loop_;
    const Schedule &schedule_;
    const MachineDesc &machine_;

    /** Where and when a produced value becomes readable. */
    struct Token
    {
        SimValue value = 0;
        /** cluster -> first cycle the value is readable there. */
        std::map<ClusterId, long> availableAt;
    };

    std::map<std::pair<NodeId, long>, Token> tokens_;
};

} // namespace cams

#endif // CAMS_SIM_VLIW_HH
