/**
 * @file
 * End-to-end equivalence harness: compiles nothing itself, but takes
 * a compiled loop (annotated graph + schedule), executes it on the
 * pipelined VLIW simulator, executes the original loop sequentially,
 * and diffs every original operation's value in every iteration.
 */

#ifndef CAMS_SIM_COMPARE_HH
#define CAMS_SIM_COMPARE_HH

#include <string>

#include "assign/assignment.hh"
#include "graph/dfg.hh"
#include "sched/schedule.hh"

namespace cams
{

/** Outcome of one equivalence check. */
struct EquivalenceReport
{
    bool equivalent = false;

    /** First few discrepancies / simulation errors, human readable. */
    std::vector<std::string> mismatches;

    /** Values compared (original nodes x iterations). */
    long comparisons = 0;

    /** Inter-cluster transfers the pipelined run performed. */
    long transfers = 0;
};

/**
 * Runs both executions for the given number of iterations and diffs
 * them. @p original must be the pre-assignment loop the annotated
 * loop was produced from.
 */
EquivalenceReport checkEquivalence(const Dfg &original,
                                   const AnnotatedLoop &loop,
                                   const Schedule &schedule,
                                   const MachineDesc &machine,
                                   int iterations = 8);

} // namespace cams

#endif // CAMS_SIM_COMPARE_HH
