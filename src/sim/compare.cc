#include "sim/compare.hh"

#include "sim/reference.hh"
#include "sim/vliw.hh"
#include "support/logging.hh"

namespace cams
{

EquivalenceReport
checkEquivalence(const Dfg &original, const AnnotatedLoop &loop,
                 const Schedule &schedule, const MachineDesc &machine,
                 int iterations)
{
    cams_assert(loop.numOriginalNodes == original.numNodes(),
                "annotated loop does not match the original");

    EquivalenceReport report;

    VliwSimulator vliw(loop, schedule, machine);
    const VliwRun run = vliw.run(iterations);
    for (const std::string &error : run.errors)
        report.mismatches.push_back("simulation: " + error);
    report.transfers = run.transfers;

    if (!run.ok()) {
        report.equivalent = false;
        return report;
    }

    const ReferenceTrace reference(original, iterations);
    for (long iter = 0; iter < iterations; ++iter) {
        for (NodeId v = 0; v < original.numNodes(); ++v) {
            ++report.comparisons;
            const SimValue expect = reference.value(v, iter);
            const SimValue got = vliw.value(v, iter);
            if (expect != got && report.mismatches.size() < 16) {
                report.mismatches.push_back(
                    original.node(v).name + " iter " +
                    std::to_string(iter) + ": pipelined value differs");
            }
        }
    }
    report.equivalent = report.mismatches.empty();
    return report;
}

} // namespace cams
