#include "sched/stage.hh"

#include <algorithm>
#include <limits>

#include "support/logging.hh"

namespace cams
{

namespace
{

/** Total lifetime with node v hypothetically starting at start_v. */
long
lifetimeContribution(const AnnotatedLoop &loop,
                     const std::vector<long> &start, int ii, NodeId v,
                     long start_v)
{
    const Dfg &graph = loop.graph;
    long total = 0;

    // v's own value: from start_v to its last consumer.
    if (!graph.outEdges(v).empty()) {
        long last = start_v;
        for (EdgeId e : graph.outEdges(v)) {
            const DfgEdge &edge = graph.edge(e);
            const long use =
                (edge.dst == v ? start_v : start[edge.dst]) +
                static_cast<long>(ii) * edge.distance;
            last = std::max(last, use);
        }
        total += last - start_v;
    }

    // Producers for which v is a consumer: moving v can stretch or
    // shrink their lifetimes.
    for (EdgeId e : graph.inEdges(v)) {
        const DfgEdge &edge = graph.edge(e);
        const NodeId u = edge.src;
        if (u == v)
            continue;
        long last = start[u];
        for (EdgeId ue : graph.outEdges(u)) {
            const DfgEdge &out = graph.edge(ue);
            const long use =
                (out.dst == v ? start_v : start[out.dst]) +
                static_cast<long>(ii) * out.distance;
            last = std::max(last, use);
        }
        total += last - start[u];
    }
    return total;
}

long
totalLifetime(const AnnotatedLoop &loop, const std::vector<long> &start,
              int ii)
{
    long total = 0;
    const Dfg &graph = loop.graph;
    for (NodeId v = 0; v < graph.numNodes(); ++v) {
        if (graph.outEdges(v).empty())
            continue;
        long last = start[v];
        for (EdgeId e : graph.outEdges(v)) {
            const DfgEdge &edge = graph.edge(e);
            last = std::max(last, start[edge.dst] +
                                      static_cast<long>(ii) *
                                          edge.distance);
        }
        total += last - start[v];
    }
    return total;
}

} // namespace

StageScheduleResult
stageSchedule(const AnnotatedLoop &loop, const Schedule &schedule,
              int max_passes)
{
    const Dfg &graph = loop.graph;
    const int n = graph.numNodes();
    const int ii = schedule.ii;
    cams_assert(ii > 0, "stage scheduling an empty schedule");

    std::vector<long> start(n);
    for (NodeId v = 0; v < n; ++v)
        start[v] = schedule.startCycle[v];

    StageScheduleResult result;
    result.lifetimeBefore = totalLifetime(loop, start, ii);

    for (int pass = 0; pass < max_passes; ++pass) {
        bool changed = false;
        for (NodeId v = 0; v < n; ++v) {
            // Legal slide range in whole IIs.
            long delta_min = std::numeric_limits<long>::min() / 4;
            long delta_max = std::numeric_limits<long>::max() / 4;
            for (EdgeId e : graph.inEdges(v)) {
                const DfgEdge &edge = graph.edge(e);
                if (edge.src == v)
                    continue;
                const long bound = start[edge.src] + edge.latency -
                                   static_cast<long>(ii) * edge.distance -
                                   start[v];
                // delta * ii >= bound
                const long need =
                    bound <= 0 ? -((-bound) / ii)
                               : (bound + ii - 1) / ii;
                delta_min = std::max(delta_min, need);
            }
            for (EdgeId e : graph.outEdges(v)) {
                const DfgEdge &edge = graph.edge(e);
                if (edge.dst == v)
                    continue;
                const long bound = start[edge.dst] - edge.latency +
                                   static_cast<long>(ii) * edge.distance -
                                   start[v];
                // delta * ii <= bound
                const long cap = bound >= 0 ? bound / ii
                                            : -((-bound + ii - 1) / ii);
                delta_max = std::min(delta_max, cap);
            }
            if (delta_min > delta_max)
                continue; // fully pinned (e.g. inside a recurrence)

            // Pick the lifetime-minimizing slide; ties keep position.
            long best_delta = 0;
            long best_cost = lifetimeContribution(loop, start, ii, v,
                                                  start[v]);
            const long lo = std::max<long>(delta_min, -8);
            const long hi = std::min<long>(delta_max, 8);
            for (long delta = lo; delta <= hi; ++delta) {
                if (delta == 0)
                    continue;
                const long cost = lifetimeContribution(
                    loop, start, ii, v, start[v] + delta * ii);
                if (cost < best_cost) {
                    best_cost = cost;
                    best_delta = delta;
                }
            }
            if (best_delta != 0) {
                start[v] += best_delta * ii;
                ++result.moves;
                changed = true;
            }
        }
        if (!changed)
            break;
    }

    result.lifetimeAfter = totalLifetime(loop, start, ii);
    cams_assert(result.lifetimeAfter <= result.lifetimeBefore,
                "stage scheduling made lifetimes worse");

    result.schedule.ii = ii;
    result.schedule.startCycle.assign(n, 0);
    for (NodeId v = 0; v < n; ++v)
        result.schedule.startCycle[v] = static_cast<int>(start[v]);
    result.schedule.normalize();
    return result;
}

} // namespace cams
