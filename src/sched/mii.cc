#include "sched/mii.hh"

#include <algorithm>
#include <array>

#include "graph/recmii.hh"
#include "support/logging.hh"

namespace cams
{

int
resMii(const Dfg &graph, const MachineDesc &machine)
{
    bool any_gp = false;
    bool any_fs = false;
    for (const ClusterDesc &cluster : machine.clusters) {
        if (cluster.usesGpPool())
            any_gp = true;
        else
            any_fs = true;
    }
    if (any_gp && any_fs) {
        cams_fatal("resMii on a machine mixing GP and FS clusters ('",
                   machine.name, "')");
    }

    std::array<int, numFuClasses> class_ops{};
    int total_ops = 0;
    for (const DfgNode &node : graph.nodes()) {
        if (node.op == Opcode::Copy)
            continue;
        ++class_ops[static_cast<int>(opcodeFuClass(node.op))];
        ++total_ops;
    }

    if (any_gp) {
        const int width = machine.totalWidth();
        cams_assert(width > 0, "machine with zero width");
        return std::max(1, (total_ops + width - 1) / width);
    }

    int bound = 1;
    for (int cls = 0; cls < numFuClasses; ++cls) {
        if (class_ops[cls] == 0)
            continue;
        int units = 0;
        for (int c = 0; c < machine.numClusters(); ++c)
            units += machine.fuCount(c, static_cast<FuClass>(cls));
        if (units == 0) {
            cams_fatal("machine '", machine.name, "' has no ",
                       fuClassName(static_cast<FuClass>(cls)),
                       " units but the loop needs them");
        }
        bound = std::max(bound, (class_ops[cls] + units - 1) / units);
    }
    return bound;
}

MiiInfo
computeMii(const Dfg &graph, const MachineDesc &machine)
{
    return computeMii(graph, machine, recMii(graph));
}

MiiInfo
computeMii(const Dfg &graph, const MachineDesc &machine,
           int knownRecMii)
{
    MiiInfo info;
    info.recMii = knownRecMii;
    info.resMii = resMii(graph, machine);
    info.mii = std::max(info.recMii, info.resMii);
    return info;
}

} // namespace cams
