/**
 * @file
 * Minimum initiation interval bounds.
 *
 * MII = max(RecMII, ResMII). RecMII comes from the dependence cycles
 * (see graph/recmii.hh); ResMII from resource saturation: on a
 * general-purpose machine it is ceil(ops / issue width), on a
 * fully-specialized machine the max over unit classes of
 * ceil(class ops / class units). Following the paper's Section 2.2,
 * the assignment phase starts from the MII of the *equally wide
 * unified machine*; cluster-induced pressure surfaces as assignment
 * or scheduling failures that bump the II.
 */

#ifndef CAMS_SCHED_MII_HH
#define CAMS_SCHED_MII_HH

#include "graph/dfg.hh"
#include "machine/machine.hh"

namespace cams
{

/** The II lower bounds of one loop on one machine. */
struct MiiInfo
{
    int recMii = 1;
    int resMii = 1;
    int mii = 1;
};

/**
 * Resource-constrained bound of the loop on the machine, evaluated on
 * the machine's total unit counts (clustering ignored). Copy nodes
 * are excluded: they occupy no function unit.
 */
int resMii(const Dfg &graph, const MachineDesc &machine);

/** Both bounds and their max. */
MiiInfo computeMii(const Dfg &graph, const MachineDesc &machine);

/** Both bounds and their max, reusing an already-computed RecMII. */
MiiInfo computeMii(const Dfg &graph, const MachineDesc &machine,
                   int knownRecMii);

} // namespace cams

#endif // CAMS_SCHED_MII_HH
