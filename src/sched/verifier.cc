#include "sched/verifier.hh"

#include "mrt/mrt.hh"
#include "support/logging.hh"

namespace cams
{

bool
verifySchedule(const AnnotatedLoop &loop, const ResourceModel &model,
               const Schedule &schedule, std::string *why)
{
    auto fail = [&](const std::string &message) {
        if (why)
            *why = message;
        return false;
    };

    if (schedule.ii <= 0)
        return fail("non-positive II");
    if (static_cast<int>(schedule.startCycle.size()) !=
        loop.graph.numNodes()) {
        return fail("schedule size mismatch");
    }

    std::string reason;
    if (!loop.validate(model.machine(), &reason))
        return fail("bad annotation: " + reason);

    for (const DfgEdge &edge : loop.graph.edges()) {
        const long lhs = schedule.startCycle[edge.dst];
        const long rhs = schedule.startCycle[edge.src] + edge.latency -
                         static_cast<long>(schedule.ii) * edge.distance;
        if (lhs < rhs) {
            return fail("dependence violated: " +
                        loop.graph.node(edge.src).name + " -> " +
                        loop.graph.node(edge.dst).name);
        }
    }

    Mrt mrt(model, schedule.ii);
    for (NodeId v = 0; v < loop.graph.numNodes(); ++v) {
        const auto request = loop.request(model, v);
        const int row = schedule.row(v);
        if (!mrt.canReserveAt(request, row)) {
            return fail("resource overflow at row " + std::to_string(row) +
                        " for " + loop.graph.node(v).name);
        }
        mrt.reserveAt(request, row);
    }

    if (why)
        why->clear();
    return true;
}

} // namespace cams
