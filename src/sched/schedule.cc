#include "sched/schedule.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"

namespace cams
{

namespace
{

int
floorDiv(int a, int b)
{
    return a >= 0 ? a / b : -((-a + b - 1) / b);
}

int
floorMod(int a, int b)
{
    return a - floorDiv(a, b) * b;
}

} // namespace

void
ModuloScheduler::traceAttempt(int ii, bool success, long slotConflicts,
                              long ejections) const
{
    if (!trace_.active(TraceLevel::Decision))
        return;
    TraceArgs args = {
        {"scheduler", name()},
        {"ii", std::to_string(ii)},
        {"success", success ? "true" : "false"},
        {"slot_conflicts", std::to_string(slotConflicts)},
        {"ejections", std::to_string(ejections)},
    };
    if (!trace_.tag.empty())
        args.emplace_back("job", trace_.tag);
    trace_.sink->instant("sched_attempt", "sched", std::move(args));
}

Mrt &
ModuloScheduler::scratchMrt(const ResourceModel &model, int ii) const
{
    scratch_.reset(model, ii);
    scratch_.setScanMode(scanMode_);
    return scratch_;
}

int
Schedule::row(NodeId node) const
{
    cams_assert(ii > 0, "row() on an empty schedule");
    return floorMod(startCycle[node], ii);
}

int
Schedule::stage(NodeId node) const
{
    cams_assert(ii > 0, "stage() on an empty schedule");
    return floorDiv(startCycle[node], ii);
}

int
Schedule::stageCount() const
{
    int max_stage = 0;
    for (size_t v = 0; v < startCycle.size(); ++v)
        max_stage = std::max(max_stage, stage(static_cast<NodeId>(v)));
    return max_stage + 1;
}

int
Schedule::length(const Dfg &graph) const
{
    int length = 0;
    for (NodeId v = 0; v < graph.numNodes(); ++v)
        length = std::max(length, startCycle[v] + graph.node(v).latency);
    return length;
}

void
Schedule::normalize()
{
    if (startCycle.empty())
        return;
    const int min_start =
        *std::min_element(startCycle.begin(), startCycle.end());
    const int shift = -floorDiv(min_start, ii) * ii;
    for (int &start : startCycle)
        start += shift;
}

std::string
Schedule::dump(const AnnotatedLoop &loop) const
{
    std::ostringstream os;
    os << "II=" << ii << " stages=" << stageCount() << "\n";
    for (int r = 0; r < ii; ++r) {
        os << "  row " << r << ":";
        for (NodeId v = 0; v < loop.graph.numNodes(); ++v) {
            if (row(v) == r) {
                os << " " << loop.graph.node(v).name << "@"
                   << startCycle[v] << "(C" << loop.placement[v].cluster
                   << ")";
            }
        }
        os << "\n";
    }
    return os.str();
}

} // namespace cams
