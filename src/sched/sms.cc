#include "sched/sms.hh"

#include <algorithm>
#include <limits>
#include <set>

#include "graph/analysis.hh"
#include "graph/recmii.hh"
#include "mrt/mrt.hh"
#include "order/swing_order.hh"
#include "support/logging.hh"

namespace cams
{

bool
SwingModuloScheduler::schedule(const AnnotatedLoop &loop,
                               const ResourceModel &model, int ii,
                               Schedule &out) const
{
    const Dfg &graph = loop.graph;
    const int n = graph.numNodes();
    if (n == 0) {
        out.ii = ii;
        out.startCycle.clear();
        return true;
    }
    if (recMii(graph) > ii)
        return false;

    const TimeAnalysis timing = analyzeTiming(graph, ii);
    const std::vector<NodeId> order = swingOrder(graph, ii);
    std::vector<int> rank(n, 0);
    for (size_t i = 0; i < order.size(); ++i)
        rank[order[i]] = static_cast<int>(i);

    // Work list in swing-order priority. The iterative variant the
    // paper uses (an "iterative version of the swing modulo
    // scheduler") ejects conflicting operations instead of failing
    // outright; a budget bounds total placements.
    auto prior = [&](NodeId a, NodeId b) { return rank[a] < rank[b]; };
    std::set<NodeId, decltype(prior)> worklist(prior);
    for (NodeId v = 0; v < n; ++v)
        worklist.insert(v);

    std::vector<bool> placed(n, false);
    std::vector<long> start(n, 0);
    std::vector<long> lastStart(n, std::numeric_limits<long>::min());
    std::vector<Reservation> slots(n);
    std::vector<std::vector<PoolId>> requests(n);
    for (NodeId v = 0; v < n; ++v)
        requests[v] = loop.request(model, v);

    Mrt mrt(model, ii);
    long budget = std::max<long>(32, 8L * n);
    constexpr long kNone = std::numeric_limits<long>::min();
    long slot_conflicts = 0;
    long ejections = 0;

    auto rowOf = [&](long t) {
        return static_cast<int>(((t % ii) + ii) % ii);
    };
    auto unschedule = [&](NodeId v) {
        mrt.release(slots[v]);
        placed[v] = false;
        worklist.insert(v);
        ++ejections;
    };

    while (!worklist.empty()) {
        if (budget-- <= 0) {
            traceAttempt(ii, false, slot_conflicts, ejections);
            return false;
        }
        const NodeId op = *worklist.begin();
        worklist.erase(worklist.begin());

        // Windows anchored to the already placed neighbors.
        long early = kNone;
        for (EdgeId e : graph.inEdges(op)) {
            const DfgEdge &edge = graph.edge(e);
            if (edge.src == op || !placed[edge.src])
                continue;
            early = std::max(early,
                             start[edge.src] + edge.latency -
                                 static_cast<long>(ii) * edge.distance);
        }
        long late = kNone;
        for (EdgeId e : graph.outEdges(op)) {
            const DfgEdge &edge = graph.edge(e);
            if (edge.dst == op || !placed[edge.dst])
                continue;
            const long bound = start[edge.dst] - edge.latency +
                               static_cast<long>(ii) * edge.distance;
            late = (late == kNone) ? bound : std::min(late, bound);
        }

        long chosen = kNone;
        if (early != kNone && late != kNone && late >= early) {
            for (long t = early; t <= std::min(late, early + ii - 1);
                 ++t) {
                if (mrt.canReserveAt(requests[op], rowOf(t))) {
                    chosen = t;
                    break;
                }
            }
        } else if (early != kNone && late == kNone) {
            for (long t = early; t < early + ii; ++t) {
                if (mrt.canReserveAt(requests[op], rowOf(t))) {
                    chosen = t;
                    break;
                }
            }
        } else if (early == kNone && late != kNone) {
            for (long t = late; t > late - ii; --t) {
                if (mrt.canReserveAt(requests[op], rowOf(t))) {
                    chosen = t;
                    break;
                }
            }
        } else if (early == kNone && late == kNone) {
            const long base = timing.asap[op];
            for (long t = base; t < base + ii; ++t) {
                if (mrt.canReserveAt(requests[op], rowOf(t))) {
                    chosen = t;
                    break;
                }
            }
        }

        if (chosen == kNone) {
            // Forced placement with ejection. Never repeat the
            // previous spot so the schedule makes progress.
            ++slot_conflicts;
            long t = early != kNone
                         ? early
                         : (late != kNone
                                ? late
                                : static_cast<long>(timing.asap[op]));
            if (lastStart[op] != kNone && t <= lastStart[op])
                t = lastStart[op] + 1;
            const int row = rowOf(t);
            bool progress = true;
            while (!mrt.canReserveAt(requests[op], row) && progress) {
                progress = false;
                // Eject the lowest-priority blocking op in that row.
                NodeId victim = invalidNode;
                for (NodeId other = 0; other < n; ++other) {
                    if (!placed[other] || slots[other].row != row)
                        continue;
                    const bool shares = std::any_of(
                        requests[op].begin(), requests[op].end(),
                        [&](PoolId pool) {
                            return std::find(slots[other].pools.begin(),
                                             slots[other].pools.end(),
                                             pool) !=
                                   slots[other].pools.end();
                        });
                    if (shares && (victim == invalidNode ||
                                   rank[other] > rank[victim])) {
                        victim = other;
                    }
                }
                if (victim != invalidNode) {
                    unschedule(victim);
                    progress = true;
                }
            }
            if (!mrt.canReserveAt(requests[op], row)) {
                // The op needs more than the row can ever hold.
                traceAttempt(ii, false, slot_conflicts, ejections);
                return false;
            }
            chosen = t;
        }

        slots[op] = mrt.reserveAt(requests[op], rowOf(chosen));
        start[op] = chosen;
        lastStart[op] = chosen;
        placed[op] = true;

        // Eject neighbors whose dependence the new start violates.
        for (EdgeId e : graph.outEdges(op)) {
            const DfgEdge &edge = graph.edge(e);
            if (edge.dst == op || !placed[edge.dst])
                continue;
            if (start[edge.dst] <
                start[op] + edge.latency -
                    static_cast<long>(ii) * edge.distance) {
                unschedule(edge.dst);
            }
        }
        for (EdgeId e : graph.inEdges(op)) {
            const DfgEdge &edge = graph.edge(e);
            if (edge.src == op || !placed[edge.src])
                continue;
            if (start[op] < start[edge.src] + edge.latency -
                                static_cast<long>(ii) * edge.distance) {
                unschedule(edge.src);
            }
        }
    }

    out.ii = ii;
    out.startCycle.assign(n, 0);
    for (NodeId v = 0; v < n; ++v)
        out.startCycle[v] = static_cast<int>(start[v]);
    out.normalize();
    traceAttempt(ii, true, slot_conflicts, ejections);
    return true;
}

} // namespace cams
