#include "sched/sms.hh"

#include <algorithm>
#include <limits>
#include <optional>
#include <set>

#include "graph/analysis.hh"
#include "graph/recmii.hh"
#include "mrt/mrt.hh"
#include "order/swing_order.hh"
#include "pipeline/context.hh"
#include "support/logging.hh"

namespace cams
{

bool
SwingModuloScheduler::schedule(const AnnotatedLoop &loop,
                               const ResourceModel &model, int ii,
                               Schedule &out, LoopContext *ctx) const
{
    const Dfg &graph = loop.graph;
    const int n = graph.numNodes();
    if (n == 0) {
        out.ii = ii;
        out.startCycle.clear();
        return true;
    }
    if (ctx ? !ctx->schedulableAt(ii) : recMii(graph) > ii)
        return false;

    std::optional<TimeAnalysis> local_timing;
    const TimeAnalysis &timing =
        ctx ? ctx->timing(ii)
            : local_timing.emplace(analyzeTiming(graph, ii));
    std::optional<std::vector<NodeId>> local_order;
    const std::vector<NodeId> &order =
        ctx ? ctx->swingOrder(ii)
            : local_order.emplace(swingOrder(graph, ii));
    std::vector<int> rank(n, 0);
    for (size_t i = 0; i < order.size(); ++i)
        rank[order[i]] = static_cast<int>(i);

    // Work list in swing-order priority. The iterative variant the
    // paper uses (an "iterative version of the swing modulo
    // scheduler") ejects conflicting operations instead of failing
    // outright; a budget bounds total placements.
    //
    // With a context the tree set is replaced by a rank-indexed
    // bitmap with a moving minimum cursor: pops and ejection
    // re-inserts become allocation-free, and the pop order (lowest
    // rank first, i.e. order[r]) is identical.
    const Adjacency *adj = ctx ? &ctx->adjacency() : nullptr;
    auto prior = [&](NodeId a, NodeId b) { return rank[a] < rank[b]; };
    std::set<NodeId, decltype(prior)> worklist(prior);
    std::vector<char> pendingRank;
    int minRank = 0;
    int npending = 0;
    if (adj) {
        pendingRank.assign(n, 1);
        npending = n;
    } else {
        for (NodeId v = 0; v < n; ++v)
            worklist.insert(v);
    }
    auto wlEmpty = [&] { return adj ? npending == 0 : worklist.empty(); };
    auto wlPop = [&]() -> NodeId {
        if (adj) {
            while (!pendingRank[minRank])
                ++minRank;
            pendingRank[minRank] = 0;
            --npending;
            return order[minRank];
        }
        const NodeId v = *worklist.begin();
        worklist.erase(worklist.begin());
        return v;
    };
    auto wlInsert = [&](NodeId v) {
        if (adj) {
            const int r = rank[v];
            if (!pendingRank[r]) {
                pendingRank[r] = 1;
                ++npending;
            }
            minRank = std::min(minRank, r);
        } else {
            worklist.insert(v);
        }
    };

    std::vector<bool> placed(n, false);
    std::vector<long> start(n, 0);
    std::vector<long> lastStart(n, std::numeric_limits<long>::min());
    std::vector<Reservation> slots(n);
    std::optional<std::vector<std::vector<PoolId>>> local_requests;
    if (!ctx) {
        local_requests.emplace(n);
        for (NodeId v = 0; v < n; ++v)
            (*local_requests)[v] = loop.request(model, v);
    }
    const std::vector<std::vector<PoolId>> &requests =
        ctx ? ctx->requests(loop, model) : *local_requests;

    Mrt &mrt = scratchMrt(model, ii);
    long budget = std::max<long>(32, 8L * n);
    constexpr long kNone = std::numeric_limits<long>::min();
    long slot_conflicts = 0;
    long ejections = 0;

    auto rowOf = [&](long t) {
        return static_cast<int>(((t % ii) + ii) % ii);
    };
    auto unschedule = [&](NodeId v) {
        mrt.release(slots[v]);
        placed[v] = false;
        wlInsert(v);
        ++ejections;
    };

    while (!wlEmpty()) {
        if (budget-- <= 0) {
            traceAttempt(ii, false, slot_conflicts, ejections);
            return false;
        }
        const NodeId op = wlPop();

        // Windows anchored to the already placed neighbors. The
        // adjacency branch reads the same edges as flat records.
        long early = kNone;
        long late = kNone;
        if (adj) {
            for (const AdjEdge &edge : adj->inEdges(op)) {
                if (edge.node == op || !placed[edge.node])
                    continue;
                early = std::max(early,
                                 start[edge.node] + edge.latency -
                                     static_cast<long>(ii) *
                                         edge.distance);
            }
            for (const AdjEdge &edge : adj->outEdges(op)) {
                if (edge.node == op || !placed[edge.node])
                    continue;
                const long bound = start[edge.node] - edge.latency +
                                   static_cast<long>(ii) *
                                       edge.distance;
                late = (late == kNone) ? bound : std::min(late, bound);
            }
        } else {
            for (EdgeId e : graph.inEdges(op)) {
                const DfgEdge &edge = graph.edge(e);
                if (edge.src == op || !placed[edge.src])
                    continue;
                early = std::max(early,
                                 start[edge.src] + edge.latency -
                                     static_cast<long>(ii) *
                                         edge.distance);
            }
            for (EdgeId e : graph.outEdges(op)) {
                const DfgEdge &edge = graph.edge(e);
                if (edge.dst == op || !placed[edge.dst])
                    continue;
                const long bound = start[edge.dst] - edge.latency +
                                   static_cast<long>(ii) *
                                       edge.distance;
                late = (late == kNone) ? bound : std::min(late, bound);
            }
        }

        // Window scans, as cyclic first-fit row scans (identical row
        // order to walking the cycles one by one).
        long chosen = kNone;
        if (early != kNone && late != kNone && late >= early) {
            const int width = static_cast<int>(
                std::min(late, early + ii - 1) - early + 1);
            const int fit =
                mrt.scanRows(requests[op], rowOf(early), width, 1);
            if (fit >= 0)
                chosen = early + fit;
        } else if (early != kNone && late == kNone) {
            const int fit =
                mrt.scanRows(requests[op], rowOf(early), ii, 1);
            if (fit >= 0)
                chosen = early + fit;
        } else if (early == kNone && late != kNone) {
            const int fit =
                mrt.scanRows(requests[op], rowOf(late), ii, -1);
            if (fit >= 0)
                chosen = late - fit;
        } else if (early == kNone && late == kNone) {
            const long base = timing.asap[op];
            const int fit =
                mrt.scanRows(requests[op], rowOf(base), ii, 1);
            if (fit >= 0)
                chosen = base + fit;
        }

        if (chosen == kNone) {
            // Forced placement with ejection. Never repeat the
            // previous spot so the schedule makes progress.
            ++slot_conflicts;
            long t = early != kNone
                         ? early
                         : (late != kNone
                                ? late
                                : static_cast<long>(timing.asap[op]));
            if (lastStart[op] != kNone && t <= lastStart[op])
                t = lastStart[op] + 1;
            const int row = rowOf(t);
            bool progress = true;
            while (!mrt.canReserveAt(requests[op], row) && progress) {
                progress = false;
                // Eject the lowest-priority blocking op in that row.
                NodeId victim = invalidNode;
                for (NodeId other = 0; other < n; ++other) {
                    if (!placed[other] || slots[other].row != row)
                        continue;
                    const bool shares = std::any_of(
                        requests[op].begin(), requests[op].end(),
                        [&](PoolId pool) {
                            return std::find(slots[other].pools.begin(),
                                             slots[other].pools.end(),
                                             pool) !=
                                   slots[other].pools.end();
                        });
                    if (shares && (victim == invalidNode ||
                                   rank[other] > rank[victim])) {
                        victim = other;
                    }
                }
                if (victim != invalidNode) {
                    unschedule(victim);
                    progress = true;
                }
            }
            if (!mrt.canReserveAt(requests[op], row)) {
                // The op needs more than the row can ever hold.
                traceAttempt(ii, false, slot_conflicts, ejections);
                return false;
            }
            chosen = t;
        }

        if (adj)
            mrt.reserveAtInto(requests[op], rowOf(chosen), slots[op]);
        else
            slots[op] = mrt.reserveAt(requests[op], rowOf(chosen));
        start[op] = chosen;
        lastStart[op] = chosen;
        placed[op] = true;

        // Eject neighbors whose dependence the new start violates.
        if (adj) {
            for (const AdjEdge &edge : adj->outEdges(op)) {
                if (edge.node == op || !placed[edge.node])
                    continue;
                if (start[edge.node] <
                    start[op] + edge.latency -
                        static_cast<long>(ii) * edge.distance) {
                    unschedule(edge.node);
                }
            }
            for (const AdjEdge &edge : adj->inEdges(op)) {
                if (edge.node == op || !placed[edge.node])
                    continue;
                if (start[op] <
                    start[edge.node] + edge.latency -
                        static_cast<long>(ii) * edge.distance) {
                    unschedule(edge.node);
                }
            }
        } else {
            for (EdgeId e : graph.outEdges(op)) {
                const DfgEdge &edge = graph.edge(e);
                if (edge.dst == op || !placed[edge.dst])
                    continue;
                if (start[edge.dst] <
                    start[op] + edge.latency -
                        static_cast<long>(ii) * edge.distance) {
                    unschedule(edge.dst);
                }
            }
            for (EdgeId e : graph.inEdges(op)) {
                const DfgEdge &edge = graph.edge(e);
                if (edge.src == op || !placed[edge.src])
                    continue;
                if (start[op] <
                    start[edge.src] + edge.latency -
                        static_cast<long>(ii) * edge.distance) {
                    unschedule(edge.src);
                }
            }
        }
    }

    out.ii = ii;
    out.startCycle.assign(n, 0);
    for (NodeId v = 0; v < n; ++v)
        out.startCycle[v] = static_cast<int>(start[v]);
    out.normalize();
    traceAttempt(ii, true, slot_conflicts, ejections);
    return true;
}

} // namespace cams
