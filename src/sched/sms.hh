/**
 * @file
 * Swing Modulo Scheduling (Llosa, Gonzalez, Ayguade, Valero;
 * PACT 1996) -- the phase-two scheduler the paper uses.
 *
 * Nodes are taken in the swing order (order/swing_order.hh). Each
 * node scans an II-wide window anchored to its already scheduled
 * neighbors: forward from the predecessors' bound, backward from the
 * successors' bound, or both-bounded when it has scheduled neighbors
 * on each side. This is the *iterative* variant the paper schedules
 * with: when no slot fits, the operation is force-placed and the
 * conflicting operations (resource clashes, violated dependences) are
 * ejected back onto the work list, under a budget; exhausting the
 * budget fails the II and the driver retries at II + 1.
 */

#ifndef CAMS_SCHED_SMS_HH
#define CAMS_SCHED_SMS_HH

#include "sched/schedule.hh"

namespace cams
{

/** The swing modulo scheduler. */
class SwingModuloScheduler : public ModuloScheduler
{
  public:
    using ModuloScheduler::schedule;

    bool schedule(const AnnotatedLoop &loop, const ResourceModel &model,
                  int ii, Schedule &out,
                  LoopContext *ctx) const override;

    std::string name() const override { return "sms"; }
};

} // namespace cams

#endif // CAMS_SCHED_SMS_HH
