/**
 * @file
 * Iterative Modulo Scheduling (Rau, MICRO-27, 1994).
 *
 * Operations are scheduled highest-height-first. Each operation scans
 * an II-wide window starting at its earliest legal cycle; when no slot
 * fits, it is force-placed and the conflicting operations (resource
 * clashes and violated successors) are displaced back onto the work
 * list. A budget proportional to the operation count bounds the total
 * number of placements; exhausting it fails the II.
 *
 * The scheduler is cluster-oblivious: every operation, copies
 * included, exposes its resource needs through
 * AnnotatedLoop::request(), exactly as the paper's phase split
 * intends.
 */

#ifndef CAMS_SCHED_IMS_HH
#define CAMS_SCHED_IMS_HH

#include "sched/schedule.hh"

namespace cams
{

/** Rau's iterative modulo scheduler. */
class IterativeModuloScheduler : public ModuloScheduler
{
  public:
    /** @param budget_ratio placements allowed per operation. */
    explicit IterativeModuloScheduler(double budget_ratio = 6.0)
        : budgetRatio_(budget_ratio)
    {
    }

    using ModuloScheduler::schedule;

    bool schedule(const AnnotatedLoop &loop, const ResourceModel &model,
                  int ii, Schedule &out,
                  LoopContext *ctx) const override;

    std::string name() const override { return "ims"; }

  private:
    double budgetRatio_;
};

} // namespace cams

#endif // CAMS_SCHED_IMS_HH
