/**
 * @file
 * Independent legality checker for modulo schedules. Used as the
 * oracle in tests and assertions: it re-derives every dependence and
 * resource constraint from scratch instead of trusting the scheduler.
 */

#ifndef CAMS_SCHED_VERIFIER_HH
#define CAMS_SCHED_VERIFIER_HH

#include <string>

#include "assign/assignment.hh"
#include "sched/schedule.hh"

namespace cams
{

/**
 * Verifies a schedule against the annotated loop.
 *
 * Checks:
 *  - every dependence e = (u, v):
 *      start(v) >= start(u) + latency(e) - II * distance(e);
 *  - resources: replaying every operation's resource request into a
 *    fresh MRT at row start mod II never exceeds any pool's capacity;
 *  - the placement annotations themselves (AnnotatedLoop::validate).
 *
 * @param why filled with the first violation found.
 * @return true when the schedule is legal.
 */
bool verifySchedule(const AnnotatedLoop &loop, const ResourceModel &model,
                    const Schedule &schedule, std::string *why = nullptr);

} // namespace cams

#endif // CAMS_SCHED_VERIFIER_HH
