/**
 * @file
 * The modulo schedule produced by phase two: an issue cycle for every
 * operation of an annotated loop at a fixed II. Iteration k of the
 * loop issues operation v at cycle startCycle[v] + k * II.
 */

#ifndef CAMS_SCHED_SCHEDULE_HH
#define CAMS_SCHED_SCHEDULE_HH

#include <string>
#include <vector>

#include "assign/assignment.hh"
#include "support/trace.hh"

namespace cams
{

/** A complete modulo schedule. */
struct Schedule
{
    int ii = 0;

    /** Issue cycle of each node of the annotated graph. */
    std::vector<int> startCycle;

    /** Kernel row of a node: startCycle mod II. */
    int row(NodeId node) const;

    /** Pipeline stage of a node: startCycle div II. */
    int stage(NodeId node) const;

    /** Number of kernel stages (max stage + 1). */
    int stageCount() const;

    /** Makespan of one iteration: max(start + latency). */
    int length(const Dfg &graph) const;

    /**
     * Shifts every start cycle so the earliest is in [0, II), keeping
     * all rows intact (the shift is a multiple of II).
     */
    void normalize();

    /** Human-readable kernel dump (one line per cycle row). */
    std::string dump(const AnnotatedLoop &loop) const;
};

class LoopContext;

/** Common interface so drivers can swap scheduling algorithms. */
class ModuloScheduler
{
  public:
    virtual ~ModuloScheduler() = default;

    /**
     * Attempts to schedule the loop at the given II.
     *
     * A LoopContext bound to loop.graph supplies the cached analyses
     * (feasibility, timing, order, per-node requests); null computes
     * everything from scratch. Results are identical either way.
     * @return true and fills @p out on success.
     */
    virtual bool schedule(const AnnotatedLoop &loop,
                          const ResourceModel &model, int ii,
                          Schedule &out, LoopContext *ctx) const = 0;

    /** Convenience overload: no analysis context. */
    bool
    schedule(const AnnotatedLoop &loop, const ResourceModel &model,
             int ii, Schedule &out) const
    {
        return schedule(loop, model, ii, out, nullptr);
    }

    /** Algorithm name for reports. */
    virtual std::string name() const = 0;

    /**
     * Attaches tracing to subsequent schedule() calls. At
     * TraceLevel::Decision every call emits one "sched_attempt"
     * instant summarizing its slot conflicts and ejections at that
     * II. Off (the default) the schedulers pay nothing.
     */
    void setTrace(TraceConfig trace) { trace_ = std::move(trace); }

    /** MRT query mode for subsequent calls (perf A/B; same results). */
    void setScanMode(MrtScanMode mode) { scanMode_ = mode; }

    /** MRT occupancy words examined across all calls so far. */
    long wordScans() const { return scratch_.wordScans(); }

  protected:
    /** Emits the per-II slot-conflict summary (no-op when off). */
    void traceAttempt(int ii, bool success, long slotConflicts,
                      long ejections) const;

    /**
     * Hands out the reusable reservation table, cleared to the given
     * length and set to the current scan mode. Schedulers run one
     * call at a time, so one table per scheduler suffices.
     */
    Mrt &scratchMrt(const ResourceModel &model, int ii) const;

    TraceConfig trace_;
    MrtScanMode scanMode_ = MrtScanMode::Word;
    /** Reused across schedule() calls; see scratchMrt(). */
    mutable Mrt scratch_;
};

} // namespace cams

#endif // CAMS_SCHED_SCHEDULE_HH
