#include "sched/regmetrics.hh"

#include <algorithm>
#include <vector>

#include "support/logging.hh"

namespace cams
{

RegMetrics
computeRegMetrics(const AnnotatedLoop &loop, const Schedule &schedule)
{
    RegMetrics metrics;
    const Dfg &graph = loop.graph;
    const int ii = schedule.ii;
    cams_assert(ii > 0, "metrics on an empty schedule");

    std::vector<long> live_per_row(ii, 0);

    for (NodeId v = 0; v < graph.numNodes(); ++v) {
        const long def = schedule.startCycle[v];
        long last_use = def;
        for (EdgeId e : graph.outEdges(v)) {
            const DfgEdge &edge = graph.edge(e);
            last_use = std::max(
                last_use, static_cast<long>(schedule.startCycle[edge.dst]) +
                              static_cast<long>(ii) * edge.distance);
        }
        const long lifetime = last_use - def;
        metrics.totalLifetime += lifetime;
        if (lifetime > 0) {
            metrics.mveFactor = std::max(
                metrics.mveFactor,
                static_cast<int>((lifetime + ii - 1) / ii));
        }

        // The value occupies rows def .. last_use - 1 (inclusive),
        // wrapping; full wraps add 1 to every row.
        const long full = lifetime / ii;
        for (int r = 0; r < ii; ++r)
            live_per_row[r] += full;
        const long rem = lifetime % ii;
        for (long t = def; t < def + rem; ++t) {
            const int r = static_cast<int>(((t % ii) + ii) % ii);
            ++live_per_row[r];
        }
    }

    for (int r = 0; r < ii; ++r) {
        metrics.maxLive = std::max(metrics.maxLive,
                                   static_cast<int>(live_per_row[r]));
    }
    return metrics;
}

} // namespace cams
