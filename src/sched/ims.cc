#include "sched/ims.hh"

#include <algorithm>
#include <set>

#include "graph/analysis.hh"
#include "graph/recmii.hh"
#include "mrt/mrt.hh"
#include "support/logging.hh"

namespace cams
{

bool
IterativeModuloScheduler::schedule(const AnnotatedLoop &loop,
                                   const ResourceModel &model, int ii,
                                   Schedule &out) const
{
    const Dfg &graph = loop.graph;
    const int n = graph.numNodes();
    if (n == 0) {
        out.ii = ii;
        out.startCycle.clear();
        return true;
    }
    if (recMii(graph) > ii)
        return false;

    const TimeAnalysis timing = analyzeTiming(graph, ii);

    // Work list ordered by height (descending), then id.
    auto higher = [&](NodeId a, NodeId b) {
        if (timing.height[a] != timing.height[b])
            return timing.height[a] > timing.height[b];
        return a < b;
    };
    std::set<NodeId, decltype(higher)> worklist(higher);
    for (NodeId v = 0; v < n; ++v)
        worklist.insert(v);

    std::vector<bool> placed(n, false);
    std::vector<int> start(n, 0);
    std::vector<int> lastStart(n, -1);
    std::vector<Reservation> slots(n);
    std::vector<std::vector<PoolId>> requests(n);
    for (NodeId v = 0; v < n; ++v)
        requests[v] = loop.request(model, v);

    Mrt mrt(model, ii);
    long budget =
        std::max<long>(32, static_cast<long>(budgetRatio_ * n));
    long slot_conflicts = 0;
    long ejections = 0;

    auto unschedule = [&](NodeId v) {
        cams_assert(placed[v], "displacing unplaced op ", v);
        mrt.release(slots[v]);
        placed[v] = false;
        worklist.insert(v);
        ++ejections;
    };

    while (!worklist.empty()) {
        if (budget-- <= 0) {
            traceAttempt(ii, false, slot_conflicts, ejections);
            return false;
        }
        const NodeId op = *worklist.begin();
        worklist.erase(worklist.begin());

        // Earliest cycle permitted by the currently placed predecessors.
        long estart = 0;
        for (EdgeId e : graph.inEdges(op)) {
            const DfgEdge &edge = graph.edge(e);
            if (edge.src == op || !placed[edge.src])
                continue;
            estart = std::max(estart,
                              start[edge.src] + edge.latency -
                                  static_cast<long>(ii) * edge.distance);
        }
        estart = std::max<long>(estart, 0);

        int chosen = -1;
        for (long t = estart; t < estart + ii; ++t) {
            if (mrt.canReserveAt(requests[op],
                                 static_cast<int>(t % ii))) {
                chosen = static_cast<int>(t);
                break;
            }
        }
        bool forced = false;
        if (chosen < 0) {
            // Forced placement: never earlier than last time + 1 so the
            // schedule makes progress (Rau's rule).
            forced = true;
            ++slot_conflicts;
            chosen = static_cast<int>(
                lastStart[op] < 0
                    ? estart
                    : std::max(estart,
                               static_cast<long>(lastStart[op]) + 1));
        }

        if (forced) {
            // Displace whatever blocks the required row.
            const int row = ((chosen % ii) + ii) % ii;
            bool progress = true;
            while (!mrt.canReserveAt(requests[op], row) && progress) {
                progress = false;
                for (NodeId other = 0; other < n; ++other) {
                    if (!placed[other] || slots[other].row != row)
                        continue;
                    const bool shares = std::any_of(
                        requests[op].begin(), requests[op].end(),
                        [&](PoolId pool) {
                            return std::find(slots[other].pools.begin(),
                                             slots[other].pools.end(),
                                             pool) !=
                                   slots[other].pools.end();
                        });
                    if (shares) {
                        unschedule(other);
                        progress = true;
                        break;
                    }
                }
            }
            if (!mrt.canReserveAt(requests[op], row)) {
                // The op needs more than the row can ever hold.
                traceAttempt(ii, false, slot_conflicts, ejections);
                return false;
            }
        }

        slots[op] = mrt.reserveAt(requests[op], chosen % ii);
        slots[op].row = ((chosen % ii) + ii) % ii;
        start[op] = chosen;
        lastStart[op] = chosen;
        placed[op] = true;

        // Displace successors whose dependence the new start violates
        // (and predecessors, which can only happen on forced moves).
        for (EdgeId e : graph.outEdges(op)) {
            const DfgEdge &edge = graph.edge(e);
            if (edge.dst == op || !placed[edge.dst])
                continue;
            if (start[edge.dst] <
                start[op] + edge.latency -
                    static_cast<long>(ii) * edge.distance) {
                unschedule(edge.dst);
            }
        }
        for (EdgeId e : graph.inEdges(op)) {
            const DfgEdge &edge = graph.edge(e);
            if (edge.src == op || !placed[edge.src])
                continue;
            if (start[op] <
                start[edge.src] + edge.latency -
                    static_cast<long>(ii) * edge.distance) {
                unschedule(edge.src);
            }
        }
    }

    out.ii = ii;
    out.startCycle = start;
    out.normalize();
    traceAttempt(ii, true, slot_conflicts, ejections);
    return true;
}

} // namespace cams
