#include "sched/ims.hh"

#include <algorithm>
#include <limits>
#include <optional>
#include <set>

#include "graph/analysis.hh"
#include "graph/recmii.hh"
#include "mrt/mrt.hh"
#include "pipeline/context.hh"
#include "support/logging.hh"

namespace cams
{

bool
IterativeModuloScheduler::schedule(const AnnotatedLoop &loop,
                                   const ResourceModel &model, int ii,
                                   Schedule &out,
                                   LoopContext *ctx) const
{
    const Dfg &graph = loop.graph;
    const int n = graph.numNodes();
    if (n == 0) {
        out.ii = ii;
        out.startCycle.clear();
        return true;
    }
    if (ctx ? !ctx->schedulableAt(ii) : recMii(graph) > ii)
        return false;

    std::optional<TimeAnalysis> local_timing;
    const TimeAnalysis &timing =
        ctx ? ctx->timing(ii)
            : local_timing.emplace(analyzeTiming(graph, ii));

    // Work list ordered by height (descending), then id. With a
    // context the priority order is materialized once as a
    // permutation and the set becomes a bitmap over priority indices
    // with a moving minimum cursor -- same pop order, no tree
    // rebalance or node allocation per displacement.
    const Adjacency *adj = ctx ? &ctx->adjacency() : nullptr;
    auto higher = [&](NodeId a, NodeId b) {
        if (timing.height[a] != timing.height[b])
            return timing.height[a] > timing.height[b];
        return a < b;
    };
    std::set<NodeId, decltype(higher)> worklist(higher);
    std::vector<NodeId> byPrio;
    std::vector<int> prio;
    std::vector<char> pendingPrio;
    int minPrio = 0;
    int npending = 0;
    if (adj) {
        byPrio.resize(n);
        for (NodeId v = 0; v < n; ++v)
            byPrio[v] = v;
        std::sort(byPrio.begin(), byPrio.end(), higher);
        prio.resize(n);
        for (int i = 0; i < n; ++i)
            prio[byPrio[i]] = i;
        pendingPrio.assign(n, 1);
        npending = n;
    } else {
        for (NodeId v = 0; v < n; ++v)
            worklist.insert(v);
    }
    auto wlEmpty = [&] { return adj ? npending == 0 : worklist.empty(); };
    auto wlPop = [&]() -> NodeId {
        if (adj) {
            while (!pendingPrio[minPrio])
                ++minPrio;
            pendingPrio[minPrio] = 0;
            --npending;
            return byPrio[minPrio];
        }
        const NodeId v = *worklist.begin();
        worklist.erase(worklist.begin());
        return v;
    };
    auto wlInsert = [&](NodeId v) {
        if (adj) {
            const int p = prio[v];
            if (!pendingPrio[p]) {
                pendingPrio[p] = 1;
                ++npending;
            }
            minPrio = std::min(minPrio, p);
        } else {
            worklist.insert(v);
        }
    };

    std::vector<bool> placed(n, false);
    std::vector<int> start(n, 0);
    std::vector<int> lastStart(n, -1);
    std::vector<Reservation> slots(n);
    std::optional<std::vector<std::vector<PoolId>>> local_requests;
    if (!ctx) {
        local_requests.emplace(n);
        for (NodeId v = 0; v < n; ++v)
            (*local_requests)[v] = loop.request(model, v);
    }
    const std::vector<std::vector<PoolId>> &requests =
        ctx ? ctx->requests(loop, model) : *local_requests;

    Mrt &mrt = scratchMrt(model, ii);
    long budget =
        std::max<long>(32, static_cast<long>(budgetRatio_ * n));
    long slot_conflicts = 0;
    long ejections = 0;

    auto unschedule = [&](NodeId v) {
        cams_assert(placed[v], "displacing unplaced op ", v);
        mrt.release(slots[v]);
        placed[v] = false;
        wlInsert(v);
        ++ejections;
    };

    while (!wlEmpty()) {
        if (budget-- <= 0) {
            traceAttempt(ii, false, slot_conflicts, ejections);
            return false;
        }
        const NodeId op = wlPop();

        // Earliest cycle permitted by the currently placed
        // predecessors. The per-edge bound is widened for the
        // intermediate product, then range-checked into int once: all
        // start-cycle math below stays int.
        long estart_wide = 0;
        if (adj) {
            for (const AdjEdge &edge : adj->inEdges(op)) {
                if (edge.node == op || !placed[edge.node])
                    continue;
                estart_wide = std::max(
                    estart_wide,
                    start[edge.node] + edge.latency -
                        static_cast<long>(ii) * edge.distance);
            }
        } else {
            for (EdgeId e : graph.inEdges(op)) {
                const DfgEdge &edge = graph.edge(e);
                if (edge.src == op || !placed[edge.src])
                    continue;
                estart_wide = std::max(
                    estart_wide,
                    start[edge.src] + edge.latency -
                        static_cast<long>(ii) * edge.distance);
            }
        }
        estart_wide = std::max<long>(estart_wide, 0);
        cams_assert(estart_wide <=
                        std::numeric_limits<int>::max() - 2L * ii,
                    "start-cycle overflow at II ", ii);
        const int estart = static_cast<int>(estart_wide);

        // First fit in the II-wide window from estart (same row
        // sequence as scanning cycle by cycle).
        int chosen = -1;
        const int fit = mrt.scanRows(requests[op], estart % ii, ii, 1);
        if (fit >= 0)
            chosen = estart + fit;
        bool forced = false;
        if (chosen < 0) {
            // Forced placement: never earlier than last time + 1 so the
            // schedule makes progress (Rau's rule).
            forced = true;
            ++slot_conflicts;
            chosen = lastStart[op] < 0
                         ? estart
                         : std::max(estart, lastStart[op] + 1);
        }

        if (forced) {
            // Displace whatever blocks the required row.
            const int row = ((chosen % ii) + ii) % ii;
            bool progress = true;
            while (!mrt.canReserveAt(requests[op], row) && progress) {
                progress = false;
                for (NodeId other = 0; other < n; ++other) {
                    if (!placed[other] || slots[other].row != row)
                        continue;
                    const bool shares = std::any_of(
                        requests[op].begin(), requests[op].end(),
                        [&](PoolId pool) {
                            return std::find(slots[other].pools.begin(),
                                             slots[other].pools.end(),
                                             pool) !=
                                   slots[other].pools.end();
                        });
                    if (shares) {
                        unschedule(other);
                        progress = true;
                        break;
                    }
                }
            }
            if (!mrt.canReserveAt(requests[op], row)) {
                // The op needs more than the row can ever hold.
                traceAttempt(ii, false, slot_conflicts, ejections);
                return false;
            }
        }

        if (adj)
            mrt.reserveAtInto(requests[op], chosen % ii, slots[op]);
        else
            slots[op] = mrt.reserveAt(requests[op], chosen % ii);
        slots[op].row = ((chosen % ii) + ii) % ii;
        start[op] = chosen;
        lastStart[op] = chosen;
        placed[op] = true;

        // Displace successors whose dependence the new start violates
        // (and predecessors, which can only happen on forced moves).
        if (adj) {
            for (const AdjEdge &edge : adj->outEdges(op)) {
                if (edge.node == op || !placed[edge.node])
                    continue;
                if (start[edge.node] <
                    start[op] + edge.latency -
                        static_cast<long>(ii) * edge.distance) {
                    unschedule(edge.node);
                }
            }
            for (const AdjEdge &edge : adj->inEdges(op)) {
                if (edge.node == op || !placed[edge.node])
                    continue;
                if (start[op] <
                    start[edge.node] + edge.latency -
                        static_cast<long>(ii) * edge.distance) {
                    unschedule(edge.node);
                }
            }
        } else {
            for (EdgeId e : graph.outEdges(op)) {
                const DfgEdge &edge = graph.edge(e);
                if (edge.dst == op || !placed[edge.dst])
                    continue;
                if (start[edge.dst] <
                    start[op] + edge.latency -
                        static_cast<long>(ii) * edge.distance) {
                    unschedule(edge.dst);
                }
            }
            for (EdgeId e : graph.inEdges(op)) {
                const DfgEdge &edge = graph.edge(e);
                if (edge.src == op || !placed[edge.src])
                    continue;
                if (start[op] <
                    start[edge.src] + edge.latency -
                        static_cast<long>(ii) * edge.distance) {
                    unschedule(edge.src);
                }
            }
        }
    }

    out.ii = ii;
    out.startCycle = start;
    out.normalize();
    traceAttempt(ii, true, slot_conflicts, ejections);
    return true;
}

} // namespace cams
