/**
 * @file
 * Stage scheduling (Eichenberger & Davidson, MICRO-28, 1995): a
 * post-pass that slides operations by whole multiples of II within
 * their dependence slack. Kernel rows -- and therefore every resource
 * reservation -- are untouched, the II is unchanged, but value
 * lifetimes shrink, reducing the registers the modulo schedule needs.
 * The paper's Section 1.2 pairs exactly this pass with an iterative
 * modulo scheduler.
 */

#ifndef CAMS_SCHED_STAGE_HH
#define CAMS_SCHED_STAGE_HH

#include "assign/assignment.hh"
#include "sched/schedule.hh"

namespace cams
{

/** What stage scheduling achieved. */
struct StageScheduleResult
{
    Schedule schedule;

    /** Sum of value lifetimes before and after. */
    long lifetimeBefore = 0;
    long lifetimeAfter = 0;

    /** Operations moved. */
    int moves = 0;
};

/**
 * Minimizes total value lifetime by sliding operations stage-wise.
 *
 * Greedy descent: each pass visits every operation and applies the
 * lifetime-minimizing legal slide (if any); passes repeat until a
 * fixpoint or the pass limit. The result is guaranteed legal: rows
 * are preserved and every slide respects all dependences.
 */
StageScheduleResult stageSchedule(const AnnotatedLoop &loop,
                                  const Schedule &schedule,
                                  int max_passes = 6);

} // namespace cams

#endif // CAMS_SCHED_STAGE_HH
