/**
 * @file
 * Register-pressure metrics of a modulo schedule.
 *
 * Context (paper §1.2): modulo schedules of overlapped iterations
 * keep several instances of a value alive at once; stage scheduling
 * and rotating register files exist to manage that pressure. These
 * metrics quantify it for our schedules:
 *
 *  - MaxLive: the maximum, over the II kernel rows, of the number of
 *    simultaneously live value instances (the classic lower bound on
 *    registers needed by the kernel);
 *  - the modulo-variable-expansion (MVE) factor: the largest
 *    ceil(lifetime / II) over all values -- how many copies of the
 *    kernel a compiler without a rotating register file must unroll.
 *
 * A value is live from its producer's issue cycle until its last use
 * (issue cycle of the latest consumer, iteration distance included).
 */

#ifndef CAMS_SCHED_REGMETRICS_HH
#define CAMS_SCHED_REGMETRICS_HH

#include "assign/assignment.hh"
#include "sched/schedule.hh"

namespace cams
{

/** Register pressure summary of one schedule. */
struct RegMetrics
{
    /** Peak simultaneously live values over the kernel rows. */
    int maxLive = 0;

    /** max over values of ceil(lifetime / II). */
    int mveFactor = 1;

    /** Sum of value lifetimes (the swing scheduler's objective). */
    long totalLifetime = 0;
};

/** Computes the metrics; values with no consumer have zero lifetime. */
RegMetrics computeRegMetrics(const AnnotatedLoop &loop,
                             const Schedule &schedule);

} // namespace cams

#endif // CAMS_SCHED_REGMETRICS_HH
