/**
 * @file
 * Minimal Unix-domain-socket plumbing for the compile service: RAII
 * file descriptors, a blocking listener, client connect, and a
 * length-prefixed frame codec.
 *
 * The wire unit is a *frame*: a 4-byte little-endian payload length
 * followed by exactly that many payload bytes. Frames carry the
 * serve-protocol messages (pipeline/serve/proto.hh); this layer knows
 * nothing about their contents. readFrame() refuses frames larger
 * than the caller's ceiling, so a corrupt or hostile length prefix
 * costs one rejected connection, never an allocation bomb.
 *
 * All calls are blocking, retry on EINTR, and report failures as
 * errno strings through an out-parameter instead of throwing --
 * connection teardown is an ordinary event for a server, not an
 * exception. Sends use MSG_NOSIGNAL so a peer that vanished yields
 * EPIPE, not process death.
 */

#ifndef CAMS_SUPPORT_SOCKET_HH
#define CAMS_SUPPORT_SOCKET_HH

#include <cstdint>
#include <string>

namespace cams
{

/** Owns one socket file descriptor; closes it on destruction. */
class SocketFd
{
  public:
    SocketFd() = default;
    explicit SocketFd(int fd) : fd_(fd) {}
    ~SocketFd() { close(); }

    SocketFd(SocketFd &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    SocketFd &operator=(SocketFd &&other) noexcept;
    SocketFd(const SocketFd &) = delete;
    SocketFd &operator=(const SocketFd &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Takes ownership away from this object. */
    int release();

    /** Closes the descriptor now (idempotent). */
    void close();

    /**
     * Shuts down both directions without closing, unblocking any
     * thread sitting in recv()/accept() on this descriptor. Safe to
     * call from another thread.
     */
    void shutdownBoth();

  private:
    int fd_ = -1;
};

/** Sends the whole buffer; false with @p error set on failure. */
bool sendAll(int fd, const void *data, size_t size, std::string &error);

/**
 * Receives exactly @p size bytes. Returns false on failure; a clean
 * peer close before the first byte sets @p cleanEof true (a close
 * mid-buffer is an error, not a clean EOF).
 */
bool recvAll(int fd, void *data, size_t size, std::string &error,
             bool *cleanEof = nullptr);

/**
 * recvAll() under a wall-clock deadline: the whole buffer must
 * arrive within @p timeoutMs or the call fails with @p timedOut set
 * (when given). The wait is poll()-based and EINTR-safe, so a peer
 * that dribbles bytes slower than the budget cannot pin the calling
 * thread. @p timeoutMs <= 0 degrades to plain recvAll().
 */
bool recvAllDeadline(int fd, void *data, size_t size, double timeoutMs,
                     std::string &error, bool *cleanEof = nullptr,
                     bool *timedOut = nullptr);

/** Writes one length-prefixed frame. */
bool writeFrame(int fd, const std::string &payload, std::string &error);

/**
 * Reads one length-prefixed frame into @p payload. A frame longer
 * than @p maxBytes is a protocol error. Returns false on error or
 * EOF; @p cleanEof distinguishes an orderly close between frames.
 */
bool readFrame(int fd, std::string &payload, uint32_t maxBytes,
               std::string &error, bool *cleanEof = nullptr);

/** A bound, listening Unix-domain socket. */
class UnixListener
{
  public:
    UnixListener() = default;
    ~UnixListener();

    UnixListener(const UnixListener &) = delete;
    UnixListener &operator=(const UnixListener &) = delete;

    /**
     * Binds and listens on @p path, unlinking any stale socket file
     * first. Paths longer than sockaddr_un allows are rejected.
     */
    bool open(const std::string &path, std::string &error);

    /**
     * Accepts one connection (blocking). Returns a negative fd on
     * failure or after close() was called from another thread.
     */
    int acceptFd(std::string &error);

    /** Unblocks acceptFd() and closes; unlinks the socket file. */
    void close();

    bool valid() const { return fd_.valid(); }
    int fd() const { return fd_.fd(); }
    const std::string &path() const { return path_; }

  private:
    SocketFd fd_;
    std::string path_;
};

/** Connects to a Unix-domain socket; invalid SocketFd on failure. */
SocketFd connectUnix(const std::string &path, std::string &error);

} // namespace cams

#endif // CAMS_SUPPORT_SOCKET_HH
