/**
 * @file
 * Small statistics helpers used by the workload generator and the
 * experiment reports: running min/avg/max summaries and integer
 * histograms.
 */

#ifndef CAMS_SUPPORT_STATS_HH
#define CAMS_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cams
{

/** Accumulates min / mean / max / count over a stream of samples. */
class RunningStat
{
  public:
    /** Adds one sample. */
    void add(double value);

    /** Number of samples seen so far. */
    uint64_t count() const { return count_; }

    /** Smallest sample, or 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest sample, or 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Arithmetic mean, or 0 when empty. */
    double mean() const;

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Counts occurrences of integer-valued observations. */
class IntHistogram
{
  public:
    /** Adds one observation of the given value. */
    void add(int64_t value, uint64_t weight = 1);

    /** Total number of observations. */
    uint64_t total() const { return total_; }

    /** Count observed at exactly this value. */
    uint64_t countAt(int64_t value) const;

    /** Count observed at value <= bound. */
    uint64_t countAtMost(int64_t bound) const;

    /** Fraction (0..1) of observations at exactly this value. */
    double fractionAt(int64_t value) const;

    /** Fraction (0..1) of observations at value <= bound. */
    double fractionAtMost(int64_t bound) const;

    /** Smallest observed value; only valid when total() > 0. */
    int64_t minValue() const;

    /** Largest observed value; only valid when total() > 0. */
    int64_t maxValue() const;

    /** All (value, count) pairs in increasing value order. */
    const std::map<int64_t, uint64_t> &bins() const { return bins_; }

  private:
    std::map<int64_t, uint64_t> bins_;
    uint64_t total_ = 0;
};

} // namespace cams

#endif // CAMS_SUPPORT_STATS_HH
