#include "support/threadpool.hh"

#include <cstdlib>

namespace cams
{

ThreadPool::ThreadPool(int threads)
{
    const int count = threads < 1 ? 1 : threads;
    workers_.reserve(count);
    for (int i = 0; i < count; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] {
        return queue_.empty() && running_ == 0;
    });
    if (firstError_) {
        std::exception_ptr error = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(error);
    }
}

int
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("CAMS_JOBS")) {
        const int jobs = std::atoi(env);
        if (jobs > 0)
            return jobs;
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware > 0 ? static_cast<int>(hardware) : 1;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --running_;
        }
        idle_.notify_all();
    }
}

} // namespace cams
