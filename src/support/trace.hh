/**
 * @file
 * The compile-pipeline event sink, in the spirit of LLVM's
 * TimeTraceProfiler: a thread-safe collector of timestamped events
 * that serializes to Chrome trace-event JSON, loadable directly in
 * chrome://tracing or Perfetto.
 *
 * Event model. Two kinds of events exist:
 *
 *  - scopes ("X" complete events): a named interval with a duration,
 *    recorded by the RAII TraceScope. Phase timers (compile, one II
 *    attempt, assign/schedule/verify) are scopes.
 *  - instants ("i" events): a point-in-time fact with arguments. The
 *    assignment decision trace (per-cluster cascade verdicts, forced
 *    placements, eviction chains, degradation rungs) is instants.
 *
 * Every event carries the lane (tid) of the recording thread, so a
 * batch run shows one swim-lane per worker and the pipeline/batch
 * fan-out is visible at a glance. Events also carry free-form string
 * arguments that Perfetto displays in the selection panel.
 *
 * Levels. TraceLevel::Phase records scopes only; TraceLevel::Decision
 * additionally records the per-node decision instants (roughly one
 * event per node per II attempt -- an order of magnitude more data).
 *
 * Overhead policy. Tracing must cost nothing when off: every recording
 * site is gated on TraceConfig::active(level), which is a null check
 * plus an integer compare -- no clock read, no allocation, no lock. A
 * disabled TraceScope is two branch instructions. When enabled, each
 * event takes one mutex acquisition and one vector push; the sink is
 * an append-only log with no per-event I/O.
 */

#ifndef CAMS_SUPPORT_TRACE_HH
#define CAMS_SUPPORT_TRACE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/time.hh"

namespace cams
{

/** How much the sink records. */
enum class TraceLevel
{
    Off,      ///< nothing
    Phase,    ///< scoped phase timers only
    Decision, ///< phases + per-node assignment decision instants
};

/** Stable name of a trace level ("off", "phase", "decision"). */
const char *traceLevelName(TraceLevel level);

/** Parses a level name; returns false on unknown input. */
bool parseTraceLevel(const std::string &text, TraceLevel &out);

/** Key/value arguments attached to one event. */
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

/** One recorded event (Chrome trace-event fields). */
struct TraceEvent
{
    std::string name;
    std::string cat;
    char phase = 'i';  ///< 'X' = complete (scope), 'i' = instant
    int64_t ts = 0;    ///< microseconds since the sink's epoch
    int64_t dur = 0;   ///< scope duration, microseconds ('X' only)
    int tid = 0;       ///< lane of the recording thread
    TraceArgs args;
};

/**
 * Thread-safe append-only event collector. One sink serves a whole
 * process (or batch run); concurrent workers record into it freely.
 */
class TraceSink
{
  public:
    /**
     * @param level        what gets recorded (see TraceLevel)
     * @param capacity     maximum events held; 0 = unbounded (batch
     *                     runs that drain into one file). A bounded
     *                     sink is a ring: when full, the oldest event
     *                     is overwritten and droppedCount() grows, so
     *                     a daemon can trace forever in fixed memory.
     */
    explicit TraceSink(TraceLevel level = TraceLevel::Phase,
                       size_t capacity = 0);

    TraceLevel level() const { return level_; }

    /** Configured ring bound (0 = unbounded). */
    size_t capacity() const { return capacity_; }

    /** Events overwritten because the ring was full. */
    uint64_t droppedCount() const;

    /** True when events of this level are recorded. */
    bool enabled(TraceLevel need) const
    {
        return static_cast<int>(level_) >= static_cast<int>(need) &&
               need != TraceLevel::Off;
    }

    /** Microseconds since the sink was created. */
    int64_t now() const { return nowMicros() - epochMicros_; }

    /** Records a completed scope ('X') that started at @p startUs. */
    void complete(std::string name, std::string cat, int64_t startUs,
                  int64_t durUs, TraceArgs args = {});

    /** Records an instant event ('i') stamped now. */
    void instant(std::string name, std::string cat, TraceArgs args = {});

    /** Events recorded so far. */
    size_t eventCount() const;

    /** Copy of the recorded events (test and report access). */
    std::vector<TraceEvent> snapshot() const;

    /** Distinct lanes that recorded at least one event. */
    int laneCount() const;

    /**
     * Chrome trace-event JSON: {"traceEvents":[...]} plus thread_name
     * metadata naming each lane, ready for chrome://tracing/Perfetto.
     */
    std::string toJson() const;

    /** Writes toJson() to a file; false when the file cannot open. */
    bool writeFile(const std::string &path) const;

  private:
    /** Lane of the calling thread (assigned on first use). */
    int laneOfCurrentThread();

    /** Appends one event, overwriting the oldest when the ring is
     *  full. Callers hold mutex_. */
    void push(TraceEvent event);

    TraceLevel level_;
    size_t capacity_;
    int64_t epochMicros_;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    size_t head_ = 0; ///< oldest slot once the ring wrapped
    uint64_t dropped_ = 0;
    std::map<std::thread::id, int> lanes_;
};

/**
 * How a compile participates in tracing: the shared sink (null = off)
 * and a tag naming this job so interleaved batch traces stay
 * attributable. Carried by CompileOptions and AssignOptions the same
 * way the fault injector is.
 */
struct TraceConfig
{
    TraceSink *sink = nullptr;

    /** Job label ("c:loop_17") prefixing this compile's scope names. */
    std::string tag;

    /** The cheap gate every recording site checks first. */
    bool active(TraceLevel need) const
    {
        return sink != nullptr && sink->enabled(need);
    }
};

/**
 * RAII phase timer: records one 'X' scope from construction to
 * destruction. Inactive scopes (null sink, insufficient level) cost
 * two branches and never read the clock.
 */
class TraceScope
{
  public:
    TraceScope(const TraceConfig &trace, TraceLevel need,
               std::string name, std::string cat)
        : sink_(trace.active(need) ? trace.sink : nullptr)
    {
        if (sink_) {
            name_ = trace.tag.empty() ? std::move(name)
                                      : trace.tag + "/" + name;
            cat_ = std::move(cat);
            start_ = sink_->now();
        }
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    /** Attaches one argument to the scope (no-op when inactive). */
    void arg(std::string key, std::string value)
    {
        if (sink_)
            args_.emplace_back(std::move(key), std::move(value));
    }

    bool active() const { return sink_ != nullptr; }

    ~TraceScope()
    {
        if (sink_) {
            sink_->complete(std::move(name_), std::move(cat_), start_,
                            sink_->now() - start_, std::move(args_));
        }
    }

  private:
    TraceSink *sink_;
    std::string name_;
    std::string cat_;
    int64_t start_ = 0;
    TraceArgs args_;
};

} // namespace cams

#endif // CAMS_SUPPORT_TRACE_HH
