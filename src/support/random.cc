#include "support/random.hh"

#include <cmath>

#include "support/logging.hh"

namespace cams
{

namespace
{

uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

int
Rng::uniformInt(int lo, int hi)
{
    cams_assert(lo <= hi, "bad uniformInt range [", lo, ",", hi, "]");
    const uint64_t span = static_cast<uint64_t>(hi) - lo + 1;
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return lo + static_cast<int>(draw % span);
}

double
Rng::uniformReal()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double probability)
{
    return uniformReal() < probability;
}

int
Rng::weightedIndex(const std::vector<double> &weights)
{
    cams_assert(!weights.empty(), "weightedIndex with no weights");
    double total = 0.0;
    for (double w : weights) {
        cams_assert(w >= 0.0, "negative weight");
        total += w;
    }
    cams_assert(total > 0.0, "weightedIndex with all-zero weights");
    double draw = uniformReal() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw < 0.0)
            return static_cast<int>(i);
    }
    return static_cast<int>(weights.size()) - 1;
}

double
Rng::normal()
{
    if (haveSpareNormal_) {
        haveSpareNormal_ = false;
        return spareNormal_;
    }
    double u1;
    do {
        u1 = uniformReal();
    } while (u1 <= 0.0);
    const double u2 = uniformReal();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spareNormal_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpareNormal_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

int
Rng::lognormalInt(double mu, double sigma, int lo, int hi)
{
    cams_assert(lo <= hi, "bad lognormalInt range");
    const double value = std::exp(mu + sigma * normal());
    int rounded = static_cast<int>(std::lround(value));
    if (rounded < lo)
        rounded = lo;
    if (rounded > hi)
        rounded = hi;
    return rounded;
}

} // namespace cams
