#include "support/metrics.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>

#include "support/logging.hh"
#include "support/time.hh"

namespace cams
{

namespace
{

/**
 * Order-preserving encoding of a double into a uint64_t, so min/max
 * can be maintained with plain integer compare-and-swap loops even
 * for negative samples.
 */
uint64_t
orderedBits(double value)
{
    const uint64_t bits = std::bit_cast<uint64_t>(value);
    return (bits & (1ull << 63)) ? ~bits : bits | (1ull << 63);
}

double
fromOrderedBits(uint64_t ordered)
{
    const uint64_t bits = (ordered & (1ull << 63))
                              ? ordered & ~(1ull << 63)
                              : ~ordered;
    return std::bit_cast<double>(bits);
}

void
atomicAddDouble(std::atomic<double> &target, double delta)
{
    double expected = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(expected, expected + delta,
                                         std::memory_order_relaxed)) {
    }
}

void
atomicMinOrdered(std::atomic<uint64_t> &target, uint64_t ordered)
{
    uint64_t expected = target.load(std::memory_order_relaxed);
    while (ordered < expected &&
           !target.compare_exchange_weak(expected, ordered,
                                         std::memory_order_relaxed)) {
    }
}

void
atomicMaxOrdered(std::atomic<uint64_t> &target, uint64_t ordered)
{
    uint64_t expected = target.load(std::memory_order_relaxed);
    while (ordered > expected &&
           !target.compare_exchange_weak(expected, ordered,
                                         std::memory_order_relaxed)) {
    }
}

/** Stripe of the calling thread (spreads counter contention). */
size_t
threadStripe(size_t stripes)
{
    static thread_local const size_t stripe =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return stripe % stripes;
}

} // namespace

void
MetricsRegistry::HistSlab::reset()
{
    count.store(0, std::memory_order_relaxed);
    sum.store(0.0, std::memory_order_relaxed);
    minBits.store(orderedBits(std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
    maxBits.store(
        orderedBits(-std::numeric_limits<double>::infinity()),
        std::memory_order_relaxed);
    for (std::atomic<uint64_t> &bucket : buckets)
        bucket.store(0, std::memory_order_relaxed);
}

int
MetricsRegistry::bucketIndex(double value)
{
    // Underflow bucket: zero, negatives, NaN and sub-2^minExponent
    // values. min/max are exact, so clamping repairs the percentile
    // estimate for these degenerate samples.
    if (!(value >= std::ldexp(1.0, minExponent)))
        return 0;
    if (value >= std::ldexp(1.0, maxExponent))
        return bucketCount - 1;
    const uint64_t bits = std::bit_cast<uint64_t>(value);
    const int offset = (1023 + minExponent) << subBucketBits;
    return static_cast<int>(bits >> (52 - subBucketBits)) - offset + 1;
}

double
MetricsRegistry::bucketLowerBound(int index)
{
    if (index <= 0)
        return 0.0;
    if (index >= bucketCount - 1)
        return std::ldexp(1.0, maxExponent);
    const int offset = (1023 + minExponent) << subBucketBits;
    const uint64_t bits = static_cast<uint64_t>(index - 1 + offset)
                          << (52 - subBucketBits);
    return std::bit_cast<double>(bits);
}

HistogramSummary
MetricsRegistry::summarizeSlabs(
    const std::vector<const HistSlab *> &slabs)
{
    HistogramSummary summary;
    double sum = 0.0;
    uint64_t minOrdered =
        orderedBits(std::numeric_limits<double>::infinity());
    uint64_t maxOrdered =
        orderedBits(-std::numeric_limits<double>::infinity());
    std::vector<uint64_t> merged(bucketCount, 0);
    for (const HistSlab *slab : slabs) {
        summary.count += slab->count.load(std::memory_order_relaxed);
        sum += slab->sum.load(std::memory_order_relaxed);
        minOrdered = std::min(
            minOrdered, slab->minBits.load(std::memory_order_relaxed));
        maxOrdered = std::max(
            maxOrdered, slab->maxBits.load(std::memory_order_relaxed));
        for (int i = 0; i < bucketCount; ++i)
            merged[i] +=
                slab->buckets[i].load(std::memory_order_relaxed);
    }
    if (summary.count == 0)
        return summary;
    summary.min = fromOrderedBits(minOrdered);
    summary.max = fromOrderedBits(maxOrdered);
    summary.mean = std::clamp(
        sum / static_cast<double>(summary.count), summary.min,
        summary.max);

    // The bucket array can momentarily disagree with the count (a
    // racing record lands between the two loads); walk against the
    // buckets' own total so the rank always resolves.
    uint64_t bucketTotal = 0;
    for (const uint64_t n : merged)
        bucketTotal += n;
    const auto percentile = [&](double fraction) {
        if (bucketTotal == 0)
            return summary.min;
        // Same nearest-rank formula the sample-vector registry used,
        // so exactly-representable data (integers, boundary values)
        // reproduces the old percentiles bit for bit.
        const uint64_t rank = static_cast<uint64_t>(
            fraction * static_cast<double>(bucketTotal - 1) + 0.5);
        uint64_t cumulative = 0;
        for (int i = 0; i < bucketCount; ++i) {
            cumulative += merged[i];
            if (cumulative > rank)
                return std::clamp(bucketLowerBound(i), summary.min,
                                  summary.max);
        }
        return summary.max;
    };
    summary.p50 = percentile(0.50);
    summary.p90 = percentile(0.90);
    summary.p99 = percentile(0.99);
    return summary;
}

MetricsRegistry::MetricsRegistry(double windowSeconds, int windowCount)
    : windowSeconds_(windowSeconds > 0.0 ? windowSeconds : 10.0),
      windowCount_(windowCount > 0 ? windowCount : 1),
      liveStartMicros_(nowMicros())
{
}

MetricsRegistry::MetricId
MetricsRegistry::counterId(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counterIds_.find(name);
    if (it != counterIds_.end())
        return it->second;
    const MetricId id = static_cast<MetricId>(counterStore_.size());
    if (id >= maxMetrics)
        cams_panic("metric cardinality bomb: more than ", maxMetrics,
                   " distinct counter names (latest: ", name, ")");
    counterStore_.push_back(std::make_unique<Counter>());
    counterSlots_[id].store(counterStore_.back().get(),
                            std::memory_order_release);
    counterIds_.emplace(name, id);
    return id;
}

MetricsRegistry::MetricId
MetricsRegistry::histogramId(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histogramIds_.find(name);
    if (it != histogramIds_.end())
        return it->second;
    const MetricId id = static_cast<MetricId>(histogramStore_.size());
    if (id >= maxMetrics)
        cams_panic("metric cardinality bomb: more than ", maxMetrics,
                   " distinct histogram names (latest: ", name, ")");
    auto histogram = std::make_unique<Histogram>();
    histogram->liveSlab = std::make_unique<HistSlab>();
    histogram->live.store(histogram->liveSlab.get(),
                          std::memory_order_relaxed);
    histogramStore_.push_back(std::move(histogram));
    histogramSlots_[id].store(histogramStore_.back().get(),
                              std::memory_order_release);
    histogramIds_.emplace(name, id);
    return id;
}

void
MetricsRegistry::add(MetricId id, int64_t delta)
{
    Counter *counter =
        counterSlots_[id % maxMetrics].load(std::memory_order_acquire);
    if (counter == nullptr)
        return; // never interned: a stale or foreign id
    counter->stripes[threadStripe(counterStripes)].value.fetch_add(
        delta, std::memory_order_relaxed);
    counter->window.fetch_add(delta, std::memory_order_relaxed);
}

void
MetricsRegistry::record(MetricId id, double value)
{
    Histogram *histogram = histogramSlots_[id % maxMetrics].load(
        std::memory_order_acquire);
    if (histogram == nullptr)
        return;
    const int bucket = bucketIndex(value);
    const uint64_t ordered = orderedBits(value);
    for (HistSlab *slab :
         {&histogram->total,
          histogram->live.load(std::memory_order_acquire)}) {
        slab->count.fetch_add(1, std::memory_order_relaxed);
        atomicAddDouble(slab->sum, value);
        atomicMinOrdered(slab->minBits, ordered);
        atomicMaxOrdered(slab->maxBits, ordered);
        slab->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    }
}

void
MetricsRegistry::add(const std::string &name, int64_t delta)
{
    add(counterId(name), delta);
}

void
MetricsRegistry::record(const std::string &name, double value)
{
    record(histogramId(name), value);
}

const MetricsRegistry::Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    const auto it = counterIds_.find(name);
    if (it == counterIds_.end())
        return nullptr;
    return counterSlots_[it->second].load(std::memory_order_acquire);
}

const MetricsRegistry::Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    const auto it = histogramIds_.find(name);
    if (it == histogramIds_.end())
        return nullptr;
    return histogramSlots_[it->second].load(std::memory_order_acquire);
}

namespace
{

int64_t
stripeSum(const auto &stripes)
{
    int64_t total = 0;
    for (const auto &stripe : stripes)
        total += stripe.value.load(std::memory_order_relaxed);
    return total;
}

} // namespace

int64_t
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Counter *counter = findCounter(name);
    return counter == nullptr ? 0 : stripeSum(counter->stripes);
}

HistogramSummary
MetricsRegistry::histogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Histogram *histogram = findHistogram(name);
    if (histogram == nullptr)
        return HistogramSummary{};
    return summarizeSlabs({&histogram->total});
}

int
MetricsRegistry::closedWindowsFor(double seconds) const
{
    const int windows = static_cast<int>(
        std::ceil(seconds / windowSeconds_));
    return std::clamp(windows, 0, windowCount_);
}

HistogramSummary
MetricsRegistry::histogramWindow(const std::string &name,
                                 double seconds) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const_cast<MetricsRegistry *>(this)->maybeRotateLocked(
        nowMicros());
    const Histogram *histogram = findHistogram(name);
    if (histogram == nullptr)
        return HistogramSummary{};
    std::vector<const HistSlab *> slabs;
    slabs.push_back(histogram->liveSlab.get());
    const int closed = closedWindowsFor(seconds);
    const int available = static_cast<int>(histogram->closed.size());
    for (int i = 0; i < std::min(closed, available); ++i)
        slabs.push_back(
            histogram->closed[available - 1 - i].slab.get());
    return summarizeSlabs(slabs);
}

int64_t
MetricsRegistry::counterWindow(const std::string &name,
                               double seconds) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const_cast<MetricsRegistry *>(this)->maybeRotateLocked(
        nowMicros());
    const Counter *counter = findCounter(name);
    if (counter == nullptr)
        return 0;
    int64_t total = counter->window.load(std::memory_order_relaxed);
    const int closed = closedWindowsFor(seconds);
    const int available = static_cast<int>(counter->closed.size());
    for (int i = 0; i < std::min(closed, available); ++i)
        total += counter->closed[available - 1 - i].delta;
    return total;
}

std::vector<std::string>
MetricsRegistry::counterNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(counterIds_.size());
    for (const auto &[name, id] : counterIds_) {
        (void)id;
        names.push_back(name);
    }
    return names;
}

std::vector<std::string>
MetricsRegistry::histogramNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(histogramIds_.size());
    for (const auto &[name, id] : histogramIds_) {
        (void)id;
        names.push_back(name);
    }
    return names;
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counterIds_.empty() && histogramIds_.empty();
}

void
MetricsRegistry::maybeRotateLocked(int64_t nowUs)
{
    if (static_cast<double>(nowUs - liveStartMicros_) >=
        windowSeconds_ * 1e6)
        rotateLocked(nowUs);
}

void
MetricsRegistry::rotate()
{
    std::lock_guard<std::mutex> lock(mutex_);
    rotateLocked(nowMicros());
}

void
MetricsRegistry::rotateLocked(int64_t nowUs)
{
    for (const std::unique_ptr<Histogram> &histogram :
         histogramStore_) {
        // Reuse an evicted slab when one exists: the ring reaches a
        // fixed slab population and never allocates again. Slabs are
        // recycled rather than freed so a recording thread holding a
        // just-rotated live pointer still writes into a live object
        // (its sample lands in a stale window -- harmless).
        std::unique_ptr<HistSlab> fresh;
        if (!histogram->spare.empty()) {
            fresh = std::move(histogram->spare.back());
            histogram->spare.pop_back();
            fresh->reset();
        } else {
            fresh = std::make_unique<HistSlab>();
        }
        ClosedHistWindow window;
        window.slab = std::move(histogram->liveSlab);
        window.startMicros = liveStartMicros_;
        window.endMicros = nowUs;
        histogram->liveSlab = std::move(fresh);
        histogram->live.store(histogram->liveSlab.get(),
                              std::memory_order_release);
        histogram->closed.push_back(std::move(window));
        while (static_cast<int>(histogram->closed.size()) >
               windowCount_) {
            histogram->spare.push_back(
                std::move(histogram->closed.front().slab));
            histogram->closed.pop_front();
        }
    }
    for (const std::unique_ptr<Counter> &counter : counterStore_) {
        ClosedCounterWindow window;
        window.delta =
            counter->window.exchange(0, std::memory_order_relaxed);
        window.startMicros = liveStartMicros_;
        window.endMicros = nowUs;
        counter->closed.push_back(window);
        while (static_cast<int>(counter->closed.size()) >
               windowCount_)
            counter->closed.pop_front();
    }
    liveStartMicros_ = nowUs;
}

size_t
MetricsRegistry::footprintBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t bytes = 0;
    for (const std::unique_ptr<Counter> &counter : counterStore_) {
        bytes += sizeof(Counter);
        bytes += counter->closed.size() *
                 sizeof(ClosedCounterWindow);
    }
    for (const std::unique_ptr<Histogram> &histogram :
         histogramStore_) {
        bytes += sizeof(Histogram) + sizeof(HistSlab); // total + live
        bytes += histogram->closed.size() *
                 (sizeof(ClosedHistWindow) + sizeof(HistSlab));
        bytes += histogram->spare.size() * sizeof(HistSlab);
    }
    return bytes;
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, id] : counterIds_) {
        const Counter *counter =
            counterSlots_[id].load(std::memory_order_acquire);
        if (!first)
            os << ",";
        first = false;
        os << "\"" << name << "\":" << stripeSum(counter->stripes);
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, id] : histogramIds_) {
        const Histogram *histogram =
            histogramSlots_[id].load(std::memory_order_acquire);
        const HistogramSummary s =
            summarizeSlabs({&histogram->total});
        if (!first)
            os << ",";
        first = false;
        os << "\"" << name << "\":{\"count\":" << s.count
           << ",\"min\":" << s.min << ",\"mean\":" << s.mean
           << ",\"max\":" << s.max << ",\"p50\":" << s.p50
           << ",\"p90\":" << s.p90 << ",\"p99\":" << s.p99 << "}";
    }
    os << "}}";
    return os.str();
}

} // namespace cams
