#include "support/metrics.hh"

#include <algorithm>
#include <sstream>

namespace cams
{

void
MetricsRegistry::add(const std::string &name, int64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

int64_t
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
MetricsRegistry::record(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    samples_[name].push_back(value);
}

namespace
{

/** Nearest-rank percentile over a sorted sample vector. */
double
percentileOf(const std::vector<double> &sorted, double fraction)
{
    if (sorted.empty())
        return 0.0;
    const size_t rank = static_cast<size_t>(
        fraction * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

HistogramSummary
summarize(std::vector<double> samples)
{
    HistogramSummary summary;
    if (samples.empty())
        return summary;
    std::sort(samples.begin(), samples.end());
    summary.count = samples.size();
    summary.min = samples.front();
    summary.max = samples.back();
    double sum = 0.0;
    for (const double sample : samples)
        sum += sample;
    summary.mean = sum / static_cast<double>(samples.size());
    summary.p50 = percentileOf(samples, 0.5);
    summary.p90 = percentileOf(samples, 0.9);
    summary.p99 = percentileOf(samples, 0.99);
    return summary;
}

} // namespace

HistogramSummary
MetricsRegistry::histogram(const std::string &name) const
{
    std::vector<double> samples;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = samples_.find(name);
        if (it == samples_.end())
            return HistogramSummary{};
        samples = it->second;
    }
    return summarize(std::move(samples));
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.empty() && samples_.empty();
}

std::string
MetricsRegistry::toJson() const
{
    std::map<std::string, int64_t> counters;
    std::map<std::string, std::vector<double>> samples;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        counters = counters_;
        samples = samples_;
    }

    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << name << "\":" << value;
    }
    os << "},\"histograms\":{";
    first = true;
    for (auto &[name, values] : samples) {
        const HistogramSummary s = summarize(values);
        if (!first)
            os << ",";
        first = false;
        os << "\"" << name << "\":{\"count\":" << s.count
           << ",\"min\":" << s.min << ",\"mean\":" << s.mean
           << ",\"max\":" << s.max << ",\"p50\":" << s.p50
           << ",\"p90\":" << s.p90 << ",\"p99\":" << s.p99 << "}";
    }
    os << "}}";
    return os.str();
}

} // namespace cams
