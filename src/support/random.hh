/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * The generator is a xoshiro256** instance seeded through SplitMix64 so
 * that every run of the experiment harness sees the exact same loop
 * suite regardless of platform or standard-library implementation
 * (std::mt19937 distributions are not bit-reproducible across
 * libstdc++ versions, so distribution sampling is implemented here).
 */

#ifndef CAMS_SUPPORT_RANDOM_HH
#define CAMS_SUPPORT_RANDOM_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cams
{

/** Reproducible 64-bit PRNG with simple distribution sampling. */
class Rng
{
  public:
    /** Creates a generator whose stream is fully determined by seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Returns the next raw 64-bit output. */
    uint64_t next();

    /** Returns a uniform integer in [lo, hi] (inclusive). */
    int uniformInt(int lo, int hi);

    /** Returns a uniform double in [0, 1). */
    double uniformReal();

    /** Returns true with the given probability. */
    bool chance(double probability);

    /**
     * Samples an index according to a vector of non-negative weights.
     * @return index in [0, weights.size()).
     */
    int weightedIndex(const std::vector<double> &weights);

    /**
     * Samples a discretized, clamped lognormal value.
     *
     * Used to reproduce the long-tailed loop-size distributions in the
     * paper's Table 1 (small mean, large max).
     */
    int lognormalInt(double mu, double sigma, int lo, int hi);

    /** Standard normal deviate (Box-Muller, deterministic). */
    double normal();

    /** Shuffles a vector in place (Fisher-Yates). */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            std::size_t j =
                static_cast<std::size_t>(uniformInt(0, int(i) - 1));
            std::swap(values[i - 1], values[j]);
        }
    }

  private:
    uint64_t state_[4];
    bool haveSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

} // namespace cams

#endif // CAMS_SUPPORT_RANDOM_HH
