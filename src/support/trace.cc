#include "support/trace.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace cams
{

const char *
traceLevelName(TraceLevel level)
{
    switch (level) {
      case TraceLevel::Off:
        return "off";
      case TraceLevel::Phase:
        return "phase";
      case TraceLevel::Decision:
        return "decision";
    }
    cams_panic("unknown TraceLevel ", int(level));
}

bool
parseTraceLevel(const std::string &text, TraceLevel &out)
{
    if (text == "off") {
        out = TraceLevel::Off;
    } else if (text == "phase") {
        out = TraceLevel::Phase;
    } else if (text == "decision") {
        out = TraceLevel::Decision;
    } else {
        return false;
    }
    return true;
}

TraceSink::TraceSink(TraceLevel level, size_t capacity)
    : level_(level), capacity_(capacity), epochMicros_(nowMicros())
{
    if (capacity_ > 0)
        events_.reserve(capacity_);
}

void
TraceSink::push(TraceEvent event)
{
    if (capacity_ > 0 && events_.size() >= capacity_) {
        events_[head_] = std::move(event);
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
        return;
    }
    events_.push_back(std::move(event));
}

uint64_t
TraceSink::droppedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

int
TraceSink::laneOfCurrentThread()
{
    // Callers hold mutex_. Lanes are dense ints in registration
    // order, so a batch run's workers land on lanes 1..N (the
    // submitting thread usually registers first as lane 0).
    const std::thread::id self = std::this_thread::get_id();
    auto it = lanes_.find(self);
    if (it == lanes_.end())
        it = lanes_.emplace(self, static_cast<int>(lanes_.size())).first;
    return it->second;
}

void
TraceSink::complete(std::string name, std::string cat, int64_t startUs,
                    int64_t durUs, TraceArgs args)
{
    TraceEvent event;
    event.name = std::move(name);
    event.cat = std::move(cat);
    event.phase = 'X';
    event.ts = startUs;
    event.dur = durUs < 0 ? 0 : durUs;
    event.args = std::move(args);
    std::lock_guard<std::mutex> lock(mutex_);
    event.tid = laneOfCurrentThread();
    push(std::move(event));
}

void
TraceSink::instant(std::string name, std::string cat, TraceArgs args)
{
    TraceEvent event;
    event.name = std::move(name);
    event.cat = std::move(cat);
    event.phase = 'i';
    event.ts = now();
    event.args = std::move(args);
    std::lock_guard<std::mutex> lock(mutex_);
    event.tid = laneOfCurrentThread();
    push(std::move(event));
}

size_t
TraceSink::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::vector<TraceEvent>
TraceSink::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (head_ == 0)
        return events_;
    // The ring wrapped: unroll so callers see chronological order.
    std::vector<TraceEvent> ordered;
    ordered.reserve(events_.size());
    ordered.insert(ordered.end(), events_.begin() + head_,
                   events_.end());
    ordered.insert(ordered.end(), events_.begin(),
                   events_.begin() + head_);
    return ordered;
}

int
TraceSink::laneCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(lanes_.size());
}

namespace
{

/** JSON string escaping (control characters, quotes, backslashes). */
void
appendJsonString(std::ostringstream &os, const std::string &text)
{
    os << '"';
    for (const char c : text) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

std::string
TraceSink::toJson() const
{
    std::vector<TraceEvent> events = snapshot();
    std::map<std::thread::id, int> lanes;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        lanes = lanes_;
    }

    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    // Lane metadata first, so Perfetto names the swim-lanes.
    for (const auto &[id, lane] : lanes) {
        (void)id;
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           << "\"tid\":" << lane << ",\"args\":{\"name\":";
        appendJsonString(os, lane == 0
                                 ? "main"
                                 : "worker-" + std::to_string(lane));
        os << "}}";
    }
    for (const TraceEvent &event : events) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":";
        appendJsonString(os, event.name);
        os << ",\"cat\":";
        appendJsonString(os, event.cat.empty() ? "cams" : event.cat);
        os << ",\"ph\":\"" << event.phase << "\",\"pid\":1,\"tid\":"
           << event.tid << ",\"ts\":" << event.ts;
        if (event.phase == 'X')
            os << ",\"dur\":" << event.dur;
        if (event.phase == 'i')
            os << ",\"s\":\"t\""; // instant scoped to its thread lane
        if (!event.args.empty()) {
            os << ",\"args\":{";
            bool firstArg = true;
            for (const auto &[key, value] : event.args) {
                if (!firstArg)
                    os << ",";
                firstArg = false;
                appendJsonString(os, key);
                os << ":";
                appendJsonString(os, value);
            }
            os << "}";
        }
        os << "}";
    }
    os << "]}";
    return os.str();
}

bool
TraceSink::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson() << "\n";
    return static_cast<bool>(out);
}

} // namespace cams
