#include "support/fault.hh"

#include "support/logging.hh"

namespace cams
{

const char *
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::None:
        return "none";
      case FailureKind::AssignLivelock:
        return "assign_livelock";
      case FailureKind::IiExhausted:
        return "ii_exhausted";
      case FailureKind::VerifierReject:
        return "verifier_reject";
      case FailureKind::Timeout:
        return "timeout";
      case FailureKind::InternalInvariant:
        return "internal_invariant";
    }
    cams_panic("unknown FailureKind ", int(kind));
}

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::AssignEvictionStorm:
        return "assign_eviction_storm";
      case FaultSite::RouterBusExhaustion:
        return "router_bus_exhaustion";
      case FaultSite::SchedulerSlotDeny:
        return "scheduler_slot_deny";
    }
    cams_panic("unknown FaultSite ", int(site));
}

bool
FaultConfig::any() const
{
    for (double p : probability)
        if (p > 0.0)
            return true;
    return false;
}

FaultConfig
FaultConfig::uniform(double p, uint64_t seed)
{
    FaultConfig config;
    config.seed = seed;
    config.probability.fill(p);
    return config;
}

FaultInjector::FaultInjector(const FaultConfig &config)
    : config_(config), rng_(config.seed)
{
    for (double p : config_.probability)
        cams_assert(p >= 0.0 && p <= 1.0,
                    "fault probability out of [0, 1]: ", p);
}

bool
FaultInjector::trip(FaultSite site)
{
    const double p = config_.probability[int(site)];
    if (p <= 0.0)
        return false;
    ++draws_;
    if (!rng_.chance(p))
        return false;
    ++trips_[int(site)];
    return true;
}

long
FaultInjector::trips(FaultSite site) const
{
    return trips_[int(site)];
}

long
FaultInjector::totalTrips() const
{
    long total = 0;
    for (long t : trips_)
        total += t;
    return total;
}

} // namespace cams
