/**
 * @file
 * The robustness substrate: the structured failure taxonomy carried
 * through CompileResult, and the seeded fault-injection facility the
 * stress harness uses to drive the pipeline into its failure paths on
 * purpose.
 *
 * Failure taxonomy. A compile that cannot produce a verified schedule
 * must end in exactly one FailureKind instead of an abort -- the same
 * discipline SAT-based exact mappers use to report UNSAT vs. timeout
 * vs. model error. The kinds mirror the ways the Figure 5 iteration
 * actually dies in practice: the eviction repair loop livelocks, the
 * II search window is exhausted, the independent verifier rejects
 * every produced schedule, the wall-clock deadline expires, or an
 * internal invariant is violated mid-search (and recovered via
 * cams_check, see support/logging.hh).
 *
 * Fault injection. A FaultInjector is a deterministic, seeded
 * coin-flip stream consulted at named injection sites inside the
 * pipeline: the assigner's cluster selection (eviction storms), the
 * copy-reservation path (bus/link exhaustion), and the driver's
 * scheduler hand-off (slot denial). Each injector serves exactly one
 * compile at a time -- concurrent jobs need one injector each, or the
 * coin-flip stream (and with it batch determinism) is lost.
 */

#ifndef CAMS_SUPPORT_FAULT_HH
#define CAMS_SUPPORT_FAULT_HH

#include <array>
#include <cstdint>

#include "support/random.hh"

namespace cams
{

/** Why a compile (or one of its phases) failed. */
enum class FailureKind
{
    None,              ///< no failure: the compile succeeded
    AssignLivelock,    ///< the §4.3 eviction repair cycled or dead-ended
    IiExhausted,       ///< no II up to the search limit worked
    VerifierReject,    ///< the independent checker rejected the schedule
    Timeout,           ///< the per-compile wall-clock deadline expired
    InternalInvariant, ///< a cams_check invariant fired mid-search
};

/** Number of FailureKind values (None included). */
constexpr int numFailureKinds = 6;

/** Stable snake_case name of a failure kind (for logs and JSON). */
const char *failureKindName(FailureKind kind);

/** Named injection points inside the compile pipeline. */
enum class FaultSite
{
    /** Veto the assigner's selected cluster, forcing the Figure 11
     *  repair path and its evictions. */
    AssignEvictionStorm,

    /** Fail a copy reservation as if every bus/link slot were taken. */
    RouterBusExhaustion,

    /** Discard a successful schedule as if no slot had been found. */
    SchedulerSlotDeny,
};

/** Number of FaultSite values. */
constexpr int numFaultSites = 3;

/** Stable snake_case name of an injection site. */
const char *faultSiteName(FaultSite site);

/** Per-site trip probabilities plus the coin-flip seed. */
struct FaultConfig
{
    /** Seed of the injector's private coin-flip stream. */
    uint64_t seed = 1;

    /** Trip probability per FaultSite, in [0, 1]. */
    std::array<double, numFaultSites> probability{};

    /** True when any site can trip at all. */
    bool any() const;

    /** Same probability at every site (convenience for CLIs). */
    static FaultConfig uniform(double p, uint64_t seed = 1);
};

/**
 * Deterministic, seeded fault source. trip() draws one coin per call,
 * so the trip pattern is a pure function of the config and the call
 * sequence -- re-running a compile with an equally seeded injector
 * reproduces every injected fault exactly.
 */
class FaultInjector
{
  public:
    /** A disabled injector (never trips). */
    FaultInjector() : FaultInjector(FaultConfig{}) {}

    /** An injector with the given probabilities and seed. */
    explicit FaultInjector(const FaultConfig &config);

    /** Draws one coin; true = the site faults now. */
    bool trip(FaultSite site);

    /** Faults fired at one site so far. */
    long trips(FaultSite site) const;

    /** Faults fired across all sites. */
    long totalTrips() const;

    /** Coins drawn across all sites (trips + survivals). */
    long draws() const { return draws_; }

    /** The configuration the injector was built with. */
    const FaultConfig &config() const { return config_; }

  private:
    FaultConfig config_;
    Rng rng_;
    std::array<long, numFaultSites> trips_{};
    long draws_ = 0;
};

} // namespace cams

#endif // CAMS_SUPPORT_FAULT_HH
