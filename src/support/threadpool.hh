/**
 * @file
 * A fixed-size worker pool with a shared task queue and exception
 * capture.
 *
 * Tasks are arbitrary callables posted with post(); a fixed set of
 * worker threads drains the queue in FIFO order. A task that throws
 * does not kill its worker: the exception is captured and rethrown
 * from the next wait() on the submitting thread, after the queue has
 * drained, so a failing task can never deadlock the pool. The pool is
 * deliberately minimal -- no futures, no work stealing between pools,
 * no dynamic resizing -- because the batch compilation layer above it
 * only needs "run these N closures and tell me when done".
 */

#ifndef CAMS_SUPPORT_THREADPOOL_HH
#define CAMS_SUPPORT_THREADPOOL_HH

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cams
{

/** Fixed-size thread pool draining a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * Starts @p threads workers (clamped to at least 1). A pool of
     * one worker still runs tasks off-thread, which keeps the
     * execution path identical across all pool sizes.
     */
    explicit ThreadPool(int threads);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueues one task; wakes an idle worker. */
    void post(std::function<void()> task);

    /**
     * Blocks until every posted task has finished, then rethrows the
     * first exception any task raised (if any). The pool stays usable
     * afterwards: wait() is a barrier, not a shutdown.
     */
    void wait();

    /** Number of worker threads. */
    int threadCount() const
    {
        return static_cast<int>(workers_.size());
    }

    /**
     * Pool size to use when the caller does not care: the
     * CAMS_JOBS environment variable when set, otherwise the
     * hardware concurrency (at least 1).
     */
    static int defaultThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;   ///< workers wait for tasks here
    std::condition_variable idle_;   ///< wait() blocks here
    int running_ = 0;                ///< tasks currently executing
    bool stopping_ = false;
    std::exception_ptr firstError_;  ///< first captured task exception
};

} // namespace cams

#endif // CAMS_SUPPORT_THREADPOOL_HH
