/**
 * @file
 * Diagnostic helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated (a cams bug); aborts.
 * fatal()  - the user asked for something impossible (bad machine
 *            description, malformed input graph); exits with code 1.
 * check()  - an internal invariant was violated inside a recoverable
 *            search phase; throws InternalError so the pipeline driver
 *            can classify the failure and keep the process alive.
 * warn()   - something suspicious but survivable happened.
 * inform() - plain status output.
 *
 * Build-mode policy: none of these are compiled out, ever. Unlike
 * <cassert>, cams_assert and cams_check deliberately ignore NDEBUG --
 * the invariants they guard (placement bounds, reservation ownership,
 * rollback bookkeeping) are exactly the ones whose violation turns
 * into out-of-bounds indexing in Release builds, so disabling them
 * where they matter most would be backwards. The condition is always
 * evaluated; keep side effects out of it anyway.
 *
 * Choosing between the three failure macros:
 *  - cams_fatal: bad *input* (user error). Process exit is the API.
 *  - cams_assert: broken invariant where no enclosing recovery exists
 *    (precondition of a public entry point, corrupted result after a
 *    phase committed). Abort preserves the core dump.
 *  - cams_check: broken invariant inside the assignment/scheduling
 *    search, where pipeline/driver catches InternalError, records a
 *    FailureKind::InternalInvariant, and either retries at the next II
 *    or degrades (see pipeline/driver.hh).
 */

#ifndef CAMS_SUPPORT_LOGGING_HH
#define CAMS_SUPPORT_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace cams
{

/**
 * A recoverable internal-invariant violation, thrown by cams_check.
 *
 * Deriving from std::runtime_error keeps what() usable as the
 * FailureKind::InternalInvariant detail string; the file/line prefix
 * is baked into the message by checkFailImpl.
 */
class InternalError : public std::runtime_error
{
  public:
    explicit InternalError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Terminates with an abort after printing an internal-error message. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Throws InternalError carrying a file:line-prefixed message. */
[[noreturn]] void checkFailImpl(const char *file, int line,
                                const std::string &msg);

/** Terminates with exit(1) after printing a user-error message. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Prints a warning to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Prints a status message to stderr. */
void informImpl(const std::string &msg);

namespace detail
{

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

/** Concatenates the stream representations of all arguments. */
template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

} // namespace cams

#define cams_panic(...) \
    ::cams::panicImpl(__FILE__, __LINE__, ::cams::detail::concat(__VA_ARGS__))

#define cams_fatal(...) \
    ::cams::fatalImpl(__FILE__, __LINE__, ::cams::detail::concat(__VA_ARGS__))

#define cams_warn(...) \
    ::cams::warnImpl(__FILE__, __LINE__, ::cams::detail::concat(__VA_ARGS__))

#define cams_inform(...) \
    ::cams::informImpl(::cams::detail::concat(__VA_ARGS__))

/** Panics when an internal invariant does not hold. */
#define cams_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::cams::panicImpl(__FILE__, __LINE__,                           \
                ::cams::detail::concat("assertion '", #cond, "' failed. ", \
                                       ##__VA_ARGS__));                     \
        }                                                                   \
    } while (0)

/** Throws InternalError when a recoverable invariant does not hold. */
#define cams_check(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::cams::checkFailImpl(__FILE__, __LINE__,                       \
                ::cams::detail::concat("check '", #cond, "' failed. ",      \
                                       ##__VA_ARGS__));                     \
        }                                                                   \
    } while (0)

#endif // CAMS_SUPPORT_LOGGING_HH
