/**
 * @file
 * Diagnostic helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated (a cams bug); aborts.
 * fatal()  - the user asked for something impossible (bad machine
 *            description, malformed input graph); exits with code 1.
 * warn()   - something suspicious but survivable happened.
 * inform() - plain status output.
 */

#ifndef CAMS_SUPPORT_LOGGING_HH
#define CAMS_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

namespace cams
{

/** Terminates with an abort after printing an internal-error message. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminates with exit(1) after printing a user-error message. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Prints a warning to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Prints a status message to stderr. */
void informImpl(const std::string &msg);

namespace detail
{

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

/** Concatenates the stream representations of all arguments. */
template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

} // namespace cams

#define cams_panic(...) \
    ::cams::panicImpl(__FILE__, __LINE__, ::cams::detail::concat(__VA_ARGS__))

#define cams_fatal(...) \
    ::cams::fatalImpl(__FILE__, __LINE__, ::cams::detail::concat(__VA_ARGS__))

#define cams_warn(...) \
    ::cams::warnImpl(__FILE__, __LINE__, ::cams::detail::concat(__VA_ARGS__))

#define cams_inform(...) \
    ::cams::informImpl(::cams::detail::concat(__VA_ARGS__))

/** Panics when an internal invariant does not hold. */
#define cams_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::cams::panicImpl(__FILE__, __LINE__,                           \
                ::cams::detail::concat("assertion '", #cond, "' failed. ", \
                                       ##__VA_ARGS__));                     \
        }                                                                   \
    } while (0)

#endif // CAMS_SUPPORT_LOGGING_HH
