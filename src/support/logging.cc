#include "support/logging.hh"

#include <cstdlib>
#include <iostream>

namespace cams
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
checkFailImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << msg << " @ " << file << ":" << line;
    throw InternalError(os.str());
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "warn: " << msg << " (" << file << ":" << line << ")"
              << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cerr << "info: " << msg << std::endl;
}

} // namespace cams
