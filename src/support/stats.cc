#include "support/stats.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cams
{

void
RunningStat::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    sum_ += value;
    ++count_;
}

double
RunningStat::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

void
IntHistogram::add(int64_t value, uint64_t weight)
{
    bins_[value] += weight;
    total_ += weight;
}

uint64_t
IntHistogram::countAt(int64_t value) const
{
    auto it = bins_.find(value);
    return it == bins_.end() ? 0 : it->second;
}

uint64_t
IntHistogram::countAtMost(int64_t bound) const
{
    uint64_t count = 0;
    for (const auto &[value, n] : bins_) {
        if (value > bound)
            break;
        count += n;
    }
    return count;
}

double
IntHistogram::fractionAt(int64_t value) const
{
    return total_ ? static_cast<double>(countAt(value)) / total_ : 0.0;
}

double
IntHistogram::fractionAtMost(int64_t bound) const
{
    return total_ ? static_cast<double>(countAtMost(bound)) / total_ : 0.0;
}

int64_t
IntHistogram::minValue() const
{
    cams_assert(total_ > 0, "minValue() on empty histogram");
    return bins_.begin()->first;
}

int64_t
IntHistogram::maxValue() const
{
    cams_assert(total_ > 0, "maxValue() on empty histogram");
    return bins_.rbegin()->first;
}

} // namespace cams
