#include "support/socket.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/time.hh"

namespace cams
{

namespace
{

std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

} // namespace

SocketFd &
SocketFd::operator=(SocketFd &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

int
SocketFd::release()
{
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

void
SocketFd::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
SocketFd::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

bool
sendAll(int fd, const void *data, size_t size, std::string &error)
{
    const char *bytes = static_cast<const char *>(data);
    size_t sent = 0;
    while (sent < size) {
        const ssize_t n =
            ::send(fd, bytes + sent, size - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = errnoString("send");
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

bool
recvAll(int fd, void *data, size_t size, std::string &error,
        bool *cleanEof)
{
    if (cleanEof)
        *cleanEof = false;
    char *bytes = static_cast<char *>(data);
    size_t got = 0;
    while (got < size) {
        const ssize_t n = ::recv(fd, bytes + got, size - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = errnoString("recv");
            return false;
        }
        if (n == 0) {
            if (got == 0 && cleanEof) {
                *cleanEof = true;
                error = "connection closed";
            } else {
                error = "connection closed mid-frame";
            }
            return false;
        }
        got += static_cast<size_t>(n);
    }
    return true;
}

bool
recvAllDeadline(int fd, void *data, size_t size, double timeoutMs,
                std::string &error, bool *cleanEof, bool *timedOut)
{
    if (timedOut)
        *timedOut = false;
    if (timeoutMs <= 0.0)
        return recvAll(fd, data, size, error, cleanEof);
    if (cleanEof)
        *cleanEof = false;
    char *bytes = static_cast<char *>(data);
    size_t got = 0;
    const int64_t end =
        nowMicros() + static_cast<int64_t>(timeoutMs * 1000.0);
    while (got < size) {
        const int64_t leftUs = end - nowMicros();
        if (leftUs <= 0) {
            if (timedOut)
                *timedOut = true;
            error = "read timed out after " +
                    std::to_string(static_cast<long>(timeoutMs)) +
                    " ms with " + std::to_string(size - got) +
                    " bytes outstanding";
            return false;
        }
        pollfd waiter{};
        waiter.fd = fd;
        waiter.events = POLLIN;
        const int ready = ::poll(
            &waiter, 1, static_cast<int>(leftUs / 1000) + 1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            error = errnoString("poll");
            return false;
        }
        if (ready == 0)
            continue; // deadline re-checked at the top of the loop
        // POLLHUP/POLLERR also fall through to recv(), which then
        // reports the close or the pending socket error precisely.
        const ssize_t n = ::recv(fd, bytes + got, size - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = errnoString("recv");
            return false;
        }
        if (n == 0) {
            if (got == 0 && cleanEof) {
                *cleanEof = true;
                error = "connection closed";
            } else {
                error = "connection closed mid-frame";
            }
            return false;
        }
        got += static_cast<size_t>(n);
    }
    return true;
}

bool
writeFrame(int fd, const std::string &payload, std::string &error)
{
    const uint32_t size = static_cast<uint32_t>(payload.size());
    unsigned char prefix[4] = {
        static_cast<unsigned char>(size & 0xff),
        static_cast<unsigned char>((size >> 8) & 0xff),
        static_cast<unsigned char>((size >> 16) & 0xff),
        static_cast<unsigned char>((size >> 24) & 0xff),
    };
    return sendAll(fd, prefix, sizeof(prefix), error) &&
           sendAll(fd, payload.data(), payload.size(), error);
}

bool
readFrame(int fd, std::string &payload, uint32_t maxBytes,
          std::string &error, bool *cleanEof)
{
    unsigned char prefix[4];
    if (!recvAll(fd, prefix, sizeof(prefix), error, cleanEof))
        return false;
    const uint32_t size = static_cast<uint32_t>(prefix[0]) |
                          static_cast<uint32_t>(prefix[1]) << 8 |
                          static_cast<uint32_t>(prefix[2]) << 16 |
                          static_cast<uint32_t>(prefix[3]) << 24;
    if (size > maxBytes) {
        error = "frame of " + std::to_string(size) +
                " bytes exceeds the " + std::to_string(maxBytes) +
                "-byte ceiling";
        return false;
    }
    payload.resize(size);
    if (size == 0)
        return true;
    // EOF inside a declared frame is always malformed input.
    return recvAll(fd, payload.data(), size, error, nullptr);
}

UnixListener::~UnixListener()
{
    close();
}

bool
UnixListener::open(const std::string &path, std::string &error)
{
    sockaddr_un addr{};
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        error = "socket path '" + path + "' empty or longer than " +
                std::to_string(sizeof(addr.sun_path) - 1) + " bytes";
        return false;
    }
    SocketFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoString("socket");
        return false;
    }
    ::unlink(path.c_str()); // stale socket from a crashed server
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = errnoString("bind");
        return false;
    }
    if (::listen(fd.fd(), 64) != 0) {
        error = errnoString("listen");
        return false;
    }
    fd_ = std::move(fd);
    path_ = path;
    return true;
}

int
UnixListener::acceptFd(std::string &error)
{
    for (;;) {
        const int conn = ::accept(fd_.fd(), nullptr, nullptr);
        if (conn >= 0)
            return conn;
        if (errno == EINTR)
            continue;
        error = errnoString("accept");
        return -1;
    }
}

void
UnixListener::close()
{
    if (!fd_.valid())
        return;
    fd_.shutdownBoth();
    fd_.close();
    if (!path_.empty())
        ::unlink(path_.c_str());
}

SocketFd
connectUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr{};
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        error = "socket path '" + path + "' empty or too long";
        return SocketFd();
    }
    SocketFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoString("socket");
        return SocketFd();
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    for (;;) {
        if (::connect(fd.fd(), reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        if (errno == EINTR)
            continue;
        error = errnoString("connect");
        return SocketFd();
    }
}

} // namespace cams
