/**
 * @file
 * The one place wall-clock arithmetic lives. Every layer that used to
 * hand-roll steady_clock deltas (the driver's deadline, the batch
 * engine's per-job timing) goes through these helpers instead, so the
 * clock, the unit (microseconds internally, milliseconds at the API)
 * and the conversion boilerplate exist exactly once.
 *
 * Header-only on purpose: all three types are a handful of inline
 * calls around std::chrono and get used on hot paths.
 */

#ifndef CAMS_SUPPORT_TIME_HH
#define CAMS_SUPPORT_TIME_HH

#include <chrono>
#include <cstdint>

namespace cams
{

/** Monotonic timestamp in microseconds (epoch: arbitrary but fixed). */
inline int64_t
nowMicros()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Measures elapsed wall time from its construction. */
class Stopwatch
{
  public:
    Stopwatch() : start_(nowMicros()) {}

    /** Elapsed microseconds since construction (or last restart). */
    int64_t elapsedMicros() const { return nowMicros() - start_; }

    /** Elapsed milliseconds since construction (or last restart). */
    double elapsedMs() const
    {
        return static_cast<double>(elapsedMicros()) / 1000.0;
    }

    /** Restarts the measurement from now. */
    void restart() { start_ = nowMicros(); }

  private:
    int64_t start_;
};

/** Wall-clock budget; disarmed when the budget is zero or negative. */
class Deadline
{
  public:
    explicit Deadline(double budget_ms)
        : armed_(budget_ms > 0.0),
          end_(nowMicros() + static_cast<int64_t>(budget_ms * 1000.0))
    {
    }

    bool expired() const { return armed_ && nowMicros() >= end_; }

  private:
    bool armed_;
    int64_t end_;
};

} // namespace cams

#endif // CAMS_SUPPORT_TIME_HH
