/**
 * @file
 * Small string utilities: tokenization, trimming, numeric parsing and
 * fixed-width formatting used by the text IO and table printers.
 */

#ifndef CAMS_SUPPORT_STR_HH
#define CAMS_SUPPORT_STR_HH

#include <string>
#include <vector>

namespace cams
{

/** Splits on any run of whitespace; no empty tokens are produced. */
std::vector<std::string> splitWhitespace(const std::string &text);

/** Splits on a single-character delimiter; keeps empty fields. */
std::vector<std::string> splitChar(const std::string &text, char delim);

/** Removes leading and trailing whitespace. */
std::string trim(const std::string &text);

/** Parses a non-negative integer; returns false on malformed input. */
bool parseInt(const std::string &text, int &out);

/** Formats a double with the given number of decimals. */
std::string formatFixed(double value, int decimals);

/** Left-pads (positive width) or right-pads (negative) with spaces. */
std::string pad(const std::string &text, int width);

/** True when text starts with the given prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

} // namespace cams

#endif // CAMS_SUPPORT_STR_HH
