/**
 * @file
 * A named counter / histogram registry in the spirit of gem5's stats
 * framework: pipeline layers record monotonic counters and value
 * distributions under stable snake_case names, and a batch run
 * snapshots the registry into its machine-readable JSON so BENCH_*
 * trajectories carry distributions (ii_slack, per-phase times), not
 * just sums.
 *
 * Thread safety: all mutating and reading calls take the registry
 * mutex; concurrent batch workers record freely. Recording is an
 * O(log n) map lookup plus a push_back -- cheap enough for per-job
 * facts, not intended for per-node inner loops (that is what the
 * decision trace is for).
 */

#ifndef CAMS_SUPPORT_METRICS_HH
#define CAMS_SUPPORT_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cams
{

/** Snapshot summary of one value distribution. */
struct HistogramSummary
{
    uint64_t count = 0;
    double min = 0.0;
    double mean = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/** Thread-safe registry of named counters and value distributions. */
class MetricsRegistry
{
  public:
    /** Increments a monotonic counter. */
    void add(const std::string &name, int64_t delta = 1);

    /** Current value of a counter (0 when never touched). */
    int64_t counter(const std::string &name) const;

    /** Records one sample into a distribution. */
    void record(const std::string &name, double value);

    /** Summary of a distribution (zeros when never touched). */
    HistogramSummary histogram(const std::string &name) const;

    /** True when nothing was recorded. */
    bool empty() const;

    /**
     * One-line JSON snapshot:
     * {"counters":{...},"histograms":{"name":{"count":..,"min":..,
     * "mean":..,"max":..,"p50":..,"p90":..,"p99":..}}}
     */
    std::string toJson() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, int64_t> counters_;
    std::map<std::string, std::vector<double>> samples_;
};

} // namespace cams

#endif // CAMS_SUPPORT_METRICS_HH
