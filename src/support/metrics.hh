/**
 * @file
 * A named counter / histogram registry in the spirit of gem5's stats
 * framework: pipeline layers record monotonic counters and value
 * distributions under stable snake_case names, and a batch run
 * snapshots the registry into its machine-readable JSON so BENCH_*
 * trajectories carry distributions (ii_slack, per-phase times), not
 * just sums.
 *
 * Storage model. Every metric name is interned once into a small id;
 * recording through an id touches only relaxed atomics -- no mutex,
 * no allocation, no clock read -- so the serve hot path can record
 * per-request facts at full load. Counters are striped across cache
 * lines (concurrent workers do not bounce one line); distributions
 * are HdrHistogram-style log-linear bucket arrays of fixed size, so
 * per-histogram memory is capped no matter how many samples a
 * long-running daemon records.
 *
 * Bucket scheme and accuracy. Buckets split each power of two into
 * 2^subBucketBits linear sub-buckets ("log-linear"). A reported
 * percentile is the *lower bound* of the bucket holding that rank,
 * clamped into the exact [min, max] observed, so values that land on
 * a bucket boundary (all integers up to 2^subBucketBits, and every
 * sub-bucket multiple above) are reproduced exactly and any other
 * value is under-reported by strictly less than one sub-bucket
 * width: the maximum relative error is 2^-subBucketBits (3.125% for
 * the 32 sub-buckets used here). count/min/mean/max are exact.
 *
 * Windows. Each metric also feeds a rotating time window (default
 * 10 s): the live window closes on rotate() -- called by whoever
 * polls the registry (the stats endpoint, camsd's heartbeat) -- and
 * a bounded ring of closed windows supports "last 1 m" / "last 5 m"
 * aggregates. Closed-window slabs are recycled, never freed, so the
 * registry's footprint reaches a fixed ceiling and stays there.
 *
 * Thread safety: recording and reading may race freely from any
 * thread. Rotation and reads serialize on an internal mutex; a
 * sample racing a rotation may land in the window that just closed,
 * which telemetry consumers must (and do) tolerate.
 */

#ifndef CAMS_SUPPORT_METRICS_HH
#define CAMS_SUPPORT_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cams
{

/** Snapshot summary of one value distribution. */
struct HistogramSummary
{
    uint64_t count = 0;
    double min = 0.0;
    double mean = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/** Thread-safe registry of named counters and value distributions. */
class MetricsRegistry
{
  public:
    /** Interned handle; recording through it is lock-free. */
    using MetricId = uint32_t;

    /** Linear sub-buckets per power of two (as a bit count). */
    static constexpr int subBucketBits = 5;

    /**
     * Documented accuracy bound of the bucket scheme: a percentile
     * is under-reported by at most this fraction of the true value
     * (see the file comment; count/min/mean/max are exact).
     */
    static constexpr double maxRelativeError =
        1.0 / (1 << subBucketBits);

    /**
     * @param windowSeconds  span of one live window before rotate()
     *                       closes it
     * @param windowCount    closed windows kept (the ring bound);
     *                       windowSeconds * windowCount is the
     *                       longest queryable "last N seconds"
     */
    explicit MetricsRegistry(double windowSeconds = 10.0,
                             int windowCount = 30);

    // -- Interning ----------------------------------------------------

    /** Interns a counter name (idempotent). */
    MetricId counterId(const std::string &name);

    /** Interns a distribution name (idempotent). */
    MetricId histogramId(const std::string &name);

    // -- Recording (lock-free by id) ----------------------------------

    /** Increments a counter through its interned id. */
    void add(MetricId id, int64_t delta = 1);

    /** Records one sample through its interned id. */
    void record(MetricId id, double value);

    // -- Recording (interning string convenience) ---------------------

    /** Increments a monotonic counter. */
    void add(const std::string &name, int64_t delta = 1);

    /** Records one sample into a distribution. */
    void record(const std::string &name, double value);

    // -- Reading ------------------------------------------------------

    /** Current value of a counter (0 when never touched). */
    int64_t counter(const std::string &name) const;

    /** Summary of a distribution (zeros when never touched). */
    HistogramSummary histogram(const std::string &name) const;

    /**
     * Summary over roughly the last @p seconds: the live window plus
     * the newest ceil(seconds / windowSeconds) closed windows. The
     * span actually covered is reported by the caller-visible window
     * metadata, never less than requested while the data exists.
     */
    HistogramSummary histogramWindow(const std::string &name,
                                     double seconds) const;

    /** Counter delta over roughly the last @p seconds (see above). */
    int64_t counterWindow(const std::string &name,
                          double seconds) const;

    /** All interned counter names, sorted. */
    std::vector<std::string> counterNames() const;

    /** All interned distribution names, sorted. */
    std::vector<std::string> histogramNames() const;

    /** True when nothing was interned or recorded. */
    bool empty() const;

    /**
     * Closes the live window of every metric and opens a fresh one.
     * Also runs implicitly when a read finds the live window older
     * than windowSeconds, so idle registries stay roughly on cadence
     * without a dedicated ticker.
     */
    void rotate();

    /** Configured live-window span in seconds. */
    double windowSeconds() const { return windowSeconds_; }

    /**
     * Bytes held by metric storage (slabs, stripes, rings). Reaches
     * a fixed ceiling per metric: recording more samples never grows
     * it (the memory-cap regression test pins exactly this).
     */
    size_t footprintBytes() const;

    /**
     * One-line JSON snapshot:
     * {"counters":{...},"histograms":{"name":{"count":..,"min":..,
     * "mean":..,"max":..,"p50":..,"p90":..,"p99":..}}}
     */
    std::string toJson() const;

  private:
    // Bucket layout: [0] underflow (zero, negative, sub-tiny), then
    // log-linear buckets from 2^minExponent to 2^maxExponent, then
    // [last] overflow.
    static constexpr int minExponent = -20; ///< ~1 ns when unit is ms
    static constexpr int maxExponent = 30;  ///< ~12 days in ms
    static constexpr int bucketCount =
        2 + (maxExponent - minExponent) * (1 << subBucketBits);
    static constexpr int counterStripes = 8;

    /** One window's (or the cumulative) bucket state. */
    struct HistSlab
    {
        std::atomic<uint64_t> count{0};
        std::atomic<double> sum{0.0};
        std::atomic<uint64_t> minBits; ///< ordered-double encoding
        std::atomic<uint64_t> maxBits;
        std::array<std::atomic<uint64_t>, bucketCount> buckets{};

        HistSlab() { reset(); }
        void reset();
    };

    struct ClosedHistWindow
    {
        std::unique_ptr<HistSlab> slab;
        int64_t startMicros = 0;
        int64_t endMicros = 0;
    };

    struct Histogram
    {
        HistSlab total;
        std::atomic<HistSlab *> live{nullptr};
        std::unique_ptr<HistSlab> liveSlab;
        /** Newest last; bounded by windowCount_. */
        std::deque<ClosedHistWindow> closed;
        /** Evicted slabs recycled here (memory ceiling, no frees). */
        std::vector<std::unique_ptr<HistSlab>> spare;
    };

    struct alignas(64) CounterStripe
    {
        std::atomic<int64_t> value{0};
    };

    struct ClosedCounterWindow
    {
        int64_t delta = 0;
        int64_t startMicros = 0;
        int64_t endMicros = 0;
    };

    struct Counter
    {
        std::array<CounterStripe, counterStripes> stripes{};
        std::atomic<int64_t> window{0};
        std::deque<ClosedCounterWindow> closed;
    };

    static int bucketIndex(double value);
    static double bucketLowerBound(int index);
    static HistogramSummary summarizeSlabs(
        const std::vector<const HistSlab *> &slabs);

    void rotateLocked(int64_t nowUs);
    void maybeRotateLocked(int64_t nowUs);
    int closedWindowsFor(double seconds) const;
    const Histogram *findHistogram(const std::string &name) const;
    const Counter *findCounter(const std::string &name) const;

    /** Hard cap on distinct metric names of each kind. The id ->
     *  storage maps are fixed arrays of atomic pointers so recording
     *  by id never touches a container an interning thread mutates. */
    static constexpr size_t maxMetrics = 1024;

    double windowSeconds_;
    int windowCount_;

    mutable std::mutex mutex_;
    std::map<std::string, MetricId> counterIds_;
    std::map<std::string, MetricId> histogramIds_;
    std::array<std::atomic<Counter *>, maxMetrics> counterSlots_{};
    std::array<std::atomic<Histogram *>, maxMetrics> histogramSlots_{};
    /** Owning stores (append-only, guarded by mutex_). */
    std::vector<std::unique_ptr<Counter>> counterStore_;
    std::vector<std::unique_ptr<Histogram>> histogramStore_;
    int64_t liveStartMicros_ = 0;
};

} // namespace cams

#endif // CAMS_SUPPORT_METRICS_HH
