#include "support/str.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace cams
{

std::vector<std::string>
splitWhitespace(const std::string &text)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char c : text) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

std::vector<std::string>
splitChar(const std::string &text, char delim)
{
    std::vector<std::string> fields;
    std::string current;
    for (char c : text) {
        if (c == delim) {
            fields.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    fields.push_back(current);
    return fields;
}

std::string
trim(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool
parseInt(const std::string &text, int &out)
{
    if (text.empty())
        return false;
    size_t i = 0;
    if (text[0] == '-')
        i = 1;
    if (i >= text.size())
        return false;
    long value = 0;
    for (; i < text.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(text[i])))
            return false;
        value = value * 10 + (text[i] - '0');
        if (value > 1'000'000'000L)
            return false;
    }
    out = static_cast<int>(text[0] == '-' ? -value : value);
    return true;
}

std::string
formatFixed(double value, int decimals)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    return buffer;
}

std::string
pad(const std::string &text, int width)
{
    const bool left_pad = width >= 0;
    size_t target = static_cast<size_t>(left_pad ? width : -width);
    if (text.size() >= target)
        return text;
    std::string spaces(target - text.size(), ' ');
    return left_pad ? spaces + text : text + spaces;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

} // namespace cams
