#include "report/table.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"
#include "support/str.hh"

namespace cams
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    cams_assert(cells.size() == headers_.size(),
                "row width does not match header");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ")
               << pad(cells[c], c == 0 ? -static_cast<int>(widths[c])
                                       : static_cast<int>(widths[c]));
        }
        os << "\n";
    };
    emitRow(headers_);
    std::string rule;
    for (size_t c = 0; c < widths.size(); ++c) {
        if (c)
            rule += "  ";
        rule += std::string(widths[c], '-');
    }
    os << rule << "\n";
    for (const auto &row : rows_)
        emitRow(row);
    return os.str();
}

std::string
renderDeviationCsv(const std::vector<DeviationSeries> &series)
{
    std::ostringstream os;
    os << "series,deviation,count,percent\n";
    for (const DeviationSeries &entry : series) {
        for (const auto &[value, count] : entry.deviations.bins()) {
            os << entry.label << "," << value << "," << count << ","
               << formatFixed(entry.percentAt(static_cast<int>(value)),
                              3)
               << "\n";
        }
        if (entry.failures > 0) {
            os << entry.label << ",failed," << entry.failures << ","
               << formatFixed(100.0 * entry.failures /
                                  std::max(1, entry.loops()),
                              3)
               << "\n";
        }
    }
    return os.str();
}

std::string
renderDeviationFigure(const std::string &title,
                      const std::vector<DeviationSeries> &series)
{
    std::ostringstream os;
    os << "== " << title << " ==\n";
    TextTable table({"series", "loops", "x=0 %", "x=1 %", "x=2 %",
                     "x=3 %", "x>=4 %", "<=1 %", "copies", "fail"});
    for (const DeviationSeries &entry : series) {
        const double tail = 100.0 - entry.percentAtMost(3) -
                            100.0 * entry.failures /
                                std::max(1, entry.loops());
        table.addRow({
            entry.label,
            std::to_string(entry.loops()),
            formatFixed(entry.percentAt(0), 1),
            formatFixed(entry.percentAt(1), 1),
            formatFixed(entry.percentAt(2), 1),
            formatFixed(entry.percentAt(3), 1),
            formatFixed(std::max(0.0, tail), 1),
            formatFixed(entry.percentAtMost(1), 1),
            std::to_string(entry.totalCopies),
            std::to_string(entry.failures),
        });
    }
    os << table.render();
    return os.str();
}

} // namespace cams
