/**
 * @file
 * Human-readable digest of a batch run's timing and assignment-churn
 * profile: which loops cost the most assignment time, and which ones
 * triggered eviction storms in the §4.3 iteration. Complements the
 * Chrome trace (the full timeline) with the two leaderboards a person
 * actually scans first.
 */

#ifndef CAMS_REPORT_TRACE_SUMMARY_HH
#define CAMS_REPORT_TRACE_SUMMARY_HH

#include <string>
#include <vector>

#include "pipeline/batch.hh"

namespace cams
{

/**
 * Renders two top-N tables over one batch outcome:
 *
 *  1. loops ranked by assignment wall time (assign ms, total ms,
 *     achieved II, II attempts);
 *  2. loops ranked by evictions -- the eviction-storm leaderboard
 *     (evictions, failed assignment retries, attempts, outcome).
 *
 * @param names one label per job, parallel to outcome.results (loop
 *        names from the suite; padded with "job<i>" when short).
 */
std::string renderTraceSummary(const std::vector<std::string> &names,
                               const BatchOutcome &outcome,
                               int topN = 10);

} // namespace cams

#endif // CAMS_REPORT_TRACE_SUMMARY_HH
