/**
 * @file
 * Experiment runner and the paper's quality metric.
 *
 * Every figure in the paper plots, for a machine configuration and an
 * assignment variant, the distribution of
 *   deviation = II(clustered) - II(equally wide unified machine)
 * over the loop suite; x = 0 means the assignment hid all
 * communication. This module computes baseline IIs once per unified
 * machine and turns clustered runs into deviation histograms.
 */

#ifndef CAMS_REPORT_DEVIATION_HH
#define CAMS_REPORT_DEVIATION_HH

#include <string>
#include <vector>

#include "machine/machine.hh"
#include "pipeline/driver.hh"
#include "support/metrics.hh"
#include "support/stats.hh"
#include "workload/suite.hh"

namespace cams
{

/** One curve of a paper figure. */
struct DeviationSeries
{
    std::string label;
    IntHistogram deviations;

    /** Loops the clustered pipeline could not compile at all. */
    int failures = 0;

    /** Total copy operations inserted across the suite. */
    long totalCopies = 0;

    /** Loops measured (including failures). */
    int loops() const
    {
        return static_cast<int>(deviations.total()) + failures;
    }

    /** Percentage of loops at exactly this deviation. */
    double percentAt(int deviation) const;

    /** Percentage of loops at deviation <= bound. */
    double percentAtMost(int deviation) const;
};

/**
 * Baseline IIs of the suite on a unified machine (one entry per
 * loop). Fatal when the baseline itself cannot be scheduled -- the
 * unified machine always can, so that indicates a bug.
 *
 * @param threads worker count for the batch engine; the results are
 *        identical for every value (each compile is independent).
 * @param metrics optional registry the batch run aggregates into
 *        (see BatchRunner::run).
 */
std::vector<int> unifiedBaseline(const std::vector<Dfg> &suite,
                                 const MachineDesc &unified,
                                 const CompileOptions &options = {},
                                 int threads = 1,
                                 MetricsRegistry *metrics = nullptr);

/**
 * Runs the clustered pipeline over the suite through the batch engine
 * and histograms the II deviations against a precomputed baseline.
 * Deterministic for every @p threads value.
 */
DeviationSeries runClusteredSeries(const std::vector<Dfg> &suite,
                                   const MachineDesc &machine,
                                   const std::vector<int> &baseline,
                                   const CompileOptions &options,
                                   const std::string &label,
                                   int threads = 1,
                                   MetricsRegistry *metrics = nullptr);

} // namespace cams

#endif // CAMS_REPORT_DEVIATION_HH
