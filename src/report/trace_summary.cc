#include "report/trace_summary.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "report/table.hh"
#include "support/str.hh"

namespace cams
{

namespace
{

std::string
labelOf(const std::vector<std::string> &names, size_t i)
{
    if (i < names.size() && !names[i].empty())
        return names[i];
    return "job" + std::to_string(i);
}

std::string
outcomeOf(const CompileResult &result)
{
    if (!result.success)
        return failureKindName(result.failure);
    if (result.degraded != DegradeLevel::None)
        return degradeLevelName(result.degraded);
    return "ok";
}

/** Indices of the top @p n jobs by @p key, descending, ties by id. */
template <typename Key>
std::vector<size_t>
topBy(size_t jobs, int n, Key key)
{
    std::vector<size_t> order(jobs);
    std::iota(order.begin(), order.end(), size_t(0));
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (key(a) != key(b))
            return key(a) > key(b);
        return a < b;
    });
    if (static_cast<int>(order.size()) > n)
        order.resize(n);
    return order;
}

} // namespace

std::string
renderTraceSummary(const std::vector<std::string> &names,
                   const BatchOutcome &outcome, int topN)
{
    const std::vector<CompileResult> &results = outcome.results;
    std::ostringstream os;

    os << "Top " << topN << " loops by assignment time\n";
    TextTable assign_table(
        {"loop", "assign_ms", "total_ms", "ii", "attempts"});
    for (size_t i : topBy(results.size(), topN, [&](size_t j) {
             return results[j].phaseMs.assignMs;
         })) {
        const CompileResult &r = results[i];
        assign_table.addRow({labelOf(names, i),
                             formatFixed(r.phaseMs.assignMs, 2),
                             formatFixed(r.phaseMs.totalMs, 2),
                             std::to_string(r.ii),
                             std::to_string(r.attempts)});
    }
    os << assign_table.render();

    os << "\nEviction-storm leaderboard (top " << topN << ")\n";
    TextTable evict_table({"loop", "evictions", "assign_retries",
                           "attempts", "outcome"});
    for (size_t i : topBy(results.size(), topN, [&](size_t j) {
             return static_cast<double>(results[j].evictions);
         })) {
        const CompileResult &r = results[i];
        evict_table.addRow({labelOf(names, i),
                            std::to_string(r.evictions),
                            std::to_string(r.assignRetries),
                            std::to_string(r.attempts),
                            outcomeOf(r)});
    }
    os << evict_table.render();
    return os.str();
}

} // namespace cams
