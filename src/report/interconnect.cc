#include "report/interconnect.hh"

#include "mrt/mrt.hh"
#include "support/logging.hh"

namespace cams
{

InterconnectStats
computeInterconnectStats(const AnnotatedLoop &loop,
                         const Schedule &schedule,
                         const ResourceModel &model)
{
    InterconnectStats stats;
    cams_assert(schedule.ii > 0, "stats on an empty schedule");

    Mrt mrt(model, schedule.ii);
    for (NodeId v = 0; v < loop.graph.numNodes(); ++v) {
        mrt.reserveAt(loop.request(model, v), schedule.row(v));
        if (loop.isCopy(v))
            ++stats.copies;
    }

    auto occupancy = [&](PoolId pool) {
        const double capacity =
            static_cast<double>(model.capacity(pool)) * schedule.ii;
        return mrt.usedTotal(pool) / capacity;
    };

    const MachineDesc &machine = model.machine();
    if (model.busPool() != invalidPool)
        stats.busUtilization = occupancy(model.busPool());
    for (size_t link = 0; link < machine.links.size(); ++link) {
        stats.linkUtilization.push_back(
            occupancy(model.linkPool(static_cast<int>(link))));
    }

    int read_files = 0;
    int write_files = 0;
    for (ClusterId c = 0; c < machine.numClusters(); ++c) {
        if (model.readPool(c) != invalidPool) {
            stats.readPortUtilization += occupancy(model.readPool(c));
            ++read_files;
        }
        if (model.writePool(c) != invalidPool) {
            stats.writePortUtilization += occupancy(model.writePool(c));
            ++write_files;
        }
    }
    if (read_files > 0)
        stats.readPortUtilization /= read_files;
    if (write_files > 0)
        stats.writePortUtilization /= write_files;
    return stats;
}

} // namespace cams
