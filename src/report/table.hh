/**
 * @file
 * Plain-text rendering of experiment results: aligned tables and the
 * deviation-histogram layout used by every figure reproduction.
 */

#ifndef CAMS_REPORT_TABLE_HH
#define CAMS_REPORT_TABLE_HH

#include <string>
#include <vector>

#include "report/deviation.hh"

namespace cams
{

/** Builds fixed-width text tables row by row. */
class TextTable
{
  public:
    /** Sets the column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Appends one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Renders with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Renders the figure layout: one row per series, columns for the
 * percentage of loops at deviation 0, 1, 2, 3 and >= 4 plus the
 * cumulative <=1 column the paper quotes for the grid machine.
 */
std::string renderDeviationFigure(
    const std::string &title,
    const std::vector<DeviationSeries> &series);

/**
 * CSV form of a figure (one row per series and deviation value, with
 * count and percentage columns), for external plotting.
 */
std::string renderDeviationCsv(
    const std::vector<DeviationSeries> &series);

} // namespace cams

#endif // CAMS_REPORT_TABLE_HH
