#include "report/deviation.hh"

#include "pipeline/batch.hh"
#include "support/logging.hh"

namespace cams
{

double
DeviationSeries::percentAt(int deviation) const
{
    const int total = loops();
    if (total == 0)
        return 0.0;
    return 100.0 * static_cast<double>(deviations.countAt(deviation)) /
           total;
}

double
DeviationSeries::percentAtMost(int deviation) const
{
    const int total = loops();
    if (total == 0)
        return 0.0;
    return 100.0 *
           static_cast<double>(deviations.countAtMost(deviation)) / total;
}

std::vector<int>
unifiedBaseline(const std::vector<Dfg> &suite, const MachineDesc &unified,
                const CompileOptions &options, int threads,
                MetricsRegistry *metrics)
{
    const BatchOutcome batch = BatchRunner::run(
        unifiedJobs(suite, unified, options), threads, 0.0, metrics);
    std::vector<int> baseline;
    baseline.reserve(suite.size());
    for (size_t i = 0; i < suite.size(); ++i) {
        // A degraded (serialized) II is not a baseline: it would
        // silently poison every deviation measured against it.
        if (!batch.results[i].success ||
            batch.results[i].degraded != DegradeLevel::None) {
            cams_fatal("unified baseline failed on loop '",
                       suite[i].name(), "': ",
                       failureKindName(batch.results[i].failure));
        }
        baseline.push_back(batch.results[i].ii);
    }
    return baseline;
}

DeviationSeries
runClusteredSeries(const std::vector<Dfg> &suite,
                   const MachineDesc &machine,
                   const std::vector<int> &baseline,
                   const CompileOptions &options, const std::string &label,
                   int threads, MetricsRegistry *metrics)
{
    cams_assert(suite.size() == baseline.size(),
                "baseline does not match the suite");
    DeviationSeries series;
    series.label = label;
    const BatchOutcome batch = BatchRunner::run(
        clusteredJobs(suite, machine, options), threads, 0.0, metrics);
    for (size_t i = 0; i < suite.size(); ++i) {
        const CompileResult &result = batch.results[i];
        // The figures measure the paper's pipeline: a compile rescued
        // by the degradation ladder counts as a failure here.
        if (!result.success || result.degraded != DegradeLevel::None) {
            ++series.failures;
            continue;
        }
        series.totalCopies += result.copies;
        series.deviations.add(result.ii - baseline[i]);
    }
    return series;
}

} // namespace cams
