#include "report/deviation.hh"

#include "support/logging.hh"

namespace cams
{

double
DeviationSeries::percentAt(int deviation) const
{
    const int total = loops();
    if (total == 0)
        return 0.0;
    return 100.0 * static_cast<double>(deviations.countAt(deviation)) /
           total;
}

double
DeviationSeries::percentAtMost(int deviation) const
{
    const int total = loops();
    if (total == 0)
        return 0.0;
    return 100.0 *
           static_cast<double>(deviations.countAtMost(deviation)) / total;
}

std::vector<int>
unifiedBaseline(const std::vector<Dfg> &suite, const MachineDesc &unified,
                const CompileOptions &options)
{
    std::vector<int> baseline;
    baseline.reserve(suite.size());
    for (const Dfg &loop : suite) {
        const CompileResult result =
            compileUnified(loop, unified, options);
        if (!result.success) {
            cams_fatal("unified baseline failed on loop '", loop.name(),
                       "'");
        }
        baseline.push_back(result.ii);
    }
    return baseline;
}

DeviationSeries
runClusteredSeries(const std::vector<Dfg> &suite,
                   const MachineDesc &machine,
                   const std::vector<int> &baseline,
                   const CompileOptions &options, const std::string &label)
{
    cams_assert(suite.size() == baseline.size(),
                "baseline does not match the suite");
    DeviationSeries series;
    series.label = label;
    for (size_t i = 0; i < suite.size(); ++i) {
        const CompileResult result =
            compileClustered(suite[i], machine, options);
        if (!result.success) {
            ++series.failures;
            continue;
        }
        series.totalCopies += result.copies;
        series.deviations.add(result.ii - baseline[i]);
    }
    return series;
}

} // namespace cams
