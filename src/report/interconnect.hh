/**
 * @file
 * Interconnect occupancy statistics of a modulo schedule: how much of
 * the bus, link and port bandwidth the kernel's copies actually
 * consume. Backs the bus/port sweep analysis (Figures 14-17): the
 * knee appears where utilization stops being the binding constraint.
 */

#ifndef CAMS_REPORT_INTERCONNECT_HH
#define CAMS_REPORT_INTERCONNECT_HH

#include <vector>

#include "assign/assignment.hh"
#include "sched/schedule.hh"

namespace cams
{

/** Fraction of each interconnect resource the kernel occupies. */
struct InterconnectStats
{
    /** Used bus slots / (buses * II); 0 on busless machines. */
    double busUtilization = 0.0;

    /** Per-link occupancy (point-to-point machines). */
    std::vector<double> linkUtilization;

    /** Mean read/write port occupancy over clusters with ports. */
    double readPortUtilization = 0.0;
    double writePortUtilization = 0.0;

    /** Copy operations in the kernel. */
    int copies = 0;
};

/** Replays the schedule's reservations and measures occupancy. */
InterconnectStats computeInterconnectStats(const AnnotatedLoop &loop,
                                           const Schedule &schedule,
                                           const ResourceModel &model);

} // namespace cams

#endif // CAMS_REPORT_INTERCONNECT_HH
