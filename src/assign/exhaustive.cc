#include "assign/exhaustive.hh"

#include <set>
#include <string>
#include <vector>

#include "assign/router.hh"
#include "graph/recmii.hh"
#include "support/logging.hh"

namespace cams
{

AnnotatedLoop
annotatePartition(const Dfg &graph,
                  const std::vector<ClusterId> &cluster_of,
                  const MachineDesc &machine)
{
    AnnotatedLoop out;
    out.numOriginalNodes = graph.numNodes();
    out.graph.setName(graph.name());
    for (const DfgNode &node : graph.nodes()) {
        out.graph.addNode(node.op, node.latency, node.name);
        out.placement.push_back({cluster_of[node.id], {}});
    }

    // serving[value][cluster] = node delivering the value there.
    std::vector<std::vector<NodeId>> serving(
        graph.numNodes(),
        std::vector<NodeId>(machine.numClusters(), invalidNode));

    for (NodeId v = 0; v < graph.numNodes(); ++v) {
        std::set<ClusterId> dst_set;
        for (NodeId succ : graph.successors(v)) {
            if (succ != v && cluster_of[succ] != cluster_of[v])
                dst_set.insert(cluster_of[succ]);
        }
        if (dst_set.empty())
            continue;
        const std::vector<ClusterId> dsts(dst_set.begin(),
                                          dst_set.end());
        const std::string base = "cp_" + graph.node(v).name;
        if (machine.broadcast()) {
            const NodeId copy =
                out.graph.addNode(Opcode::Copy, 1, base);
            out.placement.push_back({cluster_of[v], dsts});
            out.graph.addEdge(v, copy, graph.node(v).latency, 0);
            for (ClusterId dst : dsts)
                serving[v][dst] = copy;
        } else {
            const auto hops = planHops(machine, cluster_of[v], dsts);
            std::vector<NodeId> landing(machine.numClusters(),
                                        invalidNode);
            for (const Hop &hop : hops) {
                const NodeId copy = out.graph.addNode(
                    Opcode::Copy, 1,
                    base + "_" + std::to_string(hop.to));
                out.placement.push_back({hop.from, {hop.to}});
                if (hop.from == cluster_of[v]) {
                    out.graph.addEdge(v, copy, graph.node(v).latency,
                                      0);
                } else {
                    out.graph.addEdge(landing[hop.from], copy, 1, 0);
                }
                landing[hop.to] = copy;
                serving[v][hop.to] = copy;
            }
        }
    }

    for (const DfgEdge &edge : graph.edges()) {
        if (cluster_of[edge.src] == cluster_of[edge.dst]) {
            out.graph.addEdge(edge.src, edge.dst, edge.latency,
                              edge.distance);
        } else {
            out.graph.addEdge(serving[edge.src][cluster_of[edge.dst]],
                              edge.dst, 1, edge.distance);
        }
    }
    return out;
}

namespace
{

bool
partitionFeasible(const Dfg &graph, const ResourceModel &model, int ii,
                  const std::vector<ClusterId> &cluster_of)
{
    const MachineDesc &machine = model.machine();
    Mrt mrt(model, ii);

    for (NodeId v = 0; v < graph.numNodes(); ++v) {
        const FuClass cls = opcodeFuClass(graph.node(v).op);
        if (model.fuPool(cluster_of[v], cls) == invalidPool)
            return false;
        if (!mrt.reserve(model.opRequest(cluster_of[v],
                                         graph.node(v).op))) {
            return false;
        }
    }

    for (NodeId v = 0; v < graph.numNodes(); ++v) {
        std::set<ClusterId> dsts;
        for (NodeId succ : graph.successors(v)) {
            if (succ != v && cluster_of[succ] != cluster_of[v])
                dsts.insert(cluster_of[succ]);
        }
        if (dsts.empty())
            continue;
        if (machine.broadcast()) {
            if (!mrt.reserve(model.copyRequest(
                    cluster_of[v],
                    std::vector<ClusterId>(dsts.begin(), dsts.end())))) {
                return false;
            }
        } else {
            const auto hops =
                planHops(machine, cluster_of[v],
                         std::vector<ClusterId>(dsts.begin(),
                                                dsts.end()));
            for (const Hop &hop : hops) {
                if (!mrt.reserve(
                        model.copyRequest(hop.from, {hop.to}))) {
                    return false;
                }
            }
        }
    }

    // Recurrences pay the copy latency when split.
    return recMii(annotatePartition(graph, cluster_of, machine).graph) <=
           ii;
}

} // namespace

ExhaustivePartition
exhaustiveAssign(const Dfg &graph, const ResourceModel &model, int ii,
                 int max_nodes)
{
    ExhaustivePartition out;
    const int n = graph.numNodes();
    const int clusters = model.machine().numClusters();
    cams_assert(clusters >= 1, "machine with no clusters");

    // Bound the enumeration: clusters^n <= 2^max_nodes.
    long long total = 1;
    for (int i = 0; i < n; ++i) {
        total *= clusters;
        if (total > (1LL << max_nodes)) {
            out.verdict = ExhaustiveVerdict::TooLarge;
            return out;
        }
    }

    std::vector<ClusterId> cluster_of(n, 0);
    for (long long code = 0; code < total; ++code) {
        long long rest = code;
        for (int v = 0; v < n; ++v) {
            cluster_of[v] = static_cast<ClusterId>(rest % clusters);
            rest /= clusters;
        }
        if (partitionFeasible(graph, model, ii, cluster_of)) {
            out.verdict = ExhaustiveVerdict::Feasible;
            out.clusterOf = cluster_of;
            return out;
        }
    }
    return out;
}

ExhaustiveVerdict
exhaustiveFeasible(const Dfg &graph, const ResourceModel &model, int ii,
                   int max_nodes)
{
    return exhaustiveAssign(graph, model, ii, max_nodes).verdict;
}

int
exhaustiveBestIi(const Dfg &graph, const ResourceModel &model, int lower,
                 int limit, int max_nodes)
{
    for (int ii = lower; ii <= limit; ++ii) {
        const ExhaustiveVerdict verdict =
            exhaustiveFeasible(graph, model, ii, max_nodes);
        if (verdict == ExhaustiveVerdict::TooLarge)
            return 0;
        if (verdict == ExhaustiveVerdict::Feasible)
            return ii;
    }
    return -1;
}

} // namespace cams
