/**
 * @file
 * The cluster assignment engine (the paper's Section 4).
 *
 * Given a loop graph, a machine and a candidate II, the assigner maps
 * every operation to a cluster and inserts the copy operations needed
 * by inter-cluster dependences, packing everything into per-cluster
 * modulo reservation tables of length II. Its three pillars:
 *
 *  1. Node grouping and ordering (§4.1): recurrences first, most
 *     critical SCC first, swing order within each set.
 *  2. Tentative assignment and selection (§4.2): each node is
 *     tentatively placed on every cluster; the Figure 10 cascade --
 *     SCC affinity, the PCR<=MRC copy-space prediction, fewest
 *     required copies, most free resources -- picks the winner.
 *  3. Iteration (§4.3): when no cluster is feasible, the node is
 *     forced onto the Figure 11 cluster, conflicting nodes are
 *     evicted and re-queued, and a per-node previously-tried-cluster
 *     list prevents repetition. An eviction budget guarantees
 *     termination; exhausting it fails the II so the driver retries
 *     with a larger one.
 *
 * The four variants evaluated in the paper's Figures 12/13 are
 * exposed through AssignOptions: {iterative} x {full heuristic}.
 */

#ifndef CAMS_ASSIGN_ASSIGNER_HH
#define CAMS_ASSIGN_ASSIGNER_HH

#include <string>
#include <vector>

#include "assign/assignment.hh"
#include "graph/dfg.hh"
#include "mrt/mrt.hh"
#include "support/fault.hh"
#include "support/trace.hh"

namespace cams
{

class LoopContext;

/** Which assignment policy drives cluster selection. */
enum class AssignPolicy
{
    /** The paper's algorithm (Figures 9-11). */
    Paper,

    /**
     * A BUG-flavored baseline (Ellis; see the paper's §1.4 related
     * work): nodes in acyclic dependence order, each placed on the
     * cluster minimizing its estimated completion time -- the
     * schedule-length objective of trace scheduling. Recurrence
     * criticality and copy prediction are ignored, which is exactly
     * why the paper argues such schemes fit modulo scheduling poorly.
     */
    AcyclicBug,
};

/** Algorithm variant knobs (paper Section 6 nomenclature). */
struct AssignOptions
{
    AssignPolicy policy = AssignPolicy::Paper;

    /** Evict-and-retry past failures (§4.3); false = fail at once. */
    bool iterative = true;

    /** Apply Figure 10 lines 3-8; false = "Simple" selection. */
    bool fullHeuristic = true;

    /**
     * Ablation knobs for the individual ingredients of the full
     * heuristic (all on by default; ignored when fullHeuristic is
     * false). Used by the ablation experiments to isolate what each
     * contributes.
     */
    bool useSccAffinity = true;  ///< Figure 10 line 4
    bool usePcrPrediction = true; ///< Figure 10 line 6 (PCR <= MRC)
    bool useSwingOrder = true;   ///< false: assign in plain id order

    /**
     * Evictions allowed per run: factor * node count (min 16).
     * Exhausting the budget fails the assignment at this II.
     */
    double evictionBudgetFactor = 6.0;

    /**
     * Attempts per II before giving up (iterative variants only).
     * Each restart rotates the tie-breaks of the selection cascade,
     * exploring a different corner of the search space; the first
     * attempt always uses the canonical (paper) tie-breaking.
     */
    int restartsPerIi = 3;

    /**
     * Tie-break rotation to try first; -1 (or out of range) keeps
     * the canonical 0, 1, ... order. Set by the compile cache's
     * warm-start path to replay the rotation that succeeded last
     * time; the remaining rotations still follow in canonical order,
     * so the set of attempts is unchanged -- only their order.
     */
    int preferredRotation = -1;

    /**
     * MRT query implementation. Word is the packed-bitmask fast path;
     * Reference keeps the original row-counting loops (identical
     * results, used as the A/B perf baseline).
     */
    MrtScanMode mrtScan = MrtScanMode::Word;

    /**
     * Optional fault injector (non-owning; stress testing only).
     * Sites consulted: AssignEvictionStorm vetoes the selection
     * cascade's winner, RouterBusExhaustion fails a copy reservation.
     */
    FaultInjector *faults = nullptr;

    /**
     * Decision tracing (non-owning sink; off when null). At
     * TraceLevel::Decision the assigner emits one "assign_decide"
     * instant per placement with the Figure 10 per-cluster verdicts,
     * plus "force_place" instants for every Figure 11 repair round
     * with the evictor, the evictees and the tried-list size.
     */
    TraceConfig trace;
};

/** Outcome of one assignment attempt at a fixed II. */
struct AssignResult
{
    bool success = false;

    /** The annotated loop handed to the scheduler (success only). */
    AnnotatedLoop loop;

    /** Cluster of each original node (success only). */
    std::vector<ClusterId> clusterOf;

    /** Copy operations inserted. */
    int copies = 0;

    /** Evictions performed by the iterative mechanism. */
    int evictions = 0;

    /**
     * Failure classification (failures only). AssignLivelock when the
     * §4.3 repair dead-ended or blew its eviction budget,
     * InternalInvariant when every restart died in a cams_check; None
     * for the ordinary no-feasible-cluster outcome (the driver maps
     * that to IiExhausted after the II search runs dry).
     */
    FailureKind failure = FailureKind::None;

    /** Human-readable diagnosis matching `failure`. */
    std::string detail;

    /** Restarts abandoned because a cams_check invariant fired. */
    int invariantFailures = 0;

    /**
     * Tie-break rotation of the last attempt (the successful one when
     * success is true). Stored in the compile cache's warm-start
     * hints so a recompile can try the winning rotation first.
     */
    int rotationUsed = 0;

    /**
     * Wall time of the §4.1 ordering work (SCC sets, timing, swing
     * order) and of the copy-routing work (planning + reserving
     * communication inside tentative and committed placements),
     * accumulated over restarts. Always recorded -- the driver folds
     * these into CompileResult's per-phase times whether or not a
     * trace sink is attached.
     */
    double orderMillis = 0.0;
    double routeMillis = 0.0;

    /** MRT occupancy words examined (word-scan mode only). */
    long wordScans = 0;
};

/** Runs cluster assignment for loops on one machine. */
class ClusterAssigner
{
  public:
    /** Binds the assigner to a machine's resource model. */
    explicit ClusterAssigner(const ResourceModel &model,
                             AssignOptions options = {});

    /**
     * Assigns the loop at the given II.
     *
     * The graph must be well formed and executable on the machine.
     * Single-cluster machines short-circuit to a trivial assignment.
     *
     * When a LoopContext for the same graph is supplied, the
     * II-invariant analyses (SCCs, priority sets, timing, swing
     * order, preconditions) come from its cache and the MRT buffer is
     * reused across restarts and II probes; the result is identical
     * to a context-free run.
     */
    AssignResult run(const Dfg &graph, int ii,
                     LoopContext *ctx = nullptr) const;

  private:
    /** One attempt with the given tie-break rotation offset. */
    AssignResult runAttempt(const Dfg &graph, int ii, int rotation,
                            Mrt &mrt, LoopContext *ctx) const;

    const ResourceModel &model_;
    AssignOptions options_;
};

} // namespace cams

#endif // CAMS_ASSIGN_ASSIGNER_HH
