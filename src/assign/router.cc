#include "assign/router.hh"

#include <algorithm>
#include <deque>

#include "support/logging.hh"

namespace cams
{

std::vector<Hop>
planHops(const MachineDesc &machine, ClusterId src,
         const std::vector<ClusterId> &dsts)
{
    cams_assert(machine.interconnect == InterconnectKind::PointToPoint,
                "planHops on a bused machine");

    // BFS from the source; neighbors() returns ascending ids, so the
    // parent tree is deterministic.
    const int n = machine.numClusters();
    std::vector<ClusterId> parent(n, invalidCluster);
    std::vector<bool> seen(n, false);
    std::vector<int> bfs_depth(n, 0);
    std::deque<ClusterId> queue;
    queue.push_back(src);
    seen[src] = true;
    while (!queue.empty()) {
        const ClusterId at = queue.front();
        queue.pop_front();
        for (ClusterId next : machine.neighbors(at)) {
            if (!seen[next]) {
                seen[next] = true;
                parent[next] = at;
                bfs_depth[next] = bfs_depth[at] + 1;
                queue.push_back(next);
            }
        }
    }

    // Collect every cluster on some source->destination path.
    std::vector<bool> needed(n, false);
    for (ClusterId dst : dsts) {
        // Recoverable: these fire mid-assignment, where the driver can
        // classify the failure and fall back (see support/logging.hh).
        cams_check(dst != src, "routing a value to its own cluster");
        cams_check(seen[dst], "cluster ", dst, " unreachable from ",
                   src, " on machine '", machine.name, "'");
        for (ClusterId at = dst; at != src; at = parent[at])
            needed[at] = true;
    }

    // Emit hops ordered by BFS depth: parents always precede children.
    struct Entry
    {
        int depth;
        ClusterId to;
    };
    std::vector<Entry> entries;
    for (ClusterId c = 0; c < n; ++c) {
        if (needed[c])
            entries.push_back({bfs_depth[c], c});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &x, const Entry &y) {
                  if (x.depth != y.depth)
                      return x.depth < y.depth;
                  return x.to < y.to;
              });

    std::vector<Hop> hops;
    hops.reserve(entries.size());
    for (const Entry &entry : entries)
        hops.push_back({parent[entry.to], entry.to});
    return hops;
}

} // namespace cams
