/**
 * @file
 * The cluster selection cascades of the paper's Figures 9, 10 and 11.
 *
 * A Select(LIST, criteria) step keeps only the clusters satisfying the
 * criteria -- unless that would empty the list, in which case the list
 * is left untouched (Figure 9). Every criterion is therefore a soft
 * preference, applied in a fixed order of importance:
 *
 *  Figure 10 (normal assignment, full heuristic):
 *    1. feasible clusters only (hard: the initial list)
 *    A. clusters this node has not been tried on before (iterative)
 *    2. clusters already hosting another node of this node's SCC
 *    3. clusters whose predicted copy requests fit the reservable room
 *    4. clusters minimizing the required copies this placement adds
 *    5. clusters maximizing free resources
 *
 *  The "simple" selection variant of Section 6 drops steps 2-5.
 *
 *  Figure 11 (after a failure, choosing where to force the node):
 *    1. all clusters (the initial list)
 *    A. clusters this node has not been tried on before (iterative)
 *    2. clusters where the bare operation fits without conflicts
 *    3. clusters minimizing conflicting predecessors/successors
 */

#ifndef CAMS_ASSIGN_SELECTOR_HH
#define CAMS_ASSIGN_SELECTOR_HH

#include <vector>

#include "machine/machine.hh"

namespace cams
{

/** Facts gathered about one tentative cluster assignment. */
struct ClusterChoice
{
    ClusterId cluster = invalidCluster;

    /** Node + required copies fit the MRT (hard requirement). */
    bool feasible = false;

    /** Node was previously assigned here (repetition avoidance). */
    bool previouslyTried = false;

    /** Another node of the same SCC already lives here. */
    bool sccMate = false;

    /** Predicted copy requests <= maximum reservable copies. */
    bool pcrOk = false;

    /** Predicted incoming copies fit the write-port/bus room. */
    bool pcrInOk = false;

    /** Copy operations this placement adds (required copies). */
    int requiredCopies = 0;

    /** Free local slots on the cluster after the placement. */
    int freeResources = 0;

    /** Bare-op fit ignoring copies (Figure 11 line 3). */
    bool bareOpFits = false;

    /** Already-placed neighbors on other clusters (Figure 11 line 4). */
    int conflictingNeighbors = 0;
};

/**
 * Why the cascade picked what it picked: one verdict per input
 * choice, naming the cascade step that eliminated each loser. Filled
 * only when a caller asks for it (decision tracing); the cascade
 * itself pays nothing when the pointer is null.
 *
 * Step names (stable, snake_case): "feasible", "avoid_previous",
 * "scc_affinity", "pcr" (Figure 10's PCR > MRC outgoing-copy filter),
 * "pcr_in" (the incoming-copy extension), "required_copies",
 * "free_resources" for selectBestCluster; "avoid_previous",
 * "bare_op_fits", "conflicting_neighbors" for selectForcedCluster.
 */
struct SelectionExplain
{
    struct Verdict
    {
        ClusterId cluster = invalidCluster;

        /** Survived the whole cascade (lost only to the tie-break). */
        bool survived = false;

        /** First cascade step that removed this cluster, or null. */
        const char *eliminatedBy = nullptr;
    };

    /** One verdict per entry of the input choice vector, in order. */
    std::vector<Verdict> verdicts;

    /** The picked cluster (invalidCluster when nothing is feasible). */
    ClusterId winner = invalidCluster;

    /** Last cascade step that actually narrowed the list, or null. */
    const char *decidingStep = nullptr;
};

/**
 * Figure 10 cascade over tentatively evaluated clusters.
 *
 * @param choices one entry per feasible cluster (infeasible entries
 *        are ignored).
 * @param full_heuristic apply steps 2-5; false reproduces the paper's
 *        "Simple" selection.
 * @param avoid_previous apply step A (iterative variants only).
 * @param in_scc the node belongs to a non-trivial SCC (enables 2).
 * @param rotation rotates the final pick among equally ranked
 *        clusters; the assigner advances it after every forced
 *        placement so repeated repair rounds explore different
 *        tie-breaks instead of cycling (§4.3.2's goal).
 * @param explain when non-null, filled with per-cluster verdicts for
 *        the decision trace (adds no cost when null).
 * @return the selected cluster, or invalidCluster when nothing is
 *         feasible.
 */
ClusterId selectBestCluster(const std::vector<ClusterChoice> &choices,
                            bool full_heuristic, bool avoid_previous,
                            bool in_scc, int rotation = 0,
                            bool use_scc_affinity = true,
                            bool use_pcr = true,
                            SelectionExplain *explain = nullptr);

/**
 * Figure 11 cascade: where to force a node nothing can host.
 *
 * @param choices one entry per cluster of the machine.
 * @param explain when non-null, filled with per-cluster verdicts.
 * @return the selected cluster (never invalidCluster for a non-empty
 *         input).
 */
ClusterId selectForcedCluster(const std::vector<ClusterChoice> &choices,
                              bool avoid_previous,
                              SelectionExplain *explain = nullptr);

} // namespace cams

#endif // CAMS_ASSIGN_SELECTOR_HH
