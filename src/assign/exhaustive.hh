/**
 * @file
 * Exhaustive cluster-assignment oracle for small loops.
 *
 * Enumerates every cluster partition of the operations and checks
 * count-mode resource feasibility (function units, the per-value
 * copies with their ports and buses/links) plus the recurrence bound
 * of the annotated graph. Exponential, so only usable for a handful
 * of operations -- which is exactly what makes it a trustworthy
 * quality oracle for the heuristic in tests and analyses: when the
 * oracle proves no assignment exists at an II, a deviation there is
 * optimal, and when it finds one, the heuristic should not be far
 * behind.
 */

#ifndef CAMS_ASSIGN_EXHAUSTIVE_HH
#define CAMS_ASSIGN_EXHAUSTIVE_HH

#include <vector>

#include "assign/assignment.hh"
#include "graph/dfg.hh"
#include "mrt/mrt.hh"

namespace cams
{

/** Oracle verdict for one loop at one II. */
enum class ExhaustiveVerdict
{
    Feasible,   ///< some partition fits the resources at this II
    Infeasible, ///< no partition fits: a larger II is unavoidable
    TooLarge,   ///< the loop exceeds the enumeration budget
};

/** A verdict plus the witness partition (Feasible only). */
struct ExhaustivePartition
{
    ExhaustiveVerdict verdict = ExhaustiveVerdict::Infeasible;

    /** Cluster of each original node (verdict == Feasible only). */
    std::vector<ClusterId> clusterOf;
};

/**
 * Searches all placements of the loop at the given II.
 *
 * @param max_nodes enumeration cutoff: numClusters^numNodes must not
 *        exceed numClusters^max_nodes.
 *
 * The feasibility model matches the assignment phase: one FU slot per
 * op; per crossing value, one broadcast copy (bused) or a BFS hop
 * chain (point-to-point); and the annotated recurrence bound RecMII
 * must not exceed the II (split recurrences pay their copy latency).
 */
ExhaustiveVerdict exhaustiveFeasible(const Dfg &graph,
                                     const ResourceModel &model, int ii,
                                     int max_nodes = 14);

/**
 * Like exhaustiveFeasible, but returns the first feasible partition so
 * it can actually be compiled. This is what the pipeline driver's
 * degradation ladder runs when the heuristic assigner gives up on a
 * small loop (see pipeline/driver.hh).
 */
ExhaustivePartition exhaustiveAssign(const Dfg &graph,
                                     const ResourceModel &model, int ii,
                                     int max_nodes = 14);

/**
 * Materializes a fixed partition into a schedulable AnnotatedLoop:
 * copy nodes with placements for every crossing value (one broadcast
 * copy on bused machines, a BFS hop chain on point-to-point ones),
 * exactly as the heuristic assigner would have annotated it.
 */
AnnotatedLoop annotatePartition(const Dfg &graph,
                                const std::vector<ClusterId> &cluster_of,
                                const MachineDesc &machine);

/**
 * Smallest II in [lower, limit] the oracle accepts, or 0 when the
 * loop is too large to enumerate (and -1 when nothing up to the
 * limit works).
 */
int exhaustiveBestIi(const Dfg &graph, const ResourceModel &model,
                     int lower, int limit, int max_nodes = 14);

} // namespace cams

#endif // CAMS_ASSIGN_EXHAUSTIVE_HH
