#include "assign/selector.hh"

#include <algorithm>
#include <functional>

#include "support/logging.hh"

namespace cams
{

namespace
{

using Filter = std::function<bool(const ClusterChoice &)>;

/** Figure 9: keep the old list when the filter would empty it. */
void
softSelect(std::vector<const ClusterChoice *> &list, const Filter &keep)
{
    std::vector<const ClusterChoice *> filtered;
    for (const ClusterChoice *choice : list) {
        if (keep(*choice))
            filtered.push_back(choice);
    }
    if (!filtered.empty())
        list = std::move(filtered);
}

/** Keeps the minimizers of a metric (soft: a min always exists). */
void
softSelectMin(std::vector<const ClusterChoice *> &list,
              const std::function<int(const ClusterChoice &)> &metric)
{
    if (list.empty())
        return;
    int best = metric(*list.front());
    for (const ClusterChoice *choice : list)
        best = std::min(best, metric(*choice));
    softSelect(list, [&](const ClusterChoice &choice) {
        return metric(choice) == best;
    });
}

} // namespace

ClusterId
selectBestCluster(const std::vector<ClusterChoice> &choices,
                  bool full_heuristic, bool avoid_previous, bool in_scc,
                  int rotation, bool use_scc_affinity, bool use_pcr)
{
    std::vector<const ClusterChoice *> list;
    for (const ClusterChoice &choice : choices) {
        if (choice.feasible)
            list.push_back(&choice);
    }
    if (list.empty())
        return invalidCluster;

    if (avoid_previous) {
        softSelect(list, [](const ClusterChoice &choice) {
            return !choice.previouslyTried;
        });
    }

    if (full_heuristic) {
        if (in_scc && use_scc_affinity) {
            softSelect(list, [](const ClusterChoice &choice) {
                return choice.sccMate;
            });
        }
        if (use_pcr) {
            softSelect(list, [](const ClusterChoice &choice) {
                return choice.pcrOk;
            });
            softSelect(list, [](const ClusterChoice &choice) {
                return choice.pcrInOk;
            });
        }
        softSelectMin(list, [](const ClusterChoice &choice) {
            return choice.requiredCopies;
        });
        softSelectMin(list, [](const ClusterChoice &choice) {
            return -choice.freeResources;
        });
    }

    return list[static_cast<size_t>(rotation) % list.size()]->cluster;
}

ClusterId
selectForcedCluster(const std::vector<ClusterChoice> &choices,
                    bool avoid_previous)
{
    cams_assert(!choices.empty(), "forced selection over no clusters");
    std::vector<const ClusterChoice *> list;
    for (const ClusterChoice &choice : choices)
        list.push_back(&choice);

    if (avoid_previous) {
        softSelect(list, [](const ClusterChoice &choice) {
            return !choice.previouslyTried;
        });
    }
    softSelect(list, [](const ClusterChoice &choice) {
        return choice.bareOpFits;
    });
    softSelectMin(list, [](const ClusterChoice &choice) {
        return choice.conflictingNeighbors;
    });
    return list.front()->cluster;
}

} // namespace cams
