#include "assign/selector.hh"

#include <algorithm>
#include <functional>

#include "support/logging.hh"

namespace cams
{

namespace
{

using Filter = std::function<bool(const ClusterChoice &)>;

/**
 * The surviving-cluster list plus the optional decision record. Every
 * Select step runs through here so the Figure 9 soft-keep rule and
 * the explain bookkeeping exist once.
 */
class Cascade
{
  public:
    Cascade(const std::vector<ClusterChoice> &choices,
            SelectionExplain *explain)
        : base_(choices.data()), explain_(explain)
    {
        if (explain_) {
            explain_->verdicts.assign(choices.size(), {});
            for (size_t i = 0; i < choices.size(); ++i)
                explain_->verdicts[i].cluster = choices[i].cluster;
            explain_->winner = invalidCluster;
            explain_->decidingStep = nullptr;
        }
    }

    /** Admits a choice into the initial list. */
    void
    admit(const ClusterChoice &choice)
    {
        list_.push_back(&choice);
    }

    /** Records a choice excluded from the initial list. */
    void
    exclude(const ClusterChoice &choice, const char *step)
    {
        if (explain_)
            verdictOf(choice).eliminatedBy = step;
    }

    bool empty() const { return list_.empty(); }

    size_t size() const { return list_.size(); }

    const ClusterChoice &at(size_t i) const { return *list_[i]; }

    /** Figure 9: keep the old list when the filter would empty it. */
    void
    select(const char *step, const Filter &keep)
    {
        std::vector<const ClusterChoice *> filtered;
        for (const ClusterChoice *choice : list_) {
            if (keep(*choice))
                filtered.push_back(choice);
        }
        if (filtered.empty() || filtered.size() == list_.size())
            return; // vacuous or would empty the list: soft-keep
        if (explain_) {
            for (const ClusterChoice *choice : list_) {
                if (!keep(*choice) &&
                    !verdictOf(*choice).eliminatedBy) {
                    verdictOf(*choice).eliminatedBy = step;
                }
            }
            explain_->decidingStep = step;
        }
        list_ = std::move(filtered);
    }

    /** Keeps the minimizers of a metric (soft: a min always exists). */
    void
    selectMin(const char *step,
              const std::function<int(const ClusterChoice &)> &metric)
    {
        if (list_.empty())
            return;
        int best = metric(*list_.front());
        for (const ClusterChoice *choice : list_)
            best = std::min(best, metric(*choice));
        select(step, [&](const ClusterChoice &choice) {
            return metric(choice) == best;
        });
    }

    /** Stamps the final pick and the tie-break survivors. */
    ClusterId
    finish(const ClusterChoice &picked)
    {
        if (explain_) {
            for (const ClusterChoice *choice : list_)
                verdictOf(*choice).survived = true;
            explain_->winner = picked.cluster;
        }
        return picked.cluster;
    }

  private:
    SelectionExplain::Verdict &
    verdictOf(const ClusterChoice &choice)
    {
        return explain_->verdicts[static_cast<size_t>(&choice - base_)];
    }

    const ClusterChoice *base_;
    SelectionExplain *explain_;
    std::vector<const ClusterChoice *> list_;
};

} // namespace

ClusterId
selectBestCluster(const std::vector<ClusterChoice> &choices,
                  bool full_heuristic, bool avoid_previous, bool in_scc,
                  int rotation, bool use_scc_affinity, bool use_pcr,
                  SelectionExplain *explain)
{
    Cascade cascade(choices, explain);
    for (const ClusterChoice &choice : choices) {
        if (choice.feasible)
            cascade.admit(choice);
        else
            cascade.exclude(choice, "feasible");
    }
    if (cascade.empty())
        return invalidCluster;

    if (avoid_previous) {
        cascade.select("avoid_previous",
                       [](const ClusterChoice &choice) {
                           return !choice.previouslyTried;
                       });
    }

    if (full_heuristic) {
        if (in_scc && use_scc_affinity) {
            cascade.select("scc_affinity",
                           [](const ClusterChoice &choice) {
                               return choice.sccMate;
                           });
        }
        if (use_pcr) {
            cascade.select("pcr", [](const ClusterChoice &choice) {
                return choice.pcrOk;
            });
            cascade.select("pcr_in", [](const ClusterChoice &choice) {
                return choice.pcrInOk;
            });
        }
        cascade.selectMin("required_copies",
                          [](const ClusterChoice &choice) {
                              return choice.requiredCopies;
                          });
        cascade.selectMin("free_resources",
                          [](const ClusterChoice &choice) {
                              return -choice.freeResources;
                          });
    }

    return cascade.finish(
        cascade.at(static_cast<size_t>(rotation) % cascade.size()));
}

ClusterId
selectForcedCluster(const std::vector<ClusterChoice> &choices,
                    bool avoid_previous, SelectionExplain *explain)
{
    cams_assert(!choices.empty(), "forced selection over no clusters");
    Cascade cascade(choices, explain);
    for (const ClusterChoice &choice : choices)
        cascade.admit(choice);

    if (avoid_previous) {
        cascade.select("avoid_previous",
                       [](const ClusterChoice &choice) {
                           return !choice.previouslyTried;
                       });
    }
    cascade.select("bare_op_fits", [](const ClusterChoice &choice) {
        return choice.bareOpFits;
    });
    cascade.selectMin("conflicting_neighbors",
                      [](const ClusterChoice &choice) {
                          return choice.conflictingNeighbors;
                      });
    return cascade.finish(cascade.at(0));
}

} // namespace cams
