/**
 * @file
 * Copy routing.
 *
 * On a bused machine a value reaches any set of destination clusters
 * with a single broadcast copy, so no routing is needed. On a
 * point-to-point machine (the paper's grid, Figure 4) a value must be
 * relayed hop by hop along links; a destination two hops away costs a
 * chain of two copies. This module plans the set of hops -- a tree
 * rooted at the source cluster, built over BFS shortest paths so that
 * routes to multiple destinations share their common prefix.
 */

#ifndef CAMS_ASSIGN_ROUTER_HH
#define CAMS_ASSIGN_ROUTER_HH

#include <vector>

#include "machine/machine.hh"

namespace cams
{

/** One relay step of a routed copy. */
struct Hop
{
    ClusterId from = invalidCluster;
    ClusterId to = invalidCluster;

    bool operator==(const Hop &other) const = default;
};

/**
 * Plans the hop tree delivering a value from @p src to every cluster
 * in @p dsts over the machine's links.
 *
 * Hops are returned in a topological order of the tree (a hop's
 * source is either @p src or the target of an earlier hop), which is
 * also the order copy operations must be chained in the graph.
 * Deterministic: BFS visits neighbors in ascending cluster id.
 *
 * Fatal when some destination is unreachable (validate() rejects
 * such machines already).
 */
std::vector<Hop> planHops(const MachineDesc &machine, ClusterId src,
                          const std::vector<ClusterId> &dsts);

} // namespace cams

#endif // CAMS_ASSIGN_ROUTER_HH
