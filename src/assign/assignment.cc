#include "assign/assignment.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cams
{

std::vector<PoolId>
AnnotatedLoop::request(const ResourceModel &model, NodeId node) const
{
    cams_assert(node >= 0 && node < graph.numNodes(), "bad node ", node);
    const OpPlacement &place = placement[node];
    if (graph.node(node).op == Opcode::Copy)
        return model.copyRequest(place.cluster, place.copyDsts);
    return model.opRequest(place.cluster, graph.node(node).op);
}

bool
AnnotatedLoop::validate(const MachineDesc &machine, std::string *why) const
{
    auto fail = [&](const std::string &message) {
        if (why)
            *why = message;
        return false;
    };

    std::string reason;
    if (!graph.wellFormed(&reason))
        return fail("malformed graph: " + reason);
    if (static_cast<int>(placement.size()) != graph.numNodes())
        return fail("placement size mismatch");
    if (numOriginalNodes < 0 || numOriginalNodes > graph.numNodes())
        return fail("bad original node count");

    for (NodeId v = 0; v < graph.numNodes(); ++v) {
        const OpPlacement &place = placement[v];
        const DfgNode &node = graph.node(v);
        if (place.cluster < 0 || place.cluster >= machine.numClusters())
            return fail("node " + node.name + " placed off-machine");
        if (node.op == Opcode::Copy) {
            if (!isCopy(v))
                return fail("original node with Copy opcode");
            if (place.copyDsts.empty())
                return fail("copy " + node.name + " with no destination");
            for (ClusterId dst : place.copyDsts) {
                if (dst < 0 || dst >= machine.numClusters() ||
                    dst == place.cluster) {
                    return fail("copy " + node.name +
                                " with bad destination");
                }
                if (!machine.broadcast() &&
                    machine.linkBetween(place.cluster, dst) < 0) {
                    return fail("copy " + node.name +
                                " crosses a missing link");
                }
            }
            if (!machine.broadcast() && place.copyDsts.size() != 1)
                return fail("point-to-point copy with multiple dsts");
        } else {
            if (isCopy(v))
                return fail("copy node with non-copy opcode");
            if (!place.copyDsts.empty())
                return fail("non-copy node with copy destinations");
            if (machine.fuCount(place.cluster, opcodeFuClass(node.op)) ==
                0) {
                return fail("node " + node.name +
                            " placed on a cluster lacking its unit");
            }
        }
    }

    // Every dependence must stay within a cluster unless its consumer
    // is served through a copy that lands on the consumer's cluster.
    for (const DfgEdge &edge : graph.edges()) {
        const OpPlacement &src = placement[edge.src];
        const OpPlacement &dst = placement[edge.dst];
        if (src.cluster == dst.cluster)
            continue;
        // A cross-cluster edge is only legal into a copy fed by the
        // source cluster's register file... which is the same cluster.
        // So the only legal cross-cluster edges are copy -> consumer
        // where the copy's destination set covers the consumer.
        if (graph.node(edge.src).op != Opcode::Copy) {
            return fail("edge " + graph.node(edge.src).name + " -> " +
                        graph.node(edge.dst).name +
                        " crosses clusters without a copy");
        }
        const auto &dsts = src.copyDsts;
        if (std::find(dsts.begin(), dsts.end(), dst.cluster) ==
            dsts.end()) {
            return fail("copy " + graph.node(edge.src).name +
                        " does not deliver to cluster " +
                        std::to_string(dst.cluster));
        }
    }

    if (why)
        why->clear();
    return true;
}

AnnotatedLoop
unifiedLoop(const Dfg &graph)
{
    AnnotatedLoop loop;
    loop.graph = graph;
    loop.numOriginalNodes = graph.numNodes();
    loop.placement.assign(graph.numNodes(), OpPlacement{0, {}});
    return loop;
}

} // namespace cams
