/**
 * @file
 * Output types of the cluster assignment phase.
 *
 * The assigner consumes a loop graph and produces an AnnotatedLoop:
 * the same graph with explicit Copy operations spliced into every
 * inter-cluster dependence, plus a placement record per node that
 * tells any cluster-oblivious modulo scheduler which resource pools
 * each operation occupies. This is exactly the hand-off of the
 * paper's Figure 5: after phase one, scheduling needs no knowledge
 * of clustering.
 */

#ifndef CAMS_ASSIGN_ASSIGNMENT_HH
#define CAMS_ASSIGN_ASSIGNMENT_HH

#include <vector>

#include "graph/dfg.hh"
#include "mrt/mrt.hh"

namespace cams
{

/** Where one operation of the annotated loop executes. */
struct OpPlacement
{
    /** Executing cluster (for a copy: the cluster it reads from). */
    ClusterId cluster = invalidCluster;

    /**
     * Destination clusters, copies only. On a bused machine a single
     * copy broadcasts to every listed cluster; on a point-to-point
     * machine this is exactly one neighbor of the source.
     */
    std::vector<ClusterId> copyDsts;
};

/** A loop graph annotated with cluster placements and copies. */
struct AnnotatedLoop
{
    /** Original nodes (ids preserved) followed by the copy nodes. */
    Dfg graph;

    /** Placement of every node of @ref graph. */
    std::vector<OpPlacement> placement;

    /** Nodes [0, numOriginalNodes) are the input operations. */
    int numOriginalNodes = 0;

    /** Number of copy operations added by assignment. */
    int numCopies() const
    {
        return graph.numNodes() - numOriginalNodes;
    }

    /** True when the node is an inserted copy. */
    bool isCopy(NodeId node) const
    {
        return node >= numOriginalNodes;
    }

    /** Resource pools node needs, per the machine's resource model. */
    std::vector<PoolId> request(const ResourceModel &model,
                                NodeId node) const;

    /**
     * Checks structural sanity: every edge either stays inside one
     * cluster or runs through copies hop by hop, copies have exactly
     * the placements their opcode requires, and the graph is well
     * formed. @return true and leaves @p why empty on success.
     */
    bool validate(const MachineDesc &machine, std::string *why) const;
};

/**
 * Wraps an unassigned loop for a single-cluster (unified) machine:
 * every node runs on cluster 0, no copies. This is how the baseline
 * II of the paper's comparisons is produced.
 */
AnnotatedLoop unifiedLoop(const Dfg &graph);

} // namespace cams

#endif // CAMS_ASSIGN_ASSIGNMENT_HH
