#include "assign/assigner.hh"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <span>

#include "assign/router.hh"
#include "assign/selector.hh"
#include "graph/analysis.hh"
#include "graph/scc.hh"
#include "order/scc_sets.hh"
#include "order/swing_order.hh"
#include "pipeline/context.hh"
#include "support/logging.hh"
#include "support/time.hh"

namespace cams
{

namespace
{

/**
 * Mutable assignment state: node placements, the shared MRT, and one
 * communication record per produced value that currently crosses
 * clusters. All mutations run through transactions so a tentative
 * placement can be rolled back exactly.
 */
class AssignState
{
  public:
    /** Copy bookkeeping for one value (keyed by its producer node). */
    struct ValueComm
    {
        /** Destination clusters of the broadcast copy (bused). */
        std::vector<ClusterId> dsts;

        /** The broadcast copy's MRT slots (bused). */
        Reservation broadcastRes;

        /** Relay hops with their MRT slots (point-to-point). */
        struct HopRes
        {
            Hop hop;
            Reservation res;
        };
        std::vector<HopRes> hops;

        /** Number of copy operations this record stands for. */
        int
        copyCount(bool broadcast) const
        {
            if (broadcast)
                return dsts.empty() ? 0 : 1;
            return static_cast<int>(hops.size());
        }

        /** Clusters the value currently reaches (beyond its own). */
        std::vector<ClusterId>
        reached(bool broadcast) const
        {
            if (broadcast)
                return dsts;
            std::vector<ClusterId> result;
            for (const HopRes &hop : hops)
                result.push_back(hop.hop.to);
            std::sort(result.begin(), result.end());
            return result;
        }
    };

    enum class FailKind
    {
        None,
        Fu,   ///< no function-unit slot for the node itself
        Comm, ///< a required copy could not be reserved
    };

    struct TryOutcome
    {
        bool ok = false;
        FailKind kind = FailKind::None;
        /** Producer whose communication failed (Comm failures). */
        NodeId commValue = invalidNode;
    };

    /** Undo log of one tryAssign. */
    struct Txn
    {
        NodeId node = invalidNode;
        bool fuSet = false;
        /** (value, previous comm or nullopt-as-empty) in log order. */
        std::vector<std::pair<NodeId, std::optional<ValueComm>>> oldComms;
    };

    AssignState(const Dfg &graph, const ResourceModel &model, Mrt &mrt,
                FaultInjector *faults, const Adjacency *adjacency)
        : graph_(graph), model_(model), machine_(model.machine()),
          faults_(faults), adj_(adjacency), mrt_(mrt)
    {
        clusterOf_.assign(graph.numNodes(), invalidCluster);
        fuRes_.assign(graph.numNodes(), Reservation{});
        if (adj_) {
            // Pool lists per cluster, ascending and deduplicated like
            // the per-call std::set in freeClusterResources.
            clusterPools_.resize(machine_.numClusters());
            for (ClusterId c = 0; c < machine_.numClusters(); ++c) {
                std::set<PoolId> pools;
                for (int cls = 0; cls < numFuClasses; ++cls) {
                    const PoolId pool =
                        model_.fuPool(c, static_cast<FuClass>(cls));
                    if (pool != invalidPool)
                        pools.insert(pool);
                }
                if (model_.readPool(c) != invalidPool)
                    pools.insert(model_.readPool(c));
                if (model_.writePool(c) != invalidPool)
                    pools.insert(model_.writePool(c));
                clusterPools_[c].assign(pools.begin(), pools.end());
            }
            opReq_.resize(machine_.numClusters());
            for (ClusterId c = 0; c < machine_.numClusters(); ++c) {
                for (int cls = 0; cls < numFuClasses; ++cls) {
                    const PoolId pool =
                        model_.fuPool(c, static_cast<FuClass>(cls));
                    if (pool != invalidPool)
                        opReq_[c][cls] = {pool};
                }
            }
            seen_.assign(graph.numNodes(), false);
            hasComm_.assign(graph.numNodes(), 0);
        }
    }

    /**
     * The node's distinct predecessors, ascending. Reads the packed
     * adjacency when the compile carries one; otherwise falls back to
     * the allocating Dfg query (the pre-cache behavior), staged
     * through a scratch buffer. Iterations of predsOf and succsOf may
     * nest with each other but not with themselves.
     */
    std::span<const NodeId>
    predsOf(NodeId node) const
    {
        if (adj_)
            return adj_->preds(node);
        predScratch_ = graph_.predecessors(node);
        return {predScratch_.data(), predScratch_.size()};
    }

    /** The node's distinct successors, ascending (see predsOf). */
    std::span<const NodeId>
    succsOf(NodeId node) const
    {
        if (adj_)
            return adj_->succs(node);
        succScratch_ = graph_.successors(node);
        return {succScratch_.data(), succScratch_.size()};
    }

    ClusterId clusterOf(NodeId node) const { return clusterOf_[node]; }

    /** Wall time spent routing copies so far, microseconds. */
    int64_t routeMicros() const { return routeMicros_; }

    bool assigned(NodeId node) const
    {
        return clusterOf_[node] != invalidCluster;
    }

    const Mrt &mrt() const { return mrt_; }

    /** Total copy operations currently reserved. */
    int
    totalCopies() const
    {
        if (adj_)
            return copyOps_;
        int total = 0;
        for (const auto &[value, comm] : comm_)
            total += comm.copyCount(machine_.broadcast());
        return total;
    }

    /** RC(N): required copies generated by the node's value so far. */
    int
    requiredCopiesOf(NodeId value) const
    {
        auto it = comm_.find(value);
        if (it == comm_.end())
            return 0;
        if (machine_.broadcast())
            return it->second.dsts.empty() ? 0 : 1;
        return static_cast<int>(it->second.reached(false).size());
    }

    /**
     * Attempts to place the node; commits on success, rolls back on
     * failure. When @p txn is non-null a successful placement is
     * recorded there so the caller can roll it back (tentative mode).
     */
    TryOutcome
    tryAssign(NodeId node, ClusterId cluster, Txn *txn = nullptr)
    {
        cams_check(!assigned(node), "node ", node, " already assigned");
        Txn local;
        Txn &log = txn ? *txn : local;
        log.node = node;

        TryOutcome outcome;

        const Opcode op = graph_.node(node).op;
        const FuClass cls = opcodeFuClass(op);
        if (model_.fuPool(cluster, cls) == invalidPool) {
            outcome.kind = FailKind::Fu;
            return outcome;
        }
        // The request is one pool per (cluster, class); adjacency mode
        // serves it from a table instead of allocating per probe.
        if (adj_) {
            const std::vector<PoolId> &req =
                opReq_[cluster][static_cast<int>(cls)];
            const int row = mrt_.findRow(req);
            if (row < 0) {
                outcome.kind = FailKind::Fu;
                return outcome;
            }
            // Straight into the node's slot: its pools capacity
            // survives from earlier probes of the same node.
            mrt_.reserveAtInto(req, row, fuRes_[node]);
        } else {
            auto fu = mrt_.reserve(model_.opRequest(cluster, op));
            if (!fu) {
                outcome.kind = FailKind::Fu;
                return outcome;
            }
            fuRes_[node] = std::move(*fu);
        }
        log.fuSet = true;
        clusterOf_[node] = cluster;

        // Communication of the node's own value, then of each newly
        // crossing predecessor value. This block is the routing phase
        // of a placement; its wall time feeds CompileResult's
        // per-phase breakdown (timed per tryAssign, not per value, to
        // keep the always-on cost to two clock reads per placement).
        const Stopwatch route_watch;
        std::vector<NodeId> local_values;
        std::vector<NodeId> &values = adj_ ? valuesScratch_ : local_values;
        values.clear();
        values.push_back(node);
        for (NodeId pred : predsOf(node)) {
            if (pred != node && assigned(pred))
                values.push_back(pred);
        }
        for (NodeId value : values) {
            if (!syncComm(value, log)) {
                outcome.kind = FailKind::Comm;
                outcome.commValue = value;
                rollback(log);
                routeMicros_ += route_watch.elapsedMicros();
                return outcome;
            }
        }
        routeMicros_ += route_watch.elapsedMicros();

        if (!txn)
            local = Txn{}; // committed; nothing to undo
        outcome.ok = true;
        return outcome;
    }

    /** Rolls back a successful tentative tryAssign. */
    void
    rollback(Txn &txn)
    {
        // Release the new communication state of every touched value,
        // then restore the old one slot for slot.
        for (auto it = txn.oldComms.rbegin(); it != txn.oldComms.rend();
             ++it) {
            auto current = comm_.find(it->first);
            if (current != comm_.end()) {
                releaseComm(current->second);
                copyOps_ -= commOps(current->second);
                comm_.erase(current);
                if (adj_)
                    hasComm_[it->first] = 0;
            }
        }
        for (auto &[value, old] : txn.oldComms) {
            if (old) {
                restoreComm(*old);
                copyOps_ += commOps(*old);
                comm_[value] = std::move(*old);
                if (adj_)
                    hasComm_[value] = 1;
            }
        }
        txn.oldComms.clear();
        if (txn.fuSet) {
            // fuRes_[node] is exactly the reservation tryAssign made;
            // releasing it here spares the Txn a second copy.
            mrt_.release(fuRes_[txn.node]);
            clusterOf_[txn.node] = invalidCluster;
            if (adj_) {
                fuRes_[txn.node].row = -1;
                fuRes_[txn.node].pools.clear();
            } else {
                fuRes_[txn.node] = Reservation{};
            }
            txn.fuSet = false;
        }
    }

    /** Definitively removes a node (eviction path). */
    void
    unassign(NodeId node)
    {
        cams_check(assigned(node), "unassigning unplaced node ", node);
        // The node's own value no longer has a source.
        auto own = comm_.find(node);
        if (own != comm_.end()) {
            releaseComm(own->second);
            copyOps_ -= commOps(own->second);
            comm_.erase(own);
            if (adj_)
                hasComm_[node] = 0;
        }
        mrt_.release(fuRes_[node]);
        if (adj_) {
            fuRes_[node].row = -1;
            fuRes_[node].pools.clear();
        } else {
            fuRes_[node] = Reservation{};
        }
        clusterOf_[node] = invalidCluster;

        // Predecessor values may stop crossing clusters: shrink their
        // communication. Shrinking can always be re-reserved because
        // the released slots strictly cover the new need.
        for (NodeId pred : predsOf(node)) {
            if (pred == node || !assigned(pred))
                continue;
            Txn shrink;
            const bool ok = syncComm(pred, shrink);
            cams_check(ok, "shrinking communication of value ", pred,
                       " failed");
        }
    }

    /**
     * PCR_c <= MRC_c test of Figure 10 line 6 for one cluster, using
     * the §4.2 definitions of predicted copy requests and maximum
     * reservable copies.
     */
    bool
    pcrWithinMrc(ClusterId cluster) const
    {
        return predictedCopyRequests(cluster) <=
               maxReservableCopies(cluster);
    }

    int
    predictedCopyRequests(ClusterId cluster) const
    {
        const int cluster_count = machine_.numClusters();
        int pcr = 0;
        for (NodeId v = 0; v < graph_.numNodes(); ++v) {
            if (clusterOf_[v] != cluster)
                continue;
            int unassigned_succs = 0;
            for (NodeId succ : succsOf(v)) {
                if (succ != v && !assigned(succ))
                    ++unassigned_succs;
            }
            const int rc = requiredCopiesOf(v);
            const int upper_bound =
                machine_.broadcast()
                    ? std::max(0, 1 - rc)
                    : std::max(0, cluster_count - rc - 1);
            pcr += std::min(upper_bound, unassigned_succs);
        }
        return pcr;
    }

    int
    maxReservableCopies(ClusterId cluster) const
    {
        return reservableThrough(cluster, model_.readPool(cluster));
    }

    /**
     * Symmetric prediction on the consumer side (an extension in the
     * spirit of §4.2): every distinct unassigned producer feeding a
     * node on the cluster may later need to copy its value in,
     * costing a write port and a bus/link cycle.
     */
    bool
    incomingWithinRoom(ClusterId cluster) const
    {
        return predictedIncomingCopies(cluster) <=
               reservableThrough(cluster, model_.writePool(cluster));
    }

    int
    predictedIncomingCopies(ClusterId cluster) const
    {
        if (adj_) {
            // Same distinct-producer count, via a reusable mark table
            // instead of a per-call std::set.
            int distinct = 0;
            touched_.clear();
            for (NodeId v = 0; v < graph_.numNodes(); ++v) {
                if (clusterOf_[v] != cluster)
                    continue;
                for (NodeId pred : adj_->preds(v)) {
                    if (pred != v && !assigned(pred) && !seen_[pred]) {
                        seen_[pred] = true;
                        touched_.push_back(pred);
                        ++distinct;
                    }
                }
            }
            for (NodeId pred : touched_)
                seen_[pred] = false;
            return distinct;
        }
        std::set<NodeId> producers;
        for (NodeId v = 0; v < graph_.numNodes(); ++v) {
            if (clusterOf_[v] != cluster)
                continue;
            for (NodeId pred : graph_.predecessors(v)) {
                if (pred != v && !assigned(pred))
                    producers.insert(pred);
            }
        }
        return static_cast<int>(producers.size());
    }

    /** Copy slots still available through the given port pool. */
    int
    reservableThrough(ClusterId cluster, PoolId port) const
    {
        if (port == invalidPool)
            return 0;
        int room = 0;
        for (int row = 0; row < mrt_.ii(); ++row) {
            const int port_free = mrt_.freeInRow(port, row);
            int channel_free = 0;
            if (machine_.broadcast()) {
                channel_free = mrt_.freeInRow(model_.busPool(), row);
            } else {
                for (size_t link = 0; link < machine_.links.size();
                     ++link) {
                    if (machine_.links[link].a == cluster ||
                        machine_.links[link].b == cluster) {
                        channel_free +=
                            mrt_.freeInRow(model_.linkPool(link), row);
                    }
                }
            }
            room += std::min(port_free, channel_free);
        }
        return room;
    }

    /** Free slots across the cluster's local pools. */
    int
    freeClusterResources(ClusterId cluster) const
    {
        if (adj_) {
            int free = 0;
            for (PoolId pool : clusterPools_[cluster])
                free += mrt_.freeTotal(pool);
            return free;
        }
        int free = 0;
        std::set<PoolId> pools;
        for (int cls = 0; cls < numFuClasses; ++cls) {
            const PoolId pool =
                model_.fuPool(cluster, static_cast<FuClass>(cls));
            if (pool != invalidPool)
                pools.insert(pool);
        }
        if (model_.readPool(cluster) != invalidPool)
            pools.insert(model_.readPool(cluster));
        if (model_.writePool(cluster) != invalidPool)
            pools.insert(model_.writePool(cluster));
        for (PoolId pool : pools)
            free += mrt_.freeTotal(pool);
        return free;
    }

    /** Bare-operation fit ignoring copies (Figure 11 line 3). */
    bool
    bareOpFits(NodeId node, ClusterId cluster) const
    {
        const PoolId pool =
            model_.fuPool(cluster, opcodeFuClass(graph_.node(node).op));
        return pool != invalidPool && mrt_.freeTotal(pool) > 0;
    }

    /** Assigned neighbors sitting on other clusters (Fig. 11 line 4). */
    int
    conflictingNeighbors(NodeId node, ClusterId cluster) const
    {
        int conflicts = 0;
        auto count = [&](std::span<const NodeId> neighbors) {
            for (NodeId other : neighbors) {
                if (other != node && assigned(other) &&
                    clusterOf_[other] != cluster) {
                    ++conflicts;
                }
            }
        };
        count(predsOf(node));
        count(succsOf(node));
        return conflicts;
    }

    /** Assigned consumers of the value on clusters other than its own. */
    std::vector<NodeId>
    remoteConsumers(NodeId value) const
    {
        std::vector<NodeId> result;
        for (NodeId succ : succsOf(value)) {
            if (succ != value && assigned(succ) &&
                clusterOf_[succ] != clusterOf_[value]) {
                result.push_back(succ);
            }
        }
        return result;
    }

    /** Materializes the annotated loop from the final placements. */
    AnnotatedLoop
    materialize() const
    {
        AnnotatedLoop out;
        out.numOriginalNodes = graph_.numNodes();
        out.graph.setName(graph_.name());

        for (const DfgNode &node : graph_.nodes()) {
            out.graph.addNode(node.op, node.latency, node.name);
            cams_check(clusterOf_[node.id] != invalidCluster,
                       "materializing with unassigned node ", node.id);
            out.placement.push_back({clusterOf_[node.id], {}});
        }

        // copyServing[value][cluster] = copy node delivering the value
        // to that cluster.
        std::map<NodeId, std::map<ClusterId, NodeId>> serving;

        for (const auto &[value, comm] : comm_) {
            const ClusterId src = clusterOf_[value];
            const std::string base = "cp_" + graph_.node(value).name;
            if (machine_.broadcast()) {
                cams_check(!comm.dsts.empty(), "empty comm record");
                const NodeId copy =
                    out.graph.addNode(Opcode::Copy, 1, base);
                out.placement.push_back({src, comm.dsts});
                out.graph.addEdge(value, copy,
                                  graph_.node(value).latency, 0);
                for (ClusterId dst : comm.dsts)
                    serving[value][dst] = copy;
            } else {
                // Hops are in parent-before-child order.
                std::map<ClusterId, NodeId> landing;
                for (const auto &hop_res : comm.hops) {
                    const Hop hop = hop_res.hop;
                    const NodeId copy = out.graph.addNode(
                        Opcode::Copy, 1,
                        base + "_" + std::to_string(hop.to));
                    out.placement.push_back({hop.from, {hop.to}});
                    if (hop.from == src) {
                        out.graph.addEdge(value, copy,
                                          graph_.node(value).latency, 0);
                    } else {
                        auto carrier = landing.find(hop.from);
                        cams_check(carrier != landing.end(),
                                   "hop chain out of order");
                        out.graph.addEdge(carrier->second, copy, 1, 0);
                    }
                    landing[hop.to] = copy;
                    serving[value][hop.to] = copy;
                }
            }
        }

        for (const DfgEdge &edge : graph_.edges()) {
            const ClusterId src_cluster = clusterOf_[edge.src];
            const ClusterId dst_cluster = clusterOf_[edge.dst];
            if (src_cluster == dst_cluster) {
                out.graph.addEdge(edge.src, edge.dst, edge.latency,
                                  edge.distance);
                continue;
            }
            auto by_value = serving.find(edge.src);
            cams_check(by_value != serving.end(),
                       "cross-cluster edge without communication");
            auto copy = by_value->second.find(dst_cluster);
            cams_check(copy != by_value->second.end(),
                       "value does not reach consumer cluster");
            out.graph.addEdge(copy->second, edge.dst, 1, edge.distance);
        }
        return out;
    }

  private:
    /**
     * Re-plans the communication of one value from current placements.
     * Records the previous state in the transaction; on failure the
     * map entry is left erased with all new slots released (the
     * caller's rollback restores the previous state).
     */
    bool
    syncComm(NodeId value, Txn &txn)
    {
        cams_assert(assigned(value), "syncComm on unassigned value");
        const ClusterId src = clusterOf_[value];

        std::vector<ClusterId> local_desired;
        std::vector<ClusterId> &desired =
            adj_ ? desiredScratch_ : local_desired;
        if (adj_) {
            // Same sorted-unique destination set as the std::set
            // below, built in a reusable buffer.
            desired.clear();
            for (NodeId succ : adj_->succs(value)) {
                if (succ != value && assigned(succ) &&
                    clusterOf_[succ] != src) {
                    desired.push_back(clusterOf_[succ]);
                }
            }
            std::sort(desired.begin(), desired.end());
            desired.erase(std::unique(desired.begin(), desired.end()),
                          desired.end());
        } else {
            std::set<ClusterId> desired_set;
            for (NodeId succ : succsOf(value)) {
                if (succ != value && assigned(succ) &&
                    clusterOf_[succ] != src) {
                    desired_set.insert(clusterOf_[succ]);
                }
            }
            desired.assign(desired_set.begin(), desired_set.end());
        }

        // Common case in adjacency mode: the value has no copies and
        // needs none -- skip the map lookup entirely.
        if (adj_ && desired.empty() && !hasComm_[value])
            return true;

        auto current = comm_.find(value);
        const bool broadcast = machine_.broadcast();
        if (current != comm_.end()) {
            // reached(broadcast) allocates; on broadcast machines the
            // destination list is stored directly, so compare in
            // place.
            const bool unchanged =
                broadcast ? current->second.dsts == desired
                          : current->second.reached(false) == desired;
            if (unchanged)
                return true;
        }
        if (current == comm_.end() && desired.empty())
            return true;

        // Log the previous state once per value per transaction.
        bool logged = false;
        for (const auto &[logged_value, ignored] : txn.oldComms) {
            (void)ignored;
            if (logged_value == value) {
                logged = true;
                break;
            }
        }
        if (!logged) {
            if (current != comm_.end()) {
                // The entry is released and erased below either way,
                // so the log takes it by move rather than copying the
                // reservation vectors.
                txn.oldComms.emplace_back(value,
                                          std::move(current->second));
                releaseComm(*txn.oldComms.back().second);
                copyOps_ -= commOps(*txn.oldComms.back().second);
                comm_.erase(current);
                if (adj_)
                    hasComm_[value] = 0;
                current = comm_.end();
            } else {
                txn.oldComms.emplace_back(value, std::nullopt);
            }
        }

        if (current != comm_.end()) {
            releaseComm(current->second);
            copyOps_ -= commOps(current->second);
            comm_.erase(current);
            if (adj_)
                hasComm_[value] = 0;
        }
        if (desired.empty())
            return true;

        // Injected bus/link exhaustion: behave exactly as if every
        // reservation below had come back empty.
        if (faults_ && faults_->trip(FaultSite::RouterBusExhaustion))
            return false;

        ValueComm fresh;
        if (broadcast) {
            auto res = mrt_.reserve(model_.copyRequest(src, desired));
            if (!res)
                return false;
            fresh.dsts = desired;
            fresh.broadcastRes = *res;
        } else {
            const auto hops = planHops(machine_, src, desired);
            for (const Hop &hop : hops) {
                auto res = mrt_.reserve(
                    model_.copyRequest(hop.from, {hop.to}));
                if (!res) {
                    releaseComm(fresh);
                    return false;
                }
                fresh.hops.push_back({hop, *res});
            }
        }
        copyOps_ += commOps(fresh);
        comm_[value] = std::move(fresh);
        if (adj_)
            hasComm_[value] = 1;
        return true;
    }

    /** The record's copy-op count, as copyCount() reports it. */
    int
    commOps(const ValueComm &comm) const
    {
        return comm.copyCount(machine_.broadcast());
    }

    void
    releaseComm(const ValueComm &comm)
    {
        if (comm.broadcastRes.valid())
            mrt_.release(comm.broadcastRes);
        for (const auto &hop_res : comm.hops)
            mrt_.release(hop_res.res);
    }

    /** Re-reserves the exact slots of a previously released record. */
    void
    restoreComm(const ValueComm &comm)
    {
        if (comm.broadcastRes.valid()) {
            mrt_.reserveAt(comm.broadcastRes.pools,
                           comm.broadcastRes.row);
        }
        for (const auto &hop_res : comm.hops)
            mrt_.reserveAt(hop_res.res.pools, hop_res.res.row);
    }

    const Dfg &graph_;
    const ResourceModel &model_;
    const MachineDesc &machine_;
    FaultInjector *faults_ = nullptr;
    /** Packed neighbor lists, or null for the pre-cache behavior. */
    const Adjacency *adj_ = nullptr;
    int64_t routeMicros_ = 0;
    Mrt &mrt_;
    std::vector<ClusterId> clusterOf_;
    std::vector<Reservation> fuRes_;
    std::map<NodeId, ValueComm> comm_;
    /** Sorted-unique local pools per cluster (adjacency mode only). */
    std::vector<std::vector<PoolId>> clusterPools_;
    /** Fallback staging for predsOf/succsOf when adj_ is null. */
    mutable std::vector<NodeId> predScratch_;
    mutable std::vector<NodeId> succScratch_;
    /** Mark table + undo list for predictedIncomingCopies. */
    mutable std::vector<bool> seen_;
    mutable std::vector<NodeId> touched_;
    /** Reusable buffers for tryAssign / syncComm (adjacency mode). */
    std::vector<NodeId> valuesScratch_;
    std::vector<ClusterId> desiredScratch_;
    /** Per-(cluster, class) operation request (adjacency mode). */
    std::vector<std::array<std::vector<PoolId>, numFuClasses>> opReq_;
    /** Per-value comm_ membership, mirroring the map (adjacency
     *  mode): lets syncComm skip the lookup for copy-free values. */
    std::vector<char> hasComm_;
    /** Running copy-op count; totalCopies() in adjacency mode. */
    int copyOps_ = 0;
};

} // namespace

ClusterAssigner::ClusterAssigner(const ResourceModel &model,
                                 AssignOptions options)
    : model_(model), options_(options)
{
}

namespace
{

/** Set CAMS_ASSIGN_TRACE=1 for a stderr log of every decision. */
bool
traceEnabled()
{
    static const bool enabled = std::getenv("CAMS_ASSIGN_TRACE");
    return enabled;
}

} // namespace

AssignResult
ClusterAssigner::run(const Dfg &graph, int ii, LoopContext *ctx) const
{
    const int restarts =
        options_.iterative ? std::max(1, options_.restartsPerIi) : 1;

    // The context's scratch table survives restarts and II probes;
    // without one, a run-local table does the same across restarts.
    std::optional<Mrt> local;
    if (!ctx)
        local.emplace(model_, ii, options_.mrtScan);
    Mrt &mrt = ctx ? ctx->scratchMrt(model_, ii) : *local;
    mrt.setScanMode(options_.mrtScan);
    const long scan_base = mrt.wordScans();

    AssignResult result;
    int evictions = 0;
    int invariant_failures = 0;
    double order_ms = 0.0;
    double route_ms = 0.0;
    // A preferred rotation (the cache's warm-start replay) jumps the
    // queue; the others keep their canonical order behind it, so the
    // same set of rotations is explored either way.
    const int preferred = options_.preferredRotation;
    const bool replay = preferred > 0 && preferred < restarts;
    for (int attempt = 0; attempt < restarts; ++attempt) {
        int rotation = attempt;
        if (replay) {
            if (attempt == 0)
                rotation = preferred;
            else if (attempt <= preferred)
                rotation = attempt - 1;
        }
        try {
            result = runAttempt(graph, ii, rotation, mrt, ctx);
        } catch (const InternalError &err) {
            // The attempt's state is corrupt; abandon it wholesale and
            // let the next rotation start from scratch. Nothing leaks:
            // AssignState owns the MRT and dies with the attempt.
            ++invariant_failures;
            result = AssignResult{};
            result.failure = FailureKind::InternalInvariant;
            result.detail = err.what();
        }
        // Evictions and phase times accumulate over restarts so the
        // caller sees the full cost of this II, not just the last
        // attempt's share.
        evictions += result.evictions;
        result.evictions = evictions;
        order_ms += result.orderMillis;
        result.orderMillis = order_ms;
        route_ms += result.routeMillis;
        result.routeMillis = route_ms;
        result.invariantFailures = invariant_failures;
        result.wordScans = mrt.wordScans() - scan_base;
        result.rotationUsed = rotation;
        if (result.success)
            return result;
    }
    return result;
}

AssignResult
ClusterAssigner::runAttempt(const Dfg &graph, int ii, int rotation,
                            Mrt &mrt, LoopContext *ctx) const
{
    AssignResult result;
    const MachineDesc &machine = model_.machine();

    if (ctx) {
        ctx->checkAssignable(machine);
    } else {
        std::string why;
        if (!graph.wellFormed(&why))
            cams_fatal("assigning a malformed graph: ", why);
        for (const DfgNode &node : graph.nodes()) {
            if (node.op == Opcode::Copy)
                cams_fatal("input graphs must not contain copies");
            if (!machine.canExecute(node.op)) {
                cams_fatal("machine '", machine.name,
                           "' cannot execute ", opcodeName(node.op));
            }
        }
    }

    mrt.reset(ii);
    AssignState state(graph, model_, mrt, options_.faults,
                      ctx ? &ctx->adjacency() : nullptr);
    const Stopwatch order_watch;
    std::optional<SccInfo> local_sccs;
    std::optional<NodeSets> local_sets;
    std::optional<TimeAnalysis> local_timing;
    const SccInfo &sccs =
        ctx ? ctx->sccs() : local_sccs.emplace(findSccs(graph));
    const NodeSets &sets =
        ctx ? ctx->prioritySets()
            : local_sets.emplace(buildPrioritySets(graph, sccs));
    const TimeAnalysis &timing =
        ctx ? ctx->timing(ii)
            : local_timing.emplace(analyzeTiming(graph, ii));
    std::vector<NodeId> local_order;
    const std::vector<NodeId> *order_ptr = &local_order;
    if (options_.policy == AssignPolicy::AcyclicBug) {
        // BUG processes operations in acyclic dependence order.
        local_order.resize(graph.numNodes());
        for (NodeId v = 0; v < graph.numNodes(); ++v)
            local_order[v] = v;
        std::stable_sort(local_order.begin(), local_order.end(),
                         [&](NodeId a, NodeId b) {
                             return timing.asap[a] < timing.asap[b];
                         });
    } else if (options_.useSwingOrder) {
        if (ctx) {
            order_ptr = &ctx->swingOrder(ii);
        } else {
            local_order = swingOrder(graph, sets, timing);
        }
    } else {
        // Ablation: plain id order.
        local_order.resize(graph.numNodes());
        for (NodeId v = 0; v < graph.numNodes(); ++v)
            local_order[v] = v;
    }
    const std::vector<NodeId> &order = *order_ptr;

    std::vector<int> rank(graph.numNodes(), 0);
    for (size_t i = 0; i < order.size(); ++i)
        rank[order[i]] = static_cast<int>(i);
    result.orderMillis = order_watch.elapsedMs();
    auto finishAttempt = [&](AssignResult &r) {
        r.routeMillis =
            static_cast<double>(state.routeMicros()) / 1000.0;
    };

    // Decision tracing: instants carry the job tag as an argument
    // (scope names are tag-prefixed; instants keep names stable so
    // trace consumers can filter on them).
    const TraceConfig &trace = options_.trace;
    const bool decisions = trace.active(TraceLevel::Decision);
    auto traceInstant = [&](const char *name, TraceArgs args) {
        if (!trace.tag.empty())
            args.emplace_back("job", trace.tag);
        args.emplace_back("ii", std::to_string(ii));
        trace.sink->instant(name, "assign", std::move(args));
    };
    auto verdictSummary = [](const SelectionExplain &explain) {
        std::string out;
        for (const auto &verdict : explain.verdicts) {
            if (!out.empty())
                out += " ";
            out += "C" + std::to_string(verdict.cluster) + ":";
            if (verdict.cluster == explain.winner)
                out += "win";
            else if (verdict.survived)
                out += "tie_loss";
            else
                out += verdict.eliminatedBy ? verdict.eliminatedBy
                                            : "survived";
        }
        return out;
    };

    // Unassigned nodes, highest priority (lowest rank) first. With a
    // context the tree set becomes a rank-indexed bitmap with a
    // moving minimum cursor: identical iteration order (ranks are a
    // permutation, so (rank, node) pairs sort exactly like ranks),
    // no tree rebalance or node allocation per eviction round.
    const int nn = graph.numNodes();
    std::set<std::pair<int, NodeId>> pending;
    std::vector<char> pendingRank;
    int pendingCount = 0;
    int minRank = 0;
    if (ctx) {
        pendingRank.assign(nn, 1);
        pendingCount = nn;
    } else {
        for (NodeId v = 0; v < nn; ++v)
            pending.insert({rank[v], v});
    }
    auto pendingEmpty = [&] {
        return ctx ? pendingCount == 0 : pending.empty();
    };
    auto pendingTop = [&]() -> NodeId {
        if (ctx) {
            while (!pendingRank[minRank])
                ++minRank;
            return order[minRank];
        }
        return pending.begin()->second;
    };
    auto pendingErase = [&](NodeId v) {
        if (ctx) {
            pendingRank[rank[v]] = 0;
            --pendingCount;
        } else {
            pending.erase({rank[v], v});
        }
    };
    auto pendingInsert = [&](NodeId v) {
        if (ctx) {
            if (!pendingRank[rank[v]]) {
                pendingRank[rank[v]] = 1;
                ++pendingCount;
            }
            minRank = std::min(minRank, rank[v]);
        } else {
            pending.insert({rank[v], v});
        }
    };

    const int clusters = machine.numClusters();
    std::vector<char> tried(static_cast<size_t>(nn) * clusters, 0);
    auto triedAt = [&](NodeId node, ClusterId cluster) -> char & {
        return tried[static_cast<size_t>(node) * clusters + cluster];
    };
    auto markTried = [&](NodeId node, ClusterId cluster) {
        char *flags = &tried[static_cast<size_t>(node) * clusters];
        flags[cluster] = 1;
        if (std::all_of(flags, flags + clusters,
                        [](char b) { return b != 0; })) {
            std::fill(flags, flags + clusters, char(0));
            flags[cluster] = 1;
        }
    };

    const int budget = std::max(
        16, static_cast<int>(options_.evictionBudgetFactor *
                             graph.numNodes()));
    int evictions = 0;
    int repair_rounds = rotation;

    // BUG's objective: estimated completion time of each placed node.
    std::vector<long> est(graph.numNodes(), 0);
    auto estimateStart = [&](NodeId node, ClusterId cluster,
                             const AssignState &st) {
        long start = timing.asap[node];
        for (EdgeId e : graph.inEdges(node)) {
            const DfgEdge &edge = graph.edge(e);
            if (edge.src == node || !st.assigned(edge.src))
                continue;
            long ready = est[edge.src] + edge.latency;
            if (st.clusterOf(edge.src) != cluster)
                ready += 1; // copy latency
            start = std::max(start, ready);
        }
        return start;
    };

    std::vector<ClusterChoice> choices;
    while (!pendingEmpty()) {
        const NodeId node = pendingTop();
        const bool in_scc = sccs.inRecurrence(node);

        choices.clear();
        const int copies_before = state.totalCopies();
        for (ClusterId c = 0; c < machine.numClusters(); ++c) {
            ClusterChoice choice;
            choice.cluster = c;
            choice.previouslyTried = triedAt(node, c) != 0;
            if (in_scc) {
                for (NodeId mate : sccs.components[sccs.componentOf[node]]) {
                    if (mate != node && state.assigned(mate) &&
                        state.clusterOf(mate) == c) {
                        choice.sccMate = true;
                        break;
                    }
                }
            }
            choice.bareOpFits = state.bareOpFits(node, c);
            choice.conflictingNeighbors =
                state.conflictingNeighbors(node, c);

            AssignState::Txn txn;
            const auto outcome = state.tryAssign(node, c, &txn);
            if (outcome.ok) {
                choice.feasible = true;
                choice.requiredCopies =
                    state.totalCopies() - copies_before;
                choice.freeResources = state.freeClusterResources(c);
                choice.pcrOk = state.pcrWithinMrc(c);
                choice.pcrInOk = state.incomingWithinRoom(c);
                state.rollback(txn);
            }
            choices.push_back(choice);
        }

        ClusterId best = invalidCluster;
        SelectionExplain explain;
        if (options_.policy == AssignPolicy::AcyclicBug) {
            long best_est = 0;
            for (const ClusterChoice &choice : choices) {
                if (!choice.feasible)
                    continue;
                const long start =
                    estimateStart(node, choice.cluster, state);
                if (best == invalidCluster || start < best_est ||
                    (start == best_est &&
                     choice.freeResources >
                         choices[best].freeResources)) {
                    best = choice.cluster;
                    best_est = start;
                }
            }
        } else {
            best = selectBestCluster(
                choices, options_.fullHeuristic, options_.iterative,
                in_scc, repair_rounds, options_.useSccAffinity,
                options_.usePcrPrediction,
                decisions ? &explain : nullptr);
        }

        // Injected eviction storm: veto the winner so the node takes
        // the Figure 11 forcing path (or fails, when non-iterative).
        if (best != invalidCluster && options_.faults &&
            options_.faults->trip(FaultSite::AssignEvictionStorm)) {
            best = invalidCluster;
        }

        if (best != invalidCluster) {
            const auto outcome = state.tryAssign(node, best);
            cams_check(outcome.ok, "committed assignment failed");
            if (options_.policy == AssignPolicy::AcyclicBug)
                est[node] = estimateStart(node, best, state);
            if (traceEnabled()) {
                std::cerr << "[assign] " << graph.node(node).name
                          << " -> C" << best << "\n";
            }
            if (decisions) {
                traceInstant(
                    "assign_decide",
                    {{"node", graph.node(node).name},
                     {"cluster", "C" + std::to_string(best)},
                     {"step", explain.decidingStep
                                  ? explain.decidingStep
                                  : "tie_break"},
                     {"verdicts", verdictSummary(explain)}});
            }
            markTried(node, best);
            pendingErase(node);
            continue;
        }

        if (!options_.iterative) {
            result.evictions = evictions;
            finishAttempt(result);
            return result; // failure: retry at a larger II
        }

        // Figure 11: force the node somewhere and evict conflicts.
        ++repair_rounds;
        SelectionExplain forcedExplain;
        const ClusterId forced = selectForcedCluster(
            choices, true, decisions ? &forcedExplain : nullptr);
        if (decisions) {
            traceInstant(
                "force_select",
                {{"node", graph.node(node).name},
                 {"cluster", "C" + std::to_string(forced)},
                 {"step", forcedExplain.decidingStep
                              ? forcedExplain.decidingStep
                              : "tie_break"},
                 {"verdicts", verdictSummary(forcedExplain)},
                 {"repair_round", std::to_string(repair_rounds)}});
        }
        bool placed = false;
        while (!placed) {
            const auto outcome = state.tryAssign(node, forced);
            if (outcome.ok) {
                placed = true;
                break;
            }
            // Figure 11's prescription: remove any and all nodes
            // conflicting with the resources needed by N, as well as
            // any conflicting predecessors and successors.
            std::vector<NodeId> victims;
            if (outcome.kind == AssignState::FailKind::Fu) {
                // Lowest-priority occupant of the same unit pool
                // (one slot is all the node needs).
                const FuClass cls =
                    opcodeFuClass(graph.node(node).op);
                NodeId victim = invalidNode;
                for (NodeId v = 0; v < graph.numNodes(); ++v) {
                    if (v == node || !state.assigned(v) ||
                        state.clusterOf(v) != forced) {
                        continue;
                    }
                    if (model_.fuPool(forced,
                                      opcodeFuClass(graph.node(v).op)) !=
                        model_.fuPool(forced, cls)) {
                        continue;
                    }
                    if (victim == invalidNode ||
                        rank[v] > rank[victim]) {
                        victim = v;
                    }
                }
                if (victim != invalidNode)
                    victims.push_back(victim);
            } else {
                const NodeId value = outcome.commValue;
                if (value != node) {
                    // A predecessor's copy cannot be placed: evict the
                    // predecessor so it can follow this node.
                    victims.push_back(value);
                } else {
                    // Copies from this node to its consumers fail:
                    // evict every remote consumer so they can regroup
                    // around the forced placement. (The node is not
                    // yet assigned, so remoteness is measured against
                    // the forced cluster.)
                    for (NodeId succ : state.succsOf(node)) {
                        if (succ != node && state.assigned(succ) &&
                            state.clusterOf(succ) != forced) {
                            victims.push_back(succ);
                        }
                    }
                }
            }
            if (traceEnabled()) {
                std::cerr << "[force] " << graph.node(node).name
                          << " -> C" << forced << " failed ("
                          << (outcome.kind == AssignState::FailKind::Fu
                                  ? "fu"
                                  : "comm value " +
                                        std::to_string(
                                            outcome.commValue))
                          << "), victims";
                for (NodeId victim : victims)
                    std::cerr << " " << graph.node(victim).name;
                if (victims.empty())
                    std::cerr << " <none>";
                std::cerr << "\n";
            }
            if (decisions) {
                std::string evictees;
                for (NodeId victim : victims) {
                    if (!evictees.empty())
                        evictees += " ";
                    evictees += graph.node(victim).name + "#" +
                                std::to_string(victim);
                }
                int tried_count = 0;
                for (ClusterId c = 0; c < clusters; ++c)
                    tried_count += triedAt(node, c) ? 1 : 0;
                traceInstant(
                    "force_place",
                    {{"evictor", graph.node(node).name + "#" +
                                     std::to_string(node)},
                     {"cluster", "C" + std::to_string(forced)},
                     {"fail",
                      outcome.kind == AssignState::FailKind::Fu
                          ? "fu"
                          : "comm"},
                     {"evictees",
                      evictees.empty() ? "<none>" : evictees},
                     {"tried_clusters",
                      std::to_string(tried_count)},
                     {"evictions_total",
                      std::to_string(
                          evictions +
                          static_cast<int>(victims.size()))}});
            }
            if (victims.empty()) {
                // Nothing sensible to evict: the repair dead-ended.
                result.failure = FailureKind::AssignLivelock;
                result.detail = detail::concat(
                    "eviction repair dead-ended at node '",
                    graph.node(node).name, "' (II ", ii, ")");
                if (decisions) {
                    traceInstant("assign_fail",
                                 {{"reason", "livelock_dead_end"},
                                  {"node", graph.node(node).name}});
                }
                result.evictions = evictions;
                finishAttempt(result);
                return result;
            }
            evictions += static_cast<int>(victims.size());
            if (evictions > budget) {
                result.failure = FailureKind::AssignLivelock;
                result.detail = detail::concat(
                    "eviction budget (", budget, ") exhausted at II ",
                    ii);
                if (decisions) {
                    traceInstant(
                        "assign_fail",
                        {{"reason", "eviction_budget"},
                         {"budget", std::to_string(budget)}});
                }
                result.evictions = evictions;
                finishAttempt(result);
                return result;
            }
            for (NodeId victim : victims) {
                state.unassign(victim);
                pendingInsert(victim);
            }
        }
        if (options_.policy == AssignPolicy::AcyclicBug)
            est[node] = estimateStart(node, forced, state);
        markTried(node, forced);
        pendingErase(node);
    }

    result.loop = state.materialize();
    result.clusterOf.resize(graph.numNodes());
    for (NodeId v = 0; v < graph.numNodes(); ++v)
        result.clusterOf[v] = state.clusterOf(v);
    result.copies = result.loop.numCopies();
    result.evictions = evictions;
    result.success = true;
    finishAttempt(result);
    return result;
}

} // namespace cams
