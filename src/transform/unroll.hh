/**
 * @file
 * Loop unrolling and acyclic list scheduling -- the classic
 * alternative to modulo scheduling that the paper's related work
 * (§1.4) attributes to trace-scheduling compilers: replicate the body
 * k times, schedule the unrolled body as straight-line code, and pay
 * the pipeline drain at every unrolled-loop back edge.
 *
 * Throughput of the unrolled loop = schedule length / k cycles per
 * original iteration, to be compared against the modulo schedule's
 * II. Modulo scheduling wins whenever the unrolled body cannot hide
 * the recurrence and drain latency, which is the quantitative version
 * of the paper's argument for building cluster assignment around
 * modulo scheduling in the first place.
 */

#ifndef CAMS_TRANSFORM_UNROLL_HH
#define CAMS_TRANSFORM_UNROLL_HH

#include "graph/dfg.hh"
#include "machine/machine.hh"

namespace cams
{

/**
 * Unrolls the loop body @p factor times.
 *
 * Copy i of node v is node i * n + v. A dependence of distance d
 * connects copy i of the producer to copy i + d of the consumer when
 * i + d < factor (now intra-iteration), and wraps into a carried
 * dependence of distance ceil((d - i_remaining) / factor) otherwise
 * -- precisely: distance (i + d) / factor to copy (i + d) % factor.
 */
Dfg unrollLoop(const Dfg &graph, int factor);

/** Result of list-scheduling one (unrolled) body as acyclic code. */
struct ListScheduleResult
{
    bool success = false;

    /** Issue cycle per node. */
    std::vector<int> startCycle;

    /** Makespan of the body (the unrolled loop's recurrence-free
     *  initiation interval once multiplied out). */
    int length = 0;
};

/**
 * Greedy critical-path list scheduling of the body on the machine's
 * total unit counts (clustering ignored: this measures the *best
 * case* for the unrolling approach). Loop-carried dependences bound
 * the next unrolled iteration, which starts only after the body
 * completes, so they do not constrain the schedule internally.
 */
ListScheduleResult listSchedule(const Dfg &graph,
                                const MachineDesc &machine);

/**
 * Cycles per original iteration when the loop is unrolled by the
 * factor and list scheduled: ceil over the carried-dependence-imposed
 * restart constraints of the unrolled body.
 */
double unrolledThroughput(const Dfg &graph, const MachineDesc &machine,
                          int factor);

} // namespace cams

#endif // CAMS_TRANSFORM_UNROLL_HH
