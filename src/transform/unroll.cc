#include "transform/unroll.hh"

#include <algorithm>
#include <vector>

#include "support/logging.hh"

namespace cams
{

Dfg
unrollLoop(const Dfg &graph, int factor)
{
    cams_assert(factor >= 1, "unroll factor must be positive");
    Dfg out;
    out.setName(graph.name() + "_x" + std::to_string(factor));
    const int n = graph.numNodes();

    for (int copy = 0; copy < factor; ++copy) {
        for (const DfgNode &node : graph.nodes()) {
            out.addNode(node.op, node.latency,
                        node.name + "_u" + std::to_string(copy));
        }
    }
    for (int copy = 0; copy < factor; ++copy) {
        for (const DfgEdge &edge : graph.edges()) {
            const int target = copy + edge.distance;
            const NodeId src = copy * n + edge.src;
            const NodeId dst = (target % factor) * n + edge.dst;
            out.addEdge(src, dst, edge.latency, target / factor);
        }
    }
    return out;
}

ListScheduleResult
listSchedule(const Dfg &graph, const MachineDesc &machine)
{
    ListScheduleResult result;
    const int n = graph.numNodes();
    result.startCycle.assign(n, 0);
    if (n == 0) {
        result.success = true;
        return result;
    }

    // Critical-path priorities over the intra-body (distance 0) DAG.
    std::vector<int> height(n, 0);
    bool changed = true;
    for (int round = 0; round <= n && changed; ++round) {
        changed = false;
        for (const DfgEdge &edge : graph.edges()) {
            if (edge.distance != 0)
                continue;
            const int cand = height[edge.dst] + edge.latency;
            if (cand > height[edge.src]) {
                cams_assert(round < n, "zero-distance cycle");
                height[edge.src] = cand;
                changed = true;
            }
        }
    }

    // Unit availability per cycle, per FU class (GP machines pool).
    const bool gp = machine.cluster(0).usesGpPool();
    std::array<int, numFuClasses> units{};
    int gp_units = 0;
    if (gp) {
        gp_units = machine.totalWidth();
    } else {
        for (int cls = 0; cls < numFuClasses; ++cls) {
            for (ClusterId c = 0; c < machine.numClusters(); ++c)
                units[cls] += machine.fuCount(c, static_cast<FuClass>(
                                                     cls));
        }
    }
    std::vector<std::array<int, numFuClasses>> used;
    std::vector<int> used_gp;
    auto fits = [&](int cycle, FuClass cls) {
        if (static_cast<size_t>(cycle) >= used.size()) {
            used.resize(cycle + 1);
            used_gp.resize(cycle + 1, 0);
        }
        if (gp)
            return used_gp[cycle] < gp_units;
        return used[cycle][static_cast<int>(cls)] <
               units[static_cast<int>(cls)];
    };
    auto take = [&](int cycle, FuClass cls) {
        if (gp)
            ++used_gp[cycle];
        else
            ++used[cycle][static_cast<int>(cls)];
    };

    // Ready-list scheduling: highest critical path first.
    std::vector<int> pending(n, 0);
    for (const DfgEdge &edge : graph.edges()) {
        if (edge.distance == 0)
            ++pending[edge.dst];
    }
    std::vector<NodeId> ready;
    for (NodeId v = 0; v < n; ++v) {
        if (pending[v] == 0)
            ready.push_back(v);
    }
    std::vector<int> earliest(n, 0);
    std::vector<bool> placed(n, false);
    int scheduled = 0;
    while (scheduled < n) {
        cams_assert(!ready.empty(), "list scheduler starved");
        auto best = std::max_element(
            ready.begin(), ready.end(), [&](NodeId a, NodeId b) {
                if (height[a] != height[b])
                    return height[a] < height[b];
                return a > b;
            });
        const NodeId op = *best;
        ready.erase(best);

        const FuClass cls = opcodeFuClass(graph.node(op).op);
        int cycle = earliest[op];
        while (!fits(cycle, cls))
            ++cycle;
        take(cycle, cls);
        result.startCycle[op] = cycle;
        placed[op] = true;
        ++scheduled;
        result.length = std::max(result.length,
                                 cycle + graph.node(op).latency);

        for (EdgeId e : graph.outEdges(op)) {
            const DfgEdge &edge = graph.edge(e);
            if (edge.distance != 0)
                continue;
            earliest[edge.dst] = std::max(
                earliest[edge.dst], cycle + edge.latency);
            if (--pending[edge.dst] == 0)
                ready.push_back(edge.dst);
        }
    }
    result.success = true;
    return result;
}

double
unrolledThroughput(const Dfg &graph, const MachineDesc &machine,
                   int factor)
{
    const Dfg body = unrollLoop(graph, factor);
    const ListScheduleResult schedule = listSchedule(body, machine);
    cams_assert(schedule.success, "list scheduling failed");

    // Back-to-back bodies: the restart interval is the makespan,
    // stretched if a carried dependence is still in flight.
    long restart = schedule.length;
    for (const DfgEdge &edge : body.edges()) {
        if (edge.distance == 0)
            continue;
        const long need = schedule.startCycle[edge.src] + edge.latency -
                          schedule.startCycle[edge.dst];
        const long per_round = (need + edge.distance - 1) / edge.distance;
        restart = std::max(restart, per_round);
    }
    return static_cast<double>(restart) / factor;
}

} // namespace cams
