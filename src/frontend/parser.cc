#include "frontend/parser.hh"

#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "support/logging.hh"

namespace cams
{

namespace
{

// ---------------------------------------------------------------- lexer

enum class Tok
{
    Ident,
    Number,
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Plus,
    Minus,
    Star,
    Slash,
    Shl,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    End,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;
    int line = 1;
};

struct ParseError
{
    int line;
    std::string message;
};

class Lexer
{
  public:
    explicit Lexer(const std::string &source) : source_(source)
    {
        advance();
    }

    const Token &peek() const { return current_; }

    Token
    take()
    {
        Token token = current_;
        advance();
        return token;
    }

  private:
    void
    advance()
    {
        skipSpace();
        current_ = Token{};
        current_.line = line_;
        if (at_ >= source_.size()) {
            current_.kind = Tok::End;
            return;
        }
        const char c = source_[at_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t begin = at_;
            while (at_ < source_.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(source_[at_])) ||
                    source_[at_] == '_')) {
                ++at_;
            }
            current_.kind = Tok::Ident;
            current_.text = source_.substr(begin, at_ - begin);
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t begin = at_;
            while (at_ < source_.size() &&
                   (std::isdigit(
                        static_cast<unsigned char>(source_[at_])) ||
                    source_[at_] == '.')) {
                ++at_;
            }
            current_.kind = Tok::Number;
            current_.text = source_.substr(begin, at_ - begin);
            return;
        }
        ++at_;
        switch (c) {
          case '{':
            current_.kind = Tok::LBrace;
            return;
          case '}':
            current_.kind = Tok::RBrace;
            return;
          case '(':
            current_.kind = Tok::LParen;
            return;
          case ')':
            current_.kind = Tok::RParen;
            return;
          case '[':
            current_.kind = Tok::LBracket;
            return;
          case ']':
            current_.kind = Tok::RBracket;
            return;
          case ';':
            current_.kind = Tok::Semi;
            return;
          case '+':
            if (eat('='))
                current_.kind = Tok::PlusAssign;
            else
                current_.kind = Tok::Plus;
            return;
          case '-':
            if (eat('='))
                current_.kind = Tok::MinusAssign;
            else
                current_.kind = Tok::Minus;
            return;
          case '*':
            if (eat('='))
                current_.kind = Tok::StarAssign;
            else
                current_.kind = Tok::Star;
            return;
          case '/':
            current_.kind = Tok::Slash;
            return;
          case '<':
            if (eat('<'))
                current_.kind = Tok::Shl;
            else if (eat('='))
                current_.kind = Tok::Le;
            else
                current_.kind = Tok::Lt;
            return;
          case '>':
            current_.kind = eat('=') ? Tok::Ge : Tok::Gt;
            return;
          case '!':
            if (eat('=')) {
                current_.kind = Tok::Ne;
                return;
            }
            throw ParseError{line_, "stray '!'"};
          case '=':
            current_.kind = eat('=') ? Tok::EqEq : Tok::Assign;
            return;
          default:
            throw ParseError{line_, std::string("unexpected '") + c +
                                         "'"};
        }
    }

    bool
    eat(char expected)
    {
        if (at_ < source_.size() && source_[at_] == expected) {
            ++at_;
            return true;
        }
        return false;
    }

    void
    skipSpace()
    {
        while (at_ < source_.size()) {
            const char c = source_[at_];
            if (c == '\n') {
                ++line_;
                ++at_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++at_;
            } else if (c == '#') {
                while (at_ < source_.size() && source_[at_] != '\n')
                    ++at_;
            } else if (c == '/' && at_ + 1 < source_.size() &&
                       source_[at_ + 1] == '/') {
                while (at_ < source_.size() && source_[at_] != '\n')
                    ++at_;
            } else {
                break;
            }
        }
    }

    const std::string &source_;
    size_t at_ = 0;
    int line_ = 1;
    Token current_;
};

// ------------------------------------------------------------------ AST

struct Expr
{
    enum class Kind
    {
        Number,
        Scalar,
        ArrayRef,
        Unary,   // negation
        Binary,  // op in {'+','-','*','/','<'} ('<' = shift)
        Compare, // op in {'<','>','l','g','e','n'} (le/ge/eq/ne)
        Sqrt,
    };
    Kind kind;
    int line = 1;
    std::string name; // scalar/array name
    int offset = 0;   // array subscript offset
    bool intLiteral = false;
    char op = 0;
    std::unique_ptr<Expr> lhs;
    std::unique_ptr<Expr> rhs;
};

struct Stmt
{
    int line = 1;
    std::unique_ptr<Expr> guard; // if-conversion predicate, may be null
    bool toArray = false;
    std::string name;
    int offset = 0;
    char compound = 0; // 0 for '=', else '+', '-', '*'
    std::unique_ptr<Expr> value;
};

class Parser
{
  public:
    explicit Parser(const std::string &source) : lexer_(source) {}

    std::string loopName;
    std::vector<Stmt> statements;

    void
    parse()
    {
        expectIdent("loop");
        const Token name = expect(Tok::Ident, "loop name");
        loopName = name.text;
        expect(Tok::LBrace, "'{'");
        while (lexer_.peek().kind != Tok::RBrace)
            statements.push_back(parseStatement());
        expect(Tok::RBrace, "'}'");
        if (lexer_.peek().kind != Tok::End)
            throw ParseError{lexer_.peek().line, "trailing input"};
        if (statements.empty())
            throw ParseError{name.line, "empty loop body"};
    }

  private:
    Stmt
    parseStatement()
    {
        if (lexer_.peek().kind == Tok::Ident &&
            lexer_.peek().text == "if") {
            lexer_.take();
            expect(Tok::LParen, "'('");
            auto guard = parseCondition();
            expect(Tok::RParen, "')'");
            Stmt stmt = parseStatement();
            if (stmt.guard) {
                throw ParseError{stmt.line,
                                 "nested guards are not supported"};
            }
            stmt.guard = std::move(guard);
            return stmt;
        }
        Stmt stmt;
        const Token target = expect(Tok::Ident, "assignment target");
        stmt.line = target.line;
        stmt.name = target.text;
        if (lexer_.peek().kind == Tok::LBracket) {
            stmt.toArray = true;
            stmt.offset = parseSubscript();
        }
        switch (lexer_.take().kind) {
          case Tok::Assign:
            stmt.compound = 0;
            break;
          case Tok::PlusAssign:
            stmt.compound = '+';
            break;
          case Tok::MinusAssign:
            stmt.compound = '-';
            break;
          case Tok::StarAssign:
            stmt.compound = '*';
            break;
          default:
            throw ParseError{stmt.line, "expected an assignment"};
        }
        stmt.value = parseExpr();
        expect(Tok::Semi, "';'");
        return stmt;
    }

    std::unique_ptr<Expr>
    parseCondition()
    {
        auto lhs = parseExpr();
        char relop;
        switch (lexer_.peek().kind) {
          case Tok::Lt:
            relop = '<';
            break;
          case Tok::Gt:
            relop = '>';
            break;
          case Tok::Le:
            relop = 'l';
            break;
          case Tok::Ge:
            relop = 'g';
            break;
          case Tok::EqEq:
            relop = 'e';
            break;
          case Tok::Ne:
            relop = 'n';
            break;
          default:
            throw ParseError{lexer_.peek().line,
                             "expected a comparison"};
        }
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::Compare;
        node->line = lexer_.take().line;
        node->op = relop;
        node->lhs = std::move(lhs);
        node->rhs = parseExpr();
        return node;
    }

    int
    parseSubscript()
    {
        expect(Tok::LBracket, "'['");
        expect(Tok::Ident, "induction variable");
        int offset = 0;
        if (lexer_.peek().kind == Tok::Plus ||
            lexer_.peek().kind == Tok::Minus) {
            const bool negative = lexer_.take().kind == Tok::Minus;
            const Token amount = expect(Tok::Number, "offset");
            offset = std::atoi(amount.text.c_str());
            if (negative)
                offset = -offset;
        }
        expect(Tok::RBracket, "']'");
        return offset;
    }

    std::unique_ptr<Expr>
    parseExpr()
    {
        auto lhs = parseTerm();
        while (lexer_.peek().kind == Tok::Plus ||
               lexer_.peek().kind == Tok::Minus) {
            const Token op = lexer_.take();
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Binary;
            node->line = op.line;
            node->op = op.kind == Tok::Plus ? '+' : '-';
            node->lhs = std::move(lhs);
            node->rhs = parseTerm();
            lhs = std::move(node);
        }
        return lhs;
    }

    std::unique_ptr<Expr>
    parseTerm()
    {
        auto lhs = parseShift();
        while (lexer_.peek().kind == Tok::Star ||
               lexer_.peek().kind == Tok::Slash) {
            const Token op = lexer_.take();
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Binary;
            node->line = op.line;
            node->op = op.kind == Tok::Star ? '*' : '/';
            node->lhs = std::move(lhs);
            node->rhs = parseShift();
            lhs = std::move(node);
        }
        return lhs;
    }

    std::unique_ptr<Expr>
    parseShift()
    {
        auto lhs = parseFactor();
        while (lexer_.peek().kind == Tok::Shl) {
            const Token op = lexer_.take();
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Binary;
            node->line = op.line;
            node->op = '<';
            node->lhs = std::move(lhs);
            node->rhs = parseFactor();
            lhs = std::move(node);
        }
        return lhs;
    }

    std::unique_ptr<Expr>
    parseFactor()
    {
        if (lexer_.peek().kind == Tok::Minus) {
            const Token op = lexer_.take();
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Unary;
            node->line = op.line;
            node->lhs = parsePrimary();
            return node;
        }
        return parsePrimary();
    }

    std::unique_ptr<Expr>
    parsePrimary()
    {
        const Token token = lexer_.take();
        auto node = std::make_unique<Expr>();
        node->line = token.line;
        switch (token.kind) {
          case Tok::Number:
            node->kind = Expr::Kind::Number;
            node->intLiteral =
                token.text.find('.') == std::string::npos;
            return node;
          case Tok::LParen: {
            auto inner = parseExpr();
            expect(Tok::RParen, "')'");
            return inner;
          }
          case Tok::Ident:
            if (token.text == "sqrt") {
                expect(Tok::LParen, "'('");
                node->kind = Expr::Kind::Sqrt;
                node->lhs = parseExpr();
                expect(Tok::RParen, "')'");
                return node;
            }
            node->name = token.text;
            if (lexer_.peek().kind == Tok::LBracket) {
                node->kind = Expr::Kind::ArrayRef;
                node->offset = parseSubscript();
            } else {
                node->kind = Expr::Kind::Scalar;
            }
            return node;
          default:
            throw ParseError{token.line, "expected an expression"};
        }
    }

    Token
    expect(Tok kind, const std::string &what)
    {
        if (lexer_.peek().kind != kind) {
            throw ParseError{lexer_.peek().line,
                             "expected " + what};
        }
        return lexer_.take();
    }

    void
    expectIdent(const std::string &word)
    {
        const Token token = expect(Tok::Ident, "'" + word + "'");
        if (token.text != word)
            throw ParseError{token.line, "expected '" + word + "'"};
    }

    Lexer lexer_;
};

// ------------------------------------------------------------ generator

/** Fortran implicit typing: i..n are integers. */
bool
isIntName(const std::string &name)
{
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(name[0])));
    return c >= 'i' && c <= 'n';
}

class Generator
{
  public:
    Generator(const Parser &parsed) : parsed_(parsed)
    {
        graph_.setName(parsed.loopName);
    }

    Dfg
    run()
    {
        // Pre-scan: which scalars and arrays does the loop define?
        for (const Stmt &stmt : parsed_.statements) {
            if (stmt.toArray) {
                if (stmt.offset != 0) {
                    throw ParseError{stmt.line,
                                     "stores must target [i]"};
                }
                if (!storedArrays_.insert(stmt.name).second) {
                    throw ParseError{stmt.line, "array '" + stmt.name +
                                                    "' stored twice"};
                }
            } else {
                assignedScalars_.insert(stmt.name);
            }
        }

        for (const Stmt &stmt : parsed_.statements)
            genStatement(stmt);

        // Loop-carried reads resolve against the final definitions.
        for (const auto &pending : pendingScalar_) {
            auto def = scalarDef_.find(pending.name);
            cams_assert(def != scalarDef_.end(), "lost definition");
            if (def->second.node != invalidNode) {
                graph_.addEdge(def->second.node, pending.consumer, -1,
                               1);
            }
        }
        for (const auto &pending : pendingArray_) {
            auto def = arrayDef_.find(pending.name);
            if (def == arrayDef_.end()) {
                throw ParseError{pending.line,
                                 "array '" + pending.name +
                                     "' is never stored"};
            }
            if (def->second != invalidNode) {
                graph_.addEdge(def->second, pending.consumer, -1,
                               pending.distance);
            }
        }

        // The synthesized loop control: counter + back branch.
        const NodeId counter =
            graph_.addNode(Opcode::IntAlu, -1, "cnt");
        const NodeId branch = graph_.addNode(Opcode::Branch, -1, "br");
        graph_.addEdge(counter, branch, -1, 0);

        std::string why;
        cams_assert(graph_.wellFormed(&why), "frontend built a bad "
                    "graph: ", why);
        return std::move(graph_);
    }

  private:
    /** An evaluated operand. */
    struct Value
    {
        NodeId node = invalidNode; // invalid = loop invariant
        bool isInt = false;
        /** Set for reads the definition of which comes later. */
        std::string pendingName;
        bool pendingIsArray = false;
        int pendingDistance = 0;
    };

    void
    genStatement(const Stmt &stmt)
    {
        Value guard;
        if (stmt.guard)
            guard = genExpr(*stmt.guard);

        if (stmt.toArray) {
            const Value value = genExpr(*stmt.value);
            const NodeId store =
                graph_.addNode(Opcode::Store, -1, "st_" + stmt.name);
            attachInput(store, value, stmt.line);
            if (stmt.guard)
                attachInput(store, guard, stmt.line);
            arrayDef_[stmt.name] =
                value.node; // forwarded value (invalid = invariant)
            return;
        }

        Value result;
        if (stmt.compound == 0) {
            result = genExpr(*stmt.value);
        } else {
            Value previous = readScalar(stmt.name, stmt.line);
            Value operand = genExpr(*stmt.value);
            result = makeBinary(stmt.compound, previous, operand,
                                stmt.line, stmt.name);
        }
        if (stmt.guard) {
            // If-converted scalar update: a select between the new
            // value and the scalar's previous value, predicated on
            // the guard.
            Value previous = readScalar(stmt.name, stmt.line);
            Value select;
            select.isInt = result.isInt;
            const NodeId node = graph_.addNode(
                select.isInt ? Opcode::IntAlu : Opcode::FpAdd, -1,
                "sel_" + stmt.name);
            attachInput(node, guard, stmt.line);
            attachInput(node, result, stmt.line);
            attachInput(node, previous, stmt.line);
            select.node = node;
            result = select;
        }
        scalarDef_[stmt.name] = result;
    }

    Value
    genExpr(const Expr &expr)
    {
        switch (expr.kind) {
          case Expr::Kind::Number: {
            Value value;
            value.isInt = expr.intLiteral;
            return value;
          }
          case Expr::Kind::Scalar:
            return readScalar(expr.name, expr.line);
          case Expr::Kind::ArrayRef:
            return readArray(expr.name, expr.offset, expr.line);
          case Expr::Kind::Unary: {
            const Value inner = genExpr(*expr.lhs);
            if (inner.node == invalidNode &&
                inner.pendingName.empty()) {
                return inner; // negated invariant stays invariant
            }
            Value value;
            value.isInt = inner.isInt;
            const NodeId node = graph_.addNode(
                inner.isInt ? Opcode::IntAlu : Opcode::FpAdd, -1,
                "neg" + std::to_string(graph_.numNodes()));
            attachInput(node, inner, expr.line);
            value.node = node;
            return value;
          }
          case Expr::Kind::Sqrt: {
            const Value inner = genExpr(*expr.lhs);
            if (inner.node == invalidNode &&
                inner.pendingName.empty()) {
                Value value;
                value.isInt = false;
                return value;
            }
            Value value;
            const NodeId node = graph_.addNode(
                Opcode::FpSqrt, -1,
                "sqrt" + std::to_string(graph_.numNodes()));
            attachInput(node, inner, expr.line);
            value.node = node;
            return value;
          }
          case Expr::Kind::Binary: {
            const Value lhs = genExpr(*expr.lhs);
            const Value rhs = genExpr(*expr.rhs);
            return makeBinary(expr.op, lhs, rhs, expr.line, "");
          }
          case Expr::Kind::Compare: {
            const Value lhs = genExpr(*expr.lhs);
            const Value rhs = genExpr(*expr.rhs);
            const bool lhs_real =
                lhs.node != invalidNode || !lhs.pendingName.empty();
            const bool rhs_real =
                rhs.node != invalidNode || !rhs.pendingName.empty();
            if (!lhs_real && !rhs_real) {
                throw ParseError{expr.line,
                                 "loop-invariant condition"};
            }
            Value value;
            value.isInt = true; // predicates are integer-class
            const NodeId node = graph_.addNode(
                lhs.isInt && rhs.isInt ? Opcode::IntAlu : Opcode::FpAdd,
                -1, "cmp" + std::to_string(graph_.numNodes()));
            attachInput(node, lhs, expr.line);
            attachInput(node, rhs, expr.line);
            value.node = node;
            return value;
          }
        }
        cams_panic("unreachable expression kind");
    }

    Value
    makeBinary(char op, const Value &lhs, const Value &rhs, int line,
               const std::string &hint)
    {
        const bool lhs_real =
            lhs.node != invalidNode || !lhs.pendingName.empty();
        const bool rhs_real =
            rhs.node != invalidNode || !rhs.pendingName.empty();
        Value value;
        value.isInt = lhs.isInt && rhs.isInt;
        if (!lhs_real && !rhs_real)
            return value; // invariant op invariant

        Opcode opcode;
        if (op == '<') {
            opcode = Opcode::IntShift;
        } else if (value.isInt) {
            opcode = Opcode::IntAlu;
        } else if (op == '*') {
            opcode = Opcode::FpMult;
        } else if (op == '/') {
            opcode = Opcode::FpDiv;
        } else {
            opcode = Opcode::FpAdd;
        }
        std::string name = hint;
        if (name.empty()) {
            name = opcodeName(opcode) +
                   std::to_string(graph_.numNodes());
        }
        const NodeId node = graph_.addNode(opcode, -1, name);
        attachInput(node, lhs, line);
        attachInput(node, rhs, line);
        value.node = node;
        return value;
    }

    /** Adds the edge (or defers it) feeding @p consumer. */
    void
    attachInput(NodeId consumer, const Value &input, int line)
    {
        if (!input.pendingName.empty()) {
            if (input.pendingIsArray) {
                pendingArray_.push_back({input.pendingName, consumer,
                                         input.pendingDistance, line});
            } else {
                pendingScalar_.push_back({input.pendingName, consumer});
            }
            return;
        }
        if (input.node != invalidNode)
            graph_.addEdge(input.node, consumer, -1, 0);
    }

    Value
    readScalar(const std::string &name, int line)
    {
        (void)line;
        auto defined = scalarDef_.find(name);
        if (defined != scalarDef_.end())
            return defined->second;
        Value value;
        value.isInt = isIntName(name);
        if (assignedScalars_.count(name)) {
            // Assigned later in the body: this read sees the previous
            // iteration's value.
            value.pendingName = name;
            value.pendingIsArray = false;
            value.pendingDistance = 1;
        }
        return value; // otherwise: loop invariant
    }

    Value
    readArray(const std::string &name, int offset, int line)
    {
        Value value;
        value.isInt = isIntName(name);
        if (storedArrays_.count(name)) {
            // Store-to-load forwarding against the loop's own store.
            if (offset > 0) {
                throw ParseError{line,
                                 "reading a future element of stored "
                                 "array '" +
                                     name + "'"};
            }
            auto defined = arrayDef_.find(name);
            if (defined != arrayDef_.end() && offset == 0) {
                Value forwarded;
                forwarded.isInt = value.isInt;
                forwarded.node = defined->second;
                return forwarded;
            }
            if (offset == 0) {
                throw ParseError{line, "reading '" + name +
                                           "[i]' before storing it"};
            }
            value.pendingName = name;
            value.pendingIsArray = true;
            value.pendingDistance = -offset;
            return value;
        }

        auto cached = loads_.find({name, offset});
        if (cached != loads_.end()) {
            value.node = cached->second;
            return value;
        }
        std::string label = "ld_" + name;
        if (offset > 0)
            label += "_p" + std::to_string(offset);
        else if (offset < 0)
            label += "_m" + std::to_string(-offset);
        const NodeId node = graph_.addNode(Opcode::Load, -1, label);
        loads_[{name, offset}] = node;
        value.node = node;
        return value;
    }

    const Parser &parsed_;
    Dfg graph_;
    std::set<std::string> assignedScalars_;
    std::set<std::string> storedArrays_;
    std::map<std::string, Value> scalarDef_;
    std::map<std::string, NodeId> arrayDef_;
    std::map<std::pair<std::string, int>, NodeId> loads_;
    struct PendingScalar
    {
        std::string name;
        NodeId consumer;
    };
    struct PendingArray
    {
        std::string name;
        NodeId consumer;
        int distance;
        int line;
    };
    std::vector<PendingScalar> pendingScalar_;
    std::vector<PendingArray> pendingArray_;
};

} // namespace

bool
parseLoopSource(const std::string &source, Dfg &out, std::string &error)
{
    try {
        Parser parser(source);
        parser.parse();
        Generator generator(parser);
        out = generator.run();
        error.clear();
        return true;
    } catch (const ParseError &failure) {
        error = "line " + std::to_string(failure.line) + ": " +
                failure.message;
        return false;
    }
}

} // namespace cams
