/**
 * @file
 * A small loop-body frontend: compiles C-like source for an innermost
 * loop into the data-flow graph the rest of the pipeline consumes.
 *
 *   loop tridiag {
 *       x[i] = z[i] * (y[i] - x[i-1]);
 *   }
 *
 * Semantics mirror the preprocessing the paper assumes its input
 * loops already received (load-store elimination, back-substitution):
 *
 *  - an array read a[i+k] becomes a Load; repeated reads of the same
 *    element in one iteration share it;
 *  - reading an element the loop itself stores (x[i-1] when x[i] is
 *    assigned) forwards the stored value directly as a loop-carried
 *    dependence of distance k -- no load is emitted;
 *  - scalars assigned in the loop carry their previous-iteration
 *    value into reads that precede the assignment (s += ... becomes
 *    the classic accumulation recurrence);
 *  - scalars never assigned in the loop are loop invariants and cost
 *    nothing, exactly like constants;
 *  - Fortran convention types identifiers: names starting with i..n
 *    are integer (IntAlu / IntShift ops), everything else floating
 *    point (FpAdd / FpMult / FpDiv / FpSqrt);
 *  - the loop counter and back branch are synthesized.
 *
 *  - guarded statements (`if (x[i] > t) ...;`) are IF-converted: the
 *    comparison becomes a predicate-define operation, predicated
 *    stores take it as an extra input, and predicated scalar updates
 *    become selects merging the old and new values (so a guarded
 *    reduction is a recurrence, as on a real predicated machine);
 *
 * Grammar (statements end with ';', '#' or '//' start comments):
 *
 *   program   := loopDef
 *   loopDef   := 'loop' name '{' stmt* '}'
 *   stmt      := 'if' '(' cond ')' stmt
 *              | lvalue ('=' | '+=' | '-=' | '*=') expr ';'
 *   cond      := expr ('<'|'>'|'<='|'>='|'=='|'!=') expr
 *   lvalue    := ident | ident '[' index ']'
 *   index     := ident (('+'|'-') integer)?
 *   expr      := term (('+'|'-') term)*
 *   term      := shift (('*'|'/') shift)*
 *   shift     := factor ('<<' factor)*
 *   factor    := primary | '-' primary
 *   primary   := number | ident | ident '[' index ']'
 *              | 'sqrt' '(' expr ')' | '(' expr ')'
 */

#ifndef CAMS_FRONTEND_PARSER_HH
#define CAMS_FRONTEND_PARSER_HH

#include <string>

#include "graph/dfg.hh"

namespace cams
{

/**
 * Compiles loop source into a graph.
 * @param error filled with a line-tagged message on failure.
 * @return true and fills @p out on success.
 */
bool parseLoopSource(const std::string &source, Dfg &out,
                     std::string &error);

} // namespace cams

#endif // CAMS_FRONTEND_PARSER_HH
