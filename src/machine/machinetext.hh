/**
 * @file
 * Plain-text machine description format, for the command-line driver
 * and for experiment configs kept under version control.
 *
 * Grammar (one directive per line, '#' starts a comment):
 *
 *   machine <name>
 *   interconnect bus | p2p
 *   buses <n>                          # bus machines
 *   link <clusterA> <clusterB>         # p2p machines, repeatable
 *   cluster gp <units> ports <r> <w>
 *   cluster fs <mem> <int> <fp> ports <r> <w>
 *
 * Clusters are numbered in declaration order. The description is
 * validated (MachineDesc::validate) after parsing.
 */

#ifndef CAMS_MACHINE_MACHINETEXT_HH
#define CAMS_MACHINE_MACHINETEXT_HH

#include <string>

#include "machine/machine.hh"

namespace cams
{

/**
 * Parses a machine description.
 * @param error filled with a line-tagged message on failure.
 * @return true and fills @p out on success.
 */
bool parseMachine(const std::string &text, MachineDesc &out,
                  std::string &error);

/** Serializes a machine into the text format (round-trippable). */
std::string serializeMachine(const MachineDesc &machine);

} // namespace cams

#endif // CAMS_MACHINE_MACHINETEXT_HH
