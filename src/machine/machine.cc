#include "machine/machine.hh"

#include <algorithm>
#include <deque>

#include "support/logging.hh"

namespace cams
{

int
ClusterDesc::fuCount(FuClass cls) const
{
    if (cls == FuClass::None)
        return 0;
    if (usesGpPool())
        return gpUnits;
    return fsUnits[static_cast<int>(cls)];
}

int
ClusterDesc::width() const
{
    if (usesGpPool())
        return gpUnits;
    int total = 0;
    for (int units : fsUnits)
        total += units;
    return total;
}

const ClusterDesc &
MachineDesc::cluster(ClusterId id) const
{
    cams_assert(id >= 0 && id < numClusters(), "bad cluster id ", id);
    return clusters[id];
}

int
MachineDesc::fuCount(ClusterId id, FuClass cls) const
{
    return cluster(id).fuCount(cls);
}

int
MachineDesc::totalWidth() const
{
    int total = 0;
    for (const auto &c : clusters)
        total += c.width();
    return total;
}

bool
MachineDesc::canExecute(Opcode op) const
{
    if (op == Opcode::Copy)
        return numClusters() > 1;
    const FuClass cls = opcodeFuClass(op);
    for (ClusterId c = 0; c < numClusters(); ++c) {
        if (fuCount(c, cls) > 0)
            return true;
    }
    return false;
}

int
MachineDesc::linkBetween(ClusterId a, ClusterId b) const
{
    for (size_t i = 0; i < links.size(); ++i) {
        if ((links[i].a == a && links[i].b == b) ||
            (links[i].a == b && links[i].b == a)) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

std::vector<ClusterId>
MachineDesc::neighbors(ClusterId id) const
{
    std::vector<ClusterId> result;
    if (interconnect == InterconnectKind::Bus) {
        for (ClusterId c = 0; c < numClusters(); ++c) {
            if (c != id)
                result.push_back(c);
        }
        return result;
    }
    for (const LinkDesc &link : links) {
        if (link.a == id)
            result.push_back(link.b);
        else if (link.b == id)
            result.push_back(link.a);
    }
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    return result;
}

std::vector<ClusterId>
MachineDesc::route(ClusterId src, ClusterId dst) const
{
    cams_assert(src != dst, "route from cluster to itself");
    if (interconnect == InterconnectKind::Bus)
        return {src, dst};

    // BFS over the link graph.
    std::vector<ClusterId> parent(numClusters(), invalidCluster);
    std::vector<bool> seen(numClusters(), false);
    std::deque<ClusterId> queue;
    queue.push_back(src);
    seen[src] = true;
    while (!queue.empty()) {
        const ClusterId at = queue.front();
        queue.pop_front();
        if (at == dst)
            break;
        for (ClusterId next : neighbors(at)) {
            if (!seen[next]) {
                seen[next] = true;
                parent[next] = at;
                queue.push_back(next);
            }
        }
    }
    if (!seen[dst])
        return {};
    std::vector<ClusterId> path;
    for (ClusterId at = dst; at != invalidCluster; at = parent[at])
        path.push_back(at);
    path.push_back(invalidCluster);
    path.pop_back();
    std::reverse(path.begin(), path.end());
    cams_assert(path.front() == src && path.back() == dst, "bad route");
    return path;
}

MachineDesc
MachineDesc::unifiedEquivalent() const
{
    MachineDesc unified;
    unified.name = name + "-unified";
    unified.interconnect = InterconnectKind::Bus;
    unified.numBuses = 0;

    ClusterDesc merged;
    bool any_gp = false;
    for (const ClusterDesc &c : clusters) {
        if (c.usesGpPool()) {
            any_gp = true;
            merged.gpUnits += c.gpUnits;
        } else {
            for (int cls = 0; cls < numFuClasses; ++cls)
                merged.fsUnits[cls] += c.fsUnits[cls];
        }
    }
    if (any_gp) {
        // A machine mixing GP and FS clusters widens into a GP pool of
        // the total width; the paper only uses homogeneous machines.
        for (int cls = 0; cls < numFuClasses; ++cls) {
            merged.gpUnits += merged.fsUnits[cls];
            merged.fsUnits[cls] = 0;
        }
    }
    merged.readPorts = 0;
    merged.writePorts = 0;
    unified.clusters.push_back(merged);
    return unified;
}

void
MachineDesc::validate() const
{
    if (clusters.empty())
        cams_fatal("machine '", name, "' has no clusters");
    for (const ClusterDesc &c : clusters) {
        if (c.gpUnits < 0 || c.readPorts < 0 || c.writePorts < 0)
            cams_fatal("machine '", name, "': negative resource count");
        for (int units : c.fsUnits) {
            if (units < 0)
                cams_fatal("machine '", name, "': negative FU count");
        }
        if (c.width() == 0)
            cams_fatal("machine '", name, "': cluster with no units");
    }
    if (numClusters() > 1) {
        if (interconnect == InterconnectKind::Bus && numBuses <= 0) {
            cams_fatal("machine '", name,
                       "': multi-cluster bused machine needs buses");
        }
        if (interconnect == InterconnectKind::PointToPoint) {
            if (links.empty())
                cams_fatal("machine '", name, "': no links");
            for (const LinkDesc &link : links) {
                if (link.a < 0 || link.a >= numClusters() || link.b < 0 ||
                    link.b >= numClusters() || link.a == link.b) {
                    cams_fatal("machine '", name, "': bad link");
                }
            }
            // Every cluster pair must be reachable.
            for (ClusterId a = 0; a < numClusters(); ++a) {
                for (ClusterId b = a + 1; b < numClusters(); ++b) {
                    if (route(a, b).empty()) {
                        cams_fatal("machine '", name, "': clusters ", a,
                                   " and ", b, " are not connected");
                    }
                }
            }
        }
    }
}

} // namespace cams
