#include "machine/machinetext.hh"

#include <sstream>

#include "support/str.hh"

namespace cams
{

namespace
{

std::string
lineError(int line_no, const std::string &message)
{
    return "line " + std::to_string(line_no) + ": " + message;
}

} // namespace

bool
parseMachine(const std::string &text, MachineDesc &out,
             std::string &error)
{
    MachineDesc machine;
    machine.interconnect = InterconnectKind::Bus;
    std::istringstream input(text);
    std::string line;
    int line_no = 0;

    while (std::getline(input, line)) {
        ++line_no;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const auto tokens = splitWhitespace(line);
        if (tokens.empty())
            continue;

        if (tokens[0] == "machine") {
            if (tokens.size() != 2) {
                error = lineError(line_no, "expected: machine <name>");
                return false;
            }
            machine.name = tokens[1];
        } else if (tokens[0] == "interconnect") {
            if (tokens.size() != 2 ||
                (tokens[1] != "bus" && tokens[1] != "p2p")) {
                error = lineError(line_no,
                                  "expected: interconnect bus|p2p");
                return false;
            }
            machine.interconnect = tokens[1] == "bus"
                                       ? InterconnectKind::Bus
                                       : InterconnectKind::PointToPoint;
        } else if (tokens[0] == "buses") {
            int buses = 0;
            if (tokens.size() != 2 || !parseInt(tokens[1], buses) ||
                buses < 0) {
                error = lineError(line_no, "expected: buses <n>");
                return false;
            }
            machine.numBuses = buses;
        } else if (tokens[0] == "link") {
            int a = 0;
            int b = 0;
            if (tokens.size() != 3 || !parseInt(tokens[1], a) ||
                !parseInt(tokens[2], b)) {
                error = lineError(line_no, "expected: link <a> <b>");
                return false;
            }
            machine.links.push_back({a, b});
        } else if (tokens[0] == "cluster") {
            ClusterDesc cluster;
            size_t next = 0;
            if (tokens.size() >= 3 && tokens[1] == "gp") {
                int units = 0;
                if (!parseInt(tokens[2], units) || units <= 0) {
                    error = lineError(line_no, "bad gp unit count");
                    return false;
                }
                cluster.gpUnits = units;
                next = 3;
            } else if (tokens.size() >= 5 && tokens[1] == "fs") {
                int mem = 0;
                int ints = 0;
                int fps = 0;
                if (!parseInt(tokens[2], mem) ||
                    !parseInt(tokens[3], ints) ||
                    !parseInt(tokens[4], fps) || mem < 0 || ints < 0 ||
                    fps < 0) {
                    error = lineError(line_no, "bad fs unit counts");
                    return false;
                }
                cluster.fsUnits[static_cast<int>(FuClass::Memory)] = mem;
                cluster.fsUnits[static_cast<int>(FuClass::Integer)] =
                    ints;
                cluster.fsUnits[static_cast<int>(FuClass::Float)] = fps;
                next = 5;
            } else {
                error = lineError(
                    line_no,
                    "expected: cluster gp <n> ... | cluster fs "
                    "<m> <i> <f> ...");
                return false;
            }
            if (tokens.size() != next + 3 || tokens[next] != "ports" ||
                !parseInt(tokens[next + 1], cluster.readPorts) ||
                !parseInt(tokens[next + 2], cluster.writePorts) ||
                cluster.readPorts < 0 || cluster.writePorts < 0) {
                error = lineError(line_no, "expected: ... ports <r> <w>");
                return false;
            }
            machine.clusters.push_back(cluster);
        } else {
            error = lineError(line_no,
                              "unknown directive '" + tokens[0] + "'");
            return false;
        }
    }

    if (machine.clusters.empty()) {
        error = "no clusters declared";
        return false;
    }
    for (const LinkDesc &link : machine.links) {
        if (link.a < 0 || link.a >= machine.numClusters() || link.b < 0 ||
            link.b >= machine.numClusters() || link.a == link.b) {
            error = "link references an undeclared cluster";
            return false;
        }
    }
    if (machine.interconnect == InterconnectKind::Bus &&
        !machine.links.empty()) {
        error = "links on a bus machine";
        return false;
    }
    if (machine.interconnect == InterconnectKind::PointToPoint &&
        machine.numBuses > 0) {
        error = "buses on a p2p machine";
        return false;
    }
    if (machine.numClusters() > 1) {
        if (machine.interconnect == InterconnectKind::Bus &&
            machine.numBuses == 0) {
            error = "multi-cluster bus machine needs 'buses <n>'";
            return false;
        }
        if (machine.interconnect == InterconnectKind::PointToPoint &&
            machine.links.empty()) {
            error = "p2p machine needs 'link' directives";
            return false;
        }
    }

    machine.validate(); // fatal only on internal inconsistencies
    out = std::move(machine);
    error.clear();
    return true;
}

std::string
serializeMachine(const MachineDesc &machine)
{
    std::ostringstream os;
    if (!machine.name.empty())
        os << "machine " << machine.name << "\n";
    os << "interconnect "
       << (machine.interconnect == InterconnectKind::Bus ? "bus" : "p2p")
       << "\n";
    if (machine.interconnect == InterconnectKind::Bus &&
        machine.numBuses > 0) {
        os << "buses " << machine.numBuses << "\n";
    }
    for (const ClusterDesc &cluster : machine.clusters) {
        if (cluster.usesGpPool()) {
            os << "cluster gp " << cluster.gpUnits;
        } else {
            os << "cluster fs "
               << cluster.fsUnits[static_cast<int>(FuClass::Memory)]
               << " "
               << cluster.fsUnits[static_cast<int>(FuClass::Integer)]
               << " "
               << cluster.fsUnits[static_cast<int>(FuClass::Float)];
        }
        os << " ports " << cluster.readPorts << " " << cluster.writePorts
           << "\n";
    }
    for (const LinkDesc &link : machine.links)
        os << "link " << link.a << " " << link.b << "\n";
    return os.str();
}

} // namespace cams
