/**
 * @file
 * Clustered machine descriptions (the paper's Section 2.1).
 *
 * A machine is a set of clusters, each pairing a register file with a
 * group of function units. Clusters exchange values through explicit
 * copy operations over either shared broadcast buses or dedicated
 * point-to-point links. A copy occupies, for one cycle, one register
 * file read port on the source cluster, one write port on every
 * destination cluster, and one bus (broadcast) or the entire link
 * (point-to-point). Copies need no issue slot or function unit.
 *
 * A cluster's function units are either a general-purpose (GP) pool
 * that executes every opcode, or fully-specialized (FS) pools with
 * dedicated memory / integer / floating-point units.
 */

#ifndef CAMS_MACHINE_MACHINE_HH
#define CAMS_MACHINE_MACHINE_HH

#include <array>
#include <string>
#include <vector>

#include "graph/opcode.hh"

namespace cams
{

/** Index of a cluster within its machine. */
using ClusterId = int;

/** Sentinel for "no cluster". */
constexpr ClusterId invalidCluster = -1;

/** One register file + function unit group. */
struct ClusterDesc
{
    /** Size of the general-purpose pool; 0 on FS clusters. */
    int gpUnits = 0;

    /** FS pools indexed by FuClass (Memory, Integer, Float). */
    std::array<int, numFuClasses> fsUnits{};

    /** Register-file read ports feeding the interconnect. */
    int readPorts = 1;

    /** Interconnect write ports into the register file. */
    int writePorts = 1;

    /** True when this cluster executes opcodes on the GP pool. */
    bool usesGpPool() const { return gpUnits > 0; }

    /** Units available for the given class on this cluster. */
    int fuCount(FuClass cls) const;

    /** Total function units (the cluster's issue width). */
    int width() const;
};

/** How clusters communicate. */
enum class InterconnectKind
{
    Bus,          ///< shared broadcast buses
    PointToPoint, ///< dedicated links between cluster pairs
};

/** One bidirectional point-to-point link. */
struct LinkDesc
{
    ClusterId a = invalidCluster;
    ClusterId b = invalidCluster;
};

/** A complete clustered machine. */
struct MachineDesc
{
    std::string name;
    std::vector<ClusterDesc> clusters;
    InterconnectKind interconnect = InterconnectKind::Bus;

    /** Number of shared buses (Bus interconnect only). */
    int numBuses = 0;

    /** Point-to-point links (PointToPoint interconnect only). */
    std::vector<LinkDesc> links;

    /** Number of clusters. */
    int numClusters() const
    {
        return static_cast<int>(clusters.size());
    }

    /** True when copies broadcast to any set of destinations. */
    bool broadcast() const
    {
        return interconnect == InterconnectKind::Bus;
    }

    /** Cluster accessor (checked). */
    const ClusterDesc &cluster(ClusterId id) const;

    /** Units available for a class on a cluster. */
    int fuCount(ClusterId id, FuClass cls) const;

    /** Sum of all cluster widths: the machine's issue width. */
    int totalWidth() const;

    /** True when the opcode can execute somewhere on this machine. */
    bool canExecute(Opcode op) const;

    /** Link index connecting two clusters, or -1. */
    int linkBetween(ClusterId a, ClusterId b) const;

    /** Neighbor clusters directly reachable from the given cluster. */
    std::vector<ClusterId> neighbors(ClusterId id) const;

    /**
     * Shortest copy route between two clusters (BFS over links); for a
     * bused machine this is always {src, dst}. Empty when unreachable.
     * The route includes both endpoints.
     */
    std::vector<ClusterId> route(ClusterId src, ClusterId dst) const;

    /**
     * The equally wide unified machine (the paper's baseline): one
     * cluster holding every function unit, no interconnect.
     */
    MachineDesc unifiedEquivalent() const;

    /** Sanity checks; fatal() on an impossible description. */
    void validate() const;
};

} // namespace cams

#endif // CAMS_MACHINE_MACHINE_HH
