#include "machine/configs.hh"

#include "support/logging.hh"

namespace cams
{

namespace
{

ClusterDesc
gpCluster(int units, int ports)
{
    ClusterDesc cluster;
    cluster.gpUnits = units;
    cluster.readPorts = ports;
    cluster.writePorts = ports;
    return cluster;
}

ClusterDesc
fsCluster(int mem_units, int int_units, int fp_units, int ports)
{
    ClusterDesc cluster;
    cluster.fsUnits[static_cast<int>(FuClass::Memory)] = mem_units;
    cluster.fsUnits[static_cast<int>(FuClass::Integer)] = int_units;
    cluster.fsUnits[static_cast<int>(FuClass::Float)] = fp_units;
    cluster.readPorts = ports;
    cluster.writePorts = ports;
    return cluster;
}

} // namespace

MachineDesc
busedGpMachine(int num_clusters, int buses, int ports)
{
    cams_assert(num_clusters >= 1, "need at least one cluster");
    MachineDesc machine;
    machine.name = std::to_string(num_clusters) + "c-gp-" +
                   std::to_string(buses) + "b-" + std::to_string(ports) +
                   "p";
    machine.interconnect = InterconnectKind::Bus;
    machine.numBuses = buses;
    for (int c = 0; c < num_clusters; ++c)
        machine.clusters.push_back(gpCluster(4, ports));
    machine.validate();
    return machine;
}

MachineDesc
busedFsMachine(int num_clusters, int buses, int ports)
{
    cams_assert(num_clusters >= 1, "need at least one cluster");
    MachineDesc machine;
    machine.name = std::to_string(num_clusters) + "c-fs-" +
                   std::to_string(buses) + "b-" + std::to_string(ports) +
                   "p";
    machine.interconnect = InterconnectKind::Bus;
    machine.numBuses = buses;
    for (int c = 0; c < num_clusters; ++c)
        machine.clusters.push_back(fsCluster(1, 2, 1, ports));
    machine.validate();
    return machine;
}

MachineDesc
gridMachine(int ports)
{
    MachineDesc machine;
    machine.name = "4c-grid-" + std::to_string(ports) + "p";
    machine.interconnect = InterconnectKind::PointToPoint;
    for (int c = 0; c < 4; ++c)
        machine.clusters.push_back(fsCluster(1, 1, 1, ports));
    // Square arrangement: 0-1 and 2-3 horizontal, 0-2 and 1-3 vertical.
    machine.links = {{0, 1}, {2, 3}, {0, 2}, {1, 3}};
    machine.validate();
    return machine;
}

MachineDesc
unifiedGpMachine(int width)
{
    MachineDesc machine;
    machine.name = "unified-gp-" + std::to_string(width);
    machine.interconnect = InterconnectKind::Bus;
    machine.numBuses = 0;
    machine.clusters.push_back(gpCluster(width, 0));
    machine.validate();
    return machine;
}

MachineDesc
unifiedFsMachine(int mem_units, int int_units, int fp_units)
{
    MachineDesc machine;
    machine.name = "unified-fs-" + std::to_string(mem_units) + "m" +
                   std::to_string(int_units) + "i" +
                   std::to_string(fp_units) + "f";
    machine.interconnect = InterconnectKind::Bus;
    machine.numBuses = 0;
    machine.clusters.push_back(fsCluster(mem_units, int_units, fp_units, 0));
    machine.validate();
    return machine;
}

} // namespace cams
