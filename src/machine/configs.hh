/**
 * @file
 * Factory for the paper's machine configurations (Section 2.1):
 *
 *  - bused machines of N clusters with four general-purpose units per
 *    cluster (Figures 2 and 3, Table 3),
 *  - bused machines of N clusters with four fully-specialized units
 *    per cluster: 1 memory, 2 integer, 1 floating point (Figs. 18/19),
 *  - the four-cluster grid with three FS units per cluster (1 memory,
 *    1 integer, 1 FP) and point-to-point links arranged in a square
 *    (Figure 4),
 *  - unified single-cluster baselines of arbitrary width.
 */

#ifndef CAMS_MACHINE_CONFIGS_HH
#define CAMS_MACHINE_CONFIGS_HH

#include "machine/machine.hh"

namespace cams
{

/**
 * Bused machine with @p num_clusters clusters of four GP units each.
 * @param buses number of shared broadcast buses.
 * @param ports bus read and write ports per cluster.
 */
MachineDesc busedGpMachine(int num_clusters, int buses, int ports);

/**
 * Bused machine whose clusters hold four fully-specialized units:
 * one memory, two integer, one floating point.
 */
MachineDesc busedFsMachine(int num_clusters, int buses, int ports);

/**
 * The four-cluster grid (Figure 4): three FS units per cluster
 * (1 memory, 1 integer, 1 FP), clusters at the corners of a square,
 * links along the four sides only (no diagonals).
 * @param ports link read and write ports per cluster.
 */
MachineDesc gridMachine(int ports = 2);

/** Unified GP machine of the given issue width (baseline). */
MachineDesc unifiedGpMachine(int width);

/**
 * Unified FS machine with the given per-class unit counts
 * (baseline for the FS and grid experiments).
 */
MachineDesc unifiedFsMachine(int mem_units, int int_units, int fp_units);

} // namespace cams

#endif // CAMS_MACHINE_CONFIGS_HH
