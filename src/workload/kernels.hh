/**
 * @file
 * Hand-translated classic loop kernels in the style of the Livermore
 * FORTRAN Kernels, used by examples and tests as realistic named
 * inputs. Each is the innermost loop body after the preprocessing the
 * paper assumes (load-store elimination, IF-conversion, recurrence
 * back-substitution of induction variables): loads feed an expression
 * tree, a store and the loop-back branch close the body, and true
 * recurrences remain as loop-carried SCCs.
 */

#ifndef CAMS_WORKLOAD_KERNELS_HH
#define CAMS_WORKLOAD_KERNELS_HH

#include <string>
#include <vector>

#include "graph/dfg.hh"

namespace cams
{

/** LFK 1 style hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]). */
Dfg kernelHydro();

/** Inner product: q += z[k] * x[k] (one 2-node FP recurrence). */
Dfg kernelInnerProduct();

/** LFK 5 style tri-diagonal elimination: x[i] = z[i]*(y[i] - x[i-1]). */
Dfg kernelTridiag();

/** First difference: x[k] = y[k+1] - y[k] (recurrence-free). */
Dfg kernelFirstDiff();

/** LFK 7 style state equation: wide recurrence-free expression tree. */
Dfg kernelStateEquation();

/** 4-tap FIR filter with an accumulation recurrence. */
Dfg kernelFir4();

/** LFK 11 style first-order linear recurrence: x[k] = x[k-1] + y[k]. */
Dfg kernelFirstOrderRecurrence();

/** Integer address-chasing loop (pointer increment recurrence). */
Dfg kernelAddressChase();

/** LFK 6 style general linear recurrence inner body. */
Dfg kernelLinearRecurrence();

/** LFK 9 style integrate predictors: wide shared-coefficient tree. */
Dfg kernelPredictor();

/** LFK 18 style 2-D explicit hydrodynamics fragment (large body). */
Dfg kernelHydro2d();

/** CRC-style integer shift/xor loop with a carried recurrence. */
Dfg kernelCrc();

/** All kernels, for sweep tests and examples. */
std::vector<Dfg> allKernels();

} // namespace cams

#endif // CAMS_WORKLOAD_KERNELS_HH
