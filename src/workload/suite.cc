#include "workload/suite.hh"

#include "graph/scc.hh"

namespace cams
{

namespace
{

uint64_t
mixSeed(uint64_t seed, uint64_t index)
{
    uint64_t x = seed ^ (0x9e3779b97f4a7c15ULL + index * 0xbf58476d1ce4e5b9ULL);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::vector<Dfg>
buildSuite(int count, uint64_t seed, const GeneratorParams &params)
{
    std::vector<Dfg> suite;
    suite.reserve(count);
    for (int i = 0; i < count; ++i) {
        suite.push_back(generateLoop(mixSeed(seed, i), params,
                                     "synth" + std::to_string(i)));
    }
    return suite;
}

SuiteStats
computeSuiteStats(const std::vector<Dfg> &suite)
{
    SuiteStats stats;
    stats.totalLoops = static_cast<int>(suite.size());
    for (const Dfg &loop : suite) {
        stats.nodes.add(loop.numNodes());
        stats.edges.add(loop.numEdges());
        const SccInfo sccs = findSccs(loop);
        const int nontrivial = sccs.numNonTrivial();
        stats.sccsPerLoop.add(nontrivial);
        if (nontrivial > 0) {
            ++stats.loopsWithSccs;
            int members = 0;
            for (int c = 0; c < sccs.numComponents(); ++c) {
                if (sccs.nonTrivial[c]) {
                    members +=
                        static_cast<int>(sccs.components[c].size());
                }
            }
            stats.sccNodes.add(members);
        }
    }
    return stats;
}

} // namespace cams
