/**
 * @file
 * The experiment suite: 1327 deterministic synthetic loops standing
 * in for the paper's Perfect Club / SPEC-89 / Livermore set, plus the
 * statistics report that reproduces Table 1.
 */

#ifndef CAMS_WORKLOAD_SUITE_HH
#define CAMS_WORKLOAD_SUITE_HH

#include <cstdint>
#include <vector>

#include "graph/dfg.hh"
#include "support/stats.hh"
#include "workload/generator.hh"

namespace cams
{

/** Default master seed of the published experiments. */
constexpr uint64_t defaultSuiteSeed = 0xCA5Cade5ULL;

/** Aggregate statistics in the shape of the paper's Table 1. */
struct SuiteStats
{
    RunningStat nodes;
    RunningStat sccsPerLoop;
    /** Nodes in non-trivial SCCs, over loops that have any. */
    RunningStat sccNodes;
    RunningStat edges;
    int loopsWithSccs = 0;
    int totalLoops = 0;
};

/**
 * Builds the suite.
 * @param count loop count (the paper's 1327 by default).
 * @param seed master seed; loop i uses a hash of (seed, i).
 */
std::vector<Dfg> buildSuite(int count = 1327,
                            uint64_t seed = defaultSuiteSeed,
                            const GeneratorParams &params = {});

/** Computes Table 1 statistics over any loop collection. */
SuiteStats computeSuiteStats(const std::vector<Dfg> &suite);

} // namespace cams

#endif // CAMS_WORKLOAD_SUITE_HH
