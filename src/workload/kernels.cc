#include "workload/kernels.hh"

#include "graph/builder.hh"

namespace cams
{

Dfg
kernelHydro()
{
    // x[k] = q + y[k] * (r*z[k+10] + t*z[k+11])
    DfgBuilder b("hydro");
    b.op("ld_y", Opcode::Load)
        .op("ld_z10", Opcode::Load)
        .op("ld_z11", Opcode::Load)
        .op("mul_r", Opcode::FpMult)
        .op("mul_t", Opcode::FpMult)
        .op("add_in", Opcode::FpAdd)
        .op("mul_y", Opcode::FpMult)
        .op("add_q", Opcode::FpAdd)
        .op("st_x", Opcode::Store)
        .op("cnt", Opcode::IntAlu)
        .op("br", Opcode::Branch);
    b.flow("ld_z10", "mul_r")
        .flow("ld_z11", "mul_t")
        .flow("mul_r", "add_in")
        .flow("mul_t", "add_in")
        .flow("ld_y", "mul_y")
        .flow("add_in", "mul_y")
        .flow("mul_y", "add_q")
        .flow("add_q", "st_x")
        .flow("cnt", "br");
    return b.build();
}

Dfg
kernelInnerProduct()
{
    // q += z[k] * x[k]
    DfgBuilder b("inner_product");
    b.op("ld_z", Opcode::Load)
        .op("ld_x", Opcode::Load)
        .op("mul", Opcode::FpMult)
        .op("acc", Opcode::FpAdd)
        .op("cnt", Opcode::IntAlu)
        .op("br", Opcode::Branch);
    b.flow("ld_z", "mul")
        .flow("ld_x", "mul")
        .flow("mul", "acc")
        .carried("acc", "acc", 1)
        .flow("cnt", "br");
    return b.build();
}

Dfg
kernelTridiag()
{
    // x[i] = z[i] * (y[i] - x[i-1]); the sub/mul pair is a distance-1
    // recurrence with RecMII = (1 + 3) / 1 = 4.
    DfgBuilder b("tridiag");
    b.op("ld_z", Opcode::Load)
        .op("ld_y", Opcode::Load)
        .op("sub", Opcode::FpAdd)
        .op("mul", Opcode::FpMult)
        .op("st_x", Opcode::Store)
        .op("cnt", Opcode::IntAlu)
        .op("br", Opcode::Branch);
    b.flow("ld_y", "sub")
        .flow("ld_z", "mul")
        .flow("sub", "mul")
        .carried("mul", "sub", 1)
        .flow("mul", "st_x")
        .flow("cnt", "br");
    return b.build();
}

Dfg
kernelFirstDiff()
{
    // x[k] = y[k+1] - y[k]
    DfgBuilder b("first_diff");
    b.op("ld_y1", Opcode::Load)
        .op("ld_y0", Opcode::Load)
        .op("sub", Opcode::FpAdd)
        .op("st_x", Opcode::Store)
        .op("cnt", Opcode::IntAlu)
        .op("br", Opcode::Branch);
    b.flow("ld_y1", "sub")
        .flow("ld_y0", "sub")
        .flow("sub", "st_x")
        .flow("cnt", "br");
    return b.build();
}

Dfg
kernelStateEquation()
{
    // LFK 7 flavor:
    // x[k] = u[k] + r*(z[k] + r*y[k])
    //      + t*(u[k+3] + r*(u[k+2] + r*u[k+1]))
    DfgBuilder b("state_equation");
    b.op("ld_u0", Opcode::Load)
        .op("ld_u1", Opcode::Load)
        .op("ld_u2", Opcode::Load)
        .op("ld_u3", Opcode::Load)
        .op("ld_z", Opcode::Load)
        .op("ld_y", Opcode::Load)
        .op("m_ry", Opcode::FpMult)
        .op("a_zy", Opcode::FpAdd)
        .op("m_r1", Opcode::FpMult)
        .op("a_u0", Opcode::FpAdd)
        .op("m_ru1", Opcode::FpMult)
        .op("a_u2", Opcode::FpAdd)
        .op("m_r2", Opcode::FpMult)
        .op("a_u3", Opcode::FpAdd)
        .op("m_t", Opcode::FpMult)
        .op("a_all", Opcode::FpAdd)
        .op("st_x", Opcode::Store)
        .op("cnt", Opcode::IntAlu)
        .op("br", Opcode::Branch);
    b.flow("ld_y", "m_ry")
        .flow("ld_z", "a_zy")
        .flow("m_ry", "a_zy")
        .flow("a_zy", "m_r1")
        .flow("ld_u0", "a_u0")
        .flow("m_r1", "a_u0")
        .flow("ld_u1", "m_ru1")
        .flow("ld_u2", "a_u2")
        .flow("m_ru1", "a_u2")
        .flow("a_u2", "m_r2")
        .flow("ld_u3", "a_u3")
        .flow("m_r2", "a_u3")
        .flow("a_u3", "m_t")
        .flow("a_u0", "a_all")
        .flow("m_t", "a_all")
        .flow("a_all", "st_x")
        .flow("cnt", "br");
    return b.build();
}

Dfg
kernelFir4()
{
    // y[n] = sum_{i<4} c[i] * x[n-i], accumulated serially.
    DfgBuilder b("fir4");
    b.op("ld_x0", Opcode::Load)
        .op("ld_x1", Opcode::Load)
        .op("ld_x2", Opcode::Load)
        .op("ld_x3", Opcode::Load)
        .op("m0", Opcode::FpMult)
        .op("m1", Opcode::FpMult)
        .op("m2", Opcode::FpMult)
        .op("m3", Opcode::FpMult)
        .op("a01", Opcode::FpAdd)
        .op("a23", Opcode::FpAdd)
        .op("sum", Opcode::FpAdd)
        .op("st_y", Opcode::Store)
        .op("cnt", Opcode::IntAlu)
        .op("br", Opcode::Branch);
    b.flow("ld_x0", "m0")
        .flow("ld_x1", "m1")
        .flow("ld_x2", "m2")
        .flow("ld_x3", "m3")
        .flow("m0", "a01")
        .flow("m1", "a01")
        .flow("m2", "a23")
        .flow("m3", "a23")
        .flow("a01", "sum")
        .flow("a23", "sum")
        .flow("sum", "st_y")
        .flow("cnt", "br");
    return b.build();
}

Dfg
kernelFirstOrderRecurrence()
{
    // x[k] = x[k-1] + y[k]
    DfgBuilder b("first_order_rec");
    b.op("ld_y", Opcode::Load)
        .op("acc", Opcode::FpAdd)
        .op("st_x", Opcode::Store)
        .op("cnt", Opcode::IntAlu)
        .op("br", Opcode::Branch);
    b.flow("ld_y", "acc")
        .carried("acc", "acc", 1)
        .flow("acc", "st_x")
        .flow("cnt", "br");
    return b.build();
}

Dfg
kernelAddressChase()
{
    // p = *(p + offset): a load inside the recurrence.
    DfgBuilder b("address_chase");
    b.op("addr", Opcode::IntAlu)
        .op("ld_p", Opcode::Load)
        .op("use", Opcode::IntAlu)
        .op("st", Opcode::Store)
        .op("br", Opcode::Branch);
    b.flow("addr", "ld_p")
        .carried("ld_p", "addr", 1)
        .flow("ld_p", "use")
        .flow("use", "st")
        .flow("use", "br");
    return b.build();
}

Dfg
kernelLinearRecurrence()
{
    // LFK 6 inner body: w += b[k][i] * w_prev (accumulation whose
    // carried input also feeds an address computation).
    DfgBuilder b("linear_rec");
    b.op("addr", Opcode::IntAlu)
        .op("ld_b", Opcode::Load)
        .op("mul", Opcode::FpMult)
        .op("acc", Opcode::FpAdd)
        .op("cnt", Opcode::IntAlu)
        .op("br", Opcode::Branch);
    b.flow("addr", "ld_b")
        .flow("ld_b", "mul")
        .carried("acc", "mul", 1)
        .flow("mul", "acc")
        .flow("cnt", "br");
    return b.build();
}

Dfg
kernelPredictor()
{
    // LFK 9 flavor: px[i] = dm28*px13 + dm27*px12 + ... + c0*px4,
    // a wide tree over shared coefficient constants.
    DfgBuilder b("predictor");
    for (int i = 0; i < 5; ++i)
        b.op("ld" + std::to_string(i), Opcode::Load);
    for (int i = 0; i < 5; ++i) {
        b.op("m" + std::to_string(i), Opcode::FpMult);
        b.flow("ld" + std::to_string(i), "m" + std::to_string(i));
    }
    b.op("a0", Opcode::FpAdd)
        .op("a1", Opcode::FpAdd)
        .op("a2", Opcode::FpAdd)
        .op("a3", Opcode::FpAdd)
        .op("st", Opcode::Store)
        .op("cnt", Opcode::IntAlu)
        .op("br", Opcode::Branch);
    b.flow("m0", "a0")
        .flow("m1", "a0")
        .flow("m2", "a1")
        .flow("m3", "a1")
        .flow("a0", "a2")
        .flow("a1", "a2")
        .flow("m4", "a3")
        .flow("a2", "a3")
        .flow("a3", "st")
        .flow("cnt", "br");
    return b.build();
}

Dfg
kernelHydro2d()
{
    // LFK 18 flavor: one of the three update statements of 2-D
    // explicit hydrodynamics, with neighbor loads in two dimensions.
    DfgBuilder b("hydro2d");
    const char *loads[] = {"zp_jk",  "zq_jk",  "zr_jk",  "zm_jk",
                           "zr_j1k", "zm_jk1", "zz_jk",  "zu_jk"};
    for (const char *name : loads)
        b.op(name, Opcode::Load);
    b.op("t1", Opcode::FpAdd)
        .op("t2", Opcode::FpAdd)
        .op("m1", Opcode::FpMult)
        .op("m2", Opcode::FpMult)
        .op("d1", Opcode::FpAdd)
        .op("m3", Opcode::FpMult)
        .op("m4", Opcode::FpMult)
        .op("d2", Opcode::FpAdd)
        .op("s1", Opcode::FpMult)
        .op("sum", Opcode::FpAdd)
        .op("upd", Opcode::FpAdd)
        .op("st", Opcode::Store)
        .op("cnt", Opcode::IntAlu)
        .op("cmp", Opcode::IntAlu)
        .op("br", Opcode::Branch);
    b.flow("zp_jk", "t1")
        .flow("zq_jk", "t1")
        .flow("zr_jk", "t2")
        .flow("zm_jk", "t2")
        .flow("t1", "m1")
        .flow("zr_j1k", "m2")
        .flow("m1", "d1")
        .flow("m2", "d1")
        .flow("t2", "m3")
        .flow("zm_jk1", "m4")
        .flow("m3", "d2")
        .flow("m4", "d2")
        .flow("d1", "s1")
        .flow("d2", "sum")
        .flow("s1", "sum")
        .flow("zz_jk", "upd")
        .flow("sum", "upd")
        .flow("zu_jk", "upd")
        .flow("upd", "st")
        .flow("cnt", "cmp")
        .flow("cmp", "br");
    return b.build();
}

Dfg
kernelCrc()
{
    // crc = table[(crc ^ data) & mask] ^ (crc >> 8): the crc value is
    // a loop-carried recurrence through integer ops and a table load.
    DfgBuilder b("crc");
    b.op("ld_data", Opcode::Load)
        .op("xor_in", Opcode::IntAlu)
        .op("mask", Opcode::IntAlu)
        .op("ld_tab", Opcode::Load)
        .op("shift", Opcode::IntShift)
        .op("xor_out", Opcode::IntAlu)
        .op("cnt", Opcode::IntAlu)
        .op("br", Opcode::Branch);
    b.flow("ld_data", "xor_in")
        .carried("xor_out", "xor_in", 1)
        .flow("xor_in", "mask")
        .flow("mask", "ld_tab")
        .carried("xor_out", "shift", 1)
        .flow("ld_tab", "xor_out")
        .flow("shift", "xor_out")
        .flow("cnt", "br");
    return b.build();
}

std::vector<Dfg>
allKernels()
{
    std::vector<Dfg> kernels;
    kernels.push_back(kernelHydro());
    kernels.push_back(kernelInnerProduct());
    kernels.push_back(kernelTridiag());
    kernels.push_back(kernelFirstDiff());
    kernels.push_back(kernelStateEquation());
    kernels.push_back(kernelFir4());
    kernels.push_back(kernelFirstOrderRecurrence());
    kernels.push_back(kernelAddressChase());
    kernels.push_back(kernelLinearRecurrence());
    kernels.push_back(kernelPredictor());
    kernels.push_back(kernelHydro2d());
    kernels.push_back(kernelCrc());
    return kernels;
}

} // namespace cams
