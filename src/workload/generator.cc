#include "workload/generator.hh"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "support/logging.hh"

namespace cams
{

namespace
{

/** Opcode mix of recurrence members (accumulations, reductions). */
Opcode
sccOpcode(Rng &rng)
{
    static const Opcode ops[] = {Opcode::FpAdd, Opcode::FpMult,
                                 Opcode::IntAlu, Opcode::IntShift};
    static const std::vector<double> weights = {0.42, 0.20, 0.30, 0.08};
    return ops[rng.weightedIndex(weights)];
}

/** Opcode mix of straight-line body operations. */
Opcode
bodyOpcode(Rng &rng)
{
    static const Opcode ops[] = {
        Opcode::Load,  Opcode::Store,  Opcode::IntAlu, Opcode::IntShift,
        Opcode::FpAdd, Opcode::FpMult, Opcode::FpDiv,  Opcode::FpSqrt};
    static const std::vector<double> weights = {0.22, 0.11,  0.27, 0.05,
                                                0.17, 0.13,  0.04, 0.01};
    return ops[rng.weightedIndex(weights)];
}

} // namespace

Dfg
generateLoop(uint64_t seed, const GeneratorParams &params,
             const std::string &name)
{
    Rng rng(seed);
    Dfg graph;
    graph.setName(name.empty() ? "synth" + std::to_string(seed) : name);

    const int n =
        rng.lognormalInt(params.nodeMu, params.nodeSigma,
                         params.minNodes, params.maxNodes);
    const int body_count = n - 1; // one slot reserved for the branch

    // --- Plan the recurrences -------------------------------------
    struct SccPlan
    {
        int first; // body position of the first member
        int size;
        int distance; // of the closing loop-carried edge
    };
    std::vector<SccPlan> sccs;
    if (body_count >= 2 && rng.chance(params.sccLoopProbability)) {
        int budget = std::min(params.maxSccNodes, body_count);
        int count = 1;
        while (count < params.maxSccsPerLoop && rng.chance(0.55))
            ++count;
        std::vector<int> sizes;
        for (int i = 0; i < count && budget >= 2; ++i) {
            int size = 2 + rng.lognormalInt(1.05, 0.75, 0, budget - 2);
            size = std::min(size, budget);
            sizes.push_back(size);
            budget -= size;
        }
        // Lay the SCC blocks out contiguously at the front of the
        // body; interleaving with free nodes happens through edges.
        int position = 0;
        for (int size : sizes) {
            SccPlan plan;
            plan.first = position;
            plan.size = size;
            plan.distance = rng.chance(0.15) ? 2 : 1;
            position += size;
            sccs.push_back(plan);
        }
    }

    // --- Create the nodes (body order = topological order) ---------
    std::vector<bool> in_scc(body_count, false);
    for (const SccPlan &scc : sccs) {
        for (int i = scc.first; i < scc.first + scc.size; ++i)
            in_scc[i] = true;
    }
    for (int i = 0; i < body_count; ++i) {
        Opcode op = in_scc[i] ? sccOpcode(rng) : bodyOpcode(rng);
        // The first body node is always a root; a store there would be
        // left with nothing to store (and could leave the graph
        // edgeless), so demote it to a load.
        if (i == 0 && op == Opcode::Store)
            op = Opcode::Load;
        graph.addNode(op);
    }
    const NodeId branch = graph.addNode(Opcode::Branch);

    std::set<std::pair<NodeId, NodeId>> edge_set;
    std::vector<int> fanout(graph.numNodes(), 0);
    auto addEdge = [&](NodeId src, NodeId dst, int distance) {
        if (edge_set.count({src, dst}))
            return false;
        edge_set.insert({src, dst});
        graph.addEdge(src, dst, -1, distance);
        ++fanout[src];
        return true;
    };

    auto canProduce = [&](NodeId v) {
        const Opcode op = graph.node(v).op;
        return op != Opcode::Store && op != Opcode::Branch;
    };

    // Compiled loop bodies combine two sharing patterns: a few "hub"
    // values with high fan-out (the loop index, IF-conversion
    // predicates, base addresses, loop invariants) and expression
    // trees whose intermediate values have a single local consumer.
    // Hubs make graphs dense without making them hard to partition --
    // on a broadcast machine one copy delivers a hub everywhere --
    // while diffuse random sharing would be maximally cut-hostile and
    // unlike real code.
    std::vector<NodeId> hubs;
    for (NodeId u = 0; u < body_count && static_cast<int>(hubs.size()) <
                                             std::max(1, body_count / 10);
         ++u) {
        const Opcode op = graph.node(u).op;
        if (!in_scc[u] &&
            (op == Opcode::IntAlu || op == Opcode::IntShift)) {
            hubs.push_back(u);
        }
    }

    auto pickTreeProducer = [&](NodeId before) -> NodeId {
        std::vector<NodeId> producers;
        std::vector<double> weights;
        for (NodeId u = 0; u < before; ++u) {
            if (!canProduce(u))
                continue;
            producers.push_back(u);
            const double locality = (before - u) <= 6    ? 3.0
                                    : (before - u) <= 16 ? 1.0
                                                         : 0.35;
            weights.push_back(locality /
                              ((1.0 + fanout[u]) * (1.0 + fanout[u])));
        }
        if (producers.empty())
            return invalidNode;
        return producers[rng.weightedIndex(weights)];
    };

    auto pickProducer = [&](NodeId before) -> NodeId {
        // Hubs soak up roughly half of the value uses.
        std::vector<NodeId> usable_hubs;
        for (NodeId hub : hubs) {
            if (hub < before)
                usable_hubs.push_back(hub);
        }
        if (!usable_hubs.empty() && rng.chance(0.5)) {
            return usable_hubs[rng.uniformInt(
                0, static_cast<int>(usable_hubs.size()) - 1)];
        }
        return pickTreeProducer(before);
    };

    // --- Close the recurrences -------------------------------------
    for (const SccPlan &scc : sccs) {
        const int last = scc.first + scc.size - 1;
        for (int i = scc.first; i < last; ++i)
            addEdge(i, i + 1, 0);
        addEdge(last, scc.first, scc.distance);
        if (scc.size >= 3 && rng.chance(0.3)) {
            const int from = rng.uniformInt(scc.first, last - 2);
            const int to = rng.uniformInt(from + 2, last);
            addEdge(from, to, 0);
        }
    }

    // --- Wire the straight-line body -------------------------------
    for (int v = 0; v < body_count; ++v) {
        if (in_scc[v] && v != 0) {
            // Recurrence members already have predecessors; give the
            // block head an occasional external input.
            const bool is_head = std::any_of(
                sccs.begin(), sccs.end(),
                [&](const SccPlan &scc) { return scc.first == v; });
            if (!is_head || !rng.chance(0.5))
                continue;
        }
        if (v == 0)
            continue; // the first node is always a root

        const Opcode op = graph.node(v).op;
        const bool may_root =
            op == Opcode::Load ? rng.chance(0.35) : rng.chance(0.05);
        if (may_root && op != Opcode::Store)
            continue;

        // One or two predecessors among earlier producers.
        const int preds = rng.chance(0.35) ? 2 : 1;
        for (int i = 0; i < preds; ++i) {
            const NodeId u = pickProducer(v);
            if (u != invalidNode)
                addEdge(u, v, 0);
        }
    }

    // The loop-back branch tests a value computed in the body.
    {
        const NodeId u = pickProducer(body_count);
        if (u != invalidNode)
            addEdge(u, branch, 0);
    }

    // --- Extra edges up to the calibrated density -------------------
    const double density_noise = 0.85 + 0.3 * rng.uniformReal();
    const int target = std::min(
        232,
        static_cast<int>(params.edgeFactor * n * density_noise + 0.5));
    int attempts = 4 * target;
    while (graph.numEdges() < target && attempts-- > 0 &&
           body_count >= 2) {
        const NodeId dst = rng.uniformInt(1, body_count - 1);
        const NodeId src = pickProducer(dst);
        if (src == invalidNode)
            continue;
        const int distance =
            rng.chance(params.carriedEdgeProbability) ? 1 : 0;
        addEdge(src, dst, distance);
    }

    cams_assert(graph.numNodes() == n, "node count drifted");
    std::string why;
    cams_assert(graph.wellFormed(&why), "generated a bad graph: ", why);
    return graph;
}

} // namespace cams
