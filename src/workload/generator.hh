/**
 * @file
 * Synthetic loop generator.
 *
 * The paper's 1327 input loops (Perfect Club, SPEC-89, Livermore
 * FORTRAN Kernels compiled by the Cydra 5 Fortran77 compiler) are not
 * publicly available, so this generator synthesizes a deterministic
 * suite whose distributions are calibrated to the paper's Table 1:
 *
 *   nodes/loop              min 2   avg 17.5  max 161
 *   SCCs per loop           min 0   avg 0.4   max 6
 *   nodes in non-trivial SCCs (loops with SCCs)
 *                           min 2   avg 9.0   max 48
 *   edges/loop              min 1   avg 22.5  max 232
 *
 * plus structural conventions of compiled innermost Fortran loops:
 * one loop-back branch, loads as graph roots, stores and the branch
 * as sinks, recurrences closed by distance-1 loop-carried edges, and
 * an FP-heavy opcode mix over the latency classes of Table 2.
 */

#ifndef CAMS_WORKLOAD_GENERATOR_HH
#define CAMS_WORKLOAD_GENERATOR_HH

#include <cstdint>

#include "graph/dfg.hh"
#include "support/random.hh"

namespace cams
{

/** Tunables of the synthetic loop distribution. */
struct GeneratorParams
{
    /** Lognormal node-count parameters (clamped to [minNodes, maxNodes]). */
    double nodeMu = 2.58;
    double nodeSigma = 0.75;
    int minNodes = 2;
    int maxNodes = 161;

    /** Probability that a loop contains recurrences (301/1327). */
    double sccLoopProbability = 0.227;

    /** Cap on SCCs per loop and on total recurrence nodes. */
    int maxSccsPerLoop = 6;
    int maxSccNodes = 48;

    /** Average edges per node beyond the spanning structure. */
    double edgeFactor = 1.29;

    /** Probability of a forward (non-SCC) loop-carried edge. */
    double carriedEdgeProbability = 0.06;
};

/**
 * Generates one loop graph; fully determined by the seed.
 * @param name report name given to the graph.
 */
Dfg generateLoop(uint64_t seed, const GeneratorParams &params = {},
                 const std::string &name = "");

} // namespace cams

#endif // CAMS_WORKLOAD_GENERATOR_HH
