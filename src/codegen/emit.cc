#include "codegen/emit.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"

namespace cams
{

namespace
{

/** Operand text for reading the value of @p producer at distance d. */
std::string
operandText(const AnnotatedLoop &loop,
            const RegisterAllocation &allocation, NodeId producer,
            int distance, ClusterId reading_cluster)
{
    const ValueAllocation *value = allocation.of(producer);
    cams_assert(value, "reading an unallocated value");
    std::ostringstream os;
    os << "c" << reading_cluster << ":r" << value->base;
    if (value->count > 1)
        os << "+" << value->count - 1 << "w";
    if (distance > 0)
        os << "[-" << distance << "]";
    (void)loop;
    return os.str();
}

/** Full instruction text of one operation. */
std::string
instructionText(const AnnotatedLoop &loop,
                const RegisterAllocation &allocation,
                const MachineDesc &machine, NodeId v)
{
    const DfgNode &node = loop.graph.node(v);
    const OpPlacement &place = loop.placement[v];
    std::ostringstream os;

    os << "C" << place.cluster << ": ";
    const ValueAllocation *dst = allocation.of(v);
    if (dst) {
        if (node.op == Opcode::Copy) {
            os << "{";
            for (size_t i = 0; i < place.copyDsts.size(); ++i) {
                os << (i ? "," : "") << "c" << place.copyDsts[i] << ":r"
                   << dst->base;
            }
            os << "} = ";
        } else {
            os << "c" << place.cluster << ":r" << dst->base << " = ";
        }
    }
    os << opcodeName(node.op) << "(";
    bool first = true;
    for (EdgeId e : loop.graph.inEdges(v)) {
        const DfgEdge &edge = loop.graph.edge(e);
        os << (first ? "" : ", ")
           << operandText(loop, allocation, edge.src, edge.distance,
                          place.cluster);
        first = false;
    }
    os << ")";
    if (node.op == Opcode::Copy) {
        if (machine.broadcast()) {
            os << " via bus";
        } else {
            os << " via link" << place.cluster << "-"
               << place.copyDsts.front();
        }
    }
    return os.str();
}

} // namespace

std::string
emitKernel(const AnnotatedLoop &loop, const Schedule &schedule,
           const RegisterAllocation &allocation,
           const MachineDesc &machine)
{
    std::ostringstream os;
    os << "; kernel, II=" << schedule.ii
       << ", stages=" << schedule.stageCount() << "\n";
    for (int row = 0; row < schedule.ii; ++row) {
        os << "cycle " << row << ":\n";
        for (NodeId v = 0; v < loop.graph.numNodes(); ++v) {
            if (schedule.row(v) != row)
                continue;
            os << "    (p" << schedule.stage(v) << ") "
               << instructionText(loop, allocation, machine, v)
               << "\n";
        }
    }
    return os.str();
}

std::string
emitMveKernel(const AnnotatedLoop &loop, const Schedule &schedule,
              const RegisterAllocation &allocation,
              const MachineDesc &machine)
{
    const int unroll = std::max(1, allocation.mveFactor);
    std::ostringstream os;
    os << "; MVE kernel, II=" << schedule.ii << ", unrolled x" << unroll
       << " (no rotating register file)\n";

    auto regName = [&](NodeId producer, long iteration) {
        const ValueAllocation *value = allocation.of(producer);
        cams_assert(value, "reading an unallocated value");
        std::string name = "r" + std::to_string(value->base);
        if (value->count > 1) {
            name += "#" + std::to_string(
                              ((iteration % value->count) +
                               value->count) %
                              value->count);
        }
        return name;
    };

    for (int u = 0; u < unroll; ++u) {
        os << "; unrolled copy " << u << "\n";
        for (int row = 0; row < schedule.ii; ++row) {
            os << "cycle " << u * schedule.ii + row << ":\n";
            for (NodeId v = 0; v < loop.graph.numNodes(); ++v) {
                if (schedule.row(v) != row)
                    continue;
                const DfgNode &node = loop.graph.node(v);
                const OpPlacement &place = loop.placement[v];
                os << "    C" << place.cluster << ": ";
                if (allocation.of(v))
                    os << regName(v, u) << " = ";
                os << opcodeName(node.op) << "(";
                bool first = true;
                for (EdgeId e : loop.graph.inEdges(v)) {
                    const DfgEdge &edge = loop.graph.edge(e);
                    os << (first ? "" : ", ")
                       << regName(edge.src, u - edge.distance);
                    first = false;
                }
                os << ")";
                if (node.op == Opcode::Copy && machine.broadcast())
                    os << " via bus";
                os << "\n";
            }
        }
    }
    return os.str();
}

std::string
emitPipeline(const AnnotatedLoop &loop, const Schedule &schedule,
             const RegisterAllocation &allocation,
             const MachineDesc &machine, int extra_iterations)
{
    const int stages = schedule.stageCount();
    // The steady-state window [ (stages-1)*II, (iters-stages+1)*II )
    // holds one kernel repetition per iteration beyond 2*(stages-1);
    // run enough iterations for at least max(1, extra) repetitions.
    const int iterations =
        2 * (stages - 1) + std::max(1, extra_iterations);
    const int ii = schedule.ii;

    struct Instance
    {
        long cycle;
        NodeId node;
        int iteration;
    };
    std::vector<Instance> instances;
    for (int k = 0; k < iterations; ++k) {
        for (NodeId v = 0; v < loop.graph.numNodes(); ++v) {
            instances.push_back(
                {schedule.startCycle[v] + static_cast<long>(k) * ii, v,
                 k});
        }
    }
    std::sort(instances.begin(), instances.end(),
              [](const Instance &a, const Instance &b) {
                  if (a.cycle != b.cycle)
                      return a.cycle < b.cycle;
                  return a.node < b.node;
              });

    // Every cycle in [ (stages-1)*II, iterations*II ) executes a full
    // kernel row (all stages active); before is fill, after is drain.
    const long kernel_from = static_cast<long>(stages - 1) * ii;
    const long kernel_to = static_cast<long>(iterations) * ii;

    std::ostringstream os;
    os << "; pipeline for " << iterations << " iterations (II=" << ii
       << ", " << stages << " stages)\n";
    os << "; prologue\n";
    long cycle = -1;
    bool in_kernel_note = false;
    for (const Instance &inst : instances) {
        if (inst.cycle >= kernel_from && inst.cycle < kernel_to) {
            if (!in_kernel_note) {
                os << "; steady state: kernel repeats "
                   << (kernel_to - kernel_from) / ii << " time(s)\n";
                os << emitKernel(loop, schedule, allocation, machine);
                os << "; epilogue\n";
                in_kernel_note = true;
            }
            continue;
        }
        if (inst.cycle != cycle) {
            cycle = inst.cycle;
            os << "cycle " << cycle << ":\n";
        }
        os << "    [i" << inst.iteration << "] "
           << instructionText(loop, allocation, machine, inst.node)
           << "\n";
    }
    return os.str();
}

} // namespace cams
