/**
 * @file
 * Textual VLIW code emission for a compiled loop: the steady-state
 * kernel with stage predicates and rotating-register operands, plus
 * the fully expanded prologue / kernel / epilogue listing a machine
 * without predication or rotating files would execute.
 *
 * Operand syntax: `c2:r5[-1]` reads register 5 of cluster 2's file,
 * one iteration back (rotating offset); destinations omit the offset.
 * Copies print their transport, e.g. `bus` or `link0-1`.
 */

#ifndef CAMS_CODEGEN_EMIT_HH
#define CAMS_CODEGEN_EMIT_HH

#include <string>

#include "assign/assignment.hh"
#include "regalloc/regalloc.hh"
#include "sched/schedule.hh"

namespace cams
{

/**
 * Renders the kernel: one line per II row, every operation printed as
 *   (pS) cluster: dst = op(operands)
 * where S is the operation's pipeline stage (its stage predicate on a
 * Cydra-style predicated machine).
 */
std::string emitKernel(const AnnotatedLoop &loop, const Schedule &schedule,
                       const RegisterAllocation &allocation,
                       const MachineDesc &machine);

/**
 * Renders the complete pipeline for a trip count of
 * stages + extra_iterations: prologue (fill), one kernel body note,
 * and epilogue (drain), cycle by cycle.
 */
std::string emitPipeline(const AnnotatedLoop &loop,
                         const Schedule &schedule,
                         const RegisterAllocation &allocation,
                         const MachineDesc &machine,
                         int extra_iterations = 1);

/**
 * Renders the modulo-variable-expanded kernel for a machine *without*
 * rotating register files: the kernel body unrolled mveFactor times,
 * with each unrolled copy naming its registers explicitly
 * (`c0:r5#2` = physical register base 5, instance 2). This is the
 * code shape Lam's MVE produces instead of relying on Cydra-style
 * rotating files.
 */
std::string emitMveKernel(const AnnotatedLoop &loop,
                          const Schedule &schedule,
                          const RegisterAllocation &allocation,
                          const MachineDesc &machine);

} // namespace cams

#endif // CAMS_CODEGEN_EMIT_HH
