#include "regalloc/regalloc.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"

namespace cams
{

namespace
{

/** Files a value is written into: own cluster, or the copy's dsts. */
std::vector<ClusterId>
filesOf(const AnnotatedLoop &loop, NodeId producer)
{
    const OpPlacement &place = loop.placement[producer];
    if (loop.graph.node(producer).op == Opcode::Copy)
        return place.copyDsts;
    return {place.cluster};
}

/** Last read cycle of the value relative to iteration 0. */
long
lastUse(const AnnotatedLoop &loop, const Schedule &schedule,
        NodeId producer)
{
    long last = schedule.startCycle[producer];
    for (EdgeId e : loop.graph.outEdges(producer)) {
        const DfgEdge &edge = loop.graph.edge(e);
        last = std::max(last,
                        static_cast<long>(schedule.startCycle[edge.dst]) +
                            static_cast<long>(schedule.ii) *
                                edge.distance);
    }
    return last;
}

} // namespace

const ValueAllocation *
RegisterAllocation::of(NodeId producer) const
{
    for (const ValueAllocation &value : values) {
        if (value.producer == producer)
            return &value;
    }
    return nullptr;
}

RegisterAllocation
allocateRegisters(const AnnotatedLoop &loop, const Schedule &schedule,
                  const MachineDesc &machine)
{
    RegisterAllocation allocation;
    allocation.registersPerFile.assign(machine.numClusters(), 0);

    for (NodeId v = 0; v < loop.graph.numNodes(); ++v) {
        if (loop.graph.outEdges(v).empty())
            continue; // dead value: nothing to hold

        ValueAllocation value;
        value.producer = v;
        value.lifetime = lastUse(loop, schedule, v) -
                         schedule.startCycle[v];
        cams_assert(value.lifetime >= 1, "consumer before producer");
        value.count = static_cast<int>(
            (value.lifetime + schedule.ii - 1) / schedule.ii);
        value.count = std::max(value.count, 1);

        const auto files = filesOf(loop, v);
        cams_assert(!files.empty(), "value with no register file");
        // A broadcast copy writes the same register number in every
        // destination file, so the bases must align: take the highest
        // current offset and advance every touched file to the same
        // watermark.
        int base = 0;
        for (ClusterId file : files)
            base = std::max(base, allocation.registersPerFile[file]);
        value.base = base;
        value.file = files.front();
        for (ClusterId file : files)
            allocation.registersPerFile[file] = base + value.count;

        allocation.mveFactor =
            std::max(allocation.mveFactor, value.count);
        allocation.values.push_back(value);
    }
    return allocation;
}

bool
verifyAllocation(const AnnotatedLoop &loop, const Schedule &schedule,
                 const RegisterAllocation &allocation, std::string *why)
{
    auto fail = [&](const std::string &message) {
        if (why)
            *why = message;
        return false;
    };

    // Every live value must have an allocation, in the right file(s).
    for (NodeId v = 0; v < loop.graph.numNodes(); ++v) {
        const bool live = !loop.graph.outEdges(v).empty();
        const ValueAllocation *value = allocation.of(v);
        if (live && !value)
            return fail("live value without registers: " +
                        loop.graph.node(v).name);
        if (!live && value)
            return fail("dead value with registers: " +
                        loop.graph.node(v).name);
    }

    // Dynamic occupancy: expand several iterations and check that no
    // two instances overlap on a physical register. Occupancy runs
    // from the defining issue to the last read; a write landing
    // exactly on the previous instance's last read is legal
    // (read-before-write register files).
    struct Interval
    {
        long from;
        long to;
        NodeId owner;
    };
    std::map<std::pair<ClusterId, int>, std::vector<Interval>> occupancy;

    const int horizon = 4 * std::max(1, allocation.mveFactor) + 4;
    for (const ValueAllocation &value : allocation.values) {
        const long def = schedule.startCycle[value.producer];
        const long last = def + value.lifetime;
        for (long k = 0; k < horizon; ++k) {
            const int reg = value.instanceRegister(k);
            for (ClusterId file : filesOf(loop, value.producer)) {
                occupancy[{file, reg}].push_back(
                    {def + k * schedule.ii, last + k * schedule.ii,
                     value.producer});
            }
        }
    }

    for (auto &[key, intervals] : occupancy) {
        std::sort(intervals.begin(), intervals.end(),
                  [](const Interval &a, const Interval &b) {
                      return a.from < b.from;
                  });
        for (size_t i = 0; i + 1 < intervals.size(); ++i) {
            if (intervals[i].to > intervals[i + 1].from) {
                return fail(
                    "register clash in file C" +
                    std::to_string(key.first) + " r" +
                    std::to_string(key.second) + " between " +
                    loop.graph.node(intervals[i].owner).name + " and " +
                    loop.graph.node(intervals[i + 1].owner).name);
            }
        }
    }

    if (why)
        why->clear();
    return true;
}

} // namespace cams
