/**
 * @file
 * Register allocation for modulo-scheduled loops on clustered
 * machines, in the style of Rau et al., "Register allocation for
 * software pipelined loops" (PLDI 1992) -- the machinery the paper's
 * Section 1.2 assumes around any modulo scheduler.
 *
 * Every value (an operation with at least one consumer, copies
 * included) lives in the register file of the cluster that produces
 * it; inter-cluster copies define fresh values in their destination
 * files. Because iterations overlap, up to ceil(lifetime / II)
 * instances of a value are live at once:
 *
 *  - with a rotating register file, a value gets that many
 *    consecutive rotating registers and iteration k's instance lands
 *    in base + (k mod count) -- no unrolling needed;
 *  - without one, the kernel must be unrolled by the modulo variable
 *    expansion (MVE) factor, max over values of that count.
 *
 * The allocator packs each cluster file independently and reports the
 * registers needed per file; an independent checker re-derives
 * lifetimes and asserts that no two simultaneously-live instances
 * share a physical register.
 */

#ifndef CAMS_REGALLOC_REGALLOC_HH
#define CAMS_REGALLOC_REGALLOC_HH

#include <string>
#include <vector>

#include "assign/assignment.hh"
#include "sched/schedule.hh"

namespace cams
{

/** Register assignment of one produced value. */
struct ValueAllocation
{
    NodeId producer = invalidNode;

    /** Register file (cluster) holding the value. */
    ClusterId file = invalidCluster;

    /** First physical register of the value's rotating range. */
    int base = 0;

    /** Rotating registers reserved: ceil(lifetime / II), min 1. */
    int count = 1;

    /** Lifetime in cycles (definition to last use). */
    long lifetime = 0;

    /** Physical register of iteration k's instance. */
    int
    instanceRegister(long iteration) const
    {
        return base + static_cast<int>(iteration % count);
    }
};

/** Allocation over all cluster files. */
struct RegisterAllocation
{
    /** One entry per value-producing node (dead nodes excluded). */
    std::vector<ValueAllocation> values;

    /** Rotating registers used per cluster file. */
    std::vector<int> registersPerFile;

    /** Kernel unroll factor a machine without rotating files needs. */
    int mveFactor = 1;

    /** Allocation of a node's value, or nullptr if it has none. */
    const ValueAllocation *of(NodeId producer) const;
};

/**
 * Allocates rotating registers for a compiled loop.
 *
 * A value's consumers are its annotated-graph successors; for a copy,
 * the value lives in every destination cluster's file (same base and
 * count in each, mirroring a broadcast write).
 */
RegisterAllocation allocateRegisters(const AnnotatedLoop &loop,
                                     const Schedule &schedule,
                                     const MachineDesc &machine);

/**
 * Independent validity check: simulates 4 * mveFactor iterations of
 * register occupancy and reports the first clash, too-early reuse, or
 * cross-range overlap. @return true when the allocation is sound.
 */
bool verifyAllocation(const AnnotatedLoop &loop, const Schedule &schedule,
                      const RegisterAllocation &allocation,
                      std::string *why = nullptr);

} // namespace cams

#endif // CAMS_REGALLOC_REGALLOC_HH
