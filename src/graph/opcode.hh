/**
 * @file
 * Operation opcodes, their latencies (the paper's Table 2) and the
 * function-unit class each opcode executes on.
 */

#ifndef CAMS_GRAPH_OPCODE_HH
#define CAMS_GRAPH_OPCODE_HH

#include <string>

namespace cams
{

/**
 * Operation kinds distinguished by the machine model.
 *
 * These are the latency classes of the paper's Table 2 plus the
 * explicit inter-cluster Copy operation.
 */
enum class Opcode
{
    IntAlu,   ///< integer ALU op, latency 1
    IntShift, ///< shift, latency 1
    Branch,   ///< loop-back branch, latency 1
    Store,    ///< memory store, latency 1
    Load,     ///< memory load, latency 2
    FpAdd,    ///< FP add/sub/compare, latency 1
    FpMult,   ///< FP multiply, latency 3
    FpDiv,    ///< FP divide, latency 9
    FpSqrt,   ///< FP square root, latency 9
    Copy,     ///< inter-cluster copy, latency 1, uses ports/bus only
};

/** Number of distinct opcodes. */
constexpr int numOpcodes = 10;

/**
 * Function-unit classes.
 *
 * On a fully-specialized (FS) cluster each class maps to its own unit
 * pool; on a general-purpose (GP) cluster every non-copy opcode runs on
 * the single GP pool. Copies occupy no function unit at all (paper
 * §2.1: only port and bus/link resources).
 */
enum class FuClass
{
    Memory,  ///< loads and stores
    Integer, ///< integer ALU, shifts, branches
    Float,   ///< all floating-point ops
    None,    ///< copies: no function unit / no issue slot
};

/** Number of real function-unit classes (excluding None). */
constexpr int numFuClasses = 3;

/** Default latency of an opcode, per the paper's Table 2. */
int opcodeLatency(Opcode op);

/** Function-unit class an opcode executes on. */
FuClass opcodeFuClass(Opcode op);

/** Short mnemonic, e.g. "add", "ld", "fmul", "copy". */
std::string opcodeName(Opcode op);

/** Inverse of opcodeName(); returns false for unknown mnemonics. */
bool opcodeFromName(const std::string &name, Opcode &out);

/** True for the floating-point opcodes. */
bool isFloatOpcode(Opcode op);

/** True for loads and stores. */
bool isMemoryOpcode(Opcode op);

/** Short name of a function-unit class: "mem", "int", "fp", "none". */
std::string fuClassName(FuClass cls);

} // namespace cams

#endif // CAMS_GRAPH_OPCODE_HH
