/**
 * @file
 * Graphviz DOT emission for loop graphs, with optional cluster
 * assignment coloring (one subgraph per hardware cluster).
 */

#ifndef CAMS_GRAPH_DOT_HH
#define CAMS_GRAPH_DOT_HH

#include <string>
#include <vector>

#include "graph/dfg.hh"

namespace cams
{

/**
 * Renders the graph in DOT syntax.
 *
 * @param cluster_of optional node -> hardware-cluster map (same length
 *        as the node count); when present, nodes are grouped into DOT
 *        subgraphs by cluster. Loop-carried edges are dashed and
 *        annotated with their distance.
 */
std::string toDot(const Dfg &graph,
                  const std::vector<int> *cluster_of = nullptr);

} // namespace cams

#endif // CAMS_GRAPH_DOT_HH
