#include "graph/dfg.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cams
{

NodeId
Dfg::addNode(Opcode op, int latency, std::string name)
{
    DfgNode node;
    node.id = static_cast<NodeId>(nodes_.size());
    node.op = op;
    node.latency = latency < 0 ? opcodeLatency(op) : latency;
    node.name = std::move(name);
    if (node.name.empty())
        node.name = opcodeName(op) + std::to_string(node.id);
    nodes_.push_back(node);
    out_.emplace_back();
    in_.emplace_back();
    return node.id;
}

EdgeId
Dfg::addEdge(NodeId src, NodeId dst, int latency, int distance)
{
    cams_assert(src >= 0 && src < numNodes(), "bad edge src ", src);
    cams_assert(dst >= 0 && dst < numNodes(), "bad edge dst ", dst);
    cams_assert(distance >= 0, "negative edge distance");
    DfgEdge edge;
    edge.id = static_cast<EdgeId>(edges_.size());
    edge.src = src;
    edge.dst = dst;
    edge.latency = latency < 0 ? nodes_[src].latency : latency;
    edge.distance = distance;
    edges_.push_back(edge);
    out_[src].push_back(edge.id);
    in_[dst].push_back(edge.id);
    return edge.id;
}

const DfgNode &
Dfg::node(NodeId id) const
{
    cams_assert(id >= 0 && id < numNodes(), "bad node id ", id);
    return nodes_[id];
}

DfgNode &
Dfg::node(NodeId id)
{
    cams_assert(id >= 0 && id < numNodes(), "bad node id ", id);
    return nodes_[id];
}

const DfgEdge &
Dfg::edge(EdgeId id) const
{
    cams_assert(id >= 0 && id < numEdges(), "bad edge id ", id);
    return edges_[id];
}

const std::vector<EdgeId> &
Dfg::outEdges(NodeId id) const
{
    cams_assert(id >= 0 && id < numNodes(), "bad node id ", id);
    return out_[id];
}

const std::vector<EdgeId> &
Dfg::inEdges(NodeId id) const
{
    cams_assert(id >= 0 && id < numNodes(), "bad node id ", id);
    return in_[id];
}

std::vector<NodeId>
Dfg::successors(NodeId id) const
{
    std::vector<NodeId> result;
    for (EdgeId e : outEdges(id))
        result.push_back(edges_[e].dst);
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    return result;
}

std::vector<NodeId>
Dfg::predecessors(NodeId id) const
{
    std::vector<NodeId> result;
    for (EdgeId e : inEdges(id))
        result.push_back(edges_[e].src);
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    return result;
}

int
Dfg::totalLatency() const
{
    int total = 0;
    for (const auto &node : nodes_)
        total += node.latency;
    return total;
}

bool
Dfg::wellFormed(std::string *why) const
{
    for (const auto &edge : edges_) {
        if (edge.src < 0 || edge.src >= numNodes() || edge.dst < 0 ||
            edge.dst >= numNodes()) {
            if (why)
                *why = "edge endpoint out of range";
            return false;
        }
        if (edge.distance < 0) {
            if (why)
                *why = "negative distance";
            return false;
        }
        if (edge.latency < 0) {
            if (why)
                *why = "negative latency";
            return false;
        }
    }
    for (const auto &node : nodes_) {
        if (node.latency < 0) {
            if (why)
                *why = "negative node latency";
            return false;
        }
    }
    return true;
}

} // namespace cams
