/**
 * @file
 * The loop data-flow graph (DFG).
 *
 * Nodes are loop-body operations; edges are data dependences annotated
 * with a latency (cycles the consumer must wait after the producer
 * issues) and a distance (how many loop iterations the dependence
 * spans; 0 for intra-iteration, >= 1 for loop-carried / recurrence
 * edges).
 *
 * The container is append-only: cluster assignment never mutates the
 * input graph, it produces a new, annotated graph with copy operations
 * spliced in (see assign/assignment.hh).
 */

#ifndef CAMS_GRAPH_DFG_HH
#define CAMS_GRAPH_DFG_HH

#include <string>
#include <vector>

#include "graph/opcode.hh"

namespace cams
{

/** Index of a node within its Dfg. */
using NodeId = int;

/** Index of an edge within its Dfg. */
using EdgeId = int;

/** Sentinel for "no node". */
constexpr NodeId invalidNode = -1;

/** One operation of the loop body. */
struct DfgNode
{
    NodeId id = invalidNode;
    Opcode op = Opcode::IntAlu;
    /** Result latency in cycles (defaults to opcodeLatency(op)). */
    int latency = 1;
    /** Optional human-readable name for traces and DOT output. */
    std::string name;
};

/** One data dependence. */
struct DfgEdge
{
    EdgeId id = -1;
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    /**
     * Dependence latency: the consumer may issue no earlier than
     * latency cycles after the producer (modulo II * distance).
     */
    int latency = 1;
    /** Iteration distance; 0 = same iteration. */
    int distance = 0;
};

/** Append-only data-flow graph with adjacency indexing. */
class Dfg
{
  public:
    /** Adds a node; latency < 0 means "use the opcode default". */
    NodeId addNode(Opcode op, int latency = -1, std::string name = "");

    /**
     * Adds a dependence edge.
     * @param latency < 0 means "use the producer's latency".
     */
    EdgeId addEdge(NodeId src, NodeId dst, int latency = -1,
                   int distance = 0);

    /** Number of nodes. */
    int numNodes() const { return static_cast<int>(nodes_.size()); }

    /** Number of edges. */
    int numEdges() const { return static_cast<int>(edges_.size()); }

    /** Node accessor (checked). */
    const DfgNode &node(NodeId id) const;

    /** Edge accessor (checked). */
    const DfgEdge &edge(EdgeId id) const;

    /** Mutable node accessor (checked); used by builders only. */
    DfgNode &node(NodeId id);

    /** Outgoing edge ids of a node. */
    const std::vector<EdgeId> &outEdges(NodeId id) const;

    /** Incoming edge ids of a node. */
    const std::vector<EdgeId> &inEdges(NodeId id) const;

    /** Distinct successor node ids (duplicates collapsed). */
    std::vector<NodeId> successors(NodeId id) const;

    /** Distinct predecessor node ids (duplicates collapsed). */
    std::vector<NodeId> predecessors(NodeId id) const;

    /** All nodes, in id order. */
    const std::vector<DfgNode> &nodes() const { return nodes_; }

    /** All edges, in id order. */
    const std::vector<DfgEdge> &edges() const { return edges_; }

    /** Sum of node latencies; a safe upper bound for RecMII search. */
    int totalLatency() const;

    /** True when every edge's endpoints are valid and distances >= 0. */
    bool wellFormed(std::string *why = nullptr) const;

    /** Optional loop name used by reports. */
    const std::string &name() const { return name_; }

    /** Sets the loop name. */
    void setName(std::string name) { name_ = std::move(name); }

  private:
    std::vector<DfgNode> nodes_;
    std::vector<DfgEdge> edges_;
    std::vector<std::vector<EdgeId>> out_;
    std::vector<std::vector<EdgeId>> in_;
    std::string name_;
};

} // namespace cams

#endif // CAMS_GRAPH_DFG_HH
