#include "graph/opcode.hh"

#include "support/logging.hh"

namespace cams
{

int
opcodeLatency(Opcode op)
{
    switch (op) {
      case Opcode::IntAlu:
      case Opcode::IntShift:
      case Opcode::Branch:
      case Opcode::Store:
      case Opcode::FpAdd:
      case Opcode::Copy:
        return 1;
      case Opcode::Load:
        return 2;
      case Opcode::FpMult:
        return 3;
      case Opcode::FpDiv:
      case Opcode::FpSqrt:
        return 9;
    }
    cams_panic("unknown opcode ", static_cast<int>(op));
}

FuClass
opcodeFuClass(Opcode op)
{
    switch (op) {
      case Opcode::Load:
      case Opcode::Store:
        return FuClass::Memory;
      case Opcode::IntAlu:
      case Opcode::IntShift:
      case Opcode::Branch:
        return FuClass::Integer;
      case Opcode::FpAdd:
      case Opcode::FpMult:
      case Opcode::FpDiv:
      case Opcode::FpSqrt:
        return FuClass::Float;
      case Opcode::Copy:
        return FuClass::None;
    }
    cams_panic("unknown opcode ", static_cast<int>(op));
}

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::IntAlu:
        return "add";
      case Opcode::IntShift:
        return "shl";
      case Opcode::Branch:
        return "br";
      case Opcode::Store:
        return "st";
      case Opcode::Load:
        return "ld";
      case Opcode::FpAdd:
        return "fadd";
      case Opcode::FpMult:
        return "fmul";
      case Opcode::FpDiv:
        return "fdiv";
      case Opcode::FpSqrt:
        return "fsqrt";
      case Opcode::Copy:
        return "copy";
    }
    cams_panic("unknown opcode ", static_cast<int>(op));
}

bool
opcodeFromName(const std::string &name, Opcode &out)
{
    static const struct { const char *name; Opcode op; } table[] = {
        { "add", Opcode::IntAlu },
        { "shl", Opcode::IntShift },
        { "br", Opcode::Branch },
        { "st", Opcode::Store },
        { "ld", Opcode::Load },
        { "fadd", Opcode::FpAdd },
        { "fmul", Opcode::FpMult },
        { "fdiv", Opcode::FpDiv },
        { "fsqrt", Opcode::FpSqrt },
        { "copy", Opcode::Copy },
    };
    for (const auto &entry : table) {
        if (name == entry.name) {
            out = entry.op;
            return true;
        }
    }
    return false;
}

bool
isFloatOpcode(Opcode op)
{
    return opcodeFuClass(op) == FuClass::Float;
}

bool
isMemoryOpcode(Opcode op)
{
    return opcodeFuClass(op) == FuClass::Memory;
}

std::string
fuClassName(FuClass cls)
{
    switch (cls) {
      case FuClass::Memory:
        return "mem";
      case FuClass::Integer:
        return "int";
      case FuClass::Float:
        return "fp";
      case FuClass::None:
        return "none";
    }
    cams_panic("unknown fu class ", static_cast<int>(cls));
}

} // namespace cams
