#include "graph/builder.hh"

#include "support/logging.hh"

namespace cams
{

DfgBuilder::DfgBuilder(std::string loop_name)
{
    graph_.setName(std::move(loop_name));
}

DfgBuilder &
DfgBuilder::op(const std::string &name, Opcode opcode, int latency)
{
    cams_assert(!names_.count(name), "duplicate node name '", name, "'");
    names_[name] = graph_.addNode(opcode, latency, name);
    return *this;
}

DfgBuilder &
DfgBuilder::flow(const std::string &src, const std::string &dst,
                 int latency)
{
    graph_.addEdge(id(src), id(dst), latency, 0);
    return *this;
}

DfgBuilder &
DfgBuilder::carried(const std::string &src, const std::string &dst,
                    int distance, int latency)
{
    cams_assert(distance >= 1, "carried edge needs distance >= 1");
    graph_.addEdge(id(src), id(dst), latency, distance);
    return *this;
}

DfgBuilder &
DfgBuilder::chain(const std::vector<std::string> &names)
{
    for (size_t i = 0; i + 1 < names.size(); ++i)
        flow(names[i], names[i + 1]);
    return *this;
}

NodeId
DfgBuilder::id(const std::string &name) const
{
    auto it = names_.find(name);
    if (it == names_.end())
        cams_fatal("unknown node name '", name, "'");
    return it->second;
}

Dfg
DfgBuilder::build()
{
    return std::move(graph_);
}

} // namespace cams
