/**
 * @file
 * Recurrence-constrained minimum initiation interval (RecMII).
 *
 * For every elementary cycle c of the dependence graph a modulo
 * schedule with initiation interval II must satisfy
 *   sum(latency(e) for e in c) <= II * sum(distance(e) for e in c),
 * so RecMII = max over cycles of ceil(sum_lat / sum_dist).
 *
 * We compute it per SCC by searching the smallest II for which the
 * constraint graph with edge weights lat(e) - II*dist(e) has no
 * positive cycle (Bellman-Ford based detection). The predicate is
 * monotone in II because every cycle inside an SCC of a well-formed
 * loop has total distance >= 1, which allows binary search.
 */

#ifndef CAMS_GRAPH_RECMII_HH
#define CAMS_GRAPH_RECMII_HH

#include <vector>

#include "graph/dfg.hh"
#include "graph/scc.hh"

namespace cams
{

/**
 * RecMII of one SCC (the subgraph induced by its member nodes).
 *
 * @param graph the full loop graph.
 * @param members nodes of the SCC.
 * @return the smallest feasible II contribution of this SCC; 1 for a
 *         trivial component.
 *
 * A dependence cycle with zero total distance (impossible to schedule
 * at any II) triggers fatal(): the input graph is malformed.
 */
int sccRecMii(const Dfg &graph, const std::vector<NodeId> &members);

/** RecMII over the whole graph: max of sccRecMii over all SCCs. */
int recMii(const Dfg &graph);

/** RecMII over the whole graph, reusing an existing decomposition. */
int recMii(const Dfg &graph, const SccInfo &sccs);

/**
 * Tests whether the subgraph induced by the given nodes contains a
 * cycle of positive weight when edges weigh lat(e) - ii*dist(e).
 */
bool hasPositiveCycle(const Dfg &graph, const std::vector<NodeId> &members,
                      int ii);

} // namespace cams

#endif // CAMS_GRAPH_RECMII_HH
