/**
 * @file
 * Strongly-connected-component analysis (Tarjan's algorithm,
 * iterative formulation so deep graphs cannot overflow the stack).
 *
 * Recurrences of a modulo-scheduled loop are exactly the non-trivial
 * SCCs of its data-flow graph: a component with more than one node, or
 * a single node with a self-edge (necessarily loop-carried).
 */

#ifndef CAMS_GRAPH_SCC_HH
#define CAMS_GRAPH_SCC_HH

#include <vector>

#include "graph/dfg.hh"

namespace cams
{

/** Result of SCC decomposition. */
struct SccInfo
{
    /** Component index of each node. */
    std::vector<int> componentOf;

    /**
     * Member nodes of each component, in discovery order.
     * Components are emitted in reverse topological order of the
     * component DAG (Tarjan's natural output).
     */
    std::vector<std::vector<NodeId>> components;

    /** True when the component is a recurrence (size > 1 or self-loop). */
    std::vector<bool> nonTrivial;

    /** Number of components. */
    int numComponents() const
    {
        return static_cast<int>(components.size());
    }

    /** Number of non-trivial (recurrence) components. */
    int numNonTrivial() const;

    /** True when the given node belongs to a recurrence component. */
    bool inRecurrence(NodeId node) const
    {
        return nonTrivial[componentOf[node]];
    }
};

/** Decomposes the graph into strongly connected components. */
SccInfo findSccs(const Dfg &graph);

} // namespace cams

#endif // CAMS_GRAPH_SCC_HH
