#include "graph/recmii.hh"

#include <algorithm>
#include <limits>

#include "support/logging.hh"

namespace cams
{

bool
hasPositiveCycle(const Dfg &graph, const std::vector<NodeId> &members,
                 int ii)
{
    const int n = static_cast<int>(members.size());
    if (n == 0)
        return false;

    // Map global node ids to local indices.
    std::vector<int> local(graph.numNodes(), -1);
    for (int i = 0; i < n; ++i)
        local[members[i]] = i;

    struct LocalEdge
    {
        int src;
        int dst;
        long weight;
    };
    std::vector<LocalEdge> edges;
    size_t out_degree = 0;
    for (NodeId node : members)
        out_degree += graph.outEdges(node).size();
    edges.reserve(out_degree);
    for (NodeId node : members) {
        for (EdgeId e : graph.outEdges(node)) {
            const DfgEdge &edge = graph.edge(e);
            if (local[edge.dst] == -1)
                continue;
            edges.push_back({local[edge.src], local[edge.dst],
                             static_cast<long>(edge.latency) -
                                 static_cast<long>(ii) * edge.distance});
        }
    }

    // Longest-path Bellman-Ford from a virtual source at distance 0 to
    // every node; if an edge can still relax after n rounds, a positive
    // cycle exists.
    std::vector<long> dist(n, 0);
    for (int round = 0; round < n; ++round) {
        bool changed = false;
        for (const auto &edge : edges) {
            if (dist[edge.src] + edge.weight > dist[edge.dst]) {
                dist[edge.dst] = dist[edge.src] + edge.weight;
                changed = true;
            }
        }
        if (!changed)
            return false;
    }
    for (const auto &edge : edges) {
        if (dist[edge.src] + edge.weight > dist[edge.dst])
            return true;
    }
    return false;
}

int
sccRecMii(const Dfg &graph, const std::vector<NodeId> &members)
{
    if (members.size() == 1) {
        // Trivial unless it has self-edges.
        NodeId only = members[0];
        int best = 1;
        bool has_self = false;
        for (EdgeId e : graph.outEdges(only)) {
            const DfgEdge &edge = graph.edge(e);
            if (edge.dst != only)
                continue;
            has_self = true;
            if (edge.distance == 0) {
                cams_fatal("zero-distance self dependence on node ", only,
                           " (", graph.node(only).name, ")");
            }
            const int need =
                (edge.latency + edge.distance - 1) / edge.distance;
            best = std::max(best, need);
        }
        return has_self ? best : 1;
    }

    // Any cycle has total distance >= 1, so its latency/distance ratio
    // is bounded by the sum of all edge latencies inside the SCC.
    std::vector<int> local(graph.numNodes(), -1);
    for (NodeId node : members)
        local[node] = 1;
    int hi = 1;
    for (NodeId node : members) {
        for (EdgeId e : graph.outEdges(node)) {
            if (local[graph.edge(e).dst] != -1)
                hi += graph.edge(e).latency;
        }
    }

    if (hasPositiveCycle(graph, members, hi)) {
        cams_fatal("dependence cycle with zero total distance through "
                   "node ", members[0], "; no II can schedule this loop");
    }

    int lo = 1;
    while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (hasPositiveCycle(graph, members, mid))
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

int
recMii(const Dfg &graph, const SccInfo &sccs)
{
    int best = 1;
    for (int c = 0; c < sccs.numComponents(); ++c) {
        if (!sccs.nonTrivial[c])
            continue;
        best = std::max(best, sccRecMii(graph, sccs.components[c]));
    }
    return best;
}

int
recMii(const Dfg &graph)
{
    const SccInfo sccs = findSccs(graph);
    return recMii(graph, sccs);
}

} // namespace cams
