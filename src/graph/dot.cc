#include "graph/dot.hh"

#include <map>
#include <sstream>

#include "support/logging.hh"

namespace cams
{

std::string
toDot(const Dfg &graph, const std::vector<int> *cluster_of)
{
    std::ostringstream os;
    os << "digraph \"" << (graph.name().empty() ? "loop" : graph.name())
       << "\" {\n";
    os << "  node [shape=box, fontname=\"monospace\"];\n";

    auto emitNode = [&](const DfgNode &node, const std::string &indent) {
        os << indent << "n" << node.id << " [label=\"" << node.name << "\\n"
           << opcodeName(node.op) << " l" << node.latency << "\"];\n";
    };

    if (cluster_of) {
        cams_assert(static_cast<int>(cluster_of->size()) ==
                        graph.numNodes(),
                    "cluster map size mismatch");
        std::map<int, std::vector<NodeId>> by_cluster;
        for (NodeId v = 0; v < graph.numNodes(); ++v)
            by_cluster[(*cluster_of)[v]].push_back(v);
        for (const auto &[cluster, members] : by_cluster) {
            os << "  subgraph cluster_" << cluster << " {\n";
            os << "    label=\"C" << cluster << "\";\n";
            for (NodeId v : members)
                emitNode(graph.node(v), "    ");
            os << "  }\n";
        }
    } else {
        for (const DfgNode &node : graph.nodes())
            emitNode(node, "  ");
    }

    for (const DfgEdge &edge : graph.edges()) {
        os << "  n" << edge.src << " -> n" << edge.dst;
        if (edge.distance > 0) {
            os << " [style=dashed, label=\"d" << edge.distance << "\"]";
        }
        os << ";\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace cams
