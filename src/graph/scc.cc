#include "graph/scc.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cams
{

int
SccInfo::numNonTrivial() const
{
    return static_cast<int>(
        std::count(nonTrivial.begin(), nonTrivial.end(), true));
}

SccInfo
findSccs(const Dfg &graph)
{
    const int n = graph.numNodes();
    SccInfo info;
    info.componentOf.assign(n, -1);

    std::vector<int> index(n, -1);
    std::vector<int> lowlink(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<NodeId> stack;
    int nextIndex = 0;

    // Explicit DFS frame: node plus position within its out-edge list.
    struct Frame
    {
        NodeId node;
        size_t edgePos;
    };
    std::vector<Frame> dfs;

    for (NodeId root = 0; root < n; ++root) {
        if (index[root] != -1)
            continue;
        dfs.push_back({root, 0});
        index[root] = lowlink[root] = nextIndex++;
        stack.push_back(root);
        onStack[root] = true;

        while (!dfs.empty()) {
            Frame &frame = dfs.back();
            const auto &out = graph.outEdges(frame.node);
            if (frame.edgePos < out.size()) {
                NodeId next = graph.edge(out[frame.edgePos]).dst;
                ++frame.edgePos;
                if (index[next] == -1) {
                    index[next] = lowlink[next] = nextIndex++;
                    stack.push_back(next);
                    onStack[next] = true;
                    dfs.push_back({next, 0});
                } else if (onStack[next]) {
                    lowlink[frame.node] =
                        std::min(lowlink[frame.node], index[next]);
                }
            } else {
                NodeId done = frame.node;
                dfs.pop_back();
                if (!dfs.empty()) {
                    NodeId parent = dfs.back().node;
                    lowlink[parent] = std::min(lowlink[parent],
                                               lowlink[done]);
                }
                if (lowlink[done] == index[done]) {
                    std::vector<NodeId> component;
                    NodeId member;
                    do {
                        member = stack.back();
                        stack.pop_back();
                        onStack[member] = false;
                        info.componentOf[member] =
                            static_cast<int>(info.components.size());
                        component.push_back(member);
                    } while (member != done);
                    std::reverse(component.begin(), component.end());
                    info.components.push_back(std::move(component));
                }
            }
        }
    }

    // A component is a recurrence when it has more than one node or a
    // self-edge.
    info.nonTrivial.assign(info.components.size(), false);
    for (size_t c = 0; c < info.components.size(); ++c) {
        if (info.components[c].size() > 1) {
            info.nonTrivial[c] = true;
        } else {
            NodeId only = info.components[c][0];
            for (EdgeId e : graph.outEdges(only)) {
                if (graph.edge(e).dst == only) {
                    info.nonTrivial[c] = true;
                    break;
                }
            }
        }
    }
    return info;
}

} // namespace cams
