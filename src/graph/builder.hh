/**
 * @file
 * Fluent helper for constructing loop graphs by name in tests,
 * examples and the hand-coded kernel library.
 */

#ifndef CAMS_GRAPH_BUILDER_HH
#define CAMS_GRAPH_BUILDER_HH

#include <map>
#include <string>

#include "graph/dfg.hh"

namespace cams
{

/** Builds a Dfg with string-named nodes. */
class DfgBuilder
{
  public:
    /** Starts a new loop graph with the given report name. */
    explicit DfgBuilder(std::string loop_name = "");

    /**
     * Adds a named node.
     * @param latency < 0 uses the Table 2 default for the opcode.
     */
    DfgBuilder &op(const std::string &name, Opcode opcode,
                   int latency = -1);

    /** Adds an intra-iteration dependence (distance 0). */
    DfgBuilder &flow(const std::string &src, const std::string &dst,
                     int latency = -1);

    /** Adds a loop-carried dependence with the given distance. */
    DfgBuilder &carried(const std::string &src, const std::string &dst,
                        int distance, int latency = -1);

    /** Adds a left-to-right chain of intra-iteration dependences. */
    DfgBuilder &chain(const std::vector<std::string> &names);

    /** Node id for a name added earlier; fatal on unknown names. */
    NodeId id(const std::string &name) const;

    /** Finishes and returns the graph. */
    Dfg build();

  private:
    Dfg graph_;
    std::map<std::string, NodeId> names_;
};

} // namespace cams

#endif // CAMS_GRAPH_BUILDER_HH
