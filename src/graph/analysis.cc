#include "graph/analysis.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cams
{

namespace
{

long
edgeWeight(const DfgEdge &edge, int ii)
{
    return static_cast<long>(edge.latency) -
           static_cast<long>(ii) * edge.distance;
}

} // namespace

TimeAnalysis
analyzeTiming(const Dfg &graph, int ii)
{
    cams_assert(ii >= 1, "analyzeTiming at ii ", ii);
    const int n = graph.numNodes();
    TimeAnalysis result;
    result.ii = ii;
    result.asap.assign(n, 0);

    // ASAP: longest path from the virtual source.
    bool changed = true;
    for (int round = 0; round <= n && changed; ++round) {
        changed = false;
        for (const DfgEdge &edge : graph.edges()) {
            const long cand = result.asap[edge.src] + edgeWeight(edge, ii);
            if (cand > result.asap[edge.dst]) {
                cams_assert(round < n,
                            "positive cycle: II ", ii, " < RecMII");
                result.asap[edge.dst] = static_cast<int>(cand);
                changed = true;
            }
        }
    }

    result.criticalPath = 0;
    for (NodeId v = 0; v < n; ++v) {
        result.criticalPath = std::max(
            result.criticalPath, result.asap[v] + graph.node(v).latency);
    }

    // Height: longest weighted path from the node to any sink plus the
    // sink's own latency. Edge weights already carry the producer's
    // result delay, so the recurrence is
    //   height(v) = max(lat(v), max over e=(v,s) of height(s) + w(e)).
    result.height.assign(n, 0);
    for (NodeId v = 0; v < n; ++v)
        result.height[v] = graph.node(v).latency;
    changed = true;
    for (int round = 0; round <= n && changed; ++round) {
        changed = false;
        for (const DfgEdge &edge : graph.edges()) {
            const long cand =
                result.height[edge.dst] + edgeWeight(edge, ii);
            if (cand > result.height[edge.src]) {
                cams_assert(round < n,
                            "positive cycle: II ", ii, " < RecMII");
                result.height[edge.src] = static_cast<int>(cand);
                changed = true;
            }
        }
    }

    // ALAP: latest start keeping the critical-path length.
    result.alap.assign(n, 0);
    for (NodeId v = 0; v < n; ++v)
        result.alap[v] = result.criticalPath - graph.node(v).latency;
    changed = true;
    for (int round = 0; round <= n && changed; ++round) {
        changed = false;
        for (const DfgEdge &edge : graph.edges()) {
            const long cand = result.alap[edge.dst] - edgeWeight(edge, ii);
            if (cand < result.alap[edge.src]) {
                cams_assert(round < n,
                            "positive cycle: II ", ii, " < RecMII");
                result.alap[edge.src] = static_cast<int>(cand);
                changed = true;
            }
        }
    }

    result.mobility.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
        result.mobility[v] = result.alap[v] - result.asap[v];
        cams_assert(result.mobility[v] >= 0, "negative mobility on node ",
                    v, " at II ", ii);
    }
    return result;
}

TimingSolver::TimingSolver(const Dfg &graph)
    : graph_(&graph)
{
    const int n = graph.numNodes();
    const int m = static_cast<int>(graph.edges().size());

    // Topological order of the distance-0 subgraph (Kahn). A
    // zero-distance cycle leaves nodes unplaced; they get trailing
    // positions -- the order only steers convergence speed, and
    // solve() still panics on such graphs exactly like analyzeTiming.
    std::vector<int> indegree(n, 0);
    for (const DfgEdge &edge : graph.edges()) {
        if (edge.distance == 0 && edge.src != edge.dst)
            ++indegree[edge.dst];
    }
    std::vector<NodeId> queue;
    queue.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
        if (indegree[v] == 0)
            queue.push_back(v);
    }
    std::vector<int> pos(n, -1);
    int next = 0;
    for (size_t head = 0; head < queue.size(); ++head) {
        const NodeId v = queue[head];
        pos[v] = next++;
        for (EdgeId e : graph.outEdges(v)) {
            const DfgEdge &edge = graph.edge(e);
            if (edge.distance != 0 || edge.dst == v)
                continue;
            if (--indegree[edge.dst] == 0)
                queue.push_back(edge.dst);
        }
    }
    for (NodeId v = 0; v < n; ++v) {
        if (pos[v] < 0)
            pos[v] = next++;
    }

    forward_.resize(m);
    backward_.resize(m);
    for (EdgeId e = 0; e < m; ++e)
        forward_[e] = backward_[e] = e;
    std::stable_sort(forward_.begin(), forward_.end(),
                     [&](EdgeId a, EdgeId b) {
                         return pos[graph.edge(a).src] <
                                pos[graph.edge(b).src];
                     });
    std::stable_sort(backward_.begin(), backward_.end(),
                     [&](EdgeId a, EdgeId b) {
                         return pos[graph.edge(a).dst] >
                                pos[graph.edge(b).dst];
                     });

    // Distance-0 fixpoints: with edges in topological order one pass
    // settles them, and they lower-bound the per-II fixpoints.
    asapSeed_.assign(n, 0);
    for (EdgeId e : forward_) {
        const DfgEdge &edge = graph.edge(e);
        if (edge.distance != 0)
            continue;
        asapSeed_[edge.dst] =
            std::max(asapSeed_[edge.dst],
                     asapSeed_[edge.src] + edge.latency);
    }
    heightSeed_.assign(n, 0);
    for (NodeId v = 0; v < n; ++v)
        heightSeed_[v] = graph.node(v).latency;
    for (EdgeId e : backward_) {
        const DfgEdge &edge = graph.edge(e);
        if (edge.distance != 0)
            continue;
        heightSeed_[edge.src] =
            std::max(heightSeed_[edge.src],
                     heightSeed_[edge.dst] + edge.latency);
    }
}

const TimeAnalysis &
TimingSolver::solve(int ii)
{
    cams_assert(ii >= 1, "analyzeTiming at ii ", ii);
    if (hasResult_ && result_.ii == ii) {
        lastWasHit_ = true;
        return result_;
    }
    lastWasHit_ = false;

    const Dfg &graph = *graph_;
    const int n = graph.numNodes();
    result_.ii = ii;

    result_.asap = asapSeed_;
    bool changed = true;
    for (int round = 0; round <= n && changed; ++round) {
        changed = false;
        for (EdgeId e : forward_) {
            const DfgEdge &edge = graph.edge(e);
            const long cand =
                result_.asap[edge.src] + edgeWeight(edge, ii);
            if (cand > result_.asap[edge.dst]) {
                cams_assert(round < n,
                            "positive cycle: II ", ii, " < RecMII");
                result_.asap[edge.dst] = static_cast<int>(cand);
                changed = true;
            }
        }
    }

    result_.criticalPath = 0;
    for (NodeId v = 0; v < n; ++v) {
        result_.criticalPath =
            std::max(result_.criticalPath,
                     result_.asap[v] + graph.node(v).latency);
    }

    result_.height = heightSeed_;
    changed = true;
    for (int round = 0; round <= n && changed; ++round) {
        changed = false;
        for (EdgeId e : backward_) {
            const DfgEdge &edge = graph.edge(e);
            const long cand =
                result_.height[edge.dst] + edgeWeight(edge, ii);
            if (cand > result_.height[edge.src]) {
                cams_assert(round < n,
                            "positive cycle: II ", ii, " < RecMII");
                result_.height[edge.src] = static_cast<int>(cand);
                changed = true;
            }
        }
    }

    result_.alap.assign(n, 0);
    for (NodeId v = 0; v < n; ++v)
        result_.alap[v] = result_.criticalPath - graph.node(v).latency;
    changed = true;
    for (int round = 0; round <= n && changed; ++round) {
        changed = false;
        for (EdgeId e : backward_) {
            const DfgEdge &edge = graph.edge(e);
            const long cand =
                result_.alap[edge.dst] - edgeWeight(edge, ii);
            if (cand < result_.alap[edge.src]) {
                cams_assert(round < n,
                            "positive cycle: II ", ii, " < RecMII");
                result_.alap[edge.src] = static_cast<int>(cand);
                changed = true;
            }
        }
    }

    result_.mobility.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
        result_.mobility[v] = result_.alap[v] - result_.asap[v];
        cams_assert(result_.mobility[v] >= 0,
                    "negative mobility on node ", v, " at II ", ii);
    }
    hasResult_ = true;
    return result_;
}

} // namespace cams
