#include "graph/analysis.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cams
{

namespace
{

long
edgeWeight(const DfgEdge &edge, int ii)
{
    return static_cast<long>(edge.latency) -
           static_cast<long>(ii) * edge.distance;
}

} // namespace

TimeAnalysis
analyzeTiming(const Dfg &graph, int ii)
{
    cams_assert(ii >= 1, "analyzeTiming at ii ", ii);
    const int n = graph.numNodes();
    TimeAnalysis result;
    result.ii = ii;
    result.asap.assign(n, 0);

    // ASAP: longest path from the virtual source.
    bool changed = true;
    for (int round = 0; round <= n && changed; ++round) {
        changed = false;
        for (const DfgEdge &edge : graph.edges()) {
            const long cand = result.asap[edge.src] + edgeWeight(edge, ii);
            if (cand > result.asap[edge.dst]) {
                cams_assert(round < n,
                            "positive cycle: II ", ii, " < RecMII");
                result.asap[edge.dst] = static_cast<int>(cand);
                changed = true;
            }
        }
    }

    result.criticalPath = 0;
    for (NodeId v = 0; v < n; ++v) {
        result.criticalPath = std::max(
            result.criticalPath, result.asap[v] + graph.node(v).latency);
    }

    // Height: longest weighted path from the node to any sink plus the
    // sink's own latency. Edge weights already carry the producer's
    // result delay, so the recurrence is
    //   height(v) = max(lat(v), max over e=(v,s) of height(s) + w(e)).
    result.height.assign(n, 0);
    for (NodeId v = 0; v < n; ++v)
        result.height[v] = graph.node(v).latency;
    changed = true;
    for (int round = 0; round <= n && changed; ++round) {
        changed = false;
        for (const DfgEdge &edge : graph.edges()) {
            const long cand =
                result.height[edge.dst] + edgeWeight(edge, ii);
            if (cand > result.height[edge.src]) {
                cams_assert(round < n,
                            "positive cycle: II ", ii, " < RecMII");
                result.height[edge.src] = static_cast<int>(cand);
                changed = true;
            }
        }
    }

    // ALAP: latest start keeping the critical-path length.
    result.alap.assign(n, 0);
    for (NodeId v = 0; v < n; ++v)
        result.alap[v] = result.criticalPath - graph.node(v).latency;
    changed = true;
    for (int round = 0; round <= n && changed; ++round) {
        changed = false;
        for (const DfgEdge &edge : graph.edges()) {
            const long cand = result.alap[edge.dst] - edgeWeight(edge, ii);
            if (cand < result.alap[edge.src]) {
                cams_assert(round < n,
                            "positive cycle: II ", ii, " < RecMII");
                result.alap[edge.src] = static_cast<int>(cand);
                changed = true;
            }
        }
    }

    result.mobility.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
        result.mobility[v] = result.alap[v] - result.asap[v];
        cams_assert(result.mobility[v] >= 0, "negative mobility on node ",
                    v, " at II ", ii);
    }
    return result;
}

} // namespace cams
