#include "graph/textio.hh"

#include <map>
#include <sstream>

#include "support/str.hh"

namespace cams
{

namespace
{

bool
parseKeyValue(const std::string &token, const std::string &key, int &out)
{
    const std::string prefix = key + "=";
    if (!startsWith(token, prefix))
        return false;
    return parseInt(token.substr(prefix.size()), out);
}

std::string
lineError(int line_no, const std::string &message)
{
    return "line " + std::to_string(line_no) + ": " + message;
}

} // namespace

bool
parseDfg(const std::string &text, Dfg &out, std::string &error)
{
    Dfg graph;
    std::map<std::string, NodeId> names;
    std::istringstream input(text);
    std::string line;
    int line_no = 0;

    while (std::getline(input, line)) {
        ++line_no;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const auto tokens = splitWhitespace(line);
        if (tokens.empty())
            continue;

        if (tokens[0] == "loop") {
            if (tokens.size() != 2) {
                error = lineError(line_no, "expected: loop <name>");
                return false;
            }
            graph.setName(tokens[1]);
        } else if (tokens[0] == "node") {
            if (tokens.size() < 3) {
                error = lineError(line_no,
                                  "expected: node <name> <opcode> ...");
                return false;
            }
            if (names.count(tokens[1])) {
                error = lineError(line_no,
                                  "duplicate node '" + tokens[1] + "'");
                return false;
            }
            Opcode op;
            if (!opcodeFromName(tokens[2], op)) {
                error = lineError(line_no,
                                  "unknown opcode '" + tokens[2] + "'");
                return false;
            }
            int latency = -1;
            for (size_t i = 3; i < tokens.size(); ++i) {
                if (!parseKeyValue(tokens[i], "lat", latency)) {
                    error = lineError(line_no,
                                      "bad attribute '" + tokens[i] + "'");
                    return false;
                }
            }
            names[tokens[1]] = graph.addNode(op, latency, tokens[1]);
        } else if (tokens[0] == "edge") {
            if (tokens.size() < 3) {
                error = lineError(line_no,
                                  "expected: edge <src> <dst> ...");
                return false;
            }
            auto src = names.find(tokens[1]);
            auto dst = names.find(tokens[2]);
            if (src == names.end() || dst == names.end()) {
                error = lineError(line_no, "edge references unknown node");
                return false;
            }
            int latency = -1;
            int distance = 0;
            for (size_t i = 3; i < tokens.size(); ++i) {
                if (parseKeyValue(tokens[i], "lat", latency))
                    continue;
                if (parseKeyValue(tokens[i], "dist", distance))
                    continue;
                error = lineError(line_no,
                                  "bad attribute '" + tokens[i] + "'");
                return false;
            }
            if (distance < 0) {
                error = lineError(line_no, "negative distance");
                return false;
            }
            graph.addEdge(src->second, dst->second, latency, distance);
        } else {
            error = lineError(line_no,
                              "unknown directive '" + tokens[0] + "'");
            return false;
        }
    }

    out = std::move(graph);
    error.clear();
    return true;
}

std::string
serializeDfg(const Dfg &graph)
{
    std::ostringstream os;
    if (!graph.name().empty())
        os << "loop " << graph.name() << "\n";
    for (const DfgNode &node : graph.nodes()) {
        os << "node " << node.name << " " << opcodeName(node.op);
        if (node.latency != opcodeLatency(node.op))
            os << " lat=" << node.latency;
        os << "\n";
    }
    for (const DfgEdge &edge : graph.edges()) {
        os << "edge " << graph.node(edge.src).name << " "
           << graph.node(edge.dst).name;
        if (edge.latency != graph.node(edge.src).latency)
            os << " lat=" << edge.latency;
        if (edge.distance != 0)
            os << " dist=" << edge.distance;
        os << "\n";
    }
    return os.str();
}

} // namespace cams
