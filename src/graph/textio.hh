/**
 * @file
 * Plain-text loop graph format, for fixtures and tooling.
 *
 * Grammar (one directive per line, '#' starts a comment):
 *
 *   loop <name>
 *   node <name> <opcode> [lat=<cycles>]
 *   edge <src-name> <dst-name> [lat=<cycles>] [dist=<iterations>]
 *
 * Opcode mnemonics are those of opcodeName(). Omitted latencies use
 * Table 2 defaults (edges default to the producer's latency); omitted
 * distances are 0.
 */

#ifndef CAMS_GRAPH_TEXTIO_HH
#define CAMS_GRAPH_TEXTIO_HH

#include <iosfwd>
#include <string>

#include "graph/dfg.hh"

namespace cams
{

/**
 * Parses one loop graph from text.
 * @param text the loop description.
 * @param error filled with a line-tagged message on failure.
 * @return true and fills @p out on success.
 */
bool parseDfg(const std::string &text, Dfg &out, std::string &error);

/** Serializes the graph into the text format (round-trippable). */
std::string serializeDfg(const Dfg &graph);

} // namespace cams

#endif // CAMS_GRAPH_TEXTIO_HH
