#include "graph/adjacency.hh"

#include <algorithm>

namespace cams
{

namespace
{

/** One relation as CSR, with each row sorted and deduplicated exactly
 *  like Dfg::predecessors / Dfg::successors. */
void
buildRelation(const Dfg &graph, bool preds, std::vector<int> &off,
              std::vector<NodeId> &ids)
{
    const int n = graph.numNodes();
    off.assign(n + 1, 0);
    ids.clear();
    ids.reserve(graph.numEdges());
    std::vector<NodeId> row;
    for (NodeId v = 0; v < n; ++v) {
        row.clear();
        const auto &edges = preds ? graph.inEdges(v) : graph.outEdges(v);
        for (EdgeId e : edges)
            row.push_back(preds ? graph.edge(e).src : graph.edge(e).dst);
        std::sort(row.begin(), row.end());
        row.erase(std::unique(row.begin(), row.end()), row.end());
        ids.insert(ids.end(), row.begin(), row.end());
        off[v + 1] = static_cast<int>(ids.size());
    }
}

/** One edge list as CSR of flat records, preserving Dfg edge order. */
void
buildEdges(const Dfg &graph, bool in, std::vector<int> &off,
           std::vector<AdjEdge> &flat)
{
    const int n = graph.numNodes();
    off.assign(n + 1, 0);
    flat.clear();
    flat.reserve(graph.numEdges());
    for (NodeId v = 0; v < n; ++v) {
        const auto &edges = in ? graph.inEdges(v) : graph.outEdges(v);
        for (EdgeId e : edges) {
            const DfgEdge &edge = graph.edge(e);
            flat.push_back({in ? edge.src : edge.dst, edge.latency,
                            edge.distance});
        }
        off[v + 1] = static_cast<int>(flat.size());
    }
}

} // namespace

Adjacency::Adjacency(const Dfg &graph)
{
    buildRelation(graph, true, predOff_, predIds_);
    buildRelation(graph, false, succOff_, succIds_);
    buildEdges(graph, true, inOff_, in_);
    buildEdges(graph, false, outOff_, out_);
}

} // namespace cams
