/**
 * @file
 * Packed adjacency view of a Dfg.
 *
 * Dfg::predecessors / Dfg::successors build a fresh sorted-unique
 * vector on every call, which the assigner's candidate evaluation
 * invokes for every (node, cluster) probe -- millions of short-lived
 * allocations per compile. An Adjacency materializes both neighbor
 * relations once into CSR arrays so hot paths can read them as spans.
 *
 * Neighbor lists are byte-identical to the Dfg queries (same sort,
 * same dedup), so a caller switching between the two sees the same
 * iteration order -- the property the A/B determinism tests pin down.
 */

#ifndef CAMS_GRAPH_ADJACENCY_HH
#define CAMS_GRAPH_ADJACENCY_HH

#include <span>
#include <vector>

#include "graph/dfg.hh"

namespace cams
{

/** One dependence edge as seen from one endpoint: the other node plus
 *  the payload the schedulers read (latency, iteration distance). */
struct AdjEdge
{
    NodeId node;
    int latency;
    int distance;
};

/** CSR snapshot of a graph's neighbor relations (not auto-updated:
 *  rebuild after mutating the graph). */
class Adjacency
{
  public:
    Adjacency() = default;

    /** Builds both relations; O(V + E log E). */
    explicit Adjacency(const Dfg &graph);

    /** Distinct sources of in-edges, ascending (= predecessors()). */
    std::span<const NodeId> preds(NodeId node) const
    {
        return {predIds_.data() + predOff_[node],
                predIds_.data() + predOff_[node + 1]};
    }

    /** Distinct targets of out-edges, ascending (= successors()). */
    std::span<const NodeId> succs(NodeId node) const
    {
        return {succIds_.data() + succOff_[node],
                succIds_.data() + succOff_[node + 1]};
    }

    /** In-edges of node (edge.node = source), in Dfg::inEdges order.
     *  One flat record per edge, so scheduling-window scans touch a
     *  single contiguous array instead of chasing edge ids. */
    std::span<const AdjEdge> inEdges(NodeId node) const
    {
        return {in_.data() + inOff_[node],
                in_.data() + inOff_[node + 1]};
    }

    /** Out-edges of node (edge.node = target), Dfg::outEdges order. */
    std::span<const AdjEdge> outEdges(NodeId node) const
    {
        return {out_.data() + outOff_[node],
                out_.data() + outOff_[node + 1]};
    }

    int numNodes() const
    {
        return static_cast<int>(predOff_.size()) - 1;
    }

  private:
    std::vector<int> predOff_;
    std::vector<NodeId> predIds_;
    std::vector<int> succOff_;
    std::vector<NodeId> succIds_;
    std::vector<int> inOff_;
    std::vector<AdjEdge> in_;
    std::vector<int> outOff_;
    std::vector<AdjEdge> out_;
};

} // namespace cams

#endif // CAMS_GRAPH_ADJACENCY_HH
