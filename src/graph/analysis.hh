/**
 * @file
 * Timing analyses of a loop graph at a candidate initiation interval:
 * earliest/latest start times, mobility and height-based priorities.
 *
 * With modulo scheduling an edge e = (u, v) constrains
 *   start(v) >= start(u) + latency(e) - II * distance(e),
 * so all analyses are longest-path computations over edges weighted
 * latency - II*distance. They are well defined whenever II >= RecMII
 * (no positive cycles) and are computed by Bellman-Ford style
 * relaxation, which handles the cyclic graphs directly.
 */

#ifndef CAMS_GRAPH_ANALYSIS_HH
#define CAMS_GRAPH_ANALYSIS_HH

#include <vector>

#include "graph/dfg.hh"

namespace cams
{

/** Timing facts about every node at a given II. */
struct TimeAnalysis
{
    int ii = 0;

    /** Earliest legal issue cycle of each node (>= 0). */
    std::vector<int> asap;

    /** Latest issue cycle consistent with the critical-path length. */
    std::vector<int> alap;

    /** alap - asap; 0 for critical nodes. */
    std::vector<int> mobility;

    /**
     * Modulo height: longest weighted path from the node to any sink,
     * including the node's own latency (Rau's HeightR analogue).
     */
    std::vector<int> height;

    /** Longest weighted path length: max(asap + latency). */
    int criticalPath = 0;
};

/**
 * Computes the timing analysis at the given II.
 *
 * Panics when the relaxation fails to converge, which means the graph
 * has a positive cycle at this II (i.e. II < RecMII).
 */
TimeAnalysis analyzeTiming(const Dfg &graph, int ii);

/**
 * Repeated timing analyses of one graph across an II escalation,
 * without recomputing the II-invariant structure each time.
 *
 * All per-II fixpoints are unique, so the solver returns exactly what
 * analyzeTiming would -- it just gets there faster: edges are
 * pre-sorted along the topological order of the distance-0 subgraph
 * (one relaxation pass settles the whole acyclic part, extra rounds
 * only pay for recurrence back-edges), and ASAP/height start from the
 * cached distance-0 fixpoints, which are pointwise lower bounds of
 * the true fixpoint at every II (loop-carried constraints only raise
 * longest paths). Note that seeding from a *previous II's* result
 * would be unsound -- fixpoints shrink as II grows, and an upward
 * relaxation cannot recover from an overestimate (see DESIGN.md).
 *
 * The result buffers are reused across solve() calls; the reference
 * returned is invalidated by the next solve at a different II.
 */
class TimingSolver
{
  public:
    explicit TimingSolver(const Dfg &graph);

    /** Same values as analyzeTiming(graph, ii); cached per II. */
    const TimeAnalysis &solve(int ii);

    /** True when the last solve(ii) was answered from cache. */
    bool lastWasHit() const { return lastWasHit_; }

  private:
    const Dfg *graph_;
    /** Edges by topological position of src (ASAP direction). */
    std::vector<EdgeId> forward_;
    /** Edges by reverse topological position of dst (height/ALAP). */
    std::vector<EdgeId> backward_;
    /** Distance-0 longest-path fixpoints: II-invariant seeds. */
    std::vector<int> asapSeed_;
    std::vector<int> heightSeed_;
    TimeAnalysis result_;
    bool hasResult_ = false;
    bool lastWasHit_ = false;
};

} // namespace cams

#endif // CAMS_GRAPH_ANALYSIS_HH
