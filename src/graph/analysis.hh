/**
 * @file
 * Timing analyses of a loop graph at a candidate initiation interval:
 * earliest/latest start times, mobility and height-based priorities.
 *
 * With modulo scheduling an edge e = (u, v) constrains
 *   start(v) >= start(u) + latency(e) - II * distance(e),
 * so all analyses are longest-path computations over edges weighted
 * latency - II*distance. They are well defined whenever II >= RecMII
 * (no positive cycles) and are computed by Bellman-Ford style
 * relaxation, which handles the cyclic graphs directly.
 */

#ifndef CAMS_GRAPH_ANALYSIS_HH
#define CAMS_GRAPH_ANALYSIS_HH

#include <vector>

#include "graph/dfg.hh"

namespace cams
{

/** Timing facts about every node at a given II. */
struct TimeAnalysis
{
    int ii = 0;

    /** Earliest legal issue cycle of each node (>= 0). */
    std::vector<int> asap;

    /** Latest issue cycle consistent with the critical-path length. */
    std::vector<int> alap;

    /** alap - asap; 0 for critical nodes. */
    std::vector<int> mobility;

    /**
     * Modulo height: longest weighted path from the node to any sink,
     * including the node's own latency (Rau's HeightR analogue).
     */
    std::vector<int> height;

    /** Longest weighted path length: max(asap + latency). */
    int criticalPath = 0;
};

/**
 * Computes the timing analysis at the given II.
 *
 * Panics when the relaxation fails to converge, which means the graph
 * has a positive cycle at this II (i.e. II < RecMII).
 */
TimeAnalysis analyzeTiming(const Dfg &graph, int ii);

} // namespace cams

#endif // CAMS_GRAPH_ANALYSIS_HH
