/**
 * @file
 * The exact backend: per-II SAT decisions over the joint
 * cluster-assignment + modulo-scheduling problem, and the shared
 * types the driver uses to select and report backends.
 *
 * The driver consumes this in two modes (CompileOptions::backend):
 *
 *  - Exact: the II search itself is the ascending decision ladder
 *    MII, MII+1, ... -- the first SAT answer is an optimal schedule
 *    (every lower II carries an UNSAT certificate).
 *  - Race: the heuristic cascade answers first under the ordinary
 *    compile budget; the exact arm then probes II = MII .. II_h - 1.
 *    A SAT answer *tightens* the result to a strictly better II; an
 *    unbroken run of UNSAT answers *certifies* the heuristic II
 *    optimal; a budget blow-out leaves the heuristic answer standing
 *    with outcome Timeout.
 *
 * Budgets are conflict counts first (deterministic across machines
 * and sanitizers -- the same instance always dies at the same
 * conflict) with wall-clock as a backstop, so CI behavior is
 * reproducible.
 *
 * Certification honesty: a SAT answer is decoded and re-checked by
 * the independent verifier before anyone sees it, and an UNSAT
 * answer counts only when the encoder ran at its completeness-
 * preserving horizon (encode.hh); anything else degrades to Budget.
 */

#ifndef CAMS_EXACT_EXACT_HH
#define CAMS_EXACT_EXACT_HH

#include <string>

#include "assign/assignment.hh"
#include "exact/sat.hh"
#include "sched/schedule.hh"

namespace cams
{

/** Which engine compiles a clustered loop. */
enum class CompileBackend
{
    Heuristic, ///< the paper's Figure 5 cascade (default)
    Exact,     ///< SAT decisions only: first SAT II is optimal
    Race,      ///< heuristic first, exact arm tightens or certifies
};

/** Stable lowercase name ("heuristic", "exact", "race"). */
const char *compileBackendName(CompileBackend backend);

/** Parses a backend name; returns false on an unknown one. */
bool parseCompileBackend(const std::string &name, CompileBackend &out);

/** Knobs of the exact arm. */
struct ExactOptions
{
    /**
     * Conflict budget per II decision; the deterministic primary
     * bound (same instance, same budget => same answer everywhere).
     * 0 = unbounded.
     */
    long conflictBudget = 50000;

    /**
     * Wall-clock backstop per II decision, milliseconds; 0 = none.
     * Non-deterministic by nature -- tests and CI gates should bound
     * by conflicts and leave this 0.
     */
    double timeBudgetMs = 0.0;

    /** Loops above this node count are not encoded (Unsupported). */
    int nodeLimit = 64;

    /**
     * Ceiling on the encoded time horizon. When the completeness-
     * preserving horizon exceeds it, SAT answers still count but
     * UNSAT degrades to Budget (no false certificates).
     */
    int horizonLimit = 2048;

    /** Most II values probed per compile (race and exact mode). */
    int maxProbes = 16;
};

/** How one per-II decision ended. */
enum class ExactVerdict
{
    Sat,         ///< schedule found, decoded and verifier-approved
    Unsat,       ///< certificate: no schedule exists at this II
    Budget,      ///< conflict/wall budget exhausted (or capped horizon)
    Unsupported, ///< instance not encodable (see detail)
};

/** Aggregate outcome of the exact arm of one compile. */
enum class ExactOutcome
{
    NotRun,      ///< heuristic backend, cache hit, or arm skipped
    Sat,         ///< exact schedule is the result
    Unsat,       ///< certified: no lower II exists
    Timeout,     ///< budget died before an answer
    Unsupported, ///< loop/machine outside the encodable fragment
};

/** Stable lowercase name of an outcome. */
const char *exactOutcomeName(ExactOutcome outcome);

/** Per-compile accounting of the exact arm (CompileResult::exact). */
struct ExactStats
{
    ExactOutcome outcome = ExactOutcome::NotRun;

    /** Race mode: the exact arm beat the heuristic II. */
    bool tightened = false;

    /** Race mode: UNSAT certificates cover [MII, heuristic II). */
    bool certified = false;

    /** II of the exact-found schedule; 0 = none. */
    int exactIi = 0;

    /** The heuristic II the race arm started from; 0 = none. */
    int heuristicIi = 0;

    /** II decision instances solved. */
    int probes = 0;

    /** Summed solver counters across all probes. */
    long conflicts = 0;
    long decisions = 0;
    long propagations = 0;

    /** Wall time spent inside the exact arm, milliseconds. */
    double solveMs = 0.0;

    /** Unsupported/budget slug for logs ("point_to_point_machine"). */
    std::string detail;
};

/** Result of one per-II decision. */
struct ExactDecision
{
    ExactVerdict verdict = ExactVerdict::Unsupported;

    /** Sat only: the decoded, verifier-approved result. */
    AnnotatedLoop loop;
    Schedule schedule;

    /** Solver counters summed over the horizon ladder. */
    long conflicts = 0;
    long decisions = 0;
    long propagations = 0;

    std::string detail;
};

/**
 * Decides schedulability of the loop at exactly the given II. SAT
 * answers are decoded and re-verified before being reported; a
 * decode the verifier rejects degrades to Budget (never a lie).
 */
ExactDecision exactDecideAtIi(const Dfg &graph,
                              const ResourceModel &model, int ii,
                              const ExactOptions &options);

} // namespace cams

#endif // CAMS_EXACT_EXACT_HH
