#include "exact/encode.hh"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "graph/opcode.hh"
#include "support/logging.hh"

namespace cams
{

ExactEncoder::ExactEncoder(const Dfg &graph, const ResourceModel &model)
    : graph_(graph), model_(model),
      numClusters_(model.machine().numClusters())
{
    const int n = graph_.numNodes();
    eligible_.resize(n);
    asap_.assign(n, 0);
    copyCapable_.assign(n, 0);

    for (NodeId v = 0; v < n; ++v) {
        const FuClass cls = opcodeFuClass(graph_.node(v).op);
        for (ClusterId c = 0; c < numClusters_; ++c) {
            if (model_.fuPool(c, cls) != invalidPool)
                eligible_[v].push_back(c);
        }
        maxLatency_ = std::max(maxLatency_, graph_.node(v).latency);
        for (const NodeId succ : graph_.successors(v)) {
            if (succ != v)
                copyCapable_[v] = 1;
        }
    }

    // ASAP lower bounds over intra-iteration edges. A cross-cluster
    // route can beat the edge latency (copy latency 1 right after the
    // producer), so the sound per-edge weight is the cheaper of the
    // two paths. Bellman-style relaxation; a positive-weight
    // zero-distance cycle makes the loop unschedulable at any II.
    for (int pass = 0; pass <= n; ++pass) {
        bool changed = false;
        for (const DfgEdge &e : graph_.edges()) {
            if (e.distance != 0 || e.src == e.dst)
                continue;
            const int weight = std::min(
                e.latency, graph_.node(e.src).latency + 1);
            if (asap_[e.src] + weight > asap_[e.dst]) {
                asap_[e.dst] = asap_[e.src] + weight;
                changed = true;
            }
        }
        if (!changed)
            break;
        if (pass == n)
            positiveZeroCycle_ = true;
    }

    // Fully interchangeable clusters admit value-precedence symmetry
    // breaking (cluster k is used only after k-1).
    const MachineDesc &machine = model_.machine();
    identicalClusters_ = machine.broadcast();
    for (int c = 1; c < numClusters_ && identicalClusters_; ++c) {
        const ClusterDesc &a = machine.clusters[0];
        const ClusterDesc &b = machine.clusters[c];
        identicalClusters_ = a.gpUnits == b.gpUnits &&
                             a.fsUnits == b.fsUnits &&
                             a.readPorts == b.readPorts &&
                             a.writePorts == b.writePorts;
    }
}

bool
ExactEncoder::supported(std::string *why) const
{
    if (!model_.machine().broadcast()) {
        if (why)
            *why = "point_to_point_machine";
        return false;
    }
    for (const DfgNode &node : graph_.nodes()) {
        if (opcodeFuClass(node.op) == FuClass::None) {
            if (why)
                *why = "copy_opcode_in_input";
            return false;
        }
        if (eligible_[node.id].empty()) {
            if (why)
                *why = "node_unexecutable";
            return false;
        }
    }
    return true;
}

int
ExactEncoder::soundHorizon(int ii) const
{
    // Stage-compression bound: fix the rows of any feasible schedule
    // and solve the stage difference-constraint system to its least
    // solution; every arc contributes at most 1 + ceil((lat-1)/II)
    // stages along a simple path, so starts compress below
    // (annotated nodes + slack) * II + total annotated latency.
    int copies = 0;
    int totalLat = 0;
    for (const DfgNode &node : graph_.nodes()) {
        totalLat += std::max(node.latency, 1);
        if (copyCapable_[node.id])
            ++copies;
    }
    const int annotatedNodes = graph_.numNodes() + copies;
    return totalLat + copies + (annotatedNodes + 3) * ii;
}

int
ExactEncoder::fastHorizon(int ii) const
{
    int maxEnd = 1;
    for (const DfgNode &node : graph_.nodes())
        maxEnd = std::max(maxEnd, asap_[node.id] + node.latency);
    const int fast = maxEnd + 2 * ii + maxLatency_ + 2;
    return std::min(fast, soundHorizon(ii));
}

SatLit
ExactEncoder::clusterLit(NodeId v, ClusterId c) const
{
    cams_assert(cluster_[v][c] >= 0, "no cluster var");
    return mkLit(cluster_[v][c]);
}

SatLit
ExactEncoder::orderLit(NodeId v, int t) const
{
    return mkLit(order_[v][t]);
}

SatLit
ExactEncoder::copyOrderLit(NodeId v, int t) const
{
    return mkLit(copyOrder_[v][t]);
}

void
ExactEncoder::addPrecedence(SatSolver &solver,
                            const std::vector<SatVar> &fromOrder,
                            const std::vector<SatVar> &toOrder, int lag,
                            const std::vector<SatLit> &cond)
{
    const int T = horizon_;
    std::vector<SatLit> base;
    base.reserve(cond.size() + 2);
    for (const SatLit l : cond)
        base.push_back(~l);

    // "from >= t  ->  to >= t + lag" for every t; the order chains
    // make one clause per t sufficient. t with t+lag <= 0 is vacuous;
    // t+lag >= horizon caps `from` below t instead (and the chain
    // covers everything above).
    for (int t = 0; t < T; ++t) {
        const int target = t + lag;
        if (target <= 0)
            continue;
        std::vector<SatLit> clause = base;
        if (t > 0)
            clause.push_back(~mkLit(fromOrder[t]));
        if (target >= T) {
            solver.addClause(clause);
            break;
        }
        clause.push_back(mkLit(toOrder[target]));
        solver.addClause(clause);
    }
}

void
ExactEncoder::atMostK(SatSolver &solver,
                      const std::vector<SatLit> &lits, int k)
{
    const int n = static_cast<int>(lits.size());
    if (n <= k)
        return;
    if (k <= 0) {
        for (const SatLit l : lits)
            solver.addClause(~l);
        return;
    }
    // Sinz sequential counter: reg[i][j] = "at least j+1 of the
    // first i+1 literals are true", rows for all but the last lit.
    std::vector<std::vector<SatVar>> reg(
        n - 1, std::vector<SatVar>(k, -1));
    for (auto &row : reg)
        for (SatVar &var : row)
            var = solver.newVar();

    solver.addClause(~lits[0], mkLit(reg[0][0]));
    for (int j = 1; j < k; ++j)
        solver.addClause(~mkLit(reg[0][j]));
    for (int i = 1; i < n - 1; ++i) {
        solver.addClause(~lits[i], mkLit(reg[i][0]));
        solver.addClause(~mkLit(reg[i - 1][0]), mkLit(reg[i][0]));
        for (int j = 1; j < k; ++j) {
            solver.addClause(~lits[i], ~mkLit(reg[i - 1][j - 1]),
                             mkLit(reg[i][j]));
            solver.addClause(~mkLit(reg[i - 1][j]), mkLit(reg[i][j]));
        }
        solver.addClause(~lits[i], ~mkLit(reg[i - 1][k - 1]));
    }
    solver.addClause(~lits[n - 1], ~mkLit(reg[n - 2][k - 1]));
}

bool
ExactEncoder::encode(int ii, int horizon, SatSolver &solver,
                     std::string *why)
{
    if (!supported(why))
        return false;
    cams_assert(ii >= 1 && horizon >= 2, "degenerate exact instance");
    ii_ = ii;
    horizon_ = horizon;
    const int n = graph_.numNodes();
    const int C = numClusters_;
    const int T = horizon;
    const std::vector<SatLit> always; // empty condition

    cluster_.assign(n, std::vector<SatVar>(C, -1));
    order_.assign(n, {});
    copyActive_.assign(n, -1);
    copyNeed_.assign(n, std::vector<SatVar>(C, -1));
    copyOrder_.assign(n, {});

    // Infeasible at any II / at this II: a contradictory instance is
    // the honest encoding (the UNSAT answer is genuine).
    if (positiveZeroCycle_) {
        solver.addClause(std::vector<SatLit>{});
        return true;
    }
    for (const DfgEdge &e : graph_.edges()) {
        if (e.src == e.dst &&
            e.latency - static_cast<long>(ii) * e.distance > 0) {
            solver.addClause(std::vector<SatLit>{});
            return true;
        }
    }

    // --- Cluster assignment: exactly-one over eligible clusters. ---
    for (NodeId v = 0; v < n; ++v) {
        std::vector<SatLit> alo;
        for (const ClusterId c : eligible_[v]) {
            cluster_[v][c] = solver.newVar();
            alo.push_back(clusterLit(v, c));
        }
        solver.addClause(alo);
        for (size_t i = 0; i < alo.size(); ++i)
            for (size_t j = i + 1; j < alo.size(); ++j)
                solver.addClause(~alo[i], ~alo[j]);
    }

    // Value-precedence symmetry breaking on interchangeable clusters:
    // node i may sit on cluster k>0 only if some earlier node sits on
    // cluster k-1. Any placement relabels into this form, so no
    // schedule is lost -- but UNSAT proofs shrink by ~C! per loop.
    bool uniformEligibility = true;
    for (NodeId v = 0; v < n; ++v)
        uniformEligibility &=
            static_cast<int>(eligible_[v].size()) == C;
    if (identicalClusters_ && uniformEligibility && C > 1) {
        for (NodeId v = 0; v < n; ++v) {
            for (int k = 1; k < C; ++k) {
                std::vector<SatLit> clause{~clusterLit(v, k)};
                for (NodeId u = 0; u < v; ++u)
                    clause.push_back(clusterLit(u, k - 1));
                solver.addClause(clause);
            }
        }
    }

    // --- Time: order variables with ladder chains + ASAP bounds. ---
    auto makeOrderChain = [&](std::vector<SatVar> &slots, int asap) {
        slots.assign(T, -1);
        for (int t = 1; t < T; ++t)
            slots[t] = solver.newVar();
        for (int t = 1; t + 1 < T; ++t)
            solver.addClause(~mkLit(slots[t + 1]), mkLit(slots[t]));
        if (asap >= 1)
            solver.addClause(mkLit(slots[std::min(asap, T - 1)]));
    };
    for (NodeId v = 0; v < n; ++v)
        makeOrderChain(order_[v], asap_[v]);

    // --- Copy machinery (annotatePartition semantics, broadcast). ---
    for (NodeId v = 0; v < n; ++v) {
        if (!copyCapable_[v])
            continue;
        copyActive_[v] = solver.newVar();
        makeOrderChain(copyOrder_[v],
                       asap_[v] + std::max(graph_.node(v).latency, 0));
        std::set<ClusterId> dstUniverse;
        for (const NodeId succ : graph_.successors(v)) {
            if (succ == v)
                continue;
            for (const ClusterId c : eligible_[succ])
                dstUniverse.insert(c);
        }
        for (const ClusterId d : dstUniverse) {
            copyNeed_[v][d] = solver.newVar();
            solver.addClause(~mkLit(copyNeed_[v][d]),
                             mkLit(copyActive_[v]));
        }
        // The copy reads v's result: issue no earlier than v + lat.
        addPrecedence(solver, order_[v], copyOrder_[v],
                      graph_.node(v).latency,
                      {mkLit(copyActive_[v])});
    }

    // --- Same-cluster indicators per producer/consumer pair. ---
    std::map<std::pair<NodeId, NodeId>, SatVar> samePair;
    auto sameVar = [&](NodeId u, NodeId w) {
        const auto key = std::make_pair(u, w);
        const auto it = samePair.find(key);
        if (it != samePair.end())
            return it->second;
        const SatVar same = solver.newVar();
        // same <-> OR_c (u on c AND w on c), via one aux per shared c.
        std::vector<SatLit> any{~mkLit(same)};
        for (const ClusterId c : eligible_[u]) {
            if (cluster_[w][c] < 0)
                continue;
            const SatVar both = solver.newVar();
            solver.addClause(~mkLit(both), clusterLit(u, c));
            solver.addClause(~mkLit(both), clusterLit(w, c));
            solver.addClause(~clusterLit(u, c), ~clusterLit(w, c),
                             mkLit(both));
            solver.addClause(~mkLit(both), mkLit(same));
            any.push_back(mkLit(both));
        }
        solver.addClause(any);
        samePair.emplace(key, same);
        return same;
    };

    // --- Dependence edges: timing + copy forcing. ---
    for (const DfgEdge &e : graph_.edges()) {
        if (e.src == e.dst)
            continue; // recurrence feasibility handled above
        const SatLit same = mkLit(sameVar(e.src, e.dst));
        const long lag = e.latency - static_cast<long>(ii) * e.distance;
        const long crossLag = 1 - static_cast<long>(ii) * e.distance;
        const int clampedLag =
            static_cast<int>(std::clamp<long>(lag, -T, T));
        const int clampedCross =
            static_cast<int>(std::clamp<long>(crossLag, -T, T));
        // Same cluster: the original edge as-is.
        addPrecedence(solver, order_[e.src], order_[e.dst], clampedLag,
                      {same});
        // Cross cluster: producer -> copy -> consumer, copy latency 1
        // at the original distance (assign/exhaustive.cc semantics).
        solver.addClause(same, mkLit(copyActive_[e.src]));
        addPrecedence(solver, copyOrder_[e.src], order_[e.dst],
                      clampedCross, {~same});
        for (const ClusterId d : eligible_[e.dst]) {
            std::vector<SatLit> force{~clusterLit(e.dst, d),
                                      mkLit(copyNeed_[e.src][d])};
            if (cluster_[e.src][d] >= 0)
                force.push_back(clusterLit(e.src, d));
            solver.addClause(force);
        }
    }

    // --- Kernel rows: start = t implies row t mod II. ---
    auto makeRows = [&](const std::vector<SatVar> &slots) {
        std::vector<SatVar> rows(ii, -1);
        for (int r = 0; r < ii && r < T; ++r)
            rows[r] = solver.newVar();
        for (int t = 0; t < T; ++t) {
            std::vector<SatLit> clause;
            if (t > 0)
                clause.push_back(~mkLit(slots[t]));
            if (t + 1 < T)
                clause.push_back(mkLit(slots[t + 1]));
            clause.push_back(mkLit(rows[t % ii]));
            solver.addClause(clause);
        }
        return rows;
    };
    std::vector<std::vector<SatVar>> row(n), copyRow(n);
    for (NodeId v = 0; v < n; ++v) {
        row[v] = makeRows(order_[v]);
        if (copyCapable_[v])
            copyRow[v] = makeRows(copyOrder_[v]);
    }

    // --- Resource usage literals, grouped per (pool, row). ---
    std::vector<std::vector<std::vector<SatLit>>> poolRow(
        model_.numPools(),
        std::vector<std::vector<SatLit>>(ii));
    auto usage = [&](PoolId pool, int r,
                     const std::vector<SatLit> &conds) {
        const SatVar used = solver.newVar();
        std::vector<SatLit> imply;
        for (const SatLit l : conds)
            imply.push_back(~l);
        imply.push_back(mkLit(used));
        solver.addClause(imply);
        poolRow[pool][r].push_back(mkLit(used));
    };

    for (NodeId v = 0; v < n; ++v) {
        const FuClass cls = opcodeFuClass(graph_.node(v).op);
        for (const ClusterId c : eligible_[v]) {
            const PoolId pool = model_.fuPool(c, cls);
            for (int r = 0; r < ii && r < T; ++r)
                usage(pool, r, {clusterLit(v, c), mkLit(row[v][r])});
        }
        if (!copyCapable_[v])
            continue;
        const SatLit active = mkLit(copyActive_[v]);
        for (const ClusterId c : eligible_[v]) {
            const PoolId read = model_.readPool(c);
            if (read == invalidPool) {
                // No read ports: this cluster cannot source a copy.
                solver.addClause(~active, ~clusterLit(v, c));
                continue;
            }
            for (int r = 0; r < ii && r < T; ++r)
                usage(read, r,
                      {active, clusterLit(v, c),
                       mkLit(copyRow[v][r])});
        }
        const PoolId bus = model_.busPool();
        if (bus == invalidPool) {
            solver.addClause(~active); // busless: no transfers at all
        } else {
            for (int r = 0; r < ii && r < T; ++r)
                usage(bus, r, {active, mkLit(copyRow[v][r])});
        }
        for (ClusterId d = 0; d < C; ++d) {
            if (copyNeed_[v][d] < 0)
                continue;
            const PoolId write = model_.writePool(d);
            if (write == invalidPool) {
                solver.addClause(~mkLit(copyNeed_[v][d]));
                continue;
            }
            for (int r = 0; r < ii && r < T; ++r)
                usage(write, r,
                      {mkLit(copyNeed_[v][d]), mkLit(copyRow[v][r])});
        }
    }
    for (PoolId pool = 0; pool < model_.numPools(); ++pool)
        for (int r = 0; r < ii; ++r)
            atMostK(solver, poolRow[pool][r], model_.capacity(pool));

    // --- Anchor: some node starts at cycle 0. Any schedule shifts
    // uniformly (rows permute, dependences keep their slack) to meet
    // this, and it prunes the T-fold shift symmetry from the search.
    std::vector<SatLit> anchor;
    for (NodeId v = 0; v < n; ++v)
        anchor.push_back(~mkLit(order_[v][1]));
    solver.addClause(anchor);

    return true;
}

int
ExactEncoder::decodeStart(const SatSolver &solver,
                          const std::vector<SatVar> &order) const
{
    int start = 0;
    for (int t = 1; t < horizon_; ++t) {
        if (!solver.value(order[t]))
            break;
        start = t;
    }
    return start;
}

void
ExactEncoder::decode(const SatSolver &solver, AnnotatedLoop &loop,
                     Schedule &schedule) const
{
    const int n = graph_.numNodes();
    std::vector<ClusterId> clusterOf(n, invalidCluster);
    for (NodeId v = 0; v < n; ++v) {
        for (const ClusterId c : eligible_[v]) {
            if (solver.value(cluster_[v][c])) {
                clusterOf[v] = c;
                break;
            }
        }
        cams_assert(clusterOf[v] != invalidCluster,
                    "model without a cluster choice");
    }

    // Splice copies exactly as annotatePartition does for broadcast
    // machines, so AnnotatedLoop::validate and the verifier see the
    // canonical structure.
    loop = AnnotatedLoop{};
    loop.numOriginalNodes = n;
    loop.graph.setName(graph_.name());
    for (const DfgNode &node : graph_.nodes()) {
        loop.graph.addNode(node.op, node.latency, node.name);
        loop.placement.push_back({clusterOf[node.id], {}});
    }

    schedule = Schedule{};
    schedule.ii = ii_;
    schedule.startCycle.resize(n, 0);
    for (NodeId v = 0; v < n; ++v)
        schedule.startCycle[v] = decodeStart(solver, order_[v]);

    std::vector<std::vector<NodeId>> serving(
        n, std::vector<NodeId>(numClusters_, invalidNode));
    for (NodeId v = 0; v < n; ++v) {
        std::set<ClusterId> dstSet;
        for (const NodeId succ : graph_.successors(v)) {
            if (succ != v && clusterOf[succ] != clusterOf[v])
                dstSet.insert(clusterOf[succ]);
        }
        if (dstSet.empty())
            continue;
        const NodeId copy = loop.graph.addNode(
            Opcode::Copy, 1, "cp_" + graph_.node(v).name);
        loop.placement.push_back(
            {clusterOf[v],
             std::vector<ClusterId>(dstSet.begin(), dstSet.end())});
        loop.graph.addEdge(v, copy, graph_.node(v).latency, 0);
        for (const ClusterId dst : dstSet)
            serving[v][dst] = copy;
        schedule.startCycle.push_back(
            decodeStart(solver, copyOrder_[v]));
    }
    for (const DfgEdge &edge : graph_.edges()) {
        if (clusterOf[edge.src] == clusterOf[edge.dst]) {
            loop.graph.addEdge(edge.src, edge.dst, edge.latency,
                               edge.distance);
        } else {
            loop.graph.addEdge(serving[edge.src][clusterOf[edge.dst]],
                               edge.dst, 1, edge.distance);
        }
    }
}

} // namespace cams
