/**
 * @file
 * CNF encoding of the joint cluster-assignment + modulo-scheduling
 * decision problem at a fixed II, for the exact backend.
 *
 * Variables, per original node v of the loop:
 *  - cluster vars c(v,k): exactly-one over the clusters whose
 *    function-unit pools can execute v;
 *  - order (ladder) time vars o(v,t) == "start(v) >= t" for
 *    t in [1, horizon), chained o(v,t+1) -> o(v,t). The start time is
 *    the number of true order vars, so dependence edges become the
 *    linear clauses ~o(u,t) \/ o(w, t+lag) -- no quadratic
 *    at-most-one over time slots;
 *  - row indicators row(v,r), r in [0, II), implied by "start = t"
 *    (one-directional: a spurious true row only wastes capacity,
 *    which preserves both soundness and completeness);
 *  - per-(cluster, row) usage literals feeding one sequential-counter
 *    (Sinz) at-most-K per resource pool and MRT row: function units
 *    for the node's FuClass, and for inter-cluster transfers the
 *    source read port, the shared bus, and each destination's write
 *    port.
 *
 * Copies mirror assign/exhaustive.cc annotatePartition exactly (one
 * broadcast copy per producer with cross-cluster consumers; edge
 * v->copy keeps v's latency at distance 0, copy->consumer is latency
 * 1 at the original distance), so a decoded model round-trips through
 * AnnotatedLoop::validate and the independent verifier unchanged.
 * Point-to-point (multi-hop) machines are not encoded; the caller
 * reports them as unsupported.
 *
 * Completeness over the horizon: any feasible schedule can be shifted
 * (uniformly, preserving rows and dependences) so its earliest start
 * is 0, and a stage-compression argument bounds the latest start by
 * soundHorizon(ii); a SAT answer at any horizon is a real schedule,
 * and an UNSAT answer at soundHorizon(ii) is a certificate that no
 * schedule exists at this II. fastHorizon(ii) is a smaller window
 * that finds almost every satisfiable instance cheaply; the solver
 * escalates to the sound horizon only to certify UNSAT.
 */

#ifndef CAMS_EXACT_ENCODE_HH
#define CAMS_EXACT_ENCODE_HH

#include <string>
#include <vector>

#include "assign/assignment.hh"
#include "exact/sat.hh"
#include "graph/dfg.hh"
#include "mrt/mrt.hh"
#include "sched/schedule.hh"

namespace cams
{

/** Builds and decodes the per-II CNF instances of one loop. */
class ExactEncoder
{
  public:
    ExactEncoder(const Dfg &graph, const ResourceModel &model);

    /**
     * Static support check (II-independent): bused interconnect,
     * every node executable on some cluster, no pre-existing copy
     * opcodes. False fills @p why with a stable slug.
     */
    bool supported(std::string *why) const;

    /**
     * Horizon that preserves completeness: UNSAT at this window is a
     * true infeasibility certificate for the II.
     */
    int soundHorizon(int ii) const;

    /** Cheaper window for the initial SAT hunt (never exceeds
     *  soundHorizon). UNSAT here is *not* a certificate. */
    int fastHorizon(int ii) const;

    /**
     * Emits the CNF for one (ii, horizon) instance into a fresh
     * solver. Returns false only for unsupported inputs (see
     * supported()); a trivially infeasible II yields an
     * already-contradictory solver instead.
     */
    bool encode(int ii, int horizon, SatSolver &solver,
                std::string *why = nullptr);

    /**
     * Reads the model of the last encoded instance back into an
     * annotated loop (copies spliced annotatePartition-style) and its
     * schedule. Valid only after that solver returned Sat.
     */
    void decode(const SatSolver &solver, AnnotatedLoop &loop,
                Schedule &schedule) const;

  private:
    SatLit clusterLit(NodeId v, ClusterId c) const;
    SatLit orderLit(NodeId v, int t) const;     ///< start(v) >= t
    SatLit copyOrderLit(NodeId v, int t) const; ///< copyStart(v) >= t

    /** t(to) >= t(from) + lag whenever all of @p cond are true. */
    void addPrecedence(SatSolver &solver,
                       const std::vector<SatVar> &fromOrder,
                       const std::vector<SatVar> &toOrder, int lag,
                       const std::vector<SatLit> &cond);

    /** Sinz sequential at-most-k over the literals. */
    static void atMostK(SatSolver &solver,
                        const std::vector<SatLit> &lits, int k);

    int decodeStart(const SatSolver &solver,
                    const std::vector<SatVar> &order) const;

    const Dfg &graph_;
    const ResourceModel &model_;
    int numClusters_ = 0;

    // II-independent facts, computed once.
    std::vector<std::vector<ClusterId>> eligible_;
    std::vector<int> asap_;       ///< d=0 longest-path lower bounds
    std::vector<char> copyCapable_; ///< has a non-self successor
    bool identicalClusters_ = false;
    bool positiveZeroCycle_ = false; ///< infeasible at every II
    int maxLatency_ = 1;

    // Per-encode state (rebuilt by every encode call).
    int ii_ = 0;
    int horizon_ = 0;
    std::vector<std::vector<SatVar>> cluster_; ///< [v][c], -1 = none
    std::vector<std::vector<SatVar>> order_;   ///< [v][t], t >= 1
    std::vector<SatVar> copyActive_;           ///< [v], -1 = none
    std::vector<std::vector<SatVar>> copyNeed_;  ///< [v][dst]
    std::vector<std::vector<SatVar>> copyOrder_; ///< [v][t]
};

} // namespace cams

#endif // CAMS_EXACT_ENCODE_HH
