#include "exact/exact.hh"

#include "exact/encode.hh"
#include "sched/verifier.hh"

namespace cams
{

const char *
compileBackendName(CompileBackend backend)
{
    switch (backend) {
      case CompileBackend::Heuristic:
        return "heuristic";
      case CompileBackend::Exact:
        return "exact";
      case CompileBackend::Race:
        return "race";
    }
    return "?";
}

bool
parseCompileBackend(const std::string &name, CompileBackend &out)
{
    if (name == "heuristic")
        out = CompileBackend::Heuristic;
    else if (name == "exact")
        out = CompileBackend::Exact;
    else if (name == "race")
        out = CompileBackend::Race;
    else
        return false;
    return true;
}

const char *
exactOutcomeName(ExactOutcome outcome)
{
    switch (outcome) {
      case ExactOutcome::NotRun:
        return "not_run";
      case ExactOutcome::Sat:
        return "sat";
      case ExactOutcome::Unsat:
        return "unsat";
      case ExactOutcome::Timeout:
        return "timeout";
      case ExactOutcome::Unsupported:
        return "unsupported";
    }
    return "?";
}

namespace
{

/** One (ii, horizon) solve; accumulates counters into @p out. */
SatStatus
solveWindow(ExactEncoder &encoder, int ii, int horizon,
            const ExactOptions &options, ExactDecision &out,
            SatSolver &solver)
{
    std::string why;
    if (!encoder.encode(ii, horizon, solver, &why)) {
        out.verdict = ExactVerdict::Unsupported;
        out.detail = why;
        return SatStatus::Unknown;
    }
    SatBudget budget;
    budget.maxConflicts = options.conflictBudget;
    budget.timeBudgetMs = options.timeBudgetMs;
    const SatStatus status = solver.solve(budget);
    out.conflicts += solver.stats().conflicts;
    out.decisions += solver.stats().decisions;
    out.propagations += solver.stats().propagations;
    return status;
}

} // namespace

ExactDecision
exactDecideAtIi(const Dfg &graph, const ResourceModel &model, int ii,
                const ExactOptions &options)
{
    ExactDecision out;
    if (graph.numNodes() > options.nodeLimit) {
        out.verdict = ExactVerdict::Unsupported;
        out.detail = "node_limit";
        return out;
    }

    ExactEncoder encoder(graph, model);
    std::string why;
    if (!encoder.supported(&why)) {
        out.verdict = ExactVerdict::Unsupported;
        out.detail = why;
        return out;
    }

    const int fast = encoder.fastHorizon(ii);
    const int sound = encoder.soundHorizon(ii);
    if (fast > options.horizonLimit) {
        out.verdict = ExactVerdict::Unsupported;
        out.detail = "horizon_limit";
        return out;
    }

    // Horizon ladder: hunt for a schedule in the small window first
    // (SAT there is final), escalate to the completeness-preserving
    // window only to turn UNSAT into a certificate.
    int horizon = fast;
    while (true) {
        SatSolver solver;
        const SatStatus status =
            solveWindow(encoder, ii, horizon, options, out, solver);
        if (status == SatStatus::Sat) {
            encoder.decode(solver, out.loop, out.schedule);
            std::string reject;
            if (!out.loop.validate(model.machine(), &reject) ||
                !verifySchedule(out.loop, model, out.schedule,
                                &reject)) {
                // An encoder bug must never masquerade as an exact
                // answer; degrade to Budget and keep the detail.
                out.verdict = ExactVerdict::Budget;
                out.detail = "decode_reject: " + reject;
                return out;
            }
            out.verdict = ExactVerdict::Sat;
            return out;
        }
        if (status == SatStatus::Unknown) {
            out.verdict = ExactVerdict::Budget;
            out.detail = "budget";
            return out;
        }
        // UNSAT: a certificate only at the sound horizon.
        if (horizon >= sound) {
            out.verdict = ExactVerdict::Unsat;
            return out;
        }
        if (sound > options.horizonLimit) {
            out.verdict = ExactVerdict::Budget;
            out.detail = "horizon_capped";
            return out;
        }
        horizon = sound;
    }
}

} // namespace cams
