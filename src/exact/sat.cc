#include "exact/sat.hh"

#include <algorithm>
#include <cassert>

#include "support/time.hh"

namespace cams
{

const char *
satStatusName(SatStatus status)
{
    switch (status) {
      case SatStatus::Sat:
        return "sat";
      case SatStatus::Unsat:
        return "unsat";
      case SatStatus::Unknown:
        return "unknown";
    }
    return "?";
}

SatVar
SatSolver::newVar()
{
    const SatVar v = static_cast<SatVar>(assign_.size());
    assign_.push_back(-1);
    phase_.push_back(0); // default polarity false: encodings are sparse
    level_.push_back(0);
    reason_.push_back(noClause);
    activity_.push_back(0.0);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    heapPos_.push_back(-1);
    heapInsert(v);
    return v;
}

SatSolver::ClauseRef
SatSolver::pushClause(const std::vector<SatLit> &lits)
{
    const ClauseRef ref = static_cast<ClauseRef>(arena_.size());
    arena_.push_back(static_cast<int32_t>(lits.size()));
    for (const SatLit l : lits)
        arena_.push_back(l.code);
    ++numClauses_;
    return ref;
}

void
SatSolver::watchClause(ClauseRef c)
{
    watches_[clauseLit(c, 0).code].push_back(c);
    watches_[clauseLit(c, 1).code].push_back(c);
}

bool
SatSolver::addClause(const std::vector<SatLit> &lits)
{
    if (!ok_)
        return false;
    assert(decisionLevel() == 0);

    // Root-level simplification: drop false literals, detect
    // satisfied/tautological clauses, dedupe.
    std::vector<SatLit> out;
    out.reserve(lits.size());
    for (const SatLit l : lits) {
        assert(l.valid() && l.var() < numVars());
        const int v = litValue(l);
        if (v == 1)
            return true; // already satisfied at the root
        if (v == 0)
            continue; // already false at the root: drop
        bool dup = false;
        for (const SatLit o : out) {
            if (o == l)
                dup = true;
            if (o == ~l)
                return true; // tautology
        }
        if (!dup)
            out.push_back(l);
    }

    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        enqueue(out[0], noClause);
        if (propagate() != noClause)
            ok_ = false;
        return ok_;
    }
    watchClause(pushClause(out));
    return true;
}

bool
SatSolver::addClause(SatLit a)
{
    return addClause(std::vector<SatLit>{a});
}

bool
SatSolver::addClause(SatLit a, SatLit b)
{
    return addClause(std::vector<SatLit>{a, b});
}

bool
SatSolver::addClause(SatLit a, SatLit b, SatLit c)
{
    return addClause(std::vector<SatLit>{a, b, c});
}

void
SatSolver::enqueue(SatLit l, ClauseRef reason)
{
    const SatVar v = l.var();
    assert(assign_[v] < 0);
    assign_[v] = l.sign() ? 0 : 1;
    level_[v] = decisionLevel();
    reason_[v] = reason;
    trail_.push_back(l);
}

SatSolver::ClauseRef
SatSolver::propagate()
{
    while (qhead_ < trail_.size()) {
        const SatLit p = trail_[qhead_++]; // p just became true
        ++stats_.propagations;
        // Clauses watching ~p may have lost their watch.
        std::vector<ClauseRef> &ws = watches_[(~p).code];
        size_t keep = 0;
        for (size_t i = 0; i < ws.size(); ++i) {
            const ClauseRef c = ws[i];
            // Normalize: the falsified watch sits at slot 1.
            if (clauseLit(c, 0) == ~p)
                std::swap(arena_[c + 1], arena_[c + 2]);
            const SatLit first = clauseLit(c, 0);
            if (litValue(first) == 1) {
                ws[keep++] = c; // clause satisfied; keep the watch
                continue;
            }
            // Hunt for a replacement watch.
            const int size = clauseSize(c);
            bool moved = false;
            for (int j = 2; j < size; ++j) {
                if (litValue(clauseLit(c, j)) != 0) {
                    std::swap(arena_[c + 2], arena_[c + 2 + j - 1]);
                    watches_[clauseLit(c, 1).code].push_back(c);
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;
            // No replacement: unit or conflicting on `first`.
            ws[keep++] = c;
            if (litValue(first) == 0) {
                // Conflict: restore the remaining watches and report.
                for (size_t j = i + 1; j < ws.size(); ++j)
                    ws[keep++] = ws[j];
                ws.resize(keep);
                qhead_ = trail_.size();
                return c;
            }
            enqueue(first, c);
        }
        ws.resize(keep);
    }
    return noClause;
}

void
SatSolver::analyze(ClauseRef conflict, std::vector<SatLit> &learnt,
                   int &backtrackLevel)
{
    learnt.clear();
    learnt.push_back(SatLit{}); // slot 0: the asserting literal
    int pathCount = 0;
    SatLit p{};
    int index = static_cast<int>(trail_.size()) - 1;
    ClauseRef c = conflict;

    do {
        assert(c != noClause);
        const int size = clauseSize(c);
        for (int j = p.valid() ? 1 : 0; j < size; ++j) {
            const SatLit q = clauseLit(c, j);
            const SatVar v = q.var();
            if (seen_[v] || level_[v] == 0)
                continue;
            seen_[v] = 1;
            bump(v);
            if (level_[v] >= decisionLevel())
                ++pathCount;
            else
                learnt.push_back(q);
        }
        // Walk back to the next marked trail literal.
        while (!seen_[trail_[index].var()])
            --index;
        p = trail_[index];
        c = reason_[p.var()];
        seen_[p.var()] = 0;
        --index;
        --pathCount;
    } while (pathCount > 0);
    learnt[0] = ~p;

    // Backtrack level: the deepest level among the tail literals.
    backtrackLevel = 0;
    int maxAt = 1;
    for (size_t i = 1; i < learnt.size(); ++i) {
        const int lv = level_[learnt[i].var()];
        if (lv > backtrackLevel) {
            backtrackLevel = lv;
            maxAt = static_cast<int>(i);
        }
    }
    if (learnt.size() > 1)
        std::swap(learnt[1], learnt[maxAt]);
    for (size_t i = 1; i < learnt.size(); ++i)
        seen_[learnt[i].var()] = 0;
}

void
SatSolver::cancelUntil(int level)
{
    if (decisionLevel() <= level)
        return;
    const int bound = trailLim_[level];
    for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
        const SatVar v = trail_[i].var();
        phase_[v] = assign_[v];
        assign_[v] = -1;
        reason_[v] = noClause;
        if (heapPos_[v] < 0)
            heapInsert(v);
    }
    trail_.resize(bound);
    trailLim_.resize(level);
    qhead_ = trail_.size();
}

void
SatSolver::bump(SatVar v)
{
    activity_[v] += activityInc_;
    if (activity_[v] > 1e100) {
        for (double &a : activity_)
            a *= 1e-100;
        activityInc_ *= 1e-100;
    }
    if (heapPos_[v] >= 0)
        heapUp(heapPos_[v]);
}

void
SatSolver::decayActivities()
{
    activityInc_ *= (1.0 / 0.95);
}

bool
SatSolver::heapLess(SatVar a, SatVar b) const
{
    // Max-heap on activity; ties broken by lower variable index so
    // the search is fully deterministic.
    if (activity_[a] != activity_[b])
        return activity_[a] > activity_[b];
    return a < b;
}

void
SatSolver::heapInsert(SatVar v)
{
    heapPos_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    heapUp(heapPos_[v]);
}

SatVar
SatSolver::heapPop()
{
    const SatVar top = heap_[0];
    heapPos_[top] = -1;
    if (heap_.size() > 1) {
        heap_[0] = heap_.back();
        heapPos_[heap_[0]] = 0;
        heap_.pop_back();
        heapDown(0);
    } else {
        heap_.pop_back();
    }
    return top;
}

void
SatSolver::heapUp(int i)
{
    const SatVar v = heap_[i];
    while (i > 0) {
        const int parent = (i - 1) / 2;
        if (!heapLess(v, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        heapPos_[heap_[i]] = i;
        i = parent;
    }
    heap_[i] = v;
    heapPos_[v] = i;
}

void
SatSolver::heapDown(int i)
{
    const SatVar v = heap_[i];
    const int n = static_cast<int>(heap_.size());
    while (true) {
        int child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && heapLess(heap_[child + 1], heap_[child]))
            ++child;
        if (!heapLess(heap_[child], v))
            break;
        heap_[i] = heap_[child];
        heapPos_[heap_[i]] = i;
        i = child;
    }
    heap_[i] = v;
    heapPos_[v] = i;
}

namespace
{

/** The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... */
long
luby(long i)
{
    // Find the smallest complete subtree (size 2^k - 1) holding
    // position i, then recurse into it; i is the 0-based index.
    long k = 1;
    while ((1L << k) - 1 < i + 1)
        ++k;
    while ((1L << k) - 1 != i + 1) {
        --k;
        i %= (1L << k) - 1;
    }
    return 1L << (k - 1);
}

} // namespace

SatStatus
SatSolver::solve(const SatBudget &budget)
{
    if (!ok_)
        return SatStatus::Unsat;
    if (propagate() != noClause) {
        ok_ = false;
        return SatStatus::Unsat;
    }

    constexpr long restartBase = 128;
    Stopwatch watch;
    std::vector<SatLit> learnt;
    long restartConflicts = 0;
    long restartLimit = restartBase * luby(0);

    while (true) {
        const ClauseRef conflict = propagate();
        if (conflict != noClause) {
            ++stats_.conflicts;
            ++restartConflicts;
            if (decisionLevel() == 0) {
                ok_ = false;
                return SatStatus::Unsat;
            }
            int backtrackLevel = 0;
            analyze(conflict, learnt, backtrackLevel);
            cancelUntil(backtrackLevel);
            if (learnt.size() == 1) {
                enqueue(learnt[0], noClause);
            } else {
                const ClauseRef c = pushClause(learnt);
                watchClause(c);
                enqueue(learnt[0], c);
            }
            ++stats_.learned;
            decayActivities();

            if (budget.maxConflicts > 0 &&
                stats_.conflicts >= budget.maxConflicts) {
                return SatStatus::Unknown;
            }
            if (budget.timeBudgetMs > 0.0 &&
                (stats_.conflicts & 0xFF) == 0 &&
                watch.elapsedMs() > budget.timeBudgetMs) {
                return SatStatus::Unknown;
            }
            continue;
        }

        if (restartConflicts >= restartLimit) {
            ++stats_.restarts;
            restartConflicts = 0;
            restartLimit = restartBase * luby(stats_.restarts);
            cancelUntil(0);
            continue;
        }

        // Decide: highest-activity unassigned variable, saved phase.
        SatVar next = -1;
        while (!heap_.empty()) {
            const SatVar v = heapPop();
            if (assign_[v] < 0) {
                next = v;
                break;
            }
        }
        if (next < 0)
            return SatStatus::Sat; // every variable assigned
        ++stats_.decisions;
        trailLim_.push_back(static_cast<int>(trail_.size()));
        enqueue(mkLit(next, phase_[next] == 0), noClause);
    }
}

} // namespace cams
