/**
 * @file
 * A small self-contained CDCL SAT solver: two-watched-literal unit
 * propagation, first-UIP conflict analysis with clause learning,
 * VSIDS-lite variable activities with phase saving, Luby restarts,
 * and budget-aware cancellation.
 *
 * The solver exists to answer the exact backend's per-II decision
 * problems (src/exact/encode.*); it is deliberately minimal -- no
 * preprocessing, no learned-clause deletion, no incremental
 * assumptions -- because the instances are rebuilt per II and die
 * with the solve. Budgets are expressed primarily as a *conflict
 * count* so that test and CI behavior is deterministic across
 * machines and sanitizers; an optional wall-clock bound rides along
 * for the compile driver's per-job deadline.
 *
 * Determinism: with a fixed clause stream and fixed budget the solve
 * is a pure function -- decision order depends only on activities,
 * which depend only on the conflict history. No randomness anywhere.
 */

#ifndef CAMS_EXACT_SAT_HH
#define CAMS_EXACT_SAT_HH

#include <cstdint>
#include <cstddef>
#include <vector>

namespace cams
{

/** A propositional variable, 0-based. */
using SatVar = int;

/**
 * A literal: variable plus sign, encoded as 2v (positive) or 2v+1
 * (negated) so it can index watch lists directly.
 */
struct SatLit
{
    int code = -2;

    SatVar var() const { return code >> 1; }
    bool sign() const { return code & 1; } ///< true = negated
    bool valid() const { return code >= 0; }

    bool operator==(const SatLit &o) const { return code == o.code; }
    bool operator!=(const SatLit &o) const { return code != o.code; }
};

/** The positive (neg = false) or negated literal of a variable. */
inline SatLit
mkLit(SatVar v, bool neg = false)
{
    return SatLit{(v << 1) | (neg ? 1 : 0)};
}

/** Negation. */
inline SatLit
operator~(SatLit l)
{
    return SatLit{l.code ^ 1};
}

/** Outcome of one solve call. */
enum class SatStatus
{
    Sat,     ///< a model was found; read it via SatSolver::value
    Unsat,   ///< refutation complete: no model exists
    Unknown, ///< budget exhausted before an answer
};

/** Stable lowercase name (for logs and JSON). */
const char *satStatusName(SatStatus status);

/**
 * Solve budget. maxConflicts is the deterministic primary bound
 * (0 = unbounded); timeBudgetMs is a coarse wall-clock backstop
 * checked every few hundred conflicts (0 = unbounded).
 */
struct SatBudget
{
    long maxConflicts = 0;
    double timeBudgetMs = 0.0;
};

/** Search counters of one solver lifetime. */
struct SatSolverStats
{
    long conflicts = 0;
    long decisions = 0;
    long propagations = 0;
    long learned = 0;
    long restarts = 0;
};

/** The CDCL solver. Add variables and clauses, then solve once. */
class SatSolver
{
  public:
    SatSolver() = default;

    /** Creates a fresh variable and returns it. */
    SatVar newVar();

    int numVars() const { return static_cast<int>(assign_.size()); }

    long numClauses() const { return numClauses_; }

    /**
     * Adds one clause (empty = immediate contradiction). Literals
     * must name existing variables. False literals already fixed at
     * the root level are dropped; a clause true at the root level is
     * dropped whole. Returns false when the solver became
     * contradictory at the root (okay() goes false and stays false).
     */
    bool addClause(const std::vector<SatLit> &lits);

    /** Convenience for tiny clauses. */
    bool addClause(SatLit a);
    bool addClause(SatLit a, SatLit b);
    bool addClause(SatLit a, SatLit b, SatLit c);

    /** False once a root-level contradiction was derived. */
    bool okay() const { return ok_; }

    /**
     * Runs the CDCL search. Callable once per solver instance (the
     * learned clauses and trail are not rewound between calls).
     */
    SatStatus solve(const SatBudget &budget = {});

    /** Value of a variable in the model; valid only after Sat. */
    bool value(SatVar v) const { return assign_[v] == 1; }

    const SatSolverStats &stats() const { return stats_; }

  private:
    // Clause storage: one flat arena; a clause ref is the offset of
    // its header. Layout: [size, lit0, lit1, ...]. The first two
    // literals are the watched pair.
    using ClauseRef = int32_t;
    static constexpr ClauseRef noClause = -1;

    int clauseSize(ClauseRef c) const { return arena_[c]; }
    SatLit clauseLit(ClauseRef c, int i) const
    {
        return SatLit{arena_[c + 1 + i]};
    }

    ClauseRef pushClause(const std::vector<SatLit> &lits);
    void watchClause(ClauseRef c);

    // Assignment plumbing. lbool encoding: -1 unset, 0 false, 1 true.
    int litValue(SatLit l) const
    {
        const int8_t a = assign_[l.var()];
        return a < 0 ? -1 : (a ^ static_cast<int8_t>(l.sign()));
    }
    void enqueue(SatLit l, ClauseRef reason);
    ClauseRef propagate();
    void analyze(ClauseRef conflict, std::vector<SatLit> &learnt,
                 int &backtrackLevel);
    void cancelUntil(int level);
    int decisionLevel() const
    {
        return static_cast<int>(trailLim_.size());
    }

    // VSIDS-lite: a max-heap over activities.
    void bump(SatVar v);
    void decayActivities();
    void heapInsert(SatVar v);
    SatVar heapPop();
    void heapUp(int i);
    void heapDown(int i);
    bool heapLess(SatVar a, SatVar b) const;

    bool ok_ = true;
    std::vector<int32_t> arena_;
    long numClauses_ = 0;
    /** watches_[lit.code]: clauses currently watching that literal. */
    std::vector<std::vector<ClauseRef>> watches_;
    std::vector<int8_t> assign_;  ///< -1 / 0 / 1 per var
    std::vector<int8_t> phase_;   ///< saved polarity (1 = true)
    std::vector<int> level_;      ///< decision level per assigned var
    std::vector<ClauseRef> reason_;
    std::vector<SatLit> trail_;
    std::vector<int> trailLim_;
    size_t qhead_ = 0;

    std::vector<double> activity_;
    double activityInc_ = 1.0;
    std::vector<SatVar> heap_;
    std::vector<int> heapPos_; ///< -1 = not in heap

    std::vector<uint8_t> seen_; ///< analyze() scratch
    SatSolverStats stats_;
};

} // namespace cams

#endif // CAMS_EXACT_SAT_HH
