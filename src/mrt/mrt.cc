#include "mrt/mrt.hh"

#include <algorithm>
#include <bit>

#include "support/logging.hh"

namespace cams
{

ResourceModel::ResourceModel(const MachineDesc &machine)
    : machine_(machine)
{
    machine_.validate();

    auto addPool = [&](int capacity, const std::string &name) -> PoolId {
        cams_assert(capacity > 0, "pool '", name, "' with capacity 0");
        capacity_.push_back(capacity);
        names_.push_back(name);
        return static_cast<PoolId>(capacity_.size() - 1);
    };

    for (ClusterId c = 0; c < machine_.numClusters(); ++c) {
        const ClusterDesc &cluster = machine_.cluster(c);
        std::array<PoolId, numFuClasses> pools;
        pools.fill(invalidPool);
        if (cluster.usesGpPool()) {
            const PoolId gp =
                addPool(cluster.gpUnits, "gp@" + std::to_string(c));
            pools.fill(gp);
        } else {
            for (int cls = 0; cls < numFuClasses; ++cls) {
                if (cluster.fsUnits[cls] > 0) {
                    pools[cls] = addPool(
                        cluster.fsUnits[cls],
                        fuClassName(static_cast<FuClass>(cls)) + "@" +
                            std::to_string(c));
                }
            }
        }
        fuPools_.push_back(pools);

        readPools_.push_back(
            cluster.readPorts > 0
                ? addPool(cluster.readPorts, "rd@" + std::to_string(c))
                : invalidPool);
        writePools_.push_back(
            cluster.writePorts > 0
                ? addPool(cluster.writePorts, "wr@" + std::to_string(c))
                : invalidPool);
    }

    if (machine_.interconnect == InterconnectKind::Bus &&
        machine_.numBuses > 0) {
        busPool_ = addPool(machine_.numBuses, "bus");
    }
    for (size_t i = 0; i < machine_.links.size(); ++i) {
        linkPools_.push_back(
            addPool(1, "link" + std::to_string(machine_.links[i].a) + "-" +
                           std::to_string(machine_.links[i].b)));
    }
}

int
ResourceModel::capacity(PoolId pool) const
{
    cams_assert(pool >= 0 && pool < numPools(), "bad pool ", pool);
    return capacity_[pool];
}

PoolId
ResourceModel::fuPool(ClusterId cluster, FuClass cls) const
{
    cams_assert(cluster >= 0 && cluster < machine_.numClusters(),
                "bad cluster ", cluster);
    if (cls == FuClass::None)
        return invalidPool;
    return fuPools_[cluster][static_cast<int>(cls)];
}

PoolId
ResourceModel::readPool(ClusterId cluster) const
{
    cams_assert(cluster >= 0 && cluster < machine_.numClusters(),
                "bad cluster ", cluster);
    return readPools_[cluster];
}

PoolId
ResourceModel::writePool(ClusterId cluster) const
{
    cams_assert(cluster >= 0 && cluster < machine_.numClusters(),
                "bad cluster ", cluster);
    return writePools_[cluster];
}

PoolId
ResourceModel::linkPool(int link) const
{
    cams_assert(link >= 0 && link < static_cast<int>(linkPools_.size()),
                "bad link ", link);
    return linkPools_[link];
}

std::string
ResourceModel::poolName(PoolId pool) const
{
    cams_assert(pool >= 0 && pool < numPools(), "bad pool ", pool);
    return names_[pool];
}

std::vector<PoolId>
ResourceModel::opRequest(ClusterId cluster, Opcode op) const
{
    cams_assert(op != Opcode::Copy,
                "copies are requested via copyRequest()");
    const PoolId pool = fuPool(cluster, opcodeFuClass(op));
    if (pool == invalidPool) {
        cams_fatal("cluster ", cluster, " of machine '", machine_.name,
                   "' cannot execute ", opcodeName(op));
    }
    return {pool};
}

std::vector<PoolId>
ResourceModel::copyRequest(ClusterId src,
                           const std::vector<ClusterId> &dsts) const
{
    cams_assert(!dsts.empty(), "copy with no destination");
    std::vector<PoolId> pools;
    pools.reserve(2 + dsts.size());

    const PoolId read = readPool(src);
    if (read == invalidPool) {
        cams_fatal("cluster ", src, " of machine '", machine_.name,
                   "' has no read ports; cannot source a copy");
    }
    pools.push_back(read);

    if (machine_.interconnect == InterconnectKind::Bus) {
        cams_assert(busPool_ != invalidPool,
                    "copy on a machine without buses");
        pools.push_back(busPool_);
    } else {
        cams_assert(dsts.size() == 1,
                    "point-to-point copies have one destination");
        const int link = machine_.linkBetween(src, dsts[0]);
        cams_assert(link >= 0, "no link between clusters ", src, " and ",
                    dsts[0]);
        pools.push_back(linkPool(link));
    }

    for (ClusterId dst : dsts) {
        cams_assert(dst != src, "copy to the source cluster");
        const PoolId write = writePool(dst);
        if (write == invalidPool) {
            cams_fatal("cluster ", dst, " of machine '", machine_.name,
                       "' has no write ports; cannot receive a copy");
        }
        pools.push_back(write);
    }
    return pools;
}

namespace
{

/** Requests are tiny (one FU pool, or ports + bus/link), so a
 *  quadratic duplicate test beats anything with allocation. */
bool
hasDuplicatePool(const std::vector<PoolId> &pools)
{
    for (size_t i = 1; i < pools.size(); ++i) {
        for (size_t j = 0; j < i; ++j) {
            if (pools[j] == pools[i])
                return true;
        }
    }
    return false;
}

} // namespace

Mrt::Mrt(const ResourceModel &model, int ii, MrtScanMode mode)
    : mode_(mode)
{
    reset(model, ii);
}

void
Mrt::reset(const ResourceModel &model, int ii)
{
    model_ = &model;
    ii_ = 0; // force the rebuild even at an unchanged length
    reset(ii);
}

void
Mrt::reset(int ii)
{
    cams_assert(model_ != nullptr, "reset of an unbound MRT");
    cams_assert(ii >= 1, "MRT with ii ", ii);
    ii_ = ii;
    words_ = (ii + 63) / 64;
    use_.assign(static_cast<size_t>(model_->numPools()) * ii, 0);
    usedTotal_.assign(model_->numPools(), 0);
    // Every row starts free; bits past row ii-1 stay zero so word
    // scans never propose a row outside the table.
    freeRows_.assign(static_cast<size_t>(model_->numPools()) * words_,
                     ~uint64_t{0});
    const int tail = ii % 64;
    if (tail != 0) {
        const uint64_t last = (uint64_t{1} << tail) - 1;
        for (PoolId pool = 0; pool < model_->numPools(); ++pool)
            freeRows_[static_cast<size_t>(pool) * words_ + words_ - 1] =
                last;
    }
    mask_.assign(words_, 0);
}

bool
Mrt::fitsExactly(const std::vector<PoolId> &pools, int row) const
{
    for (size_t i = 0; i < pools.size(); ++i) {
        const PoolId pool = pools[i];
        // Count multiplicity of this pool within the request.
        int need = 0;
        for (size_t j = 0; j <= i; ++j) {
            if (pools[j] == pool)
                ++need;
        }
        if (use_[static_cast<size_t>(pool) * ii_ + row] + need >
            model_->capacity(pool)) {
            return false;
        }
    }
    return true;
}

bool
Mrt::canReserveAt(const std::vector<PoolId> &pools, int row) const
{
    cams_assert(row >= 0 && row < ii_, "bad row ", row);
    if (mode_ == MrtScanMode::Reference)
        return fitsExactly(pools, row);
    const size_t word = static_cast<size_t>(row) >> 6;
    const uint64_t bit = uint64_t{1} << (row & 63);
    for (PoolId pool : pools) {
        ++wordScans_;
        if (!(freeRows_[static_cast<size_t>(pool) * words_ + word] &
              bit)) {
            return false;
        }
    }
    // The bits prove one free slot per distinct pool; a request
    // naming the same pool twice still needs the exact count.
    return !hasDuplicatePool(pools) || fitsExactly(pools, row);
}

void
Mrt::combineMasks(const std::vector<PoolId> &pools) const
{
    mask_.assign(words_, ~uint64_t{0});
    for (PoolId pool : pools) {
        const size_t base = static_cast<size_t>(pool) * words_;
        for (int w = 0; w < words_; ++w)
            mask_[w] &= freeRows_[base + w];
    }
    wordScans_ += static_cast<long>(pools.size()) * words_;
}

int
Mrt::findRow(const std::vector<PoolId> &pools) const
{
    if (mode_ == MrtScanMode::Reference) {
        for (int row = 0; row < ii_; ++row) {
            if (fitsExactly(pools, row))
                return row;
        }
        return -1;
    }
    // A single-pool request (the common case: one FU slot) needs no
    // combining -- the pool's own free-row mask is the answer.
    const uint64_t *mask;
    if (pools.size() == 1) {
        mask = freeRows_.data() +
               static_cast<size_t>(pools[0]) * words_;
    } else {
        combineMasks(pools);
        mask = mask_.data();
    }
    const bool verify = hasDuplicatePool(pools);
    for (int w = 0; w < words_; ++w) {
        ++wordScans_;
        uint64_t word = mask[w];
        while (word != 0) {
            const int row = w * 64 + std::countr_zero(word);
            if (!verify || fitsExactly(pools, row))
                return row;
            word &= word - 1;
        }
    }
    return -1;
}

int
Mrt::scanRows(const std::vector<PoolId> &pools, int startRow, int count,
              int step) const
{
    cams_assert(startRow >= 0 && startRow < ii_, "bad row ", startRow);
    cams_assert(step == 1 || step == -1, "bad scan step ", step);
    if (mode_ == MrtScanMode::Reference) {
        int row = startRow;
        for (int skipped = 0; skipped < count; ++skipped) {
            if (fitsExactly(pools, row))
                return skipped;
            row = (row + step + ii_) % ii_;
        }
        return -1;
    }
    const uint64_t *mask;
    if (pools.size() == 1) {
        mask = freeRows_.data() +
               static_cast<size_t>(pools[0]) * words_;
    } else {
        combineMasks(pools);
        mask = mask_.data();
    }
    const bool verify = hasDuplicatePool(pools);
    int row = startRow;
    int skipped = 0;
    while (skipped < count) {
        const int w = row >> 6;
        ++wordScans_;
        if (mask[w] == 0) {
            // Whole word full: hop to its edge in the scan direction
            // (never past row ii-1, whose successor starts word 0).
            const int hop = std::min(
                count - skipped,
                step > 0 ? std::min(64 - (row & 63), ii_ - row)
                         : (row & 63) + 1);
            skipped += hop;
            row = (row + step * hop + ii_ * hop) % ii_;
            continue;
        }
        if ((mask[w] >> (row & 63)) & 1) {
            if (!verify || fitsExactly(pools, row))
                return skipped;
        }
        ++skipped;
        row = (row + step + ii_) % ii_;
    }
    return -1;
}

void
Mrt::reserveAtInto(const std::vector<PoolId> &pools, int row,
                   Reservation &out)
{
    const int wrapped = ((row % ii_) + ii_) % ii_;
    cams_assert(fitsExactly(pools, wrapped),
                "reserveAt on a full row ", wrapped);
    for (PoolId pool : pools) {
        const int used =
            ++use_[static_cast<size_t>(pool) * ii_ + wrapped];
        ++usedTotal_[pool];
        if (used == model_->capacity(pool)) {
            freeRows_[static_cast<size_t>(pool) * words_ +
                      (wrapped >> 6)] &=
                ~(uint64_t{1} << (wrapped & 63));
        }
    }
    out.row = wrapped;
    // Copy-assign so a reused Reservation keeps its capacity.
    out.pools = pools;
}

Reservation
Mrt::reserveAt(const std::vector<PoolId> &pools, int row)
{
    Reservation reservation;
    reserveAtInto(pools, row, reservation);
    return reservation;
}

std::optional<Reservation>
Mrt::reserve(const std::vector<PoolId> &pools)
{
    const int row = findRow(pools);
    if (row < 0)
        return std::nullopt;
    return reserveAt(pools, row);
}

void
Mrt::release(const Reservation &reservation)
{
    cams_assert(reservation.valid(), "releasing an invalid reservation");
    for (PoolId pool : reservation.pools) {
        int &slot =
            use_[static_cast<size_t>(pool) * ii_ + reservation.row];
        cams_assert(slot > 0, "double release of pool ",
                    model_->poolName(pool));
        --slot;
        --usedTotal_[pool];
        freeRows_[static_cast<size_t>(pool) * words_ +
                  (reservation.row >> 6)] |=
            uint64_t{1} << (reservation.row & 63);
    }
}

int
Mrt::freeInRow(PoolId pool, int row) const
{
    cams_assert(row >= 0 && row < ii_, "bad row ", row);
    return model_->capacity(pool) -
           use_[static_cast<size_t>(pool) * ii_ + row];
}

int
Mrt::freeTotal(PoolId pool) const
{
    return model_->capacity(pool) * ii_ - usedTotal_[pool];
}

std::string
Mrt::dump() const
{
    std::string out = "MRT II=" + std::to_string(ii_) + "\n";
    for (PoolId pool = 0; pool < model_->numPools(); ++pool) {
        std::string line = "  " + model_->poolName(pool);
        while (line.size() < 14)
            line.push_back(' ');
        for (int row = 0; row < ii_; ++row) {
            line += " " +
                    std::to_string(
                        use_[static_cast<size_t>(pool) * ii_ + row]) +
                    "/" + std::to_string(model_->capacity(pool));
        }
        out += line + "\n";
    }
    return out;
}

int
Mrt::usedTotal(PoolId pool) const
{
    cams_assert(pool >= 0 && pool < model_->numPools(), "bad pool ",
                pool);
    return usedTotal_[pool];
}

} // namespace cams
