#include "mrt/mrt.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cams
{

ResourceModel::ResourceModel(const MachineDesc &machine)
    : machine_(machine)
{
    machine_.validate();

    auto addPool = [&](int capacity, const std::string &name) -> PoolId {
        cams_assert(capacity > 0, "pool '", name, "' with capacity 0");
        capacity_.push_back(capacity);
        names_.push_back(name);
        return static_cast<PoolId>(capacity_.size() - 1);
    };

    for (ClusterId c = 0; c < machine_.numClusters(); ++c) {
        const ClusterDesc &cluster = machine_.cluster(c);
        std::array<PoolId, numFuClasses> pools;
        pools.fill(invalidPool);
        if (cluster.usesGpPool()) {
            const PoolId gp =
                addPool(cluster.gpUnits, "gp@" + std::to_string(c));
            pools.fill(gp);
        } else {
            for (int cls = 0; cls < numFuClasses; ++cls) {
                if (cluster.fsUnits[cls] > 0) {
                    pools[cls] = addPool(
                        cluster.fsUnits[cls],
                        fuClassName(static_cast<FuClass>(cls)) + "@" +
                            std::to_string(c));
                }
            }
        }
        fuPools_.push_back(pools);

        readPools_.push_back(
            cluster.readPorts > 0
                ? addPool(cluster.readPorts, "rd@" + std::to_string(c))
                : invalidPool);
        writePools_.push_back(
            cluster.writePorts > 0
                ? addPool(cluster.writePorts, "wr@" + std::to_string(c))
                : invalidPool);
    }

    if (machine_.interconnect == InterconnectKind::Bus &&
        machine_.numBuses > 0) {
        busPool_ = addPool(machine_.numBuses, "bus");
    }
    for (size_t i = 0; i < machine_.links.size(); ++i) {
        linkPools_.push_back(
            addPool(1, "link" + std::to_string(machine_.links[i].a) + "-" +
                           std::to_string(machine_.links[i].b)));
    }
}

int
ResourceModel::capacity(PoolId pool) const
{
    cams_assert(pool >= 0 && pool < numPools(), "bad pool ", pool);
    return capacity_[pool];
}

PoolId
ResourceModel::fuPool(ClusterId cluster, FuClass cls) const
{
    cams_assert(cluster >= 0 && cluster < machine_.numClusters(),
                "bad cluster ", cluster);
    if (cls == FuClass::None)
        return invalidPool;
    return fuPools_[cluster][static_cast<int>(cls)];
}

PoolId
ResourceModel::readPool(ClusterId cluster) const
{
    cams_assert(cluster >= 0 && cluster < machine_.numClusters(),
                "bad cluster ", cluster);
    return readPools_[cluster];
}

PoolId
ResourceModel::writePool(ClusterId cluster) const
{
    cams_assert(cluster >= 0 && cluster < machine_.numClusters(),
                "bad cluster ", cluster);
    return writePools_[cluster];
}

PoolId
ResourceModel::linkPool(int link) const
{
    cams_assert(link >= 0 && link < static_cast<int>(linkPools_.size()),
                "bad link ", link);
    return linkPools_[link];
}

std::string
ResourceModel::poolName(PoolId pool) const
{
    cams_assert(pool >= 0 && pool < numPools(), "bad pool ", pool);
    return names_[pool];
}

std::vector<PoolId>
ResourceModel::opRequest(ClusterId cluster, Opcode op) const
{
    cams_assert(op != Opcode::Copy,
                "copies are requested via copyRequest()");
    const PoolId pool = fuPool(cluster, opcodeFuClass(op));
    if (pool == invalidPool) {
        cams_fatal("cluster ", cluster, " of machine '", machine_.name,
                   "' cannot execute ", opcodeName(op));
    }
    return {pool};
}

std::vector<PoolId>
ResourceModel::copyRequest(ClusterId src,
                           const std::vector<ClusterId> &dsts) const
{
    cams_assert(!dsts.empty(), "copy with no destination");
    std::vector<PoolId> pools;

    const PoolId read = readPool(src);
    if (read == invalidPool) {
        cams_fatal("cluster ", src, " of machine '", machine_.name,
                   "' has no read ports; cannot source a copy");
    }
    pools.push_back(read);

    if (machine_.interconnect == InterconnectKind::Bus) {
        cams_assert(busPool_ != invalidPool,
                    "copy on a machine without buses");
        pools.push_back(busPool_);
    } else {
        cams_assert(dsts.size() == 1,
                    "point-to-point copies have one destination");
        const int link = machine_.linkBetween(src, dsts[0]);
        cams_assert(link >= 0, "no link between clusters ", src, " and ",
                    dsts[0]);
        pools.push_back(linkPool(link));
    }

    for (ClusterId dst : dsts) {
        cams_assert(dst != src, "copy to the source cluster");
        const PoolId write = writePool(dst);
        if (write == invalidPool) {
            cams_fatal("cluster ", dst, " of machine '", machine_.name,
                       "' has no write ports; cannot receive a copy");
        }
        pools.push_back(write);
    }
    return pools;
}

Mrt::Mrt(const ResourceModel &model, int ii)
    : model_(&model), ii_(ii)
{
    cams_assert(ii >= 1, "MRT with ii ", ii);
    use_.assign(static_cast<size_t>(model.numPools()) * ii, 0);
    usedTotal_.assign(model.numPools(), 0);
}

bool
Mrt::canReserveAt(const std::vector<PoolId> &pools, int row) const
{
    cams_assert(row >= 0 && row < ii_, "bad row ", row);
    for (size_t i = 0; i < pools.size(); ++i) {
        const PoolId pool = pools[i];
        // Count multiplicity of this pool within the request.
        int need = 0;
        for (size_t j = 0; j <= i; ++j) {
            if (pools[j] == pool)
                ++need;
        }
        if (use_[static_cast<size_t>(pool) * ii_ + row] + need >
            model_->capacity(pool)) {
            return false;
        }
    }
    return true;
}

int
Mrt::findRow(const std::vector<PoolId> &pools) const
{
    for (int row = 0; row < ii_; ++row) {
        if (canReserveAt(pools, row))
            return row;
    }
    return -1;
}

Reservation
Mrt::reserveAt(const std::vector<PoolId> &pools, int row)
{
    const int wrapped = ((row % ii_) + ii_) % ii_;
    cams_assert(canReserveAt(pools, wrapped),
                "reserveAt on a full row ", wrapped);
    for (PoolId pool : pools) {
        ++use_[static_cast<size_t>(pool) * ii_ + wrapped];
        ++usedTotal_[pool];
    }
    Reservation reservation;
    reservation.row = wrapped;
    reservation.pools = pools;
    return reservation;
}

std::optional<Reservation>
Mrt::reserve(const std::vector<PoolId> &pools)
{
    const int row = findRow(pools);
    if (row < 0)
        return std::nullopt;
    return reserveAt(pools, row);
}

void
Mrt::release(const Reservation &reservation)
{
    cams_assert(reservation.valid(), "releasing an invalid reservation");
    for (PoolId pool : reservation.pools) {
        int &slot =
            use_[static_cast<size_t>(pool) * ii_ + reservation.row];
        cams_assert(slot > 0, "double release of pool ",
                    model_->poolName(pool));
        --slot;
        --usedTotal_[pool];
    }
}

int
Mrt::freeInRow(PoolId pool, int row) const
{
    cams_assert(row >= 0 && row < ii_, "bad row ", row);
    return model_->capacity(pool) -
           use_[static_cast<size_t>(pool) * ii_ + row];
}

int
Mrt::freeTotal(PoolId pool) const
{
    return model_->capacity(pool) * ii_ - usedTotal_[pool];
}

std::string
Mrt::dump() const
{
    std::string out = "MRT II=" + std::to_string(ii_) + "\n";
    for (PoolId pool = 0; pool < model_->numPools(); ++pool) {
        std::string line = "  " + model_->poolName(pool);
        while (line.size() < 14)
            line.push_back(' ');
        for (int row = 0; row < ii_; ++row) {
            line += " " +
                    std::to_string(
                        use_[static_cast<size_t>(pool) * ii_ + row]) +
                    "/" + std::to_string(model_->capacity(pool));
        }
        out += line + "\n";
    }
    return out;
}

int
Mrt::usedTotal(PoolId pool) const
{
    cams_assert(pool >= 0 && pool < model_->numPools(), "bad pool ",
                pool);
    return usedTotal_[pool];
}

} // namespace cams
