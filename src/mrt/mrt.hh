/**
 * @file
 * The modulo reservation table (MRT) and the resource model that
 * drives it.
 *
 * Following the paper's Section 2.2, each cluster owns an MRT of II
 * rows over its local resources (function-unit pools and bus/link
 * ports) while global resources -- the broadcast buses, or each
 * point-to-point link -- appear in every cluster's table. We realize
 * this as a single table over a flat set of resource pools; a pool is
 * either local to a cluster or global, and a reservation claims one
 * slot in each requested pool within the same row.
 *
 * The same table serves both phases:
 *  - cluster assignment reserves "some row" (first fit), modeling the
 *    paper's slot packing without committing to a cycle;
 *  - modulo scheduling reserves at row = cycle mod II.
 *
 * Occupancy is tracked twice: exact per-row slot counts, plus one
 * free-row bitmask per pool (bit r set while row r still has a free
 * slot) packed into uint64_t words. Word mode answers canReserveAt
 * with one bit test per requested pool and drives the first-fit and
 * window scans by AND-ing pool masks; Reference mode keeps the
 * original row-by-row counting loops for A/B comparison and as the
 * oracle in tests. Both modes visit candidate rows in the same order,
 * so every caller sees identical results.
 */

#ifndef CAMS_MRT_MRT_HH
#define CAMS_MRT_MRT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/opcode.hh"
#include "machine/machine.hh"

namespace cams
{

/** Index of a resource pool within a ResourceModel. */
using PoolId = int;

/** Sentinel for "no pool". */
constexpr PoolId invalidPool = -1;

/** Flattens a machine description into per-cycle resource pools. */
class ResourceModel
{
  public:
    /** Builds the pool layout for a machine. */
    explicit ResourceModel(const MachineDesc &machine);

    /** Number of pools. */
    int numPools() const { return static_cast<int>(capacity_.size()); }

    /** Units of a pool available in each cycle. */
    int capacity(PoolId pool) const;

    /**
     * Function-unit pool executing the given class on a cluster;
     * invalidPool when the cluster has no such units (or for
     * FuClass::None, since copies use no function unit).
     */
    PoolId fuPool(ClusterId cluster, FuClass cls) const;

    /** Interconnect read-port pool of a cluster (invalidPool if 0). */
    PoolId readPool(ClusterId cluster) const;

    /** Interconnect write-port pool of a cluster (invalidPool if 0). */
    PoolId writePool(ClusterId cluster) const;

    /** The shared bus pool; invalidPool on point-to-point machines. */
    PoolId busPool() const { return busPool_; }

    /** Pool of one point-to-point link. */
    PoolId linkPool(int link) const;

    /** Human-readable pool name for diagnostics. */
    std::string poolName(PoolId pool) const;

    /** The machine this model was derived from. */
    const MachineDesc &machine() const { return machine_; }

    /**
     * The resource pools one operation instance needs (all in the same
     * cycle). For a non-copy opcode: its function-unit pool. Fatal when
     * the cluster cannot execute the opcode.
     */
    std::vector<PoolId> opRequest(ClusterId cluster, Opcode op) const;

    /**
     * The pools a copy transfer needs: one read port on the source,
     * the bus (or the link), and one write port on each destination.
     * On point-to-point machines the destination set must be a single
     * neighbor of the source.
     */
    std::vector<PoolId> copyRequest(
        ClusterId src, const std::vector<ClusterId> &dsts) const;

  private:
    MachineDesc machine_;
    std::vector<int> capacity_;
    std::vector<std::string> names_;
    // Per cluster: pool per FuClass (GP clusters alias all three).
    std::vector<std::array<PoolId, numFuClasses>> fuPools_;
    std::vector<PoolId> readPools_;
    std::vector<PoolId> writePools_;
    PoolId busPool_ = invalidPool;
    std::vector<PoolId> linkPools_;
};

/** A committed MRT reservation; keep it to release the slots later. */
struct Reservation
{
    int row = -1;
    std::vector<PoolId> pools;

    bool valid() const { return row >= 0; }
};

/** How the MRT answers occupancy queries (results are identical). */
enum class MrtScanMode
{
    /** Packed free-row bitmasks; bit tests and word scans. */
    Word,
    /** The original row-by-row counting loops (A/B oracle). */
    Reference,
};

/** Modulo reservation table over a ResourceModel at a fixed II. */
class Mrt
{
  public:
    /** An unbound table; reset(model, ii) before first use. */
    Mrt() = default;

    /** Creates an empty table of the given length. */
    Mrt(const ResourceModel &model, int ii,
        MrtScanMode mode = MrtScanMode::Word);

    /**
     * Rebinds the table to a model and length, clearing every slot.
     * Reuses the occupancy buffers, so escalating II probes avoid
     * reallocation; the cumulative wordScans() counter survives.
     */
    void reset(const ResourceModel &model, int ii);

    /** Clears the table at a new length, keeping the current model. */
    void reset(int ii);

    /** Table length. */
    int ii() const { return ii_; }

    /** Selects the query implementation (state is left untouched). */
    void setScanMode(MrtScanMode mode) { mode_ = mode; }

    MrtScanMode scanMode() const { return mode_; }

    /** Occupancy words examined by word-mode queries so far. */
    long wordScans() const { return wordScans_; }

    /** True when every requested pool has a free slot in this row. */
    bool canReserveAt(const std::vector<PoolId> &pools, int row) const;

    /** First row that can host the request, or -1. */
    int findRow(const std::vector<PoolId> &pools) const;

    /**
     * First-fit over the cyclic row sequence startRow, startRow +
     * step, ... (step is +1 or -1, rows taken modulo II): returns the
     * number of rows skipped before the first one that can host the
     * request, or -1 when none of the `count` rows fits. This is the
     * schedulers' slot-window scan as one word-level operation.
     */
    int scanRows(const std::vector<PoolId> &pools, int startRow,
                 int count, int step) const;

    /** Reserves at a specific row (row is taken modulo II). */
    Reservation reserveAt(const std::vector<PoolId> &pools, int row);

    /** Same, writing into an existing Reservation so hot callers can
     *  reuse its pools capacity instead of allocating per placement. */
    void reserveAtInto(const std::vector<PoolId> &pools, int row,
                       Reservation &out);

    /** Reserves at the first fitting row; nullopt when full. */
    std::optional<Reservation> reserve(const std::vector<PoolId> &pools);

    /** Releases a reservation made on this table. */
    void release(const Reservation &reservation);

    /** Free slots of a pool in one row. */
    int freeInRow(PoolId pool, int row) const;

    /** Free slots of a pool across all rows. */
    int freeTotal(PoolId pool) const;

    /** Used slots of a pool across all rows. */
    int usedTotal(PoolId pool) const;

    /** The resource model the table was built from. */
    const ResourceModel &model() const { return *model_; }

    /**
     * Human-readable occupancy table (one line per pool, one column
     * per row), for diagnostics and traces.
     */
    std::string dump() const;

  private:
    /** The exact (Reference) admission test; canReserveAt's oracle. */
    bool fitsExactly(const std::vector<PoolId> &pools, int row) const;

    /** AND of the requested pools' free-row masks, into mask_. */
    void combineMasks(const std::vector<PoolId> &pools) const;

    const ResourceModel *model_ = nullptr;
    int ii_ = 0;
    /** Words per free-row bitmask: ceil(ii / 64). */
    int words_ = 0;
    MrtScanMode mode_ = MrtScanMode::Word;
    /** use_[pool * ii_ + row] = slots taken. */
    std::vector<int> use_;
    std::vector<int> usedTotal_;
    /** freeRows_[pool * words_ + w]: bit r set = row 64w+r has room. */
    std::vector<uint64_t> freeRows_;
    /** Scratch for combineMasks (the MRT is single-threaded). */
    mutable std::vector<uint64_t> mask_;
    mutable long wordScans_ = 0;
};

} // namespace cams

#endif // CAMS_MRT_MRT_HH
