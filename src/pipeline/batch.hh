/**
 * @file
 * The parallel batch-compilation engine.
 *
 * Every paper figure compiles hundreds of loop x machine x variant
 * pairs that are completely independent of one another, so the batch
 * layer fans CompileJobs across a fixed ThreadPool and collects the
 * CompileResults back **in input order**, regardless of the thread
 * count. Each job runs the ordinary single-threaded compile path
 * (compileClustered / compileUnified), which makes the results
 * bit-identical to a serial loop -- a property the tests assert.
 *
 * Alongside the results the engine records per-job wall time and
 * aggregates the pipeline's per-phase counters (II attempts, failed
 * assignment retries, evictions) into a BatchStats summary that the
 * experiment binaries publish for PR-over-PR tracking.
 *
 * Robustness: one pathological job must not wedge or kill a suite. A
 * job that throws (anything, not just InternalError -- bad_alloc,
 * logic errors) is captured into its own CompileResult as a
 * classified FailureKind::InternalInvariant failure instead of
 * propagating out of the pool, and an optional per-job deadline is
 * stamped into every job's CompileOptions so runaway searches time
 * out individually. Failed jobs are tallied per FailureKind.
 */

#ifndef CAMS_PIPELINE_BATCH_HH
#define CAMS_PIPELINE_BATCH_HH

#include <array>
#include <string>
#include <vector>

#include "support/fault.hh"
#include "support/metrics.hh"

#include "machine/machine.hh"
#include "pipeline/driver.hh"

namespace cams
{

/** One independent unit of batch work: compile one loop for one
 *  machine. Pointees must outlive the BatchRunner::run call. */
struct CompileJob
{
    const Dfg *loop = nullptr;
    const MachineDesc *machine = nullptr;
    CompileOptions options;

    /** False compiles the unified baseline path instead. */
    bool clustered = true;
};

/** Aggregate accounting of one batch run. */
struct BatchStats
{
    int jobs = 0;
    int succeeded = 0;
    int failed = 0;

    /** Worker threads the batch ran on. */
    int threads = 1;

    /** Wall-clock time of the whole batch, milliseconds. */
    double wallMillis = 0.0;

    /** Sum of per-job wall times (the serial-equivalent cost). */
    double cpuMillis = 0.0;

    /** Total II values tried across all jobs. */
    long iiAttempts = 0;

    /** II attempts whose cluster assignment failed. */
    long assignRetries = 0;

    /** Evictions performed by the assignment iteration. */
    long evictions = 0;

    /** Copy operations inserted across all successful jobs. */
    long copies = 0;

    /** Failed jobs per failure classification, FailureKind order. */
    std::array<long, numFailureKinds> failuresByKind{};

    /** Successes rescued by the driver's degradation ladder. */
    int degraded = 0;

    /** Jobs whose compile threw and was captured by the runner. */
    int capturedExceptions = 0;

    /** cams_check invariant violations recovered across all jobs. */
    long invariantRecoveries = 0;

    /** Verifier rejections absorbed mid-search across all jobs. */
    long verifierRejects = 0;

    /** Injected faults that fired across all jobs. */
    long faultTrips = 0;

    /** LoopContext queries answered from cache across all jobs. */
    long ctxHits = 0;

    /** LoopContext facts computed fresh across all jobs. */
    long ctxMisses = 0;

    /** MRT occupancy words examined by word-mode scans. */
    long mrtWordScans = 0;

    /** Jobs served whole from the persistent compile cache. */
    long cacheHits = 0;

    /** Jobs that probed the cache and compiled cold. */
    long cacheMisses = 0;

    /** Jobs whose warm-start hint satisfied the search. */
    long hintUsed = 0;

    /** Jobs whose hint probe failed and fell back to the cold path. */
    long hintStale = 0;

    /** Exact-arm outcomes (exact and race backends; see exact.hh). */
    long exactSat = 0;         ///< exact schedule became the result
    long exactUnsat = 0;       ///< heuristic II certified optimal
    long exactTimeout = 0;     ///< exact budget died before an answer
    long exactUnsupported = 0; ///< loop/machine outside the encoding
    long exactTightened = 0;   ///< race arm beat the heuristic II
    long exactCertified = 0;   ///< race arm certified the heuristic II

    /**
     * Metrics snapshot of this run (MetricsRegistry::toJson of the
     * run's internal registry: ii_slack and friends). Embedded in
     * toJson() under "metrics" when non-empty.
     */
    std::string metricsJson;

    /** One-line JSON rendering for machine-readable logs. */
    std::string toJson() const;
};

/** Everything a batch run produces, results in input order. */
struct BatchOutcome
{
    std::vector<CompileResult> results;

    /** Wall time of each job, milliseconds, input order. */
    std::vector<double> jobMillis;

    BatchStats stats;
};

/** Fans CompileJobs over a worker pool. */
class BatchRunner
{
  public:
    /**
     * Runs every job and returns outcomes in input order.
     *
     * @param threads worker count (clamped to at least 1). The
     *        compile path stays single-threaded per job, so the
     *        results are identical for every thread count.
     * @param jobDeadlineMs per-job wall-clock budget applied to every
     *        job that does not already carry one
     *        (CompileOptions::timeBudgetMs); 0 applies none.
     * @param metrics optional registry that additionally receives
     *        every record of this run, for aggregation across several
     *        batches (suite mode runs unified + clustered). The
     *        BatchStats snapshot always comes from a fresh internal
     *        registry, so per-run numbers never mix.
     *
     * Metrics recorded per run: counter jobs_succeeded/jobs_failed/
     * jobs_degraded; histograms job_ms and assign_ms over all jobs,
     * ii_slack (achieved II - MII) over non-degraded successes, and
     * final_ii_tried over failures.
     *
     * A compile that throws is captured as that job's classified
     * FailureKind::InternalInvariant result; the other jobs are
     * unaffected. A malformed job (null loop or machine) is a harness
     * bug and still throws std::invalid_argument after the rest of
     * the batch finished; the pool itself never deadlocks on a
     * throwing job.
     */
    static BatchOutcome run(const std::vector<CompileJob> &jobs,
                            int threads, double jobDeadlineMs = 0.0,
                            MetricsRegistry *metrics = nullptr);
};

/** Builds one clustered job per suite loop on the given machine. */
std::vector<CompileJob> clusteredJobs(const std::vector<Dfg> &suite,
                                      const MachineDesc &machine,
                                      const CompileOptions &options = {});

/** Builds one unified-baseline job per suite loop. */
std::vector<CompileJob> unifiedJobs(const std::vector<Dfg> &suite,
                                    const MachineDesc &unified,
                                    const CompileOptions &options = {});

} // namespace cams

#endif // CAMS_PIPELINE_BATCH_HH
