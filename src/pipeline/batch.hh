/**
 * @file
 * The parallel batch-compilation engine.
 *
 * Every paper figure compiles hundreds of loop x machine x variant
 * pairs that are completely independent of one another, so the batch
 * layer fans CompileJobs across a fixed ThreadPool and collects the
 * CompileResults back **in input order**, regardless of the thread
 * count. Each job runs the ordinary single-threaded compile path
 * (compileClustered / compileUnified), which makes the results
 * bit-identical to a serial loop -- a property the tests assert.
 *
 * Alongside the results the engine records per-job wall time and
 * aggregates the pipeline's per-phase counters (II attempts, failed
 * assignment retries, evictions) into a BatchStats summary that the
 * experiment binaries publish for PR-over-PR tracking.
 */

#ifndef CAMS_PIPELINE_BATCH_HH
#define CAMS_PIPELINE_BATCH_HH

#include <string>
#include <vector>

#include "machine/machine.hh"
#include "pipeline/driver.hh"

namespace cams
{

/** One independent unit of batch work: compile one loop for one
 *  machine. Pointees must outlive the BatchRunner::run call. */
struct CompileJob
{
    const Dfg *loop = nullptr;
    const MachineDesc *machine = nullptr;
    CompileOptions options;

    /** False compiles the unified baseline path instead. */
    bool clustered = true;
};

/** Aggregate accounting of one batch run. */
struct BatchStats
{
    int jobs = 0;
    int succeeded = 0;
    int failed = 0;

    /** Worker threads the batch ran on. */
    int threads = 1;

    /** Wall-clock time of the whole batch, milliseconds. */
    double wallMillis = 0.0;

    /** Sum of per-job wall times (the serial-equivalent cost). */
    double cpuMillis = 0.0;

    /** Total II values tried across all jobs. */
    long iiAttempts = 0;

    /** II attempts whose cluster assignment failed. */
    long assignRetries = 0;

    /** Evictions performed by the assignment iteration. */
    long evictions = 0;

    /** Copy operations inserted across all successful jobs. */
    long copies = 0;

    /** One-line JSON rendering for machine-readable logs. */
    std::string toJson() const;
};

/** Everything a batch run produces, results in input order. */
struct BatchOutcome
{
    std::vector<CompileResult> results;

    /** Wall time of each job, milliseconds, input order. */
    std::vector<double> jobMillis;

    BatchStats stats;
};

/** Fans CompileJobs over a worker pool. */
class BatchRunner
{
  public:
    /**
     * Runs every job and returns outcomes in input order.
     *
     * @param threads worker count (clamped to at least 1). The
     *        compile path stays single-threaded per job, so the
     *        results are identical for every thread count.
     *
     * A malformed job (null loop or machine) throws
     * std::invalid_argument after the rest of the batch finished; the
     * pool itself never deadlocks on a throwing job.
     */
    static BatchOutcome run(const std::vector<CompileJob> &jobs,
                            int threads);
};

/** Builds one clustered job per suite loop on the given machine. */
std::vector<CompileJob> clusteredJobs(const std::vector<Dfg> &suite,
                                      const MachineDesc &machine,
                                      const CompileOptions &options = {});

/** Builds one unified-baseline job per suite loop. */
std::vector<CompileJob> unifiedJobs(const std::vector<Dfg> &suite,
                                    const MachineDesc &unified,
                                    const CompileOptions &options = {});

} // namespace cams

#endif // CAMS_PIPELINE_BATCH_HH
