#include "pipeline/context.hh"

#include <algorithm>

#include "graph/recmii.hh"
#include "order/swing_order.hh"
#include "support/logging.hh"

namespace cams
{

LoopContext::LoopContext(const Dfg &graph)
    : graph_(&graph)
{
}

const SccInfo &
LoopContext::sccs()
{
    if (!sccs_) {
        ++misses_;
        sccs_.emplace(findSccs(*graph_));
    } else {
        ++hits_;
    }
    return *sccs_;
}

const Adjacency &
LoopContext::adjacency()
{
    if (!adjacency_) {
        ++misses_;
        adjacency_.emplace(*graph_);
    } else {
        ++hits_;
    }
    return *adjacency_;
}

const NodeSets &
LoopContext::prioritySets()
{
    if (!sets_) {
        ++misses_;
        sets_.emplace(buildPrioritySets(*graph_, sccs()));
    } else {
        ++hits_;
    }
    return *sets_;
}

int
LoopContext::recMii()
{
    if (!recMii_) {
        ++misses_;
        // The priority sets already paid the per-SCC binary searches;
        // the whole-graph RecMII is their max (trivial SCCs and the
        // trailing non-recurrence set contribute 1).
        const NodeSets &sets = prioritySets();
        int value = 1;
        for (int r : sets.recMii)
            value = std::max(value, r);
        recMii_ = value;
    } else {
        ++hits_;
    }
    return *recMii_;
}

bool
LoopContext::schedulableAt(int ii)
{
    if (recMii_)
        return *recMii_ <= ii;
    if (knownSchedulable_ >= 0 && ii >= knownSchedulable_) {
        ++hits_;
        return true;
    }
    if (knownInfeasible_ >= 0 && ii <= knownInfeasible_) {
        ++hits_;
        return false;
    }
    ++misses_;
    // One positive-cycle test per recurrence: equivalent to comparing
    // against RecMII (the predicate RecMII <= ii holds iff no SCC has
    // a positive cycle at ii) without the binary search.
    const SccInfo &info = sccs();
    bool feasible = true;
    for (int c = 0; c < info.numComponents(); ++c) {
        if (!info.nonTrivial[c])
            continue;
        if (hasPositiveCycle(*graph_, info.components[c], ii)) {
            feasible = false;
            break;
        }
    }
    if (feasible) {
        knownSchedulable_ = knownSchedulable_ < 0
                                ? ii
                                : std::min(knownSchedulable_, ii);
    } else {
        knownInfeasible_ = std::max(knownInfeasible_, ii);
    }
    return feasible;
}

const TimeAnalysis &
LoopContext::timing(int ii)
{
    if (!timingSolver_) {
        timingSolver_.emplace(*graph_);
    }
    const TimeAnalysis &result = timingSolver_->solve(ii);
    if (timingSolver_->lastWasHit())
        ++hits_;
    else
        ++misses_;
    return result;
}

const std::vector<NodeId> &
LoopContext::swingOrder(int ii)
{
    if (orderIi_ == ii) {
        ++hits_;
        return order_;
    }
    ++misses_;
    order_ = cams::swingOrder(*graph_, prioritySets(), timing(ii),
                              &adjacency());
    orderIi_ = ii;
    return order_;
}

const std::vector<std::vector<PoolId>> &
LoopContext::requests(const AnnotatedLoop &loop,
                      const ResourceModel &model)
{
    cams_assert(&loop.graph == graph_,
                "requests() for a foreign loop graph");
    if (requestsLoop_ == &loop && requestsModel_ == &model) {
        ++hits_;
        return requests_;
    }
    ++misses_;
    const int n = graph_->numNodes();
    requests_.assign(n, {});
    for (NodeId v = 0; v < n; ++v)
        requests_[v] = loop.request(model, v);
    requestsLoop_ = &loop;
    requestsModel_ = &model;
    return requests_;
}

void
LoopContext::checkAssignable(const MachineDesc &machine)
{
    if (assignableMachine_ == machine.name && !machine.name.empty()) {
        ++hits_;
        return;
    }
    ++misses_;
    std::string why;
    if (!graph_->wellFormed(&why))
        cams_fatal("assigning a malformed graph: ", why);
    for (const DfgNode &node : graph_->nodes()) {
        if (node.op == Opcode::Copy)
            cams_fatal("input graphs must not contain copies");
        if (!machine.canExecute(node.op)) {
            cams_fatal("machine '", machine.name, "' cannot execute ",
                       opcodeName(node.op));
        }
    }
    assignableMachine_ = machine.name;
}

Mrt &
LoopContext::scratchMrt(const ResourceModel &model, int ii)
{
    scratch_.reset(model, ii);
    return scratch_;
}

} // namespace cams
