#include "pipeline/degrade.hh"

#include <algorithm>
#include <set>
#include <vector>

namespace cams
{

std::optional<DegradedCompile>
degradeToSingleCluster(const Dfg &graph, const ResourceModel &model)
{
    const MachineDesc &machine = model.machine();
    const int n = graph.numNodes();
    if (n == 0)
        return std::nullopt;
    for (const DfgNode &node : graph.nodes()) {
        if (node.op == Opcode::Copy)
            return std::nullopt;
        if (machine.fuCount(0, opcodeFuClass(node.op)) == 0)
            return std::nullopt;
    }

    // Kahn topological order over the intra-iteration edges; the
    // smallest ready id goes first so the order is deterministic.
    std::vector<int> indegree(n, 0);
    for (const DfgEdge &edge : graph.edges()) {
        if (edge.distance != 0)
            continue;
        if (edge.src == edge.dst)
            return std::nullopt; // distance-0 self loop
        ++indegree[edge.dst];
    }
    std::set<NodeId> ready;
    for (NodeId v = 0; v < n; ++v) {
        if (indegree[v] == 0)
            ready.insert(v);
    }
    std::vector<NodeId> order;
    while (!ready.empty()) {
        const NodeId v = *ready.begin();
        ready.erase(ready.begin());
        order.push_back(v);
        for (EdgeId e : graph.outEdges(v)) {
            const DfgEdge &edge = graph.edge(e);
            if (edge.distance != 0 || edge.dst == v)
                continue;
            if (--indegree[edge.dst] == 0)
                ready.insert(edge.dst);
        }
    }
    if (static_cast<int>(order.size()) != n)
        return std::nullopt; // distance-0 cycle

    // One operation per cycle, dependences already in front of us.
    // Strictly increasing start cycles mean one op per kernel row.
    std::vector<int> start(n, 0);
    int prev = -1;
    for (NodeId v : order) {
        int at = prev + 1;
        for (EdgeId e : graph.inEdges(v)) {
            const DfgEdge &edge = graph.edge(e);
            if (edge.distance != 0)
                continue;
            at = std::max(at, start[edge.src] + edge.latency);
        }
        start[v] = at;
        prev = at;
    }

    // II large enough that every carried dependence (distance >= 1)
    // holds: start(dst) + II * dist >= start(src) + latency for any
    // pair once II > max start + max latency.
    int max_latency = 1;
    for (const DfgEdge &edge : graph.edges())
        max_latency = std::max(max_latency, edge.latency);

    DegradedCompile out;
    out.loop = unifiedLoop(graph);
    out.schedule.ii = prev + max_latency + 1;
    out.schedule.startCycle.assign(start.begin(), start.end());
    return out;
}

} // namespace cams
