/**
 * @file
 * The last rung of the driver's degradation ladder: a single-cluster,
 * fully serialized compile that needs no assignment search and no
 * modulo scheduler.
 *
 * Every operation is placed on cluster 0 (via unifiedLoop) and issued
 * in its own cycle, one per kernel row, in topological order of the
 * intra-iteration dependences. With II = last start + max latency + 1
 * every dependence -- loop-carried ones included -- holds by
 * construction, and each MRT row carries exactly one operation, so
 * any cluster with at least one unit per needed class fits. The
 * result is a terrible but *correct* schedule, which is the point:
 * when the real pipeline fails, the compile still ends in something
 * the verifier signs off on instead of nothing.
 */

#ifndef CAMS_PIPELINE_DEGRADE_HH
#define CAMS_PIPELINE_DEGRADE_HH

#include <optional>

#include "assign/assignment.hh"
#include "sched/schedule.hh"

namespace cams
{

/** A degraded (serialized, single-cluster) compile of one loop. */
struct DegradedCompile
{
    AnnotatedLoop loop;
    Schedule schedule;
};

/**
 * Serializes the loop onto cluster 0 of the machine.
 *
 * Returns nullopt when even this cannot work: the graph contains
 * copies already, cluster 0 lacks a unit class some operation needs,
 * or a distance-0 dependence cycle makes the graph unschedulable at
 * any II (a malformed input the caller should classify instead).
 */
std::optional<DegradedCompile>
degradeToSingleCluster(const Dfg &graph, const ResourceModel &model);

} // namespace cams

#endif // CAMS_PIPELINE_DEGRADE_HH
