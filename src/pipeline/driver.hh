/**
 * @file
 * End-to-end compilation drivers implementing the paper's Figure 5
 * process: compute the unified-machine MII, run cluster assignment at
 * the current II, hand the annotated loop to a cluster-oblivious
 * modulo scheduler, and on any failure restart the whole pipeline --
 * including a fresh assignment -- at II + 1.
 */

#ifndef CAMS_PIPELINE_DRIVER_HH
#define CAMS_PIPELINE_DRIVER_HH

#include <memory>

#include "assign/assigner.hh"
#include "machine/machine.hh"
#include "sched/mii.hh"
#include "sched/schedule.hh"

namespace cams
{

/** Which phase-two scheduler the driver uses. */
enum class SchedulerKind
{
    Swing,     ///< the paper's choice
    Iterative, ///< Rau's IMS (cross-check)
};

/** Driver knobs. */
struct CompileOptions
{
    AssignOptions assign;
    SchedulerKind scheduler = SchedulerKind::Swing;

    /**
     * Give up when II exceeds mii * 4 + this slack (a diagnostic
     * backstop; real loops converge long before).
     */
    int iiSlack = 64;

    /** Verify every produced schedule with the independent checker. */
    bool verify = true;
};

/** Outcome of compiling one loop for one machine. */
struct CompileResult
{
    bool success = false;

    /** Achieved initiation interval. */
    int ii = 0;

    /** The MII bounds the search started from. */
    MiiInfo mii;

    /** Annotated loop actually scheduled (copies included). */
    AnnotatedLoop loop;

    /** The final schedule. */
    Schedule schedule;

    /** Copies inserted by assignment. */
    int copies = 0;

    /** IIs tried before success (1 = first try). */
    int attempts = 0;

    /** II attempts whose cluster assignment failed outright. */
    int assignRetries = 0;

    /** Evictions performed by the §4.3 iteration, over all attempts. */
    int evictions = 0;
};

/** Creates a scheduler instance of the given kind. */
std::unique_ptr<ModuloScheduler> makeScheduler(SchedulerKind kind);

/**
 * Compiles a loop for a clustered machine: assignment + scheduling
 * with the Figure 5 retry loop. The II search starts at the MII of
 * the equally wide unified machine.
 */
CompileResult compileClustered(const Dfg &graph,
                               const MachineDesc &machine,
                               const CompileOptions &options = {});

/**
 * Compiles a loop for a single-cluster machine (no assignment, no
 * copies): the baseline II of the paper's comparisons.
 */
CompileResult compileUnified(const Dfg &graph, const MachineDesc &machine,
                             const CompileOptions &options = {});

} // namespace cams

#endif // CAMS_PIPELINE_DRIVER_HH
