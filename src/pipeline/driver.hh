/**
 * @file
 * End-to-end compilation drivers implementing the paper's Figure 5
 * process: compute the unified-machine MII, run cluster assignment at
 * the current II, hand the annotated loop to a cluster-oblivious
 * modulo scheduler, and on any failure restart the whole pipeline --
 * including a fresh assignment -- at II + 1.
 *
 * Hardening: compileClustered never aborts and always returns a
 * classified result. Invariant violations inside the search
 * (InternalError from cams_check) are caught and charged to the
 * current II; verifier rejections retry at II + 1 instead of
 * panicking; an optional wall-clock budget bounds the search. When
 * the primary search runs dry, a degradation ladder takes over:
 *
 *  1. ExhaustiveAssign -- for small loops, enumerate every cluster
 *     partition (assign/exhaustive) and schedule the first feasible
 *     one. Optimal placement, exponential cost, so gated on node
 *     count.
 *  2. SingleCluster -- place everything on cluster 0 and serialize
 *     one op per cycle (pipeline/degrade). Always cheap; fails only
 *     when cluster 0 cannot execute the loop at all.
 *
 * A fallback schedule still passes the independent verifier; callers
 * that care about schedule *quality* (the paper's figures) must treat
 * degraded > None as a failure, which bench/ and report/ do.
 */

#ifndef CAMS_PIPELINE_DRIVER_HH
#define CAMS_PIPELINE_DRIVER_HH

#include <memory>
#include <string>

#include "assign/assigner.hh"
#include "exact/exact.hh"
#include "machine/machine.hh"
#include "sched/mii.hh"
#include "sched/schedule.hh"
#include "support/fault.hh"
#include "support/trace.hh"

namespace cams
{

class CompileCache;

/** Which phase-two scheduler the driver uses. */
enum class SchedulerKind
{
    Swing,     ///< the paper's choice
    Iterative, ///< Rau's IMS (cross-check)
};

/** Which rung of the degradation ladder produced a result. */
enum class DegradeLevel
{
    None,             ///< the primary Figure 5 search succeeded
    ExhaustiveAssign, ///< exhaustive partition enumeration (small loops)
    SingleCluster,    ///< everything on cluster 0, fully serialized
};

/** Stable snake_case name of a degrade level (for logs and JSON). */
const char *degradeLevelName(DegradeLevel level);

/** Driver knobs. */
struct CompileOptions
{
    AssignOptions assign;
    SchedulerKind scheduler = SchedulerKind::Swing;

    /**
     * Engine selection (clustered compiles only). Heuristic is the
     * paper's cascade; Exact replaces the II search with ascending
     * SAT decisions (first SAT II is provably optimal); Race runs the
     * heuristic first and then lets the exact arm tighten the II or
     * certify it optimal within `exact`'s budgets. See
     * exact/exact.hh for the protocol and certification semantics.
     */
    CompileBackend backend = CompileBackend::Heuristic;

    /** Budgets and limits of the exact arm (Exact and Race modes). */
    ExactOptions exact;

    /**
     * Give up when II exceeds mii * 4 + this slack (a diagnostic
     * backstop; real loops converge long before).
     */
    int iiSlack = 64;

    /** Verify every produced schedule with the independent checker. */
    bool verify = true;

    /**
     * Run the degradation ladder when the primary search fails. Off,
     * the driver reports the classified failure and nothing else
     * (the paper-faithful behavior the figures are measured with).
     */
    bool fallback = true;

    /** Node-count ceiling of the exhaustive fallback rung. */
    int exhaustiveFallbackNodes = 8;

    /**
     * Master switch of the incremental pipeline: per-loop LoopContext
     * caching of the II-invariant analyses plus word-scan MRTs. Off,
     * every II probe recomputes from scratch with the reference MRT
     * scans -- the pre-cache pipeline, kept as the A/B baseline.
     * Schedules are byte-identical either way (tests/context_test.cc).
     */
    bool incremental = true;

    /**
     * Wall-clock budget for one compile in milliseconds; 0 disables.
     * Checked between II attempts and ladder rungs, so one attempt
     * always runs to completion -- this bounds runaway *searches*,
     * not single steps. Expiry classifies as FailureKind::Timeout
     * (the cheap SingleCluster rung may still rescue the compile).
     */
    double timeBudgetMs = 0.0;

    /**
     * Fault injector for stress testing; null = no injection. The
     * injector is stateful: share one per concurrent compile, never
     * across compiles whose determinism matters.
     */
    std::shared_ptr<FaultInjector> faults;

    /**
     * Tracing: the shared sink (null = off) and this compile's job
     * tag. Propagated into the assigner and the scheduler so one
     * compile produces one coherent event stream. Per-phase wall
     * times in CompileResult are recorded regardless of this.
     */
    TraceConfig trace;

    /**
     * Persistent compile cache (non-owning; null = off). Probed
     * before the II search: a full hit returns the stored result
     * (after re-verification), and on a miss a warm-start hint may
     * seed the search at the previously achieved II -- always behind
     * a mandatory verify, so a stale hint degrades to the cold path.
     * Compiles with an active fault injector bypass the cache in
     * both directions.
     */
    CompileCache *cache = nullptr;

    /**
     * Namespace salt folded into every CacheKey (full entries and
     * warm-start hints). Two compiles that differ only in salt never
     * share cache state; the compile server salts each tenant's id
     * here so co-resident tenants cannot observe one another through
     * hit timing or hint side channels. 0 = the default (unsalted)
     * namespace every single-tenant tool uses.
     */
    uint64_t cacheSalt = 0;
};

/**
 * Wall-clock cost of each pipeline phase, milliseconds, summed over
 * every II attempt of one compile. Always recorded, tracing on or
 * off. orderMs and routeMs are sub-slices of assignMs (the §4.1
 * ordering work and the copy-routing work inside the assigner);
 * totalMs is the whole compile including MII computation and the
 * degradation ladder.
 */
struct PhaseTimes
{
    double orderMs = 0.0;
    double assignMs = 0.0;
    double routeMs = 0.0;
    double scheduleMs = 0.0;
    double verifyMs = 0.0;
    double totalMs = 0.0;
};

/** Outcome of compiling one loop for one machine. */
struct CompileResult
{
    bool success = false;

    /** Achieved initiation interval. */
    int ii = 0;

    /** The MII bounds the search started from. */
    MiiInfo mii;

    /** Annotated loop actually scheduled (copies included). */
    AnnotatedLoop loop;

    /** The final schedule. */
    Schedule schedule;

    /** Copies inserted by assignment. */
    int copies = 0;

    /** IIs tried before success (1 = first try). */
    int attempts = 0;

    /** II attempts whose cluster assignment failed outright. */
    int assignRetries = 0;

    /** Evictions performed by the §4.3 iteration, over all attempts. */
    int evictions = 0;

    /**
     * Failure classification; None on success. On failure this names
     * the *last* way the search died (e.g. VerifierReject when the
     * final II's schedule was rejected), which is what a report needs
     * to distinguish "infeasible machine" from "search exhausted".
     */
    FailureKind failure = FailureKind::None;

    /** Human-readable diagnosis matching `failure` (failures only). */
    std::string failureDetail;

    /** Last II the primary search attempted; 0 when it never ran. */
    int finalIiTried = 0;

    /** Ladder rung that produced the result (None = primary path). */
    DegradeLevel degraded = DegradeLevel::None;

    /** cams_check invariant violations recovered during the search. */
    int invariantRecoveries = 0;

    /** Schedules the independent verifier rejected mid-search. */
    int verifierRejects = 0;

    /** Injected faults that fired during this compile. */
    long faultTrips = 0;

    /** Per-phase wall-time breakdown (always recorded). */
    PhaseTimes phaseMs;

    /**
     * Exact-arm accounting (outcome NotRun on the heuristic backend).
     * Transient like the cache flags: never serialized into cache
     * entries, so a cache-served result always reads not_run.
     */
    ExactStats exact;

    /** LoopContext queries answered from cache (incremental only). */
    long ctxHits = 0;

    /** LoopContext facts computed fresh (incremental only). */
    long ctxMisses = 0;

    /** MRT occupancy words examined by word-mode scans. */
    long mrtWordScans = 0;

    /**
     * Cache bookkeeping, stamped by the driver per compile and never
     * serialized into cache entries (a served copy of an entry gets
     * fromCache = true; the stored bytes always say false).
     */
    bool cacheProbed = false; ///< a cache lookup ran for this compile
    bool fromCache = false;   ///< result served from the compile cache
    bool hintUsed = false;    ///< warm-start hint satisfied the search
    bool hintStale = false;   ///< hint probe failed; cold path used
};

/** Creates a scheduler instance of the given kind. */
std::unique_ptr<ModuloScheduler> makeScheduler(SchedulerKind kind);

/**
 * Compiles a loop for a clustered machine: assignment + scheduling
 * with the Figure 5 retry loop. The II search starts at the MII of
 * the equally wide unified machine.
 */
CompileResult compileClustered(const Dfg &graph,
                               const MachineDesc &machine,
                               const CompileOptions &options = {});

/**
 * Compiles a loop for a single-cluster machine (no assignment, no
 * copies): the baseline II of the paper's comparisons.
 */
CompileResult compileUnified(const Dfg &graph, const MachineDesc &machine,
                             const CompileOptions &options = {});

} // namespace cams

#endif // CAMS_PIPELINE_DRIVER_HH
