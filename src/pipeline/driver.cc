#include "pipeline/driver.hh"

#include <chrono>

#include "assign/exhaustive.hh"
#include "pipeline/degrade.hh"
#include "sched/ims.hh"
#include "sched/sms.hh"
#include "sched/verifier.hh"
#include "support/logging.hh"

namespace cams
{

std::unique_ptr<ModuloScheduler>
makeScheduler(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Swing:
        return std::make_unique<SwingModuloScheduler>();
      case SchedulerKind::Iterative:
        return std::make_unique<IterativeModuloScheduler>();
    }
    cams_panic("unknown scheduler kind");
}

const char *
degradeLevelName(DegradeLevel level)
{
    switch (level) {
      case DegradeLevel::None:
        return "none";
      case DegradeLevel::ExhaustiveAssign:
        return "exhaustive_assign";
      case DegradeLevel::SingleCluster:
        return "single_cluster";
    }
    cams_panic("unknown DegradeLevel ", int(level));
}

namespace
{

/** Wall-clock budget; disarmed when the budget is zero. */
class Deadline
{
  public:
    explicit Deadline(double budget_ms)
        : armed_(budget_ms > 0.0),
          end_(std::chrono::steady_clock::now() +
               std::chrono::duration_cast<
                   std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(
                       budget_ms)))
    {
    }

    bool
    expired() const
    {
        return armed_ && std::chrono::steady_clock::now() >= end_;
    }

  private:
    bool armed_;
    std::chrono::steady_clock::time_point end_;
};

/**
 * Rejects inputs the assigner would cams_fatal on, as a classified
 * result instead: a driver compile must never take the process down.
 */
bool
compilablePrecondition(const Dfg &graph, const MachineDesc &machine,
                       CompileResult &result)
{
    std::string why;
    if (!graph.wellFormed(&why)) {
        result.failure = FailureKind::InternalInvariant;
        result.failureDetail = "malformed input graph: " + why;
        return false;
    }
    for (const DfgNode &node : graph.nodes()) {
        if (node.op == Opcode::Copy) {
            result.failure = FailureKind::InternalInvariant;
            result.failureDetail =
                "input graph already contains copies";
            return false;
        }
        if (!machine.canExecute(node.op)) {
            result.failure = FailureKind::InternalInvariant;
            result.failureDetail = detail::concat(
                "machine '", machine.name, "' cannot execute ",
                opcodeName(node.op));
            return false;
        }
    }
    return true;
}

/** Accepts a verified success into the result. */
void
acceptSchedule(CompileResult &result, AnnotatedLoop loop,
               Schedule schedule, int ii, DegradeLevel level)
{
    result.success = true;
    result.failure = FailureKind::None;
    result.failureDetail.clear();
    result.degraded = level;
    result.ii = ii;
    result.loop = std::move(loop);
    result.schedule = std::move(schedule);
    result.copies = result.loop.numCopies();
}

} // namespace

CompileResult
compileClustered(const Dfg &graph, const MachineDesc &machine,
                 const CompileOptions &options)
{
    CompileResult result;
    if (!compilablePrecondition(graph, machine, result))
        return result;

    const MachineDesc unified = machine.unifiedEquivalent();
    result.mii = computeMii(graph, unified);

    const ResourceModel model(machine);
    FaultInjector *faults = options.faults.get();
    const long fault_base = faults ? faults->totalTrips() : 0;
    const Deadline deadline(options.timeBudgetMs);

    AssignOptions assign_options = options.assign;
    assign_options.faults = faults;
    const ClusterAssigner assigner(model, assign_options);
    const auto scheduler = makeScheduler(options.scheduler);
    const int limit = result.mii.mii * 4 + options.iiSlack;

    // The primary Figure 5 search. Every way an II can die updates
    // the running classification, so a final failure reports the last
    // (deepest) cause rather than a generic "gave up".
    result.failure = FailureKind::IiExhausted;
    result.failureDetail = detail::concat(
        "empty II search window [", result.mii.mii, ", ", limit, "]");
    bool timed_out = false;

    for (int ii = result.mii.mii; ii <= limit; ++ii) {
        if (deadline.expired()) {
            timed_out = true;
            break;
        }
        ++result.attempts;
        result.finalIiTried = ii;
        try {
            AssignResult assignment = assigner.run(graph, ii);
            result.evictions += assignment.evictions;
            result.invariantRecoveries += assignment.invariantFailures;
            if (!assignment.success) {
                ++result.assignRetries;
                if (assignment.failure != FailureKind::None) {
                    result.failure = assignment.failure;
                    result.failureDetail = assignment.detail;
                } else {
                    result.failure = FailureKind::IiExhausted;
                    result.failureDetail = detail::concat(
                        "assignment infeasible at II ", ii);
                }
                continue;
            }
            Schedule schedule;
            bool scheduled = scheduler->schedule(assignment.loop,
                                                 model, ii, schedule);
            if (scheduled && faults &&
                faults->trip(FaultSite::SchedulerSlotDeny)) {
                // Injected: pretend the scheduler found no slot.
                scheduled = false;
            }
            if (!scheduled) {
                result.failure = FailureKind::IiExhausted;
                result.failureDetail =
                    detail::concat("no schedule found at II ", ii);
                continue;
            }
            if (options.verify) {
                std::string why;
                if (!verifySchedule(assignment.loop, model, schedule,
                                    &why)) {
                    ++result.verifierRejects;
                    result.failure = FailureKind::VerifierReject;
                    result.failureDetail = detail::concat(
                        "verifier rejected II ", ii, ": ", why);
                    continue;
                }
            }
            acceptSchedule(result, std::move(assignment.loop),
                           std::move(schedule), ii,
                           DegradeLevel::None);
            break;
        } catch (const InternalError &err) {
            // A cams_check fired outside the assigner's own recovery
            // (router, materialization): charge this II and move on.
            ++result.invariantRecoveries;
            result.failure = FailureKind::InternalInvariant;
            result.failureDetail = err.what();
        }
    }

    if (timed_out) {
        result.failure = FailureKind::Timeout;
        result.failureDetail = detail::concat(
            "time budget of ", options.timeBudgetMs,
            " ms expired after ", result.attempts, " II attempts");
    }

    auto stamp_faults = [&]() {
        if (faults)
            result.faultTrips = faults->totalTrips() - fault_base;
    };
    if (result.success || !options.fallback) {
        stamp_faults();
        return result;
    }

    // Degradation ladder, rung 1: exhaustive assignment for small
    // loops. Runs injection-free on purpose -- faults model the
    // primary path; the ladder is the recovery mechanism under test.
    if (!timed_out && machine.numClusters() > 1 &&
        graph.numNodes() <= options.exhaustiveFallbackNodes) {
        for (int ii = result.mii.mii; ii <= limit && !result.success;
             ++ii) {
            if (deadline.expired()) {
                result.failure = FailureKind::Timeout;
                result.failureDetail = detail::concat(
                    "time budget expired in the exhaustive fallback "
                    "at II ",
                    ii);
                break;
            }
            try {
                const ExhaustivePartition partition =
                    exhaustiveAssign(graph, model, ii);
                if (partition.verdict == ExhaustiveVerdict::TooLarge)
                    break;
                if (partition.verdict != ExhaustiveVerdict::Feasible)
                    continue;
                AnnotatedLoop loop = annotatePartition(
                    graph, partition.clusterOf, machine);
                Schedule schedule;
                if (!scheduler->schedule(loop, model, ii, schedule))
                    continue; // count-feasible but not schedulable
                if (options.verify) {
                    std::string why;
                    if (!verifySchedule(loop, model, schedule, &why)) {
                        ++result.verifierRejects;
                        continue;
                    }
                }
                acceptSchedule(result, std::move(loop),
                               std::move(schedule), ii,
                               DegradeLevel::ExhaustiveAssign);
            } catch (const InternalError &err) {
                ++result.invariantRecoveries;
                result.failure = FailureKind::InternalInvariant;
                result.failureDetail = err.what();
            }
        }
        if (result.success) {
            stamp_faults();
            return result;
        }
    }

    // Rung 2: single cluster, fully serialized. Cheap enough to run
    // even after a timeout -- recovering a classified-failure compile
    // beats reporting it.
    if (auto degraded = degradeToSingleCluster(graph, model)) {
        std::string why;
        if (!options.verify ||
            verifySchedule(degraded->loop, model, degraded->schedule,
                           &why)) {
            const int ii = degraded->schedule.ii;
            acceptSchedule(result, std::move(degraded->loop),
                           std::move(degraded->schedule), ii,
                           DegradeLevel::SingleCluster);
        } else {
            ++result.verifierRejects;
            result.failure = FailureKind::VerifierReject;
            result.failureDetail =
                "verifier rejected the single-cluster fallback: " +
                why;
        }
    }
    stamp_faults();
    return result;
}

CompileResult
compileUnified(const Dfg &graph, const MachineDesc &machine,
               const CompileOptions &options)
{
    cams_assert(machine.numClusters() == 1,
                "compileUnified needs a single-cluster machine");
    CompileResult result;
    if (!compilablePrecondition(graph, machine, result))
        return result;
    result.mii = computeMii(graph, machine);

    const ResourceModel model(machine);
    FaultInjector *faults = options.faults.get();
    const long fault_base = faults ? faults->totalTrips() : 0;
    const Deadline deadline(options.timeBudgetMs);
    const AnnotatedLoop loop = unifiedLoop(graph);
    const auto scheduler = makeScheduler(options.scheduler);
    const int limit = result.mii.mii * 4 + options.iiSlack;

    result.failure = FailureKind::IiExhausted;
    result.failureDetail = detail::concat(
        "empty II search window [", result.mii.mii, ", ", limit, "]");
    bool timed_out = false;

    for (int ii = result.mii.mii; ii <= limit; ++ii) {
        if (deadline.expired()) {
            timed_out = true;
            break;
        }
        ++result.attempts;
        result.finalIiTried = ii;
        Schedule schedule;
        bool scheduled = scheduler->schedule(loop, model, ii, schedule);
        if (scheduled && faults &&
            faults->trip(FaultSite::SchedulerSlotDeny)) {
            scheduled = false;
        }
        if (!scheduled) {
            result.failure = FailureKind::IiExhausted;
            result.failureDetail =
                detail::concat("no schedule found at II ", ii);
            continue;
        }
        if (options.verify) {
            std::string why;
            if (!verifySchedule(loop, model, schedule, &why)) {
                ++result.verifierRejects;
                result.failure = FailureKind::VerifierReject;
                result.failureDetail = detail::concat(
                    "verifier rejected II ", ii, ": ", why);
                continue;
            }
        }
        acceptSchedule(result, loop, std::move(schedule), ii,
                       DegradeLevel::None);
        break;
    }

    if (timed_out) {
        result.failure = FailureKind::Timeout;
        result.failureDetail = detail::concat(
            "time budget of ", options.timeBudgetMs,
            " ms expired after ", result.attempts, " II attempts");
    }

    if (!result.success && options.fallback) {
        if (auto degraded = degradeToSingleCluster(graph, model)) {
            std::string why;
            if (!options.verify ||
                verifySchedule(degraded->loop, model,
                               degraded->schedule, &why)) {
                const int ii = degraded->schedule.ii;
                acceptSchedule(result, std::move(degraded->loop),
                               std::move(degraded->schedule), ii,
                               DegradeLevel::SingleCluster);
            } else {
                ++result.verifierRejects;
                result.failure = FailureKind::VerifierReject;
                result.failureDetail =
                    "verifier rejected the single-cluster fallback: " +
                    why;
            }
        }
    }
    if (faults)
        result.faultTrips = faults->totalTrips() - fault_base;
    return result;
}

} // namespace cams
