#include "pipeline/driver.hh"

#include <limits>
#include <optional>

#include "assign/exhaustive.hh"
#include "exact/exact.hh"
#include "pipeline/cache/compile_cache.hh"
#include "pipeline/context.hh"
#include "pipeline/degrade.hh"
#include "sched/ims.hh"
#include "sched/sms.hh"
#include "sched/verifier.hh"
#include "support/logging.hh"
#include "support/time.hh"

namespace cams
{

std::unique_ptr<ModuloScheduler>
makeScheduler(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Swing:
        return std::make_unique<SwingModuloScheduler>();
      case SchedulerKind::Iterative:
        return std::make_unique<IterativeModuloScheduler>();
    }
    cams_panic("unknown scheduler kind");
}

const char *
degradeLevelName(DegradeLevel level)
{
    switch (level) {
      case DegradeLevel::None:
        return "none";
      case DegradeLevel::ExhaustiveAssign:
        return "exhaustive_assign";
      case DegradeLevel::SingleCluster:
        return "single_cluster";
    }
    cams_panic("unknown DegradeLevel ", int(level));
}

namespace
{

/** Emits a Decision-level pipeline instant tagged with the job. */
void
traceDecision(const TraceConfig &trace, const char *name,
              TraceArgs args)
{
    if (!trace.active(TraceLevel::Decision))
        return;
    if (!trace.tag.empty())
        args.emplace_back("job", trace.tag);
    trace.sink->instant(name, "pipeline", std::move(args));
}

/**
 * Rejects inputs the assigner would cams_fatal on, as a classified
 * result instead: a driver compile must never take the process down.
 */
bool
compilablePrecondition(const Dfg &graph, const MachineDesc &machine,
                       CompileResult &result)
{
    std::string why;
    if (!graph.wellFormed(&why)) {
        result.failure = FailureKind::InternalInvariant;
        result.failureDetail = "malformed input graph: " + why;
        return false;
    }
    for (const DfgNode &node : graph.nodes()) {
        if (node.op == Opcode::Copy) {
            result.failure = FailureKind::InternalInvariant;
            result.failureDetail =
                "input graph already contains copies";
            return false;
        }
        if (!machine.canExecute(node.op)) {
            result.failure = FailureKind::InternalInvariant;
            result.failureDetail = detail::concat(
                "machine '", machine.name, "' cannot execute ",
                opcodeName(node.op));
            return false;
        }
    }
    return true;
}

/**
 * True when this compile may talk to the cache at all. Fault
 * injection makes outcomes intentionally nondeterministic, so those
 * compiles bypass the cache in both directions.
 */
bool
cacheEligible(const CompileOptions &options)
{
    if (options.cache == nullptr || !options.cache->enabled())
        return false;
    return !(options.faults && options.faults->config().any());
}

/**
 * Probes the cache for a full-result hit; stamps the probe flags and
 * the cache_probe decision instant either way. @return true when the
 * result was served.
 */
bool
probeCache(CompileCache &cache, const CacheKey &key, const Dfg &graph,
           const MachineDesc &machine, const CompileOptions &options,
           CompileResult &result)
{
    if (cache.lookup(key, graph, machine, result)) {
        // lookup overwrote the whole result with the stored image
        // (whose transient flags are false); restamp them.
        result.cacheProbed = true;
        result.fromCache = true;
        traceDecision(options.trace, "cache_probe",
                      {{"outcome", "hit"},
                       {"ii", std::to_string(result.ii)}});
        return true;
    }
    result.cacheProbed = true;
    traceDecision(options.trace, "cache_probe", {{"outcome", "miss"}});
    return false;
}

/** Stable lowercase name of a per-II exact verdict (trace args). */
const char *
exactVerdictName(ExactVerdict verdict)
{
    switch (verdict) {
      case ExactVerdict::Sat:
        return "sat";
      case ExactVerdict::Unsat:
        return "unsat";
      case ExactVerdict::Budget:
        return "budget";
      case ExactVerdict::Unsupported:
        return "unsupported";
    }
    return "?";
}

/** Accepts a verified success into the result. */
void
acceptSchedule(CompileResult &result, AnnotatedLoop loop,
               Schedule schedule, int ii, DegradeLevel level)
{
    result.success = true;
    result.failure = FailureKind::None;
    result.failureDetail.clear();
    result.degraded = level;
    result.ii = ii;
    result.loop = std::move(loop);
    result.schedule = std::move(schedule);
    result.copies = result.loop.numCopies();
}

/**
 * The II-escalation engine shared by the driver's three search loops
 * (the primary clustered search, the exhaustive fallback rung, and
 * the unified search), which used to be three near-identical copies.
 * It owns the per-loop LoopContext every probe shares, walks II
 * upward calling the probe at each step, and centralizes the
 * per-attempt bookkeeping: deadline checks, attempt counting, the
 * per-II trace scope with its outcome arg, escalate/timeout decision
 * instants, and InternalError recovery. The Policy flags select the
 * exact original behavior of each call site.
 */
class IiEscalator
{
  public:
    /** What one II probe decided. */
    enum class Outcome
    {
        Accept, ///< schedule accepted into the result; stop the sweep
        Retry,  ///< this II failed; escalate to II + 1
        Stop,   ///< this II failed and larger IIs cannot help
    };

    /** Per-call-site behavior differences. */
    struct Policy
    {
        /** Bump result.attempts / finalIiTried per probed II. */
        bool countAttempts = false;

        /** Open a per-II "ii_attempt" trace scope. */
        bool traceIis = false;

        /** Emit "ii_escalate" decision instants on failed IIs. */
        bool decisionEscalates = false;

        /** Recover a probe's InternalError as a failed II. */
        bool catchInvariant = false;

        /** Classify a deadline expiry after the sweep ("after N II
         *  attempts"), plus the "timeout" instant if traceTimeout. */
        bool summaryTimeout = false;
        bool traceTimeout = false;

        /** Non-null: classify the expiry inline instead, as "time
         *  budget expired in <where> at II <ii>". */
        const char *timeoutWhere = nullptr;
    };

    IiEscalator(const Dfg &graph, const CompileOptions &options,
                CompileResult &result)
        : options_(options), result_(result)
    {
        if (options.incremental)
            ctx_.emplace(graph);
    }

    /** The shared context; null when the incremental path is off. */
    LoopContext *context() { return ctx_ ? &*ctx_ : nullptr; }

    /** Whether any sweep so far died on the deadline. */
    bool timedOut() const { return timedOut_; }

    /** Folds the owned context's counters into the result. */
    void foldCounters()
    {
        if (!ctx_)
            return;
        result_.ctxHits += ctx_->hits();
        result_.ctxMisses += ctx_->misses();
    }

    /**
     * Probes II = first..limit until the probe accepts, a deadline
     * check fails, or a probe reports Stop. The probe is called as
     * probe(ii, escalate) where escalate(reason) records a failed
     * II's outcome. @return true when an II was accepted.
     */
    template <typename Probe>
    bool sweep(int first, int limit, const Deadline &deadline,
               const Policy &policy, Probe &&probe)
    {
        bool timed_out = false;
        for (int ii = first; ii <= limit; ++ii) {
            if (deadline.expired()) {
                timed_out = true;
                if (policy.timeoutWhere != nullptr) {
                    result_.failure = FailureKind::Timeout;
                    result_.failureDetail = detail::concat(
                        "time budget expired in ", policy.timeoutWhere,
                        " at II ", ii);
                }
                break;
            }
            if (policy.countAttempts) {
                ++result_.attempts;
                result_.finalIiTried = ii;
            }
            std::optional<TraceScope> ii_scope;
            if (policy.traceIis) {
                ii_scope.emplace(options_.trace, TraceLevel::Phase,
                                 "ii_attempt", "pipeline");
                ii_scope->arg("ii", std::to_string(ii));
            }
            auto escalate = [&](const char *reason) {
                if (ii_scope)
                    ii_scope->arg("outcome", reason);
                if (policy.decisionEscalates) {
                    traceDecision(options_.trace, "ii_escalate",
                                  {{"ii", std::to_string(ii)},
                                   {"reason", reason}});
                }
            };
            Outcome outcome = Outcome::Retry;
            if (policy.catchInvariant) {
                try {
                    outcome = probe(ii, escalate);
                } catch (const InternalError &err) {
                    // A cams_check fired outside the assigner's own
                    // recovery: charge this II and move on.
                    ++result_.invariantRecoveries;
                    result_.failure = FailureKind::InternalInvariant;
                    result_.failureDetail = err.what();
                    escalate("invariant");
                }
            } else {
                outcome = probe(ii, escalate);
            }
            if (outcome == Outcome::Accept) {
                if (ii_scope)
                    ii_scope->arg("outcome", "success");
                return true;
            }
            if (outcome == Outcome::Stop)
                break;
        }
        timedOut_ = timedOut_ || timed_out;
        if (timed_out && policy.summaryTimeout) {
            result_.failure = FailureKind::Timeout;
            result_.failureDetail = detail::concat(
                "time budget of ", options_.timeBudgetMs,
                " ms expired after ", result_.attempts,
                " II attempts");
            if (policy.traceTimeout) {
                traceDecision(
                    options_.trace, "timeout",
                    {{"attempts", std::to_string(result_.attempts)},
                     {"budget_ms",
                      std::to_string(options_.timeBudgetMs)}});
            }
        }
        return false;
    }

  private:
    const CompileOptions &options_;
    CompileResult &result_;
    std::optional<LoopContext> ctx_;
    bool timedOut_ = false;
};

} // namespace

CompileResult
compileClustered(const Dfg &graph, const MachineDesc &machine,
                 const CompileOptions &options)
{
    CompileResult result;
    if (!compilablePrecondition(graph, machine, result))
        return result;

    const bool cache_on = cacheEligible(options);
    CacheKey cache_key;
    if (cache_on) {
        cache_key =
            makeCacheKey(graph, machine, options, /*clustered=*/true);
        if (probeCache(*options.cache, cache_key, graph, machine,
                       options, result))
            return result;
    }

    const Stopwatch total_watch;
    TraceScope compile_scope(options.trace, TraceLevel::Phase,
                             "compile_clustered", "pipeline");
    compile_scope.arg("machine", machine.name);

    IiEscalator escalator(graph, options, result);
    LoopContext *ctx = escalator.context();

    const MachineDesc unified = machine.unifiedEquivalent();
    result.mii = ctx ? computeMii(graph, unified, ctx->recMii())
                     : computeMii(graph, unified);

    const ResourceModel model(machine);
    FaultInjector *faults = options.faults.get();
    const long fault_base = faults ? faults->totalTrips() : 0;
    const Deadline deadline(options.timeBudgetMs);

    AssignOptions assign_options = options.assign;
    assign_options.faults = faults;
    assign_options.trace = options.trace;
    if (!options.incremental)
        assign_options.mrtScan = MrtScanMode::Reference;
    const ClusterAssigner assigner(model, assign_options);
    const auto scheduler = makeScheduler(options.scheduler);
    scheduler->setTrace(options.trace);
    if (!options.incremental)
        scheduler->setScanMode(MrtScanMode::Reference);
    const int limit = result.mii.mii * 4 + options.iiSlack;

    // Stamps everything that must be correct on every exit path, and
    // publishes the finished compile into the cache. store() itself
    // refuses served, hint-assisted and timed-out results, so only
    // cold deterministic outcomes persist; hints additionally require
    // a primary-path success (a degraded II would poison warm starts).
    int accepted_rotation = 0;
    auto finish = [&]() {
        escalator.foldCounters();
        result.mrtWordScans += scheduler->wordScans();
        if (faults)
            result.faultTrips = faults->totalTrips() - fault_base;
        result.phaseMs.totalMs = total_watch.elapsedMs();
        if (result.faultTrips > 0) {
            traceDecision(
                options.trace, "fault_trips",
                {{"count", std::to_string(result.faultTrips)}});
        }
        compile_scope.arg("success",
                          result.success ? "true" : "false");
        compile_scope.arg("ii", std::to_string(result.ii));
        compile_scope.arg("degraded",
                          degradeLevelName(result.degraded));
        if (!result.success) {
            compile_scope.arg("failure",
                              failureKindName(result.failure));
        }
        if (cache_on) {
            options.cache->store(cache_key, graph, machine, result);
            // Hints replay a heuristic rotation at the achieved II; a
            // race-tightened II is not heuristically reachable, and
            // non-heuristic backends skip the probe anyway.
            if (result.success && !result.hintUsed &&
                options.backend == CompileBackend::Heuristic &&
                result.degraded == DegradeLevel::None) {
                WarmStartHint hint;
                hint.ii = result.ii;
                hint.mii = result.mii.mii;
                hint.rotation = accepted_rotation;
                options.cache->storeHint(cache_key, hint);
            }
        }
    };

    // One II attempt of the Figure 5 pipeline: assign, schedule,
    // verify. Shared between the primary sweep and the warm-start
    // hint probe, which swaps in a hint-seeded assigner and verifies
    // unconditionally (a stale hint must never leak an unchecked
    // schedule).
    auto attemptIi = [&](int ii, auto &&escalate,
                         const ClusterAssigner &attempt_assigner,
                         bool force_verify) -> IiEscalator::Outcome {
            const Stopwatch assign_watch;
            AssignResult assignment;
            {
                TraceScope scope(options.trace, TraceLevel::Phase,
                                 "assign", "phase");
                assignment = attempt_assigner.run(graph, ii, ctx);
            }
            result.phaseMs.assignMs += assign_watch.elapsedMs();
            result.phaseMs.orderMs += assignment.orderMillis;
            result.phaseMs.routeMs += assignment.routeMillis;
            result.evictions += assignment.evictions;
            result.invariantRecoveries += assignment.invariantFailures;
            result.mrtWordScans += assignment.wordScans;
            if (!assignment.success) {
                ++result.assignRetries;
                if (assignment.failure != FailureKind::None) {
                    result.failure = assignment.failure;
                    result.failureDetail = assignment.detail;
                } else {
                    result.failure = FailureKind::IiExhausted;
                    result.failureDetail = detail::concat(
                        "assignment infeasible at II ", ii);
                }
                escalate("assign_fail");
                return IiEscalator::Outcome::Retry;
            }
            // The scheduler sees the annotated graph (copies and
            // all), which changes per II, so its context is per
            // attempt: it still pools the analyses shared by the
            // feasibility check, timing, order and requests.
            std::optional<LoopContext> sched_ctx;
            if (options.incremental)
                sched_ctx.emplace(assignment.loop.graph);
            Schedule schedule;
            const Stopwatch sched_watch;
            bool scheduled;
            {
                TraceScope scope(options.trace, TraceLevel::Phase,
                                 "schedule", "phase");
                scheduled = scheduler->schedule(
                    assignment.loop, model, ii, schedule,
                    sched_ctx ? &*sched_ctx : nullptr);
            }
            result.phaseMs.scheduleMs += sched_watch.elapsedMs();
            if (sched_ctx) {
                result.ctxHits += sched_ctx->hits();
                result.ctxMisses += sched_ctx->misses();
            }
            if (scheduled && faults &&
                faults->trip(FaultSite::SchedulerSlotDeny)) {
                // Injected: pretend the scheduler found no slot.
                scheduled = false;
            }
            if (!scheduled) {
                result.failure = FailureKind::IiExhausted;
                result.failureDetail =
                    detail::concat("no schedule found at II ", ii);
                escalate("sched_fail");
                return IiEscalator::Outcome::Retry;
            }
            if (options.verify || force_verify) {
                const Stopwatch verify_watch;
                std::string why;
                bool verified;
                {
                    TraceScope scope(options.trace, TraceLevel::Phase,
                                     "verify", "phase");
                    verified = verifySchedule(assignment.loop, model,
                                              schedule, &why);
                }
                result.phaseMs.verifyMs += verify_watch.elapsedMs();
                if (!verified) {
                    ++result.verifierRejects;
                    result.failure = FailureKind::VerifierReject;
                    result.failureDetail = detail::concat(
                        "verifier rejected II ", ii, ": ", why);
                    escalate("verifier_reject");
                    return IiEscalator::Outcome::Retry;
                }
            }
            accepted_rotation = assignment.rotationUsed;
            acceptSchedule(result, std::move(assignment.loop),
                           std::move(schedule), ii,
                           DegradeLevel::None);
            return IiEscalator::Outcome::Accept;
    };

    // ---- The exact arm (backends Exact and Race): per-II SAT
    // decisions with deterministic conflict budgets (exact/exact.hh).
    auto exactProbe = [&](int ii) {
        const Stopwatch probe_watch;
        ExactDecision decision =
            exactDecideAtIi(graph, model, ii, options.exact);
        ++result.exact.probes;
        result.exact.conflicts += decision.conflicts;
        result.exact.decisions += decision.decisions;
        result.exact.propagations += decision.propagations;
        result.exact.solveMs += probe_watch.elapsedMs();
        traceDecision(options.trace, "exact_probe",
                      {{"ii", std::to_string(ii)},
                       {"verdict",
                        exactVerdictName(decision.verdict)}});
        return decision;
    };

    // Ascending decision ladder over [first, last]: the first SAT
    // answer is accepted (and is optimal within the range, since
    // every lower II carries an UNSAT certificate). Returns true on
    // acceptance; otherwise result.exact.outcome says why -- Unsat
    // when the whole range is certified infeasible, Timeout/
    // Unsupported when the ladder died early.
    auto exactSearch = [&](int first, int last) -> bool {
        int probes_left = options.exact.maxProbes > 0
                              ? options.exact.maxProbes
                              : std::numeric_limits<int>::max();
        for (int ii = first; ii <= last; ++ii) {
            if (deadline.expired()) {
                result.exact.outcome = ExactOutcome::Timeout;
                result.exact.detail = "compile_deadline";
                return false;
            }
            if (probes_left-- <= 0) {
                result.exact.outcome = ExactOutcome::Timeout;
                result.exact.detail = "probe_limit";
                return false;
            }
            ExactDecision decision = exactProbe(ii);
            if (decision.verdict == ExactVerdict::Sat) {
                result.exact.outcome = ExactOutcome::Sat;
                result.exact.exactIi = ii;
                acceptSchedule(result, std::move(decision.loop),
                               std::move(decision.schedule), ii,
                               DegradeLevel::None);
                return true;
            }
            if (decision.verdict == ExactVerdict::Unsat)
                continue; // certified infeasible; try the next II
            result.exact.outcome =
                decision.verdict == ExactVerdict::Budget
                    ? ExactOutcome::Timeout
                    : ExactOutcome::Unsupported;
            result.exact.detail = decision.detail;
            return false;
        }
        // Every II in the range carries an UNSAT certificate.
        result.exact.outcome = ExactOutcome::Unsat;
        return false;
    };

    // The primary Figure 5 search. Every way an II can die updates
    // the running classification, so a final failure reports the last
    // (deepest) cause rather than a generic "gave up".
    result.failure = FailureKind::IiExhausted;
    result.failureDetail = detail::concat(
        "empty II search window [", result.mii.mii, ", ", limit, "]");

    if (options.backend == CompileBackend::Exact) {
        // Pure exact mode: the SAT ladder *is* the II search.
        if (exactSearch(result.mii.mii, limit)) {
            finish();
            return result;
        }
        if (result.exact.outcome == ExactOutcome::Timeout) {
            result.failure = FailureKind::Timeout;
            result.failureDetail =
                "exact backend budget exhausted: " +
                result.exact.detail;
        } else if (result.exact.outcome == ExactOutcome::Unsat) {
            result.failure = FailureKind::IiExhausted;
            result.failureDetail = detail::concat(
                "exact backend: UNSAT at every II in [",
                result.mii.mii, ", ", limit, "]");
        } else {
            result.failure = FailureKind::IiExhausted;
            result.failureDetail = "exact backend unsupported: " +
                                   result.exact.detail;
        }
        if (!options.fallback) {
            finish();
            return result;
        }
        // Fall through to the degradation ladder below.
    }

    // Warm-start hint: a previous compile of this loop on this
    // machine (any options) achieved hint.ii, so probe that II first
    // with the winning rotation replayed. One attempt, verified
    // unconditionally; failure marks the hint stale and falls back to
    // the cold search from MII, so a wrong hint costs one probe.
    // Non-heuristic backends skip the probe: Exact never runs the
    // cascade, and a Race hint would bypass the exact arm entirely.
    WarmStartHint hint;
    if (options.backend == CompileBackend::Heuristic && cache_on &&
        options.cache->hint(cache_key, hint) &&
        hint.ii > result.mii.mii && hint.ii <= limit) {
        AssignOptions hinted_options = assign_options;
        hinted_options.preferredRotation = hint.rotation;
        const ClusterAssigner hinted_assigner(model, hinted_options);
        IiEscalator::Policy probe_policy;
        probe_policy.countAttempts = true;
        probe_policy.traceIis = true;
        probe_policy.catchInvariant = true;
        const bool hinted_ok = escalator.sweep(
            hint.ii, hint.ii, deadline, probe_policy,
            [&](int ii, auto &&escalate) {
                return attemptIi(ii, escalate, hinted_assigner,
                                 /*force_verify=*/true);
            });
        traceDecision(
            options.trace, "hint_probe",
            {{"outcome", hinted_ok ? "used" : "stale"},
             {"hint_ii", std::to_string(hint.ii)},
             {"rotation", std::to_string(hint.rotation)}});
        if (hinted_ok) {
            result.hintUsed = true;
            finish();
            return result;
        }
        result.hintStale = true;
    }

    if (options.backend != CompileBackend::Exact) {
        IiEscalator::Policy primary;
        primary.countAttempts = true;
        primary.traceIis = true;
        primary.decisionEscalates = true;
        primary.catchInvariant = true;
        primary.summaryTimeout = true;
        primary.traceTimeout = true;

        escalator.sweep(result.mii.mii, limit, deadline, primary,
                        [&](int ii, auto &&escalate) {
                            return attemptIi(ii, escalate, assigner,
                                             /*force_verify=*/false);
                        });
    }

    if (options.backend == CompileBackend::Race) {
        if (result.success && result.degraded == DegradeLevel::None) {
            // The heuristic answered; the exact arm now probes every
            // lower II. SAT tightens the result (the decoded schedule
            // replaces the heuristic one); an unbroken run of UNSAT
            // certificates -- including the empty range when the
            // heuristic already sits at MII -- certifies it optimal.
            result.exact.heuristicIi = result.ii;
            if (exactSearch(result.mii.mii,
                            result.exact.heuristicIi - 1)) {
                result.exact.tightened = true;
                traceDecision(
                    options.trace, "exact_tightened",
                    {{"heuristic_ii",
                      std::to_string(result.exact.heuristicIi)},
                     {"exact_ii",
                      std::to_string(result.exact.exactIi)}});
            } else if (result.exact.outcome == ExactOutcome::Unsat) {
                result.exact.certified = true;
                traceDecision(options.trace, "exact_certified",
                              {{"ii", std::to_string(result.ii)}});
            }
        } else if (!result.success) {
            // Portfolio rescue: the cascade found nothing, so let the
            // exact arm search the full window before the ladder.
            exactSearch(result.mii.mii, limit);
        }
    }

    if (result.success || !options.fallback) {
        finish();
        return result;
    }

    // Degradation ladder, rung 1: exhaustive assignment for small
    // loops. Runs injection-free on purpose -- faults model the
    // primary path; the ladder is the recovery mechanism under test.
    if (!escalator.timedOut() && machine.numClusters() > 1 &&
        graph.numNodes() <= options.exhaustiveFallbackNodes) {
        traceDecision(options.trace, "degrade_rung",
                      {{"rung", "exhaustive_assign"}});
        TraceScope rung_scope(options.trace, TraceLevel::Phase,
                              "exhaustive_assign", "pipeline");
        IiEscalator::Policy rung;
        rung.catchInvariant = true;
        rung.timeoutWhere = "the exhaustive fallback";
        escalator.sweep(
            result.mii.mii, limit, deadline, rung,
            [&](int ii, auto &&) -> IiEscalator::Outcome {
                const ExhaustivePartition partition =
                    exhaustiveAssign(graph, model, ii);
                if (partition.verdict == ExhaustiveVerdict::TooLarge)
                    return IiEscalator::Outcome::Stop;
                if (partition.verdict != ExhaustiveVerdict::Feasible)
                    return IiEscalator::Outcome::Retry;
                AnnotatedLoop loop = annotatePartition(
                    graph, partition.clusterOf, machine);
                Schedule schedule;
                if (!scheduler->schedule(loop, model, ii, schedule)) {
                    // count-feasible but not schedulable
                    return IiEscalator::Outcome::Retry;
                }
                if (options.verify) {
                    std::string why;
                    if (!verifySchedule(loop, model, schedule, &why)) {
                        ++result.verifierRejects;
                        return IiEscalator::Outcome::Retry;
                    }
                }
                acceptSchedule(result, std::move(loop),
                               std::move(schedule), ii,
                               DegradeLevel::ExhaustiveAssign);
                return IiEscalator::Outcome::Accept;
            });
        if (result.success) {
            finish();
            return result;
        }
    }

    // Rung 2: single cluster, fully serialized. Cheap enough to run
    // even after a timeout -- recovering a classified-failure compile
    // beats reporting it.
    traceDecision(options.trace, "degrade_rung",
                  {{"rung", "single_cluster"}});
    TraceScope rung_scope(options.trace, TraceLevel::Phase,
                          "single_cluster", "pipeline");
    if (auto degraded = degradeToSingleCluster(graph, model)) {
        std::string why;
        if (!options.verify ||
            verifySchedule(degraded->loop, model, degraded->schedule,
                           &why)) {
            const int ii = degraded->schedule.ii;
            acceptSchedule(result, std::move(degraded->loop),
                           std::move(degraded->schedule), ii,
                           DegradeLevel::SingleCluster);
        } else {
            ++result.verifierRejects;
            result.failure = FailureKind::VerifierReject;
            result.failureDetail =
                "verifier rejected the single-cluster fallback: " +
                why;
        }
    }
    finish();
    return result;
}

CompileResult
compileUnified(const Dfg &graph, const MachineDesc &machine,
               const CompileOptions &options)
{
    cams_assert(machine.numClusters() == 1,
                "compileUnified needs a single-cluster machine");
    CompileResult result;
    if (!compilablePrecondition(graph, machine, result))
        return result;

    // Full-result caching only: the unified path has no assignment,
    // so there is no rotation to replay and little for a warm-start
    // hint to save.
    const bool cache_on = cacheEligible(options);
    CacheKey cache_key;
    if (cache_on) {
        cache_key = makeCacheKey(graph, machine, options,
                                 /*clustered=*/false);
        if (probeCache(*options.cache, cache_key, graph, machine,
                       options, result))
            return result;
    }

    const Stopwatch total_watch;
    TraceScope compile_scope(options.trace, TraceLevel::Phase,
                             "compile_unified", "pipeline");
    compile_scope.arg("machine", machine.name);

    // The context lives on the annotated loop's graph (a verbatim
    // clone of the input), so one context serves both the MII and
    // every scheduler call.
    const AnnotatedLoop loop = unifiedLoop(graph);
    IiEscalator escalator(loop.graph, options, result);
    LoopContext *ctx = escalator.context();
    result.mii = ctx ? computeMii(graph, machine, ctx->recMii())
                     : computeMii(graph, machine);

    const ResourceModel model(machine);
    FaultInjector *faults = options.faults.get();
    const long fault_base = faults ? faults->totalTrips() : 0;
    const Deadline deadline(options.timeBudgetMs);
    const auto scheduler = makeScheduler(options.scheduler);
    scheduler->setTrace(options.trace);
    if (!options.incremental)
        scheduler->setScanMode(MrtScanMode::Reference);
    const int limit = result.mii.mii * 4 + options.iiSlack;

    auto finish = [&]() {
        escalator.foldCounters();
        result.mrtWordScans += scheduler->wordScans();
        if (faults)
            result.faultTrips = faults->totalTrips() - fault_base;
        result.phaseMs.totalMs = total_watch.elapsedMs();
        compile_scope.arg("success",
                          result.success ? "true" : "false");
        compile_scope.arg("ii", std::to_string(result.ii));
        compile_scope.arg("degraded",
                          degradeLevelName(result.degraded));
        if (cache_on)
            options.cache->store(cache_key, graph, machine, result);
    };

    result.failure = FailureKind::IiExhausted;
    result.failureDetail = detail::concat(
        "empty II search window [", result.mii.mii, ", ", limit, "]");

    IiEscalator::Policy policy;
    policy.countAttempts = true;
    policy.traceIis = true;
    policy.summaryTimeout = true;

    escalator.sweep(
        result.mii.mii, limit, deadline, policy,
        [&](int ii, auto &&escalate) -> IiEscalator::Outcome {
            Schedule schedule;
            const Stopwatch sched_watch;
            bool scheduled;
            {
                TraceScope scope(options.trace, TraceLevel::Phase,
                                 "schedule", "phase");
                scheduled =
                    scheduler->schedule(loop, model, ii, schedule, ctx);
            }
            result.phaseMs.scheduleMs += sched_watch.elapsedMs();
            if (scheduled && faults &&
                faults->trip(FaultSite::SchedulerSlotDeny)) {
                scheduled = false;
            }
            if (!scheduled) {
                result.failure = FailureKind::IiExhausted;
                result.failureDetail =
                    detail::concat("no schedule found at II ", ii);
                escalate("sched_fail");
                return IiEscalator::Outcome::Retry;
            }
            if (options.verify) {
                const Stopwatch verify_watch;
                std::string why;
                bool verified;
                {
                    TraceScope scope(options.trace, TraceLevel::Phase,
                                     "verify", "phase");
                    verified =
                        verifySchedule(loop, model, schedule, &why);
                }
                result.phaseMs.verifyMs += verify_watch.elapsedMs();
                if (!verified) {
                    ++result.verifierRejects;
                    result.failure = FailureKind::VerifierReject;
                    result.failureDetail = detail::concat(
                        "verifier rejected II ", ii, ": ", why);
                    escalate("verifier_reject");
                    return IiEscalator::Outcome::Retry;
                }
            }
            acceptSchedule(result, loop, std::move(schedule), ii,
                           DegradeLevel::None);
            return IiEscalator::Outcome::Accept;
        });

    if (!result.success && options.fallback) {
        traceDecision(options.trace, "degrade_rung",
                      {{"rung", "single_cluster"}});
        if (auto degraded = degradeToSingleCluster(graph, model)) {
            std::string why;
            if (!options.verify ||
                verifySchedule(degraded->loop, model,
                               degraded->schedule, &why)) {
                const int ii = degraded->schedule.ii;
                acceptSchedule(result, std::move(degraded->loop),
                               std::move(degraded->schedule), ii,
                               DegradeLevel::SingleCluster);
            } else {
                ++result.verifierRejects;
                result.failure = FailureKind::VerifierReject;
                result.failureDetail =
                    "verifier rejected the single-cluster fallback: " +
                    why;
            }
        }
    }
    finish();
    return result;
}

} // namespace cams
