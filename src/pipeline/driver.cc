#include "pipeline/driver.hh"

#include "sched/ims.hh"
#include "sched/sms.hh"
#include "sched/verifier.hh"
#include "support/logging.hh"

namespace cams
{

std::unique_ptr<ModuloScheduler>
makeScheduler(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Swing:
        return std::make_unique<SwingModuloScheduler>();
      case SchedulerKind::Iterative:
        return std::make_unique<IterativeModuloScheduler>();
    }
    cams_panic("unknown scheduler kind");
}

namespace
{

void
checkSchedule(const AnnotatedLoop &loop, const ResourceModel &model,
              const Schedule &schedule)
{
    std::string why;
    if (!verifySchedule(loop, model, schedule, &why))
        cams_panic("scheduler produced an illegal schedule: ", why);
}

} // namespace

CompileResult
compileClustered(const Dfg &graph, const MachineDesc &machine,
                 const CompileOptions &options)
{
    CompileResult result;
    const MachineDesc unified = machine.unifiedEquivalent();
    result.mii = computeMii(graph, unified);

    const ResourceModel model(machine);
    const ClusterAssigner assigner(model, options.assign);
    const auto scheduler = makeScheduler(options.scheduler);
    const int limit = result.mii.mii * 4 + options.iiSlack;

    for (int ii = result.mii.mii; ii <= limit; ++ii) {
        ++result.attempts;
        AssignResult assignment = assigner.run(graph, ii);
        result.evictions += assignment.evictions;
        if (!assignment.success) {
            ++result.assignRetries;
            continue;
        }
        Schedule schedule;
        if (!scheduler->schedule(assignment.loop, model, ii, schedule))
            continue;
        if (options.verify)
            checkSchedule(assignment.loop, model, schedule);
        result.success = true;
        result.ii = ii;
        result.loop = std::move(assignment.loop);
        result.schedule = std::move(schedule);
        result.copies = result.loop.numCopies();
        return result;
    }
    return result;
}

CompileResult
compileUnified(const Dfg &graph, const MachineDesc &machine,
               const CompileOptions &options)
{
    cams_assert(machine.numClusters() == 1,
                "compileUnified needs a single-cluster machine");
    CompileResult result;
    result.mii = computeMii(graph, machine);

    const ResourceModel model(machine);
    const AnnotatedLoop loop = unifiedLoop(graph);
    const auto scheduler = makeScheduler(options.scheduler);
    const int limit = result.mii.mii * 4 + options.iiSlack;

    for (int ii = result.mii.mii; ii <= limit; ++ii) {
        ++result.attempts;
        Schedule schedule;
        if (!scheduler->schedule(loop, model, ii, schedule))
            continue;
        if (options.verify)
            checkSchedule(loop, model, schedule);
        result.success = true;
        result.ii = ii;
        result.loop = loop;
        result.schedule = std::move(schedule);
        return result;
    }
    return result;
}

} // namespace cams
