#include "pipeline/driver.hh"

#include "assign/exhaustive.hh"
#include "pipeline/degrade.hh"
#include "sched/ims.hh"
#include "sched/sms.hh"
#include "sched/verifier.hh"
#include "support/logging.hh"
#include "support/time.hh"

namespace cams
{

std::unique_ptr<ModuloScheduler>
makeScheduler(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Swing:
        return std::make_unique<SwingModuloScheduler>();
      case SchedulerKind::Iterative:
        return std::make_unique<IterativeModuloScheduler>();
    }
    cams_panic("unknown scheduler kind");
}

const char *
degradeLevelName(DegradeLevel level)
{
    switch (level) {
      case DegradeLevel::None:
        return "none";
      case DegradeLevel::ExhaustiveAssign:
        return "exhaustive_assign";
      case DegradeLevel::SingleCluster:
        return "single_cluster";
    }
    cams_panic("unknown DegradeLevel ", int(level));
}

namespace
{

/** Emits a Decision-level pipeline instant tagged with the job. */
void
traceDecision(const TraceConfig &trace, const char *name,
              TraceArgs args)
{
    if (!trace.active(TraceLevel::Decision))
        return;
    if (!trace.tag.empty())
        args.emplace_back("job", trace.tag);
    trace.sink->instant(name, "pipeline", std::move(args));
}

/**
 * Rejects inputs the assigner would cams_fatal on, as a classified
 * result instead: a driver compile must never take the process down.
 */
bool
compilablePrecondition(const Dfg &graph, const MachineDesc &machine,
                       CompileResult &result)
{
    std::string why;
    if (!graph.wellFormed(&why)) {
        result.failure = FailureKind::InternalInvariant;
        result.failureDetail = "malformed input graph: " + why;
        return false;
    }
    for (const DfgNode &node : graph.nodes()) {
        if (node.op == Opcode::Copy) {
            result.failure = FailureKind::InternalInvariant;
            result.failureDetail =
                "input graph already contains copies";
            return false;
        }
        if (!machine.canExecute(node.op)) {
            result.failure = FailureKind::InternalInvariant;
            result.failureDetail = detail::concat(
                "machine '", machine.name, "' cannot execute ",
                opcodeName(node.op));
            return false;
        }
    }
    return true;
}

/** Accepts a verified success into the result. */
void
acceptSchedule(CompileResult &result, AnnotatedLoop loop,
               Schedule schedule, int ii, DegradeLevel level)
{
    result.success = true;
    result.failure = FailureKind::None;
    result.failureDetail.clear();
    result.degraded = level;
    result.ii = ii;
    result.loop = std::move(loop);
    result.schedule = std::move(schedule);
    result.copies = result.loop.numCopies();
}

} // namespace

CompileResult
compileClustered(const Dfg &graph, const MachineDesc &machine,
                 const CompileOptions &options)
{
    CompileResult result;
    if (!compilablePrecondition(graph, machine, result))
        return result;

    const Stopwatch total_watch;
    TraceScope compile_scope(options.trace, TraceLevel::Phase,
                             "compile_clustered", "pipeline");
    compile_scope.arg("machine", machine.name);

    const MachineDesc unified = machine.unifiedEquivalent();
    result.mii = computeMii(graph, unified);

    const ResourceModel model(machine);
    FaultInjector *faults = options.faults.get();
    const long fault_base = faults ? faults->totalTrips() : 0;
    const Deadline deadline(options.timeBudgetMs);

    AssignOptions assign_options = options.assign;
    assign_options.faults = faults;
    assign_options.trace = options.trace;
    const ClusterAssigner assigner(model, assign_options);
    const auto scheduler = makeScheduler(options.scheduler);
    scheduler->setTrace(options.trace);
    const int limit = result.mii.mii * 4 + options.iiSlack;

    // Stamps everything that must be correct on every exit path.
    auto finish = [&]() {
        if (faults)
            result.faultTrips = faults->totalTrips() - fault_base;
        result.phaseMs.totalMs = total_watch.elapsedMs();
        if (result.faultTrips > 0) {
            traceDecision(
                options.trace, "fault_trips",
                {{"count", std::to_string(result.faultTrips)}});
        }
        compile_scope.arg("success",
                          result.success ? "true" : "false");
        compile_scope.arg("ii", std::to_string(result.ii));
        compile_scope.arg("degraded",
                          degradeLevelName(result.degraded));
        if (!result.success) {
            compile_scope.arg("failure",
                              failureKindName(result.failure));
        }
    };

    // The primary Figure 5 search. Every way an II can die updates
    // the running classification, so a final failure reports the last
    // (deepest) cause rather than a generic "gave up".
    result.failure = FailureKind::IiExhausted;
    result.failureDetail = detail::concat(
        "empty II search window [", result.mii.mii, ", ", limit, "]");
    bool timed_out = false;

    for (int ii = result.mii.mii; ii <= limit; ++ii) {
        if (deadline.expired()) {
            timed_out = true;
            break;
        }
        ++result.attempts;
        result.finalIiTried = ii;
        TraceScope ii_scope(options.trace, TraceLevel::Phase,
                            "ii_attempt", "pipeline");
        ii_scope.arg("ii", std::to_string(ii));
        auto escalate = [&](const char *reason) {
            ii_scope.arg("outcome", reason);
            traceDecision(options.trace, "ii_escalate",
                          {{"ii", std::to_string(ii)},
                           {"reason", reason}});
        };
        try {
            const Stopwatch assign_watch;
            AssignResult assignment;
            {
                TraceScope scope(options.trace, TraceLevel::Phase,
                                 "assign", "phase");
                assignment = assigner.run(graph, ii);
            }
            result.phaseMs.assignMs += assign_watch.elapsedMs();
            result.phaseMs.orderMs += assignment.orderMillis;
            result.phaseMs.routeMs += assignment.routeMillis;
            result.evictions += assignment.evictions;
            result.invariantRecoveries += assignment.invariantFailures;
            if (!assignment.success) {
                ++result.assignRetries;
                if (assignment.failure != FailureKind::None) {
                    result.failure = assignment.failure;
                    result.failureDetail = assignment.detail;
                } else {
                    result.failure = FailureKind::IiExhausted;
                    result.failureDetail = detail::concat(
                        "assignment infeasible at II ", ii);
                }
                escalate("assign_fail");
                continue;
            }
            Schedule schedule;
            const Stopwatch sched_watch;
            bool scheduled;
            {
                TraceScope scope(options.trace, TraceLevel::Phase,
                                 "schedule", "phase");
                scheduled = scheduler->schedule(assignment.loop,
                                                model, ii, schedule);
            }
            result.phaseMs.scheduleMs += sched_watch.elapsedMs();
            if (scheduled && faults &&
                faults->trip(FaultSite::SchedulerSlotDeny)) {
                // Injected: pretend the scheduler found no slot.
                scheduled = false;
            }
            if (!scheduled) {
                result.failure = FailureKind::IiExhausted;
                result.failureDetail =
                    detail::concat("no schedule found at II ", ii);
                escalate("sched_fail");
                continue;
            }
            if (options.verify) {
                const Stopwatch verify_watch;
                std::string why;
                bool verified;
                {
                    TraceScope scope(options.trace, TraceLevel::Phase,
                                     "verify", "phase");
                    verified = verifySchedule(assignment.loop, model,
                                              schedule, &why);
                }
                result.phaseMs.verifyMs += verify_watch.elapsedMs();
                if (!verified) {
                    ++result.verifierRejects;
                    result.failure = FailureKind::VerifierReject;
                    result.failureDetail = detail::concat(
                        "verifier rejected II ", ii, ": ", why);
                    escalate("verifier_reject");
                    continue;
                }
            }
            ii_scope.arg("outcome", "success");
            acceptSchedule(result, std::move(assignment.loop),
                           std::move(schedule), ii,
                           DegradeLevel::None);
            break;
        } catch (const InternalError &err) {
            // A cams_check fired outside the assigner's own recovery
            // (router, materialization): charge this II and move on.
            ++result.invariantRecoveries;
            result.failure = FailureKind::InternalInvariant;
            result.failureDetail = err.what();
            escalate("invariant");
        }
    }

    if (timed_out) {
        result.failure = FailureKind::Timeout;
        result.failureDetail = detail::concat(
            "time budget of ", options.timeBudgetMs,
            " ms expired after ", result.attempts, " II attempts");
        traceDecision(options.trace, "timeout",
                      {{"attempts", std::to_string(result.attempts)},
                       {"budget_ms",
                        std::to_string(options.timeBudgetMs)}});
    }

    if (result.success || !options.fallback) {
        finish();
        return result;
    }

    // Degradation ladder, rung 1: exhaustive assignment for small
    // loops. Runs injection-free on purpose -- faults model the
    // primary path; the ladder is the recovery mechanism under test.
    if (!timed_out && machine.numClusters() > 1 &&
        graph.numNodes() <= options.exhaustiveFallbackNodes) {
        traceDecision(options.trace, "degrade_rung",
                      {{"rung", "exhaustive_assign"}});
        TraceScope rung_scope(options.trace, TraceLevel::Phase,
                              "exhaustive_assign", "pipeline");
        for (int ii = result.mii.mii; ii <= limit && !result.success;
             ++ii) {
            if (deadline.expired()) {
                result.failure = FailureKind::Timeout;
                result.failureDetail = detail::concat(
                    "time budget expired in the exhaustive fallback "
                    "at II ",
                    ii);
                break;
            }
            try {
                const ExhaustivePartition partition =
                    exhaustiveAssign(graph, model, ii);
                if (partition.verdict == ExhaustiveVerdict::TooLarge)
                    break;
                if (partition.verdict != ExhaustiveVerdict::Feasible)
                    continue;
                AnnotatedLoop loop = annotatePartition(
                    graph, partition.clusterOf, machine);
                Schedule schedule;
                if (!scheduler->schedule(loop, model, ii, schedule))
                    continue; // count-feasible but not schedulable
                if (options.verify) {
                    std::string why;
                    if (!verifySchedule(loop, model, schedule, &why)) {
                        ++result.verifierRejects;
                        continue;
                    }
                }
                acceptSchedule(result, std::move(loop),
                               std::move(schedule), ii,
                               DegradeLevel::ExhaustiveAssign);
            } catch (const InternalError &err) {
                ++result.invariantRecoveries;
                result.failure = FailureKind::InternalInvariant;
                result.failureDetail = err.what();
            }
        }
        if (result.success) {
            finish();
            return result;
        }
    }

    // Rung 2: single cluster, fully serialized. Cheap enough to run
    // even after a timeout -- recovering a classified-failure compile
    // beats reporting it.
    traceDecision(options.trace, "degrade_rung",
                  {{"rung", "single_cluster"}});
    TraceScope rung_scope(options.trace, TraceLevel::Phase,
                          "single_cluster", "pipeline");
    if (auto degraded = degradeToSingleCluster(graph, model)) {
        std::string why;
        if (!options.verify ||
            verifySchedule(degraded->loop, model, degraded->schedule,
                           &why)) {
            const int ii = degraded->schedule.ii;
            acceptSchedule(result, std::move(degraded->loop),
                           std::move(degraded->schedule), ii,
                           DegradeLevel::SingleCluster);
        } else {
            ++result.verifierRejects;
            result.failure = FailureKind::VerifierReject;
            result.failureDetail =
                "verifier rejected the single-cluster fallback: " +
                why;
        }
    }
    finish();
    return result;
}

CompileResult
compileUnified(const Dfg &graph, const MachineDesc &machine,
               const CompileOptions &options)
{
    cams_assert(machine.numClusters() == 1,
                "compileUnified needs a single-cluster machine");
    CompileResult result;
    if (!compilablePrecondition(graph, machine, result))
        return result;

    const Stopwatch total_watch;
    TraceScope compile_scope(options.trace, TraceLevel::Phase,
                             "compile_unified", "pipeline");
    compile_scope.arg("machine", machine.name);

    result.mii = computeMii(graph, machine);

    const ResourceModel model(machine);
    FaultInjector *faults = options.faults.get();
    const long fault_base = faults ? faults->totalTrips() : 0;
    const Deadline deadline(options.timeBudgetMs);
    const AnnotatedLoop loop = unifiedLoop(graph);
    const auto scheduler = makeScheduler(options.scheduler);
    scheduler->setTrace(options.trace);
    const int limit = result.mii.mii * 4 + options.iiSlack;

    auto finish = [&]() {
        if (faults)
            result.faultTrips = faults->totalTrips() - fault_base;
        result.phaseMs.totalMs = total_watch.elapsedMs();
        compile_scope.arg("success",
                          result.success ? "true" : "false");
        compile_scope.arg("ii", std::to_string(result.ii));
        compile_scope.arg("degraded",
                          degradeLevelName(result.degraded));
    };

    result.failure = FailureKind::IiExhausted;
    result.failureDetail = detail::concat(
        "empty II search window [", result.mii.mii, ", ", limit, "]");
    bool timed_out = false;

    for (int ii = result.mii.mii; ii <= limit; ++ii) {
        if (deadline.expired()) {
            timed_out = true;
            break;
        }
        ++result.attempts;
        result.finalIiTried = ii;
        TraceScope ii_scope(options.trace, TraceLevel::Phase,
                            "ii_attempt", "pipeline");
        ii_scope.arg("ii", std::to_string(ii));
        Schedule schedule;
        const Stopwatch sched_watch;
        bool scheduled;
        {
            TraceScope scope(options.trace, TraceLevel::Phase,
                             "schedule", "phase");
            scheduled = scheduler->schedule(loop, model, ii, schedule);
        }
        result.phaseMs.scheduleMs += sched_watch.elapsedMs();
        if (scheduled && faults &&
            faults->trip(FaultSite::SchedulerSlotDeny)) {
            scheduled = false;
        }
        if (!scheduled) {
            result.failure = FailureKind::IiExhausted;
            result.failureDetail =
                detail::concat("no schedule found at II ", ii);
            ii_scope.arg("outcome", "sched_fail");
            continue;
        }
        if (options.verify) {
            const Stopwatch verify_watch;
            std::string why;
            bool verified;
            {
                TraceScope scope(options.trace, TraceLevel::Phase,
                                 "verify", "phase");
                verified = verifySchedule(loop, model, schedule, &why);
            }
            result.phaseMs.verifyMs += verify_watch.elapsedMs();
            if (!verified) {
                ++result.verifierRejects;
                result.failure = FailureKind::VerifierReject;
                result.failureDetail = detail::concat(
                    "verifier rejected II ", ii, ": ", why);
                ii_scope.arg("outcome", "verifier_reject");
                continue;
            }
        }
        ii_scope.arg("outcome", "success");
        acceptSchedule(result, loop, std::move(schedule), ii,
                       DegradeLevel::None);
        break;
    }

    if (timed_out) {
        result.failure = FailureKind::Timeout;
        result.failureDetail = detail::concat(
            "time budget of ", options.timeBudgetMs,
            " ms expired after ", result.attempts, " II attempts");
    }

    if (!result.success && options.fallback) {
        traceDecision(options.trace, "degrade_rung",
                      {{"rung", "single_cluster"}});
        if (auto degraded = degradeToSingleCluster(graph, model)) {
            std::string why;
            if (!options.verify ||
                verifySchedule(degraded->loop, model,
                               degraded->schedule, &why)) {
                const int ii = degraded->schedule.ii;
                acceptSchedule(result, std::move(degraded->loop),
                               std::move(degraded->schedule), ii,
                               DegradeLevel::SingleCluster);
            } else {
                ++result.verifierRejects;
                result.failure = FailureKind::VerifierReject;
                result.failureDetail =
                    "verifier rejected the single-cluster fallback: " +
                    why;
            }
        }
    }
    finish();
    return result;
}

} // namespace cams
