#include "pipeline/cache/serialize.hh"

#include <bit>
#include <cstring>

namespace cams
{

namespace
{

/** Ceilings that reject garbage before it allocates. */
constexpr uint64_t maxStringBytes = uint64_t(1) << 28;
constexpr uint64_t maxListEntries = uint64_t(1) << 24;

} // namespace

void
ByteWriter::u32(uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out_.push_back(static_cast<char>((value >> shift) & 0xff));
}

void
ByteWriter::u64(uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out_.push_back(static_cast<char>((value >> shift) & 0xff));
}

void
ByteWriter::f64(double value)
{
    u64(std::bit_cast<uint64_t>(value));
}

void
ByteWriter::str(const std::string &value)
{
    u64(value.size());
    out_.append(value);
}

bool
ByteReader::take(size_t count, const char *&out)
{
    if (!ok_ || bytes_.size() - pos_ < count) {
        ok_ = false;
        return false;
    }
    out = bytes_.data() + pos_;
    pos_ += count;
    return true;
}

bool
ByteReader::u32(uint32_t &out)
{
    const char *p = nullptr;
    if (!take(4, p))
        return false;
    out = 0;
    for (int i = 0; i < 4; ++i)
        out |= uint32_t(static_cast<unsigned char>(p[i])) << (8 * i);
    return true;
}

bool
ByteReader::u64(uint64_t &out)
{
    const char *p = nullptr;
    if (!take(8, p))
        return false;
    out = 0;
    for (int i = 0; i < 8; ++i)
        out |= uint64_t(static_cast<unsigned char>(p[i])) << (8 * i);
    return true;
}

bool
ByteReader::i64(int64_t &out)
{
    uint64_t raw = 0;
    if (!u64(raw))
        return false;
    out = static_cast<int64_t>(raw);
    return true;
}

bool
ByteReader::f64(double &out)
{
    uint64_t raw = 0;
    if (!u64(raw))
        return false;
    out = std::bit_cast<double>(raw);
    return true;
}

bool
ByteReader::str(std::string &out)
{
    uint64_t size = 0;
    if (!u64(size) || size > maxStringBytes) {
        ok_ = false;
        return false;
    }
    const char *p = nullptr;
    if (!take(static_cast<size_t>(size), p))
        return false;
    out.assign(p, static_cast<size_t>(size));
    return true;
}

std::string
packDfg(const Dfg &graph)
{
    ByteWriter w;
    w.str(graph.name());
    w.u64(graph.numNodes());
    for (const DfgNode &node : graph.nodes()) {
        w.u32(static_cast<uint32_t>(node.op));
        w.i64(node.latency);
        w.str(node.name);
    }
    w.u64(graph.numEdges());
    for (const DfgEdge &edge : graph.edges()) {
        w.i64(edge.src);
        w.i64(edge.dst);
        w.i64(edge.latency);
        w.i64(edge.distance);
    }
    return w.take();
}

bool
readDfg(const std::string &bytes, Dfg &out)
{
    ByteReader r(bytes);
    Dfg graph;
    std::string name;
    if (!r.str(name))
        return false;
    graph.setName(std::move(name));

    uint64_t nodes = 0;
    if (!r.u64(nodes) || nodes > maxListEntries)
        return false;
    for (uint64_t i = 0; i < nodes; ++i) {
        uint32_t op = 0;
        int64_t latency = 0;
        std::string node_name;
        if (!r.u32(op) || op >= uint32_t(numOpcodes) ||
            !r.i64(latency) || latency < 0 || !r.str(node_name)) {
            return false;
        }
        graph.addNode(static_cast<Opcode>(op),
                      static_cast<int>(latency),
                      std::move(node_name));
    }

    uint64_t edges = 0;
    if (!r.u64(edges) || edges > maxListEntries)
        return false;
    for (uint64_t i = 0; i < edges; ++i) {
        int64_t src = 0, dst = 0, latency = 0, distance = 0;
        if (!r.i64(src) || !r.i64(dst) || !r.i64(latency) ||
            !r.i64(distance)) {
            return false;
        }
        if (src < 0 || src >= int64_t(nodes) || dst < 0 ||
            dst >= int64_t(nodes) || latency < 0 || distance < 0) {
            return false;
        }
        graph.addEdge(static_cast<NodeId>(src),
                      static_cast<NodeId>(dst),
                      static_cast<int>(latency),
                      static_cast<int>(distance));
    }
    if (!r.atEnd())
        return false;
    out = std::move(graph);
    return true;
}

std::string
packMachine(const MachineDesc &machine)
{
    ByteWriter w;
    w.str(machine.name);
    w.u32(static_cast<uint32_t>(machine.interconnect));
    w.i64(machine.numBuses);
    w.u64(machine.clusters.size());
    for (const ClusterDesc &cluster : machine.clusters) {
        w.i64(cluster.gpUnits);
        for (const int units : cluster.fsUnits)
            w.i64(units);
        w.i64(cluster.readPorts);
        w.i64(cluster.writePorts);
    }
    w.u64(machine.links.size());
    for (const LinkDesc &link : machine.links) {
        w.i64(link.a);
        w.i64(link.b);
    }
    return w.take();
}

bool
readMachine(const std::string &bytes, MachineDesc &out)
{
    ByteReader r(bytes);
    MachineDesc machine;
    uint32_t interconnect = 0;
    int64_t buses = 0;
    uint64_t clusters = 0;
    if (!r.str(machine.name) || !r.u32(interconnect) ||
        interconnect > uint32_t(InterconnectKind::PointToPoint) ||
        !r.i64(buses) || !r.u64(clusters) ||
        clusters > maxListEntries) {
        return false;
    }
    machine.interconnect = static_cast<InterconnectKind>(interconnect);
    machine.numBuses = static_cast<int>(buses);
    machine.clusters.resize(static_cast<size_t>(clusters));
    for (ClusterDesc &cluster : machine.clusters) {
        int64_t gp = 0, read = 0, write = 0;
        if (!r.i64(gp))
            return false;
        for (int &units : cluster.fsUnits) {
            int64_t count = 0;
            if (!r.i64(count))
                return false;
            units = static_cast<int>(count);
        }
        if (!r.i64(read) || !r.i64(write))
            return false;
        cluster.gpUnits = static_cast<int>(gp);
        cluster.readPorts = static_cast<int>(read);
        cluster.writePorts = static_cast<int>(write);
    }
    uint64_t links = 0;
    if (!r.u64(links) || links > maxListEntries)
        return false;
    machine.links.resize(static_cast<size_t>(links));
    for (LinkDesc &link : machine.links) {
        int64_t a = 0, b = 0;
        if (!r.i64(a) || !r.i64(b))
            return false;
        link.a = static_cast<ClusterId>(a);
        link.b = static_cast<ClusterId>(b);
    }
    if (!r.atEnd())
        return false;
    out = std::move(machine);
    return true;
}

void
writeCompileResult(ByteWriter &w, const CompileResult &result)
{
    w.u32(result.success ? 1 : 0);
    w.i64(result.ii);
    w.i64(result.mii.recMii);
    w.i64(result.mii.resMii);
    w.i64(result.mii.mii);

    w.str(packDfg(result.loop.graph));
    w.i64(result.loop.numOriginalNodes);
    w.u64(result.loop.placement.size());
    for (const OpPlacement &place : result.loop.placement) {
        w.i64(place.cluster);
        w.u64(place.copyDsts.size());
        for (const ClusterId dst : place.copyDsts)
            w.i64(dst);
    }

    w.i64(result.schedule.ii);
    w.u64(result.schedule.startCycle.size());
    for (const int cycle : result.schedule.startCycle)
        w.i64(cycle);

    w.i64(result.copies);
    w.i64(result.attempts);
    w.i64(result.assignRetries);
    w.i64(result.evictions);
    w.u32(static_cast<uint32_t>(result.failure));
    w.str(result.failureDetail);
    w.i64(result.finalIiTried);
    w.u32(static_cast<uint32_t>(result.degraded));
    w.i64(result.invariantRecoveries);
    w.i64(result.verifierRejects);
    w.i64(result.faultTrips);
    w.f64(result.phaseMs.orderMs);
    w.f64(result.phaseMs.assignMs);
    w.f64(result.phaseMs.routeMs);
    w.f64(result.phaseMs.scheduleMs);
    w.f64(result.phaseMs.verifyMs);
    w.f64(result.phaseMs.totalMs);
    w.i64(result.ctxHits);
    w.i64(result.ctxMisses);
    w.i64(result.mrtWordScans);
}

bool
readCompileResult(ByteReader &r, CompileResult &out)
{
    CompileResult result;
    uint32_t success = 0;
    int64_t ii = 0, rec = 0, res = 0, mii = 0;
    if (!r.u32(success) || !r.i64(ii) || !r.i64(rec) || !r.i64(res) ||
        !r.i64(mii)) {
        return false;
    }
    result.success = success != 0;
    result.ii = static_cast<int>(ii);
    result.mii.recMii = static_cast<int>(rec);
    result.mii.resMii = static_cast<int>(res);
    result.mii.mii = static_cast<int>(mii);

    std::string graph_bytes;
    int64_t originals = 0;
    uint64_t placements = 0;
    if (!r.str(graph_bytes) ||
        !readDfg(graph_bytes, result.loop.graph) ||
        !r.i64(originals) || !r.u64(placements) ||
        placements > maxListEntries) {
        return false;
    }
    result.loop.numOriginalNodes = static_cast<int>(originals);
    result.loop.placement.resize(static_cast<size_t>(placements));
    for (OpPlacement &place : result.loop.placement) {
        int64_t cluster = 0;
        uint64_t dsts = 0;
        if (!r.i64(cluster) || !r.u64(dsts) || dsts > maxListEntries)
            return false;
        place.cluster = static_cast<ClusterId>(cluster);
        place.copyDsts.resize(static_cast<size_t>(dsts));
        for (ClusterId &dst : place.copyDsts) {
            int64_t id = 0;
            if (!r.i64(id))
                return false;
            dst = static_cast<ClusterId>(id);
        }
    }

    int64_t sched_ii = 0;
    uint64_t cycles = 0;
    if (!r.i64(sched_ii) || !r.u64(cycles) || cycles > maxListEntries)
        return false;
    result.schedule.ii = static_cast<int>(sched_ii);
    result.schedule.startCycle.resize(static_cast<size_t>(cycles));
    for (int &cycle : result.schedule.startCycle) {
        int64_t value = 0;
        if (!r.i64(value))
            return false;
        cycle = static_cast<int>(value);
    }

    int64_t copies = 0, attempts = 0, retries = 0, evictions = 0;
    uint32_t failure = 0;
    int64_t final_ii = 0;
    uint32_t degraded = 0;
    int64_t recoveries = 0, rejects = 0, trips = 0;
    int64_t ctx_hits = 0, ctx_misses = 0, word_scans = 0;
    if (!r.i64(copies) || !r.i64(attempts) || !r.i64(retries) ||
        !r.i64(evictions) || !r.u32(failure) ||
        failure >= uint32_t(numFailureKinds) ||
        !r.str(result.failureDetail) || !r.i64(final_ii) ||
        !r.u32(degraded) ||
        degraded > uint32_t(DegradeLevel::SingleCluster) ||
        !r.i64(recoveries) || !r.i64(rejects) || !r.i64(trips) ||
        !r.f64(result.phaseMs.orderMs) ||
        !r.f64(result.phaseMs.assignMs) ||
        !r.f64(result.phaseMs.routeMs) ||
        !r.f64(result.phaseMs.scheduleMs) ||
        !r.f64(result.phaseMs.verifyMs) ||
        !r.f64(result.phaseMs.totalMs) || !r.i64(ctx_hits) ||
        !r.i64(ctx_misses) || !r.i64(word_scans)) {
        return false;
    }
    result.copies = static_cast<int>(copies);
    result.attempts = static_cast<int>(attempts);
    result.assignRetries = static_cast<int>(retries);
    result.evictions = static_cast<int>(evictions);
    result.failure = static_cast<FailureKind>(failure);
    result.finalIiTried = static_cast<int>(final_ii);
    result.degraded = static_cast<DegradeLevel>(degraded);
    result.invariantRecoveries = static_cast<int>(recoveries);
    result.verifierRejects = static_cast<int>(rejects);
    result.faultTrips = trips;
    result.ctxHits = ctx_hits;
    result.ctxMisses = ctx_misses;
    result.mrtWordScans = word_scans;
    out = std::move(result);
    return true;
}

} // namespace cams
