/**
 * @file
 * Binary serialization for the persistent compile cache.
 *
 * A deliberately small, explicit wire format: little-endian
 * fixed-width integers, IEEE doubles by bit pattern, and
 * length-prefixed strings, written through ByteWriter and read back
 * through the bounds-checked ByteReader. Every reader returns false
 * instead of throwing on truncated or malformed input -- a damaged
 * cache entry must degrade to a miss, never to UB or an abort.
 *
 * On top of the primitives sit pack/read pairs for the three domain
 * payloads a cache entry carries: the input Dfg (node ids preserved
 * exactly -- the text format in graph/textio is name-keyed and would
 * not round-trip anonymous or duplicate-named nodes), the
 * MachineDesc, and the full CompileResult. packDfg/packMachine are
 * also the exact-match fingerprints the cache compares verbatim
 * before trusting a hash hit.
 */

#ifndef CAMS_PIPELINE_CACHE_SERIALIZE_HH
#define CAMS_PIPELINE_CACHE_SERIALIZE_HH

#include <cstdint>
#include <string>

#include "graph/dfg.hh"
#include "machine/machine.hh"
#include "pipeline/driver.hh"

namespace cams
{

/** Appends fixed-width little-endian fields to a byte string. */
class ByteWriter
{
  public:
    void u32(uint32_t value);
    void u64(uint64_t value);
    void i64(int64_t value) { u64(static_cast<uint64_t>(value)); }
    void f64(double value);
    void str(const std::string &value);

    const std::string &data() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

/** Bounds-checked reader over a serialized byte string. Any failed
 *  read latches ok() false and makes every later read fail too. */
class ByteReader
{
  public:
    explicit ByteReader(const std::string &bytes) : bytes_(bytes) {}

    bool u32(uint32_t &out);
    bool u64(uint64_t &out);
    bool i64(int64_t &out);
    bool f64(double &out);
    bool str(std::string &out);

    bool ok() const { return ok_; }
    bool atEnd() const { return ok_ && pos_ == bytes_.size(); }

  private:
    bool take(size_t count, const char *&out);

    const std::string &bytes_;
    size_t pos_ = 0;
    bool ok_ = true;
};

/** Exact, id-preserving graph image (also the hit fingerprint). */
std::string packDfg(const Dfg &graph);

/** Rebuilds a graph from packDfg bytes; false on malformed input. */
bool readDfg(const std::string &bytes, Dfg &out);

/** Exact machine image (also the hit fingerprint). */
std::string packMachine(const MachineDesc &machine);

/** Rebuilds a machine from packMachine bytes. */
bool readMachine(const std::string &bytes, MachineDesc &out);

/** Serializes a full CompileResult (cache-transient flags excluded). */
void writeCompileResult(ByteWriter &writer, const CompileResult &result);

/** Inverse of writeCompileResult; false on malformed input. */
bool readCompileResult(ByteReader &reader, CompileResult &out);

} // namespace cams

#endif // CAMS_PIPELINE_CACHE_SERIALIZE_HH
