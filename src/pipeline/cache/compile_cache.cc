#include "pipeline/cache/compile_cache.hh"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <vector>

#include "mrt/mrt.hh"
#include "pipeline/cache/serialize.hh"
#include "sched/verifier.hh"

namespace fs = std::filesystem;

namespace cams
{

namespace
{

/** "CCE1" read as a little-endian u32. */
constexpr uint32_t entryMagic = 0x31454343u;

/** Bumped on any change to the entry layout or a nested payload. */
constexpr uint32_t entryFormatVersion = 1;

/** Salts the options hash so schema changes invalidate old keys. */
constexpr uint64_t optionsSchemaSalt = 0xca5cade100000002ULL;

constexpr const char *hintFileName = "hints.log";

std::string
hex16(uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return std::string(buf);
}

bool
parseHex16(const std::string &text, uint64_t &out)
{
    if (text.size() != 16)
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 16);
    return end == text.c_str() + 16;
}

bool
readFileBytes(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        return false;
    out = buf.str();
    return true;
}

uint64_t
hashDouble(double value)
{
    return std::bit_cast<uint64_t>(value);
}

/** Same acceptance rule as loadHints(), as a predicate. */
bool
validHintLine(const std::string &line)
{
    std::istringstream fields(line);
    std::string tag, idText;
    WarmStartHint hint;
    if (!(fields >> tag >> idText >> hint.ii >> hint.mii >>
          hint.rotation))
        return false;
    if (tag != "h1")
        return false;
    uint64_t id = 0;
    if (!parseHex16(idText, id))
        return false;
    return hint.ii > 0 && hint.mii > 0 && hint.rotation >= 0;
}

/**
 * Full structural validation of one entry image: everything lookup()
 * checks short of the (input-dependent) byte-image gate and the
 * verifier pass, plus the file-name/stored-hash consistency check.
 */
bool
validCacheEntryBytes(const std::string &bytes, uint64_t expectId)
{
    ByteReader reader(bytes);
    uint32_t magic = 0, version = 0;
    uint64_t loop_hash = 0, machine_hash = 0, options_hash = 0;
    uint64_t checksum = 0;
    std::string payload;
    if (!reader.u32(magic) || !reader.u32(version) ||
        !reader.u64(loop_hash) || !reader.u64(machine_hash) ||
        !reader.u64(options_hash) || !reader.u64(checksum) ||
        !reader.str(payload) || !reader.atEnd() ||
        magic != entryMagic || version != entryFormatVersion ||
        checksum != hashBytes(payload))
        return false;

    // A renamed or cross-linked file serves the wrong key: the name
    // must re-derive from the stored hashes.
    CacheKey stored;
    stored.loopHash = loop_hash;
    stored.machineHash = machine_hash;
    stored.optionsHash = options_hash;
    if (stored.entryId() != expectId)
        return false;

    ByteReader body(payload);
    std::string graph_bytes, machine_bytes;
    CompileResult result;
    if (!body.str(graph_bytes) || !body.str(machine_bytes) ||
        !readCompileResult(body, result) || !body.atEnd())
        return false;
    Dfg graph;
    MachineDesc machine;
    return readDfg(graph_bytes, graph) &&
           readMachine(machine_bytes, machine);
}

} // namespace

const char *
cacheModeName(CacheMode mode)
{
    switch (mode) {
        case CacheMode::Off:
            return "off";
        case CacheMode::ReadOnly:
            return "ro";
        case CacheMode::ReadWrite:
            return "rw";
    }
    return "?";
}

bool
parseCacheMode(const std::string &text, CacheMode &out)
{
    if (text == "off") {
        out = CacheMode::Off;
    } else if (text == "ro") {
        out = CacheMode::ReadOnly;
    } else if (text == "rw") {
        out = CacheMode::ReadWrite;
    } else {
        return false;
    }
    return true;
}

uint64_t
CacheKey::entryId() const
{
    uint64_t id = 0xe17e5ee0ULL;
    id = hashCombine(id, loopHash);
    id = hashCombine(id, machineHash);
    id = hashCombine(id, optionsHash);
    return id;
}

uint64_t
CacheKey::hintId() const
{
    uint64_t id = 0x417e57a2ULL;
    id = hashCombine(id, loopHash);
    id = hashCombine(id, machineHash);
    id = hashCombine(id, hintSalt);
    return id;
}

std::string
CacheKey::fileName() const
{
    return hex16(entryId()) + ".cce";
}

CacheKey
makeCacheKey(const Dfg &graph, const MachineDesc &machine,
             const CompileOptions &options, bool clustered)
{
    CacheKey key;
    key.loopHash = canonicalLoopHash(graph);
    key.machineHash = hashBytes(packMachine(machine));

    uint64_t oh = optionsSchemaSalt;
    oh = hashCombine(oh, clustered ? 1 : 0);
    oh = hashCombine(oh, static_cast<uint64_t>(options.scheduler));
    oh = hashCombine(oh, static_cast<uint64_t>(options.iiSlack));
    oh = hashCombine(oh, options.verify ? 1 : 0);
    oh = hashCombine(oh, options.fallback ? 1 : 0);
    oh = hashCombine(
        oh, static_cast<uint64_t>(options.exhaustiveFallbackNodes));
    oh = hashCombine(oh, hashDouble(options.timeBudgetMs));
    // Backend selection changes what a "result" even is (a race can
    // tighten the II), and the exact budgets change which answers the
    // arm can reach -- all of it keys the entry.
    oh = hashCombine(oh, static_cast<uint64_t>(options.backend));
    oh = hashCombine(
        oh, static_cast<uint64_t>(options.exact.conflictBudget));
    oh = hashCombine(oh, hashDouble(options.exact.timeBudgetMs));
    oh = hashCombine(oh,
                     static_cast<uint64_t>(options.exact.nodeLimit));
    oh = hashCombine(
        oh, static_cast<uint64_t>(options.exact.horizonLimit));
    oh = hashCombine(oh,
                     static_cast<uint64_t>(options.exact.maxProbes));

    const AssignOptions &a = options.assign;
    oh = hashCombine(oh, static_cast<uint64_t>(a.policy));
    oh = hashCombine(oh, a.iterative ? 1 : 0);
    oh = hashCombine(oh, a.fullHeuristic ? 1 : 0);
    oh = hashCombine(oh, a.useSccAffinity ? 1 : 0);
    oh = hashCombine(oh, a.usePcrPrediction ? 1 : 0);
    oh = hashCombine(oh, a.useSwingOrder ? 1 : 0);
    oh = hashCombine(oh, hashDouble(a.evictionBudgetFactor));
    oh = hashCombine(oh, static_cast<uint64_t>(a.restartsPerIi));
    // The tenant namespace salt participates in both identities, so a
    // salted compile can never serve -- or warm-start from -- another
    // namespace's state.
    oh = hashCombine(oh, options.cacheSalt);
    key.optionsHash = oh;

    uint64_t hs = 0x5eedULL;
    hs = hashCombine(hs, clustered ? 1 : 0);
    hs = hashCombine(hs, static_cast<uint64_t>(options.scheduler));
    hs = hashCombine(hs, options.cacheSalt);
    key.hintSalt = hs;
    return key;
}

CompileCache::CompileCache(std::string directory, CacheMode mode)
    : directory_(std::move(directory)), mode_(mode)
{
    if (mode_ == CacheMode::Off)
        return;

    std::error_code ec;
    if (mode_ == CacheMode::ReadWrite)
        fs::create_directories(directory_, ec);
    if (!fs::is_directory(directory_, ec)) {
        openError_ = "cache directory unusable: " + directory_ +
                     (ec ? " (" + ec.message() + ")" : "");
        return;
    }
    ok_ = true;
    scanDirectory();
    loadHints();
}

CompileCache::Shard &
CompileCache::shardFor(uint64_t id)
{
    return shards_[mix64(id) % numShards];
}

const CompileCache::Shard &
CompileCache::shardFor(uint64_t id) const
{
    return shards_[mix64(id) % numShards];
}

std::string
CompileCache::entryPath(const CacheKey &key) const
{
    return (fs::path(directory_) / key.fileName()).string();
}

void
CompileCache::scanDirectory()
{
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(directory_, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        const fs::path &path = entry.path();
        if (path.extension() != ".cce")
            continue;
        uint64_t id = 0;
        if (!parseHex16(path.stem().string(), id))
            continue;
        const uint64_t size = entry.file_size(ec);
        Shard &shard = shardFor(id);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries[id] = size;
    }
}

void
CompileCache::loadHints()
{
    std::ifstream in((fs::path(directory_) / hintFileName).string());
    if (!in)
        return;
    std::lock_guard<std::mutex> lock(hintMutex_);
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream fields(line);
        std::string tag, idText;
        WarmStartHint hint;
        if (!(fields >> tag >> idText >> hint.ii >> hint.mii >>
              hint.rotation))
            continue;
        if (tag != "h1")
            continue;
        uint64_t id = 0;
        if (!parseHex16(idText, id))
            continue;
        if (hint.ii <= 0 || hint.mii <= 0 || hint.rotation < 0)
            continue;
        hints_[id] = hint; // append-only log: last write wins
    }
}

void
CompileCache::dropEntry(const CacheKey &key, const std::string &path)
{
    const uint64_t id = key.entryId();
    {
        Shard &shard = shardFor(id);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries.erase(id);
    }
    if (mode_ == CacheMode::ReadWrite) {
        std::error_code ec;
        fs::remove(path, ec);
    }
    std::lock_guard<std::mutex> lock(statsMutex_);
    ++totals_.rejects;
}

bool
CompileCache::lookup(const CacheKey &key, const Dfg &graph,
                     const MachineDesc &machine, CompileResult &out)
{
    if (!enabled())
        return false;

    const auto miss = [this] {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++totals_.misses;
        return false;
    };

    const std::string path = entryPath(key);
    std::string bytes;
    if (!readFileBytes(path, bytes))
        return miss();

    ByteReader reader(bytes);
    uint32_t magic = 0, version = 0;
    uint64_t loop_hash = 0, machine_hash = 0, options_hash = 0;
    uint64_t checksum = 0;
    std::string payload;
    if (!reader.u32(magic) || !reader.u32(version) ||
        !reader.u64(loop_hash) || !reader.u64(machine_hash) ||
        !reader.u64(options_hash) || !reader.u64(checksum) ||
        !reader.str(payload) || !reader.atEnd() ||
        magic != entryMagic || version != entryFormatVersion ||
        loop_hash != key.loopHash || machine_hash != key.machineHash ||
        options_hash != key.optionsHash ||
        checksum != hashBytes(payload)) {
        dropEntry(key, path);
        return miss();
    }

    ByteReader body(payload);
    std::string graph_bytes, machine_bytes;
    CompileResult stored;
    if (!body.str(graph_bytes) || !body.str(machine_bytes) ||
        !readCompileResult(body, stored) || !body.atEnd()) {
        dropEntry(key, path);
        return miss();
    }

    // The hash gate: a canonical-hash collision (or an isomorphic
    // renumbering, which hashes identically on purpose) must not be
    // served someone else's node ids. Exact bytes or nothing.
    if (graph_bytes != packDfg(graph) ||
        machine_bytes != packMachine(machine))
        return miss();

    // Never trust a stored schedule: re-verify before serving. A
    // stale or corrupted-but-checksummed entry degrades to a miss.
    if (stored.success &&
        !verifySchedule(stored.loop, ResourceModel(machine),
                        stored.schedule)) {
        dropEntry(key, path);
        return miss();
    }

    {
        const uint64_t id = key.entryId();
        Shard &shard = shardFor(id);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries[id] = bytes.size();
    }
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++totals_.hits;
        totals_.bytesRead += static_cast<long>(bytes.size());
    }
    out = std::move(stored);
    return true;
}

void
CompileCache::store(const CacheKey &key, const Dfg &graph,
                    const MachineDesc &machine,
                    const CompileResult &result)
{
    if (mode_ != CacheMode::ReadWrite || !ok_)
        return;

    // Only cold, deterministic outcomes are worth persisting: a
    // served or hint-assisted result is not the from-MII outcome,
    // and a timeout depends on the wall clock of this run.
    if (result.fromCache || result.hintUsed ||
        result.failure == FailureKind::Timeout)
        return;

    const uint64_t id = key.entryId();
    {
        Shard &shard = shardFor(id);
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.entries.count(id))
            return; // first write wins; entries are immutable
    }

    ByteWriter body;
    body.str(packDfg(graph));
    body.str(packMachine(machine));
    writeCompileResult(body, result);
    const std::string payload = body.take();

    ByteWriter entry;
    entry.u32(entryMagic);
    entry.u32(entryFormatVersion);
    entry.u64(key.loopHash);
    entry.u64(key.machineHash);
    entry.u64(key.optionsHash);
    entry.u64(hashBytes(payload));
    entry.str(payload);
    const std::string bytes = entry.take();

    // Tmp-then-rename keeps concurrent readers (and writers racing on
    // the same key) from ever observing a torn entry.
    const uint64_t tid =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    const std::string tmp =
        (fs::path(directory_) /
         (".tmp-" + hex16(id) + "-" + hex16(tid)))
            .string();
    {
        std::ofstream outFile(tmp, std::ios::binary | std::ios::trunc);
        if (!outFile)
            return;
        outFile.write(bytes.data(),
                      static_cast<std::streamsize>(bytes.size()));
        if (!outFile.good())
            return;
    }
    std::error_code ec;
    fs::rename(tmp, entryPath(key), ec);
    if (ec) {
        fs::remove(tmp, ec);
        return;
    }

    {
        Shard &shard = shardFor(id);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries[id] = bytes.size();
    }
    std::lock_guard<std::mutex> lock(statsMutex_);
    totals_.bytesWritten += static_cast<long>(bytes.size());
}

ScrubReport
scrubCacheDir(const std::string &directory)
{
    ScrubReport report;
    std::error_code ec;
    if (!fs::is_directory(directory, ec)) {
        report.error = "not a directory: " + directory;
        return report;
    }

    const fs::path corruptDir = fs::path(directory) / "corrupt";
    const auto quarantine = [&](const fs::path &path) {
        std::error_code qec;
        fs::create_directories(corruptDir, qec);
        fs::path target = corruptDir / path.filename();
        // Never clobber evidence from an earlier scrub.
        for (int n = 1; fs::exists(target, qec); ++n)
            target = corruptDir / (path.filename().string() + "." +
                                   std::to_string(n));
        fs::rename(path, target, qec);
        if (qec)
            fs::remove(path, qec); // removal beats serving corruption
        ++report.quarantined;
    };

    // Snapshot the listing first: quarantining mutates the directory.
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(directory, ec)) {
        std::error_code fec;
        if (entry.is_regular_file(fec))
            files.push_back(entry.path());
    }

    for (const fs::path &path : files) {
        const std::string name = path.filename().string();
        if (name.rfind(".tmp-", 0) == 0) {
            // Debris of a writer killed between open and rename.
            std::error_code rec;
            fs::remove(path, rec);
            ++report.tmpRemoved;
            continue;
        }
        if (path.extension() != ".cce")
            continue;
        ++report.entriesScanned;
        uint64_t id = 0;
        std::string bytes;
        if (!parseHex16(path.stem().string(), id) ||
            !readFileBytes(path.string(), bytes) ||
            !validCacheEntryBytes(bytes, id)) {
            quarantine(path);
            continue;
        }
        ++report.entriesOk;
    }

    // hints.log: keep the parseable terminated lines; a torn tail is
    // dropped even when it happens to parse (a truncated number can
    // still read as a number -- hints are verified on use, but there
    // is no reason to keep bytes known to be incomplete).
    const fs::path hintPath = fs::path(directory) / hintFileName;
    std::string hintBytes;
    if (readFileBytes(hintPath.string(), hintBytes) &&
        !hintBytes.empty()) {
        std::vector<std::string> kept;
        long dropped = 0;
        size_t start = 0;
        while (start < hintBytes.size()) {
            const size_t end = hintBytes.find('\n', start);
            const bool unterminated = end == std::string::npos;
            const std::string line = hintBytes.substr(
                start, unterminated ? std::string::npos : end - start);
            start = unterminated ? hintBytes.size() : end + 1;
            if (!unterminated && validHintLine(line))
                kept.push_back(line);
            else
                ++dropped;
        }
        report.hintLinesKept = static_cast<long>(kept.size());
        report.hintLinesDropped = dropped;
        if (dropped > 0) {
            quarantine(hintPath);
            const fs::path tmp =
                fs::path(directory) / ".tmp-hints-rewrite";
            {
                std::ofstream out(tmp, std::ios::trunc);
                for (const std::string &line : kept)
                    out << line << '\n';
            }
            std::error_code rec;
            fs::rename(tmp, hintPath, rec);
            report.hintLogRepaired = true;
        }
    }
    return report;
}

ScrubReport
CompileCache::scrub()
{
    ScrubReport report;
    if (mode_ != CacheMode::ReadWrite || !ok_) {
        report.error = "scrub requires an open read-write cache";
        return report;
    }
    report = scrubCacheDir(directory_);

    // Rebuild the in-memory view of what survived.
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries.clear();
    }
    scanDirectory();
    {
        std::lock_guard<std::mutex> lock(hintMutex_);
        hints_.clear();
    }
    loadHints();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        totals_.quarantined += report.quarantined;
    }
    return report;
}

bool
CompileCache::hint(const CacheKey &key, WarmStartHint &out) const
{
    if (!enabled())
        return false;
    std::lock_guard<std::mutex> lock(hintMutex_);
    const auto it = hints_.find(key.hintId());
    if (it == hints_.end())
        return false;
    out = it->second;
    {
        std::lock_guard<std::mutex> stats(statsMutex_);
        ++totals_.hintHits;
    }
    return true;
}

void
CompileCache::storeHint(const CacheKey &key, const WarmStartHint &hint)
{
    if (mode_ != CacheMode::ReadWrite || !ok_)
        return;
    if (hint.ii <= 0 || hint.mii <= 0 || hint.rotation < 0)
        return;
    const uint64_t id = key.hintId();
    std::lock_guard<std::mutex> lock(hintMutex_);
    hints_[id] = hint;
    std::ofstream log((fs::path(directory_) / hintFileName).string(),
                      std::ios::app);
    if (log)
        log << "h1 " << hex16(id) << ' ' << hint.ii << ' ' << hint.mii
            << ' ' << hint.rotation << '\n';
}

CompileCache::Totals
CompileCache::totals() const
{
    Totals t;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        t = totals_;
    }
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        t.entries += static_cast<long>(shard.entries.size());
        for (const auto &entry : shard.entries)
            t.bytesOnDisk += static_cast<long>(entry.second);
    }
    return t;
}

void
CompileCache::publish(MetricsRegistry &registry) const
{
    const Totals t = totals();
    long hintCount = 0;
    {
        std::lock_guard<std::mutex> lock(hintMutex_);
        hintCount = static_cast<long>(hints_.size());
    }
    std::lock_guard<std::mutex> lock(publishMutex_);
    registry.add("cache.entries", t.entries - published_.entries);
    registry.add("cache.bytes", t.bytesOnDisk - published_.bytesOnDisk);
    registry.add("cache.rejects", t.rejects - published_.rejects);
    registry.add("cache.lookup_hits", t.hits - published_.hits);
    registry.add("cache.lookup_misses", t.misses - published_.misses);
    registry.add("cache.bytes_read", t.bytesRead - published_.bytesRead);
    registry.add("cache.bytes_written",
                 t.bytesWritten - published_.bytesWritten);
    registry.add("cache.hint_entries", hintCount - publishedHints_);
    registry.add("cache.quarantined",
                 t.quarantined - published_.quarantined);
    published_ = t;
    publishedHints_ = hintCount;
}

} // namespace cams
