#include "pipeline/cache/hash.hh"

#include <algorithm>
#include <vector>

namespace cams
{

uint64_t
hashBytes(const std::string &bytes)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return mix64(h);
}

namespace
{

/** Signature of one edge as seen from one endpoint. */
uint64_t
edgeSignature(uint64_t neighbor_color, const DfgEdge &edge,
              uint64_t direction_tag)
{
    uint64_t sig = direction_tag;
    sig = hashCombine(sig, neighbor_color);
    sig = hashCombine(sig, static_cast<uint64_t>(edge.latency));
    sig = hashCombine(sig, static_cast<uint64_t>(edge.distance));
    return sig;
}

/** Order-invariant fold: sort the signatures, then fold in order. */
uint64_t
foldSorted(std::vector<uint64_t> &sigs)
{
    std::sort(sigs.begin(), sigs.end());
    uint64_t acc = 0x5bd1e9955bd1e995ULL;
    for (const uint64_t sig : sigs)
        acc = hashCombine(acc, sig);
    return acc;
}

} // namespace

uint64_t
canonicalLoopHash(const Dfg &graph)
{
    const int n = graph.numNodes();
    std::vector<uint64_t> color(n), next(n);
    for (NodeId v = 0; v < n; ++v) {
        const DfgNode &node = graph.node(v);
        uint64_t c = 0x9ae16a3b2f90404fULL;
        c = hashCombine(c, static_cast<uint64_t>(node.op));
        c = hashCombine(c, static_cast<uint64_t>(node.latency));
        color[v] = c;
    }

    // Three refinement rounds separate everything the suite's loop
    // shapes can distinguish; the exact-match gate covers the rest.
    std::vector<uint64_t> in_sigs, out_sigs;
    for (int round = 0; round < 3; ++round) {
        for (NodeId v = 0; v < n; ++v) {
            in_sigs.clear();
            out_sigs.clear();
            for (const EdgeId id : graph.inEdges(v)) {
                const DfgEdge &edge = graph.edge(id);
                in_sigs.push_back(
                    edgeSignature(color[edge.src], edge, 0x11));
            }
            for (const EdgeId id : graph.outEdges(v)) {
                const DfgEdge &edge = graph.edge(id);
                out_sigs.push_back(
                    edgeSignature(color[edge.dst], edge, 0x22));
            }
            uint64_t c = color[v];
            c = hashCombine(c, foldSorted(in_sigs));
            c = hashCombine(c, foldSorted(out_sigs));
            next[v] = c;
        }
        color.swap(next);
    }

    uint64_t h = 0x8f14e45fceea167aULL;
    h = hashCombine(h, static_cast<uint64_t>(n));
    h = hashCombine(h, static_cast<uint64_t>(graph.numEdges()));
    h = hashCombine(h, foldSorted(color));
    return h;
}

} // namespace cams
