/**
 * @file
 * The persistent, content-addressed compile cache.
 *
 * Repeat traffic dominates the workloads this system serves: every
 * batch driver, bench binary and CI job recompiles the same
 * 1327-loop suite on the same machines with the same options. A
 * CompileCache makes that reuse explicit. Compiles are keyed by a
 * CacheKey -- the canonical (renumbering-invariant) loop hash, the
 * machine image hash and the result-relevant pipeline options -- and
 * full CompileResults are stored in a versioned binary format, one
 * file per key, under a cache directory shared across processes.
 *
 * Safety model ("trust but verify"):
 *
 *  - a hash hit is never served on faith: the entry stores the exact
 *    byte images of the input graph and machine, and both must match
 *    the request verbatim (so a canonical-hash collision or an
 *    isomorphic-but-renumbered request degrades to a miss);
 *  - a served schedule is re-checked by the independent verifier
 *    before it leaves the cache; a corrupted or stale entry is
 *    dropped (and unlinked in rw mode), again degrading to a miss;
 *  - entries are written to a temp file and atomically renamed, so
 *    concurrent writers and crashed processes can never publish a
 *    torn entry; readers treat any truncation, bad magic, version
 *    mismatch or checksum failure as a miss.
 *
 * Warm-start hints. Misses additionally consult a hint store keyed
 * by (loop, machine, scheduler, clustered) only -- options excluded
 * -- mapping to the II a previous compile achieved and the assigner
 * restart rotation that won. A near-miss recompile (same loop,
 * changed options) probes the hinted II first instead of walking up
 * from MII; the driver verifies that probe unconditionally and falls
 * back to the cold path when it fails, so a stale hint costs one
 * probe, never correctness. Hint-assisted results are *not* written
 * back as full entries: a full entry always records the cold
 * (from-MII) outcome, which is what keeps warm reruns byte-identical
 * to cold ones.
 *
 * Thread safety: the in-memory index is sharded (one mutex per
 * shard) so hit serving scales under the pipeline/batch thread pool;
 * entry files are immutable once published and are read without any
 * lock. One CompileCache may be shared by every job of a batch.
 */

#ifndef CAMS_PIPELINE_CACHE_COMPILE_CACHE_HH
#define CAMS_PIPELINE_CACHE_COMPILE_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "pipeline/cache/hash.hh"
#include "pipeline/driver.hh"
#include "support/metrics.hh"

namespace cams
{

/** How a cache participates in a run. */
enum class CacheMode
{
    Off,       ///< never consulted
    ReadOnly,  ///< hits served, nothing written
    ReadWrite, ///< hits served, misses stored
};

/** Stable name of a cache mode ("off", "ro", "rw"). */
const char *cacheModeName(CacheMode mode);

/** Parses a mode name; returns false on unknown input. */
bool parseCacheMode(const std::string &text, CacheMode &out);

/** Content address of one compile. */
struct CacheKey
{
    uint64_t loopHash = 0;    ///< canonicalLoopHash of the input
    uint64_t machineHash = 0; ///< hash of the machine byte image
    uint64_t optionsHash = 0; ///< result-relevant options + schema
    uint64_t hintSalt = 0;    ///< scheduler + clustered path only

    /** Identity of the full-result entry. */
    uint64_t entryId() const;

    /** Identity of the warm-start hint (options excluded). */
    uint64_t hintId() const;

    /** Entry file name: 16 hex digits of entryId() + ".cce". */
    std::string fileName() const;
};

/**
 * Derives the content address of one compile. Everything that can
 * change the CompileResult participates: the canonical loop
 * structure, the machine image, the scheduler choice, the assignment
 * policy knobs, verify/fallback/iiSlack/exhaustiveFallbackNodes, the
 * time budget, the clustered-vs-unified path and the tenant
 * namespace salt (CompileOptions::cacheSalt, which also salts the
 * hint identity). Deliberately
 * excluded: trace/metrics configuration (observability never changes
 * results), the fault injector (fault-injected compiles bypass the
 * cache entirely), and the incremental flag plus MRT scan mode (both
 * proven result-identical by tests/context_test.cc, so cold and A/B
 * baseline runs share entries).
 */
CacheKey makeCacheKey(const Dfg &graph, const MachineDesc &machine,
                      const CompileOptions &options, bool clustered);

/** Outcome of one cache-directory scrub pass. */
struct ScrubReport
{
    long entriesScanned = 0;   ///< .cce files examined
    long entriesOk = 0;        ///< entries that validated fully
    long quarantined = 0;      ///< files moved to corrupt/ (incl. hint log)
    long tmpRemoved = 0;       ///< leftover .tmp-* writer files deleted
    long hintLinesKept = 0;    ///< valid hints.log lines preserved
    long hintLinesDropped = 0; ///< torn/unparseable hint lines removed
    bool hintLogRepaired = false; ///< hints.log was rewritten cleaned

    /** Non-empty when the scrub itself could not run. */
    std::string error;
};

/**
 * Validates every .cce entry in @p directory -- magic, format
 * version, stored-hash/file-name consistency, payload checksum, and
 * a full decode of the embedded graph/machine/result images -- and
 * quarantines anything torn, truncated or bit-rotted into
 * <directory>/corrupt/ (moved, never deleted, so forensics survive).
 * Leftover .tmp-* files from writers killed mid-store are removed.
 * The hints.log tail is repaired: parseable lines are kept, a torn
 * or corrupt remainder is dropped, and the original log is
 * quarantined whenever anything had to go. Designed for startup and
 * offline use (camsd runs it on every tenant directory before
 * serving; cams_scrub runs it standalone); racing it against live
 * lookups in another process is safe -- an entry quarantined
 * mid-lookup degrades to a miss -- but wasteful.
 */
ScrubReport scrubCacheDir(const std::string &directory);

/** What a prior compile of the same loop/machine/scheduler achieved. */
struct WarmStartHint
{
    int ii = 0;       ///< achieved initiation interval
    int mii = 0;      ///< the MII that search started from
    int rotation = 0; ///< assigner restart rotation that succeeded
};

/** Persistent content-addressed store of CompileResults + hints. */
class CompileCache
{
  public:
    /**
     * Opens (rw: creates) the cache directory and loads the entry
     * index and hint store. A directory that cannot be opened
     * disables the cache (enabled() false) instead of failing the
     * run; the error is kept for the caller to report.
     */
    CompileCache(std::string directory, CacheMode mode);

    CacheMode mode() const { return mode_; }
    const std::string &directory() const { return directory_; }

    /** True when lookups can be served at all. */
    bool enabled() const { return mode_ != CacheMode::Off && ok_; }

    /** Non-empty when the directory could not be opened. */
    const std::string &openError() const { return openError_; }

    /**
     * Serves a full-result hit. The request graph and machine must
     * match the stored images byte-for-byte and a stored schedule
     * must re-verify; anything else counts as a miss. @return true
     * and fills @p out on a hit.
     */
    bool lookup(const CacheKey &key, const Dfg &graph,
                const MachineDesc &machine, CompileResult &out);

    /**
     * Publishes a finished compile (ReadWrite only; no-op
     * otherwise). First write of a key wins; entries are immutable.
     */
    void store(const CacheKey &key, const Dfg &graph,
               const MachineDesc &machine,
               const CompileResult &result);

    /** Looks up a warm-start hint. @return true when one exists. */
    bool hint(const CacheKey &key, WarmStartHint &out) const;

    /** Records a warm-start hint (ReadWrite only; last write wins). */
    void storeHint(const CacheKey &key, const WarmStartHint &hint);

    /**
     * Runs scrubCacheDir() on this cache's directory, then rebuilds
     * the in-memory entry index and hint store from what survived
     * (ReadWrite only). Not meant to run concurrently with lookups
     * through this object: run it before serving.
     */
    ScrubReport scrub();

    /** Cache-wide accounting (monotonic over this object's life). */
    struct Totals
    {
        long hits = 0;          ///< full-result lookups served
        long misses = 0;        ///< lookups that found nothing usable
        long rejects = 0;       ///< entries dropped by validation
        long hintHits = 0;      ///< hint lookups that found one
        long bytesRead = 0;     ///< entry bytes deserialized
        long bytesWritten = 0;  ///< entry bytes published
        long entries = 0;       ///< entries indexed right now
        long bytesOnDisk = 0;   ///< sum of indexed entry sizes
        long quarantined = 0;   ///< files scrub() moved to corrupt/
    };
    Totals totals() const;

    /**
     * Publishes cache.bytes / cache.entries / cache.rejects (and the
     * cache's own hit/miss view under cache.lookup_*) into a metrics
     * registry. The per-job cache.hits/cache.misses/hint.used/
     * hint.stale counters come from BatchStats, which sees every
     * compile's flags; these are the store-side complements.
     *
     * Adds the *delta* since this cache's previous publish call, so
     * repeated publishes into one cumulative registry (the bench
     * binaries publish after every figure) sum to the current
     * totals instead of multiples of them.
     */
    void publish(MetricsRegistry &registry) const;

  private:
    static constexpr int numShards = 16;

    struct Shard
    {
        mutable std::mutex mutex;
        /** entryId -> on-disk entry size in bytes. */
        std::unordered_map<uint64_t, uint64_t> entries;
    };

    Shard &shardFor(uint64_t id);
    const Shard &shardFor(uint64_t id) const;
    std::string entryPath(const CacheKey &key) const;
    void scanDirectory();
    void loadHints();
    void dropEntry(const CacheKey &key, const std::string &path);

    std::string directory_;
    CacheMode mode_;
    bool ok_ = false;
    std::string openError_;

    Shard shards_[numShards];

    mutable std::mutex hintMutex_;
    std::unordered_map<uint64_t, WarmStartHint> hints_;

    mutable std::mutex statsMutex_;
    mutable Totals totals_;

    mutable std::mutex publishMutex_;
    mutable Totals published_;
    mutable long publishedHints_ = 0;
};

} // namespace cams

#endif // CAMS_PIPELINE_CACHE_COMPILE_CACHE_HH
