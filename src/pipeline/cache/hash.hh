/**
 * @file
 * Content hashing for the persistent compile cache.
 *
 * Two ingredients:
 *
 *  - small mixing primitives (splitmix64 finalizer, ordered fold,
 *    FNV-1a over bytes) shared by every key component;
 *  - canonicalLoopHash(), a renumbering-invariant structural hash of
 *    a loop graph. Isomorphic graphs -- same opcodes, latencies and
 *    dependence structure under any node permutation or renaming --
 *    hash identically, so a cache populated by one suite generator
 *    survives cosmetic reorderings of the input.
 *
 * The canonical hash is a Weisfeiler-Leman style refinement: every
 * node starts from its (opcode, latency) color, then absorbs the
 * sorted multiset of its in- and out-edge signatures (edge latency,
 * distance, neighbor color) for a few rounds, and the graph hash is
 * the fold of the sorted final colors. Collisions between
 * non-isomorphic graphs are astronomically unlikely but *possible*;
 * the cache therefore never trusts the hash alone -- every hit is
 * gated on an exact byte comparison of the stored input (see
 * compile_cache.hh), so a collision degrades to a miss, never to a
 * wrong answer.
 */

#ifndef CAMS_PIPELINE_CACHE_HASH_HH
#define CAMS_PIPELINE_CACHE_HASH_HH

#include <cstdint>
#include <string>

#include "graph/dfg.hh"

namespace cams
{

/** splitmix64 finalizer: a cheap, well-mixed 64-bit permutation. */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Order-sensitive fold of one value into a running hash. */
inline uint64_t
hashCombine(uint64_t seed, uint64_t value)
{
    return mix64(seed ^ (mix64(value) + 0x9e3779b97f4a7c15ULL +
                         (seed << 6) + (seed >> 2)));
}

/** FNV-1a over a byte string, finished through mix64. */
uint64_t hashBytes(const std::string &bytes);

/**
 * Renumbering-invariant structural hash of a loop graph. Node and
 * loop names are deliberately excluded: they do not affect any
 * compile result. See the file comment for the collision policy.
 */
uint64_t canonicalLoopHash(const Dfg &graph);

} // namespace cams

#endif // CAMS_PIPELINE_CACHE_HASH_HH
