/**
 * @file
 * The camsd wire protocol: the messages that travel inside the
 * checksummed frames of pipeline/serve/stream.hh.
 *
 * Every payload is ByteWriter-encoded (little-endian fixed-width
 * ints, length-prefixed strings) and starts with a u32 message type.
 * Decoding is strict: a payload that does not parse completely --
 * truncated fields, unknown type, trailing bytes -- is a protocol
 * error, answered with an Error message and a closed connection.
 *
 * Session shape. A client opens a connection, sends Hello (protocol
 * version + tenant id) and waits for HelloAck. After the handshake
 * it may pipeline any number of Submit/Cancel/Ping messages; the
 * server answers each Submit with exactly one of Accepted+Result,
 * Accepted+Cancelled, or Shed, in any interleaving across requests
 * (responses to different requests are not ordered). Request ids are
 * chosen by the client and scoped to its connection.
 *
 * Loops and machines travel as the cache's exact byte images
 * (packDfg/packMachine) and results as writeCompileResult bytes, so
 * the serve path reuses the one serialization format the system
 * already trusts, and "served result == local compile" is a byte
 * comparison.
 */

#ifndef CAMS_PIPELINE_SERVE_PROTO_HH
#define CAMS_PIPELINE_SERVE_PROTO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/driver.hh"
#include "support/metrics.hh"

namespace cams
{

/**
 * Bumped on any incompatible wire change. v2: per-frame payload
 * checksums (stream.hh), the Submit retry key, and the Shed
 * retry-after hint. v3: Stats/Health polling messages and the
 * Submit trace id + sampling flag.
 */
constexpr uint32_t serveProtoVersion = 3;

/** Frames larger than this are protocol errors on both sides. */
constexpr uint32_t serveMaxFrameBytes = 64u << 20;

/** Wire message types. */
enum class ServeMsgType : uint32_t
{
    Hello = 1,  ///< client: version + tenant id (first message)
    HelloAck,   ///< server: handshake accepted
    Submit,     ///< client: compile one loop on one machine
    Accepted,   ///< server: request admitted to the queue
    Shed,       ///< server: request refused (overload or draining)
    Result,     ///< server: the finished CompileResult
    Cancel,     ///< client: abandon a submitted request
    Cancelled,  ///< server: request ended without a result
    Error,      ///< server: protocol or connection-level failure
    Ping,       ///< client: liveness probe
    Pong,       ///< server: liveness answer

    StatsRequest = 12,  ///< client: poll live telemetry
    StatsReply = 13,    ///< server: counters/histograms/windows
    HealthRequest = 14, ///< client: cheap liveness + readiness probe
    HealthReply = 15,   ///< server: status + queue headroom
};

/** Stable name of a message type (for logs and errors). */
const char *serveMsgTypeName(ServeMsgType type);

/** Client handshake. */
struct HelloMsg
{
    uint32_t version = serveProtoVersion;
    /** Cache namespace this connection compiles under. */
    std::string tenant;
};

/** One compile request. */
struct SubmitMsg
{
    /** Client-chosen id, unique per connection. */
    uint64_t id = 0;

    /**
     * Idempotency key for crash-safe retries; 0 = none. A resubmitted
     * request carries the same non-zero key (unique per logical
     * request across the tenant's connections), and the server dedups
     * against in-flight and recently completed work under that key:
     * the retry joins the running compile or replays the stored
     * result bytes verbatim, so a retried Submit never compiles twice
     * and never returns divergent bytes. Keyed work also survives its
     * client's disconnect -- the compile finishes into the dedup
     * table and waits for the reconnecting client.
     */
    uint64_t retryKey = 0;

    /** False compiles the unified baseline path. */
    bool clustered = true;

    /** SchedulerKind as u32 (Swing = 0, Iterative = 1). */
    uint32_t scheduler = 0;

    /**
     * End-to-end deadline in milliseconds from server receipt; 0 =
     * none. A request still queued past its deadline is answered
     * with a FailureKind::Timeout result without compiling; once
     * running, the remaining budget rides the driver's existing
     * timeBudgetMs plumbing.
     */
    double deadlineMs = 0.0;

    /**
     * Test hook: make the worker sleep this long before compiling.
     * Honored only when the server was configured to allow it
     * (ServeConfig::allowDebugSleep); ignored otherwise. Exists so
     * the queueing tests (cancel mid-queue, drain, overload) can
     * hold a worker busy deterministically.
     */
    double debugSleepMs = 0.0;

    /** packDfg image of the loop. */
    std::string dfgBytes;

    /** packMachine image of the target machine. */
    std::string machineBytes;

    /**
     * Client-generated 64-bit trace correlation id; 0 = none. When
     * @ref traceSampled is also set, the server threads this id
     * through every TraceSink scope the request touches (admission,
     * queue wait, compile phases, cache probes), so one request
     * reads as a single correlated lane from client submit to
     * result. The id travels even when unsampled so logs can still
     * name the request.
     */
    uint64_t traceId = 0;

    /**
     * Head-based sampling decision, made once by the client
     * (--trace-sample=N keeps every Nth request) and honored by the
     * server: only sampled requests record trace events.
     */
    bool traceSampled = false;
};

/** One counter in a StatsReply: cumulative plus recent windows. */
struct StatsCounter
{
    std::string name;
    int64_t total = 0;  ///< since process start
    int64_t last1m = 0; ///< last-1-minute delta
    int64_t last5m = 0; ///< last-5-minutes delta
};

/** One distribution in a StatsReply. */
struct StatsHistogram
{
    std::string name;
    HistogramSummary total;  ///< since process start
    HistogramSummary last1m; ///< last-1-minute window
    HistogramSummary last5m; ///< last-5-minutes window
};

/** Per-tenant request breakdown in a StatsReply. */
struct TenantStats
{
    std::string tenant;
    int64_t submitted = 0;
    int64_t completed = 0;
    int64_t shed = 0;
    int64_t cacheHits = 0;
};

/** Live telemetry snapshot of a running daemon. */
struct StatsReplyMsg
{
    uint64_t token = 0; ///< echo of the request token
    double uptimeSeconds = 0.0;
    double windowSeconds = 0.0; ///< live-window span of the registry
    uint32_t queueDepth = 0;
    uint32_t inFlight = 0;
    uint32_t workers = 0;
    uint32_t queueCapacity = 0;
    bool draining = false;
    std::vector<StatsCounter> counters;
    std::vector<StatsHistogram> histograms;
    std::vector<TenantStats> tenants;
};

/** Liveness + readiness answer. */
struct HealthReplyMsg
{
    uint64_t token = 0;
    std::string status; ///< "ok" or "draining"
    uint32_t version = 0;
    double uptimeSeconds = 0.0;
    uint32_t queueDepth = 0;
    uint32_t queueCapacity = 0;
    uint32_t inFlight = 0;
};

/** Decoded client -> server message. */
struct ClientMsg
{
    ServeMsgType type = ServeMsgType::Hello;
    HelloMsg hello;
    SubmitMsg submit;
    uint64_t id = 0;    ///< Cancel target
    uint64_t token = 0; ///< Ping / StatsRequest / HealthRequest payload
};

/** Decoded server -> client message. */
struct ServerMsg
{
    ServeMsgType type = ServeMsgType::Error;
    uint64_t id = 0; ///< request id (0 = connection-level)

    // HelloAck
    uint32_t version = 0;
    uint32_t workers = 0;
    uint32_t queueCapacity = 0;

    // Accepted / Shed
    uint32_t queueDepth = 0;
    std::string reason;       ///< Shed: "queue_full" or "draining"
    double retryAfterMs = 0.0; ///< Shed: suggested retry delay (0 = now)

    // Result
    bool fromCache = false;
    bool hintUsed = false;
    double queueMs = 0.0;   ///< admission-to-dequeue wait
    double compileMs = 0.0; ///< worker time incl. cache probe
    std::string resultBytes;

    // Cancelled
    bool wasQueued = false; ///< true: removed before running

    // Error
    std::string message;

    // Pong / StatsReply / HealthReply correlation
    uint64_t token = 0;

    // StatsReply
    StatsReplyMsg stats;

    // HealthReply
    HealthReplyMsg health;
};

// Client-side encoders.
std::string encodeHello(const HelloMsg &msg);
std::string encodeSubmit(const SubmitMsg &msg);
std::string encodeCancel(uint64_t id);
std::string encodePing(uint64_t token);
std::string encodeStatsRequest(uint64_t token);
std::string encodeHealthRequest(uint64_t token);

// Server-side encoders.
std::string encodeHelloAck(uint32_t workers, uint32_t queueCapacity);
std::string encodeAccepted(uint64_t id, uint32_t queueDepth);
std::string encodeShed(uint64_t id, const std::string &reason,
                       uint32_t queueDepth, double retryAfterMs);
std::string encodeResult(uint64_t id, const CompileResult &result,
                         double queueMs, double compileMs);

/**
 * encodeResult() from pre-serialized writeCompileResult bytes, for
 * replaying a deduplicated result without re-decoding it.
 */
std::string encodeResultBytes(uint64_t id, bool fromCache,
                              bool hintUsed, double queueMs,
                              double compileMs,
                              const std::string &resultBytes);
std::string encodeCancelled(uint64_t id, bool wasQueued);
std::string encodeError(uint64_t id, const std::string &message);
std::string encodePong(uint64_t token);
std::string encodeStatsReply(const StatsReplyMsg &msg);
std::string encodeHealthReply(const HealthReplyMsg &msg);

/** Parses a client payload; false = protocol error. */
bool decodeClientMsg(const std::string &payload, ClientMsg &out);

/**
 * Parses a server payload; false = protocol error. A Result's
 * resultBytes are passed through undecoded -- callers that need the
 * CompileResult run readCompileResult themselves (and the load
 * generator compares the raw bytes without ever decoding).
 */
bool decodeServerMsg(const std::string &payload, ServerMsg &out);

} // namespace cams

#endif // CAMS_PIPELINE_SERVE_PROTO_HH
