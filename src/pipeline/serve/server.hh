/**
 * @file
 * camsd's engine: a long-running compile server over a Unix-domain
 * socket, built from the pieces PRs 1-5 already hardened -- the
 * single-compile driver, the persistent compile cache, and the
 * metrics registry.
 *
 * Threading model. One accept thread hands each connection to its
 * own reader thread; readers perform admission and drop accepted
 * requests into one bounded FIFO; a fixed pool of compile workers
 * drains it. Responses are written under a per-connection mutex, so
 * workers and the reader interleave whole frames, never bytes.
 *
 * Admission control. The queue is strictly bounded
 * (ServeConfig::queueCapacity). A Submit that arrives with the queue
 * full is answered with Shed("queue_full") immediately -- explicit
 * backpressure the client can meter itself by -- and after drain
 * begins every Submit gets Shed("draining"). Admission and the
 * Accepted/Shed reply happen under the queue lock, so a client never
 * observes a Result before its Accepted.
 *
 * Deadlines. A request may carry an end-to-end deadline. Expiry
 * while still queued produces a classified FailureKind::Timeout
 * result without compiling; once running, the remaining budget rides
 * the driver's CompileOptions::timeBudgetMs plumbing. The budget
 * only shrinks below the server-wide compile budget when the
 * deadline demands it, which keeps cache keys (which include the
 * budget) stable across ordinary requests.
 *
 * Multi-tenancy. The Hello handshake names a tenant; each tenant
 * gets its own CompileCache directory under ServeConfig::cacheRoot
 * (own .cce store, own hints.log) *and* its id salted into every
 * CacheKey (CompileOptions::cacheSalt), so namespaces stay disjoint
 * even if two tenants were ever pointed at one directory.
 *
 * Shutdown. requestDrain() stops accepting connections and sheds new
 * submits; queued and in-flight work runs to completion and every
 * response is delivered before waitDrained() returns. stop() then
 * tears the threads down. SIGTERM in camsd maps to exactly this
 * sequence.
 */

#ifndef CAMS_PIPELINE_SERVE_SERVER_HH
#define CAMS_PIPELINE_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/cache/compile_cache.hh"
#include "pipeline/driver.hh"
#include "pipeline/serve/proto.hh"
#include "support/metrics.hh"
#include "support/socket.hh"

namespace cams
{

/** Everything a CamsServer needs to run. */
struct ServeConfig
{
    /** Unix-domain socket path to listen on. */
    std::string socketPath;

    /** Compile worker threads. */
    int workers = 2;

    /** Bounded admission queue capacity (excludes in-flight work). */
    int queueCapacity = 64;

    /**
     * Root directory of the per-tenant compile caches; empty
     * disables caching. Tenant <t> lives in <cacheRoot>/<t> with its
     * own entry store and hint log.
     */
    std::string cacheRoot;
    CacheMode cacheMode = CacheMode::ReadWrite;

    /**
     * Per-compile wall-clock budget (CompileOptions::timeBudgetMs)
     * applied to every served compile; 0 = none. Requests whose
     * deadline leaves less than this get the smaller remainder.
     */
    double compileBudgetMs = 5000.0;

    /** Honor SubmitMsg::debugSleepMs (tests only). */
    bool allowDebugSleep = false;

    /**
     * Base options of every served compile. scheduler/clustered come
     * from each Submit; cache, cacheSalt and timeBudgetMs are
     * overwritten per request. Clients that want byte-identical
     * local reproduction must compile with these same options.
     */
    CompileOptions baseOptions;
};

/** Monotonic serve-side event counts (also in the metrics registry). */
struct ServeStats
{
    long connections = 0;      ///< handshakes completed
    long accepted = 0;         ///< submits admitted to the queue
    long shedFull = 0;         ///< submits refused: queue full
    long shedDraining = 0;     ///< submits refused: draining
    long completed = 0;        ///< Result messages sent
    long compiled = 0;         ///< driver invocations (not shed/expired)
    long cacheHits = 0;        ///< results served from a tenant cache
    long deadlineExpired = 0;  ///< Timeout results for queue expiry
    long cancelledQueued = 0;  ///< cancels that removed a queued request
    long cancelledInFlight = 0; ///< cancels that caught a running one
    long protocolErrors = 0;   ///< malformed frames/messages seen
};

/** The compile server. One instance per socket. */
class CamsServer
{
  public:
    explicit CamsServer(ServeConfig config);

    /** Calls stop(). */
    ~CamsServer();

    CamsServer(const CamsServer &) = delete;
    CamsServer &operator=(const CamsServer &) = delete;

    /** Binds the socket and launches the threads. */
    bool start(std::string &error);

    /**
     * Begins graceful drain: the listener closes, new submits on
     * existing connections are shed, queued and running work
     * completes normally. Idempotent; safe from any thread (but not
     * from a signal handler -- camsd forwards signals via a pipe).
     */
    void requestDrain();

    /** Blocks until the queue is empty and no compile is running. */
    void waitDrained();

    /** Full teardown: drain, close connections, join every thread. */
    void stop();

    /** Current event counts. */
    ServeStats stats() const;

    /**
     * Snapshot of the server's metrics registry: the ServeStats
     * counters under serve.*, plus serve.queue_ms / serve.compile_ms
     * wait and service histograms (p50/p90/p99).
     */
    std::string metricsJson() const;

    const ServeConfig &config() const { return config_; }

  private:
    struct Conn
    {
        SocketFd fd;
        std::mutex writeMutex;
        std::string tenant;
        std::atomic<bool> alive{true};
    };

    struct Request
    {
        std::shared_ptr<Conn> conn;
        SubmitMsg msg;
        int64_t arrivalMicros = 0;
        std::atomic<bool> cancelled{false};
    };

    void acceptLoop();
    void connectionLoop(std::shared_ptr<Conn> conn);
    void workerLoop();
    void process(const std::shared_ptr<Request> &request);
    void dropConnection(const std::shared_ptr<Conn> &conn);

    /** Whole-frame send; marks the connection dead on failure. */
    void send(Conn &conn, const std::string &payload);

    bool handleSubmit(const std::shared_ptr<Conn> &conn,
                      const SubmitMsg &msg);
    void handleCancel(const std::shared_ptr<Conn> &conn, uint64_t id);

    /** Lazily opened per-tenant cache; null when caching is off. */
    CompileCache *tenantCache(const std::string &tenant);

    void notifyIfDrained();

    ServeConfig config_;
    UnixListener listener_;

    std::thread acceptThread_;
    std::vector<std::thread> workerThreads_;

    mutable std::mutex queueMutex_;
    std::condition_variable workAvailable_;
    std::condition_variable drainedCv_;
    std::deque<std::shared_ptr<Request>> queue_;
    std::vector<std::shared_ptr<Request>> inFlight_;
    bool draining_ = false;
    bool stopping_ = false;

    std::mutex connMutex_;
    std::vector<std::shared_ptr<Conn>> conns_;
    int activeReaders_ = 0;
    std::condition_variable readersDone_;

    mutable std::mutex cacheMutex_;
    std::map<std::string, std::unique_ptr<CompileCache>> tenantCaches_;

    mutable MetricsRegistry registry_;
    std::atomic<bool> started_{false};
};

/** Filesystem-safe tenant directory name ([A-Za-z0-9_-], else '_';
 *  empty maps to "default"). */
std::string sanitizeTenant(const std::string &tenant);

} // namespace cams

#endif // CAMS_PIPELINE_SERVE_SERVER_HH
