/**
 * @file
 * camsd's engine: a long-running compile server over a Unix-domain
 * socket, built from the pieces PRs 1-5 already hardened -- the
 * single-compile driver, the persistent compile cache, and the
 * metrics registry.
 *
 * Threading model. One accept thread hands each connection to its
 * own reader thread; readers perform admission and drop accepted
 * requests into one bounded FIFO; a fixed pool of compile workers
 * drains it. Responses are written under a per-connection mutex, so
 * workers and the reader interleave whole frames, never bytes.
 *
 * Admission control. The queue is strictly bounded
 * (ServeConfig::queueCapacity). A Submit that arrives with the queue
 * full is answered with Shed("queue_full") immediately -- explicit
 * backpressure the client can meter itself by -- and after drain
 * begins every Submit gets Shed("draining"). Admission and the
 * Accepted/Shed reply happen under the queue lock, so a client never
 * observes a Result before its Accepted.
 *
 * Deadlines. A request may carry an end-to-end deadline. Expiry
 * while still queued produces a classified FailureKind::Timeout
 * result without compiling; once running, the remaining budget rides
 * the driver's CompileOptions::timeBudgetMs plumbing. The budget
 * only shrinks below the server-wide compile budget when the
 * deadline demands it, which keeps cache keys (which include the
 * budget) stable across ordinary requests.
 *
 * Multi-tenancy. The Hello handshake names a tenant; each tenant
 * gets its own CompileCache directory under ServeConfig::cacheRoot
 * (own .cce store, own hints.log) *and* its id salted into every
 * CacheKey (CompileOptions::cacheSalt), so namespaces stay disjoint
 * even if two tenants were ever pointed at one directory.
 *
 * Shutdown. requestDrain() stops accepting connections and sheds new
 * submits; queued and in-flight work runs to completion and every
 * response is delivered before waitDrained() returns. stop() then
 * tears the threads down. SIGTERM in camsd maps to exactly this
 * sequence.
 */

#ifndef CAMS_PIPELINE_SERVE_SERVER_HH
#define CAMS_PIPELINE_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/cache/compile_cache.hh"
#include "pipeline/driver.hh"
#include "pipeline/serve/proto.hh"
#include "pipeline/serve/stream.hh"
#include "support/metrics.hh"
#include "support/socket.hh"
#include "support/trace.hh"

namespace cams
{

/** Everything a CamsServer needs to run. */
struct ServeConfig
{
    /** Unix-domain socket path to listen on. */
    std::string socketPath;

    /** Compile worker threads. */
    int workers = 2;

    /** Bounded admission queue capacity (excludes in-flight work). */
    int queueCapacity = 64;

    /**
     * Root directory of the per-tenant compile caches; empty
     * disables caching. Tenant <t> lives in <cacheRoot>/<t> with its
     * own entry store and hint log.
     */
    std::string cacheRoot;
    CacheMode cacheMode = CacheMode::ReadWrite;

    /**
     * Per-compile wall-clock budget (CompileOptions::timeBudgetMs)
     * applied to every served compile; 0 = none. Requests whose
     * deadline leaves less than this get the smaller remainder.
     */
    double compileBudgetMs = 5000.0;

    /** Honor SubmitMsg::debugSleepMs (tests only). */
    bool allowDebugSleep = false;

    /**
     * Mid-frame read deadline per connection in milliseconds (0 =
     * none). Idle connections wait forever; a peer that starts a
     * frame and stalls -- slow-loris -- is disconnected after this
     * budget. Must comfortably exceed any chaos stall in tests.
     */
    double readTimeoutMs = 5000.0;

    /**
     * Hung-compile watchdog in milliseconds (0 = off). An in-flight
     * request still unanswered this long after dequeue is answered
     * with a classified FailureKind::Timeout result; the worker's
     * eventual completion is suppressed. The worker thread itself is
     * never killed (that is not safe), so a truly wedged compile
     * still occupies its thread -- the watchdog unwedges the
     * *client*, not the pool.
     */
    double watchdogMs = 0.0;

    /** Completed idempotency records kept for retried Submits. */
    int dedupCapacity = 4096;

    /**
     * Scrub every tenant cache directory under cacheRoot on start(),
     * quarantining entries torn by a previous crash.
     */
    bool scrubOnStart = true;

    /** Server-side outbound chaos injection (tests/harness only). */
    ChaosConfig chaos;

    /**
     * Request-trace sink (null = tracing off). Submits that arrive
     * with traceSampled set record their admission, queue wait and
     * compile phases into it, tagged "req-<traceId>", so one
     * request's server-side life is a correlated lane in the Chrome
     * trace. camsd owns the sink (bounded ring) and writes it at
     * shutdown.
     */
    TraceSink *traceSink = nullptr;

    /**
     * Base options of every served compile. scheduler/clustered come
     * from each Submit; cache, cacheSalt and timeBudgetMs are
     * overwritten per request. Clients that want byte-identical
     * local reproduction must compile with these same options.
     */
    CompileOptions baseOptions;
};

/** Monotonic serve-side event counts (also in the metrics registry). */
struct ServeStats
{
    long connections = 0;      ///< handshakes completed
    long accepted = 0;         ///< submits admitted to the queue
    long shedFull = 0;         ///< submits refused: queue full
    long shedDraining = 0;     ///< submits refused: draining
    long completed = 0;        ///< Result messages sent
    long compiled = 0;         ///< driver invocations (not shed/expired)
    long cacheHits = 0;        ///< results served from a tenant cache
    long deadlineExpired = 0;  ///< Timeout results for queue expiry
    long cancelledQueued = 0;  ///< cancels that removed a queued request
    long cancelledInFlight = 0; ///< cancels that caught a running one
    long protocolErrors = 0;   ///< malformed frames/messages seen
    long readTimeouts = 0;     ///< connections cut mid-frame (slow peer)
    long watchdogFired = 0;    ///< hung compiles answered as Timeout
    long dedupReplayed = 0;    ///< retried Submits served stored bytes
    long dedupJoined = 0;      ///< retried Submits joined in-flight work
    long dedupMismatch = 0;    ///< retry-key reuse with different payload
    long quarantined = 0;      ///< cache files quarantined at startup
};

/** The compile server. One instance per socket. */
class CamsServer
{
  public:
    explicit CamsServer(ServeConfig config);

    /** Calls stop(). */
    ~CamsServer();

    CamsServer(const CamsServer &) = delete;
    CamsServer &operator=(const CamsServer &) = delete;

    /** Binds the socket and launches the threads. */
    bool start(std::string &error);

    /**
     * Begins graceful drain: the listener closes, new submits on
     * existing connections are shed, queued and running work
     * completes normally. Idempotent; safe from any thread (but not
     * from a signal handler -- camsd forwards signals via a pipe).
     */
    void requestDrain();

    /** Blocks until the queue is empty and no compile is running. */
    void waitDrained();

    /** Full teardown: drain, close connections, join every thread. */
    void stop();

    /** Current event counts. */
    ServeStats stats() const;

    /**
     * Snapshot of the server's metrics registry: the ServeStats
     * counters under serve.*, plus serve.queue_ms / serve.compile_ms
     * wait and service histograms (p50/p90/p99).
     */
    std::string metricsJson() const;

    /**
     * Full live-telemetry snapshot: uptime, queue depth, in-flight
     * count, every counter and histogram (cumulative + last-1m/5m
     * windows) and the per-tenant breakdown. The same snapshot a
     * StatsRequest gets on the wire; camsd's --stats-interval-ms
     * heartbeat renders it locally.
     */
    StatsReplyMsg statsReply(uint64_t token = 0) const;

    /** The answer a HealthRequest gets. */
    HealthReplyMsg healthReply(uint64_t token = 0) const;

    const ServeConfig &config() const { return config_; }

  private:
    /** Interned per-tenant counter ids ("serve.tenant.<t>.*"). */
    struct TenantIds
    {
        MetricsRegistry::MetricId submitted = 0;
        MetricsRegistry::MetricId completed = 0;
        MetricsRegistry::MetricId shed = 0;
        MetricsRegistry::MetricId cacheHits = 0;
    };

    struct Conn
    {
        SocketFd fd;
        std::mutex writeMutex;
        std::string tenant;
        ServeStream stream;
        std::atomic<bool> alive{true};
        /** Set at handshake; points into tenantMetricIds_ (stable). */
        const TenantIds *tenantIds = nullptr;
    };

    /**
     * Idempotency record of one retry-keyed request. Created at
     * admission, completed by whichever of worker and watchdog
     * answers first, and kept (bounded LRU) so late retries replay
     * the exact stored bytes. Guarded by dedupMutex_.
     */
    struct DedupEntry
    {
        uint64_t payloadHash = 0;
        bool done = false;
        bool fromCache = false;
        bool hintUsed = false;
        double queueMs = 0.0;
        double compileMs = 0.0;
        std::string resultBytes;
        /** Retried connections waiting on the in-flight compile. */
        std::vector<std::pair<std::weak_ptr<Conn>, uint64_t>> waiters;
    };

    using DedupKey = std::pair<std::string, uint64_t>;

    struct Request
    {
        std::shared_ptr<Conn> conn;
        SubmitMsg msg;
        std::string tenant;
        /** Copied from the admitting Conn (stable storage). */
        const TenantIds *tenantIds = nullptr;
        int64_t arrivalMicros = 0;
        /** Dequeue time; set/read under queueMutex_ (watchdog). */
        int64_t startedMicros = 0;
        /** Non-null iff msg.retryKey != 0. */
        std::shared_ptr<DedupEntry> dedup;
        std::atomic<bool> cancelled{false};
        /** A terminal answer went out (worker or watchdog). */
        std::atomic<bool> answered{false};
        /** The watchdog gave up on this request's worker. */
        std::atomic<bool> abandoned{false};
    };

    void acceptLoop();
    void connectionLoop(std::shared_ptr<Conn> conn);
    void workerLoop();
    void watchdogLoop();
    void process(const std::shared_ptr<Request> &request);
    void dropConnection(const std::shared_ptr<Conn> &conn);

    /** Whole-frame send; marks the connection dead on failure. */
    void send(Conn &conn, const std::string &payload);

    bool handleSubmit(const std::shared_ptr<Conn> &conn,
                      const SubmitMsg &msg);
    void handleCancel(const std::shared_ptr<Conn> &conn, uint64_t id);

    /** Terminal delivery to the primary connection and all dedup
     *  waiters, at most once per request. */
    void deliverResult(const std::shared_ptr<Request> &request,
                       const CompileResult &result, double queueMs,
                       double compileMs);
    void deliverEncoded(const std::shared_ptr<Request> &request,
                        bool fromCache, bool hintUsed, double queueMs,
                        double compileMs,
                        const std::string &resultBytes);
    void deliverCancelled(const std::shared_ptr<Request> &request,
                          bool wasQueued);
    void deliverError(const std::shared_ptr<Request> &request,
                      const std::string &message);

    /** Drops this request's dedup entry (not done) and returns the
     *  waiters that must still be answered. Takes dedupMutex_. */
    std::vector<std::pair<std::shared_ptr<Conn>, uint64_t>>
    abandonDedup(const std::shared_ptr<Request> &request);

    void evictDedupLocked();

    /** Scrubs every tenant directory under cacheRoot (startup). */
    void scrubTenantCaches();

    /** Lazily opened per-tenant cache; null when caching is off. */
    CompileCache *tenantCache(const std::string &tenant);

    /** Interns (once) and returns a tenant's counter ids. */
    const TenantIds *tenantIds(const std::string &tenant);

    void notifyIfDrained();

    ServeConfig config_;
    UnixListener listener_;

    std::thread acceptThread_;
    std::vector<std::thread> workerThreads_;

    mutable std::mutex queueMutex_;
    std::condition_variable workAvailable_;
    std::condition_variable drainedCv_;
    std::deque<std::shared_ptr<Request>> queue_;
    std::vector<std::shared_ptr<Request>> inFlight_;
    bool draining_ = false;
    bool stopping_ = false;

    std::mutex connMutex_;
    std::vector<std::shared_ptr<Conn>> conns_;
    int activeReaders_ = 0;
    std::condition_variable readersDone_;
    uint64_t connSeq_ = 0; ///< accept thread only (chaos seeding)

    /** After queueMutex_ in lock order; before conn.writeMutex. */
    std::mutex dedupMutex_;
    std::map<DedupKey, std::shared_ptr<DedupEntry>> dedup_;
    std::deque<std::pair<DedupKey, std::shared_ptr<DedupEntry>>>
        dedupDone_;

    std::thread watchdogThread_;
    std::atomic<bool> watchdogStop_{false};

    mutable std::mutex cacheMutex_;
    std::map<std::string, std::unique_ptr<CompileCache>> tenantCaches_;

    mutable MetricsRegistry registry_;
    std::atomic<bool> started_{false};
    int64_t startMicros_ = 0;

    /**
     * Hot-path metric ids, interned once at construction so every
     * per-request recording site is a lock-free id operation -- no
     * name lookup, no registry mutex.
     */
    struct MetricIds
    {
        MetricsRegistry::MetricId connections = 0;
        MetricsRegistry::MetricId accepted = 0;
        MetricsRegistry::MetricId shedFull = 0;
        MetricsRegistry::MetricId shedDraining = 0;
        MetricsRegistry::MetricId completed = 0;
        MetricsRegistry::MetricId compiled = 0;
        MetricsRegistry::MetricId cacheHits = 0;
        MetricsRegistry::MetricId deadlineExpired = 0;
        MetricsRegistry::MetricId cancelledQueued = 0;
        MetricsRegistry::MetricId cancelledInFlight = 0;
        MetricsRegistry::MetricId protocolErrors = 0;
        MetricsRegistry::MetricId readTimeouts = 0;
        MetricsRegistry::MetricId watchdogFired = 0;
        MetricsRegistry::MetricId dedupReplayed = 0;
        MetricsRegistry::MetricId dedupJoined = 0;
        MetricsRegistry::MetricId dedupMismatch = 0;
        MetricsRegistry::MetricId statsPolls = 0;
        MetricsRegistry::MetricId queueMs = 0;    ///< histogram
        MetricsRegistry::MetricId compileMs = 0;  ///< histogram
        MetricsRegistry::MetricId queueDepth = 0; ///< histogram
    };
    MetricIds ids_;

    mutable std::mutex tenantIdsMutex_;
    /** node-stable map: Conn/Request keep pointers into it. */
    std::map<std::string, TenantIds> tenantMetricIds_;
};

/** Filesystem-safe tenant directory name ([A-Za-z0-9_-], else '_';
 *  empty maps to "default"). */
std::string sanitizeTenant(const std::string &tenant);

} // namespace cams

#endif // CAMS_PIPELINE_SERVE_SERVER_HH
