#include "pipeline/serve/proto.hh"

#include "pipeline/cache/serialize.hh"

namespace cams
{

const char *
serveMsgTypeName(ServeMsgType type)
{
    switch (type) {
        case ServeMsgType::Hello:
            return "hello";
        case ServeMsgType::HelloAck:
            return "hello_ack";
        case ServeMsgType::Submit:
            return "submit";
        case ServeMsgType::Accepted:
            return "accepted";
        case ServeMsgType::Shed:
            return "shed";
        case ServeMsgType::Result:
            return "result";
        case ServeMsgType::Cancel:
            return "cancel";
        case ServeMsgType::Cancelled:
            return "cancelled";
        case ServeMsgType::Error:
            return "error";
        case ServeMsgType::Ping:
            return "ping";
        case ServeMsgType::Pong:
            return "pong";
        case ServeMsgType::StatsRequest:
            return "stats_request";
        case ServeMsgType::StatsReply:
            return "stats_reply";
        case ServeMsgType::HealthRequest:
            return "health_request";
        case ServeMsgType::HealthReply:
            return "health_reply";
    }
    return "unknown";
}

namespace
{

void
writeType(ByteWriter &writer, ServeMsgType type)
{
    writer.u32(static_cast<uint32_t>(type));
}

} // namespace

std::string
encodeHello(const HelloMsg &msg)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::Hello);
    writer.u32(msg.version);
    writer.str(msg.tenant);
    return writer.take();
}

std::string
encodeSubmit(const SubmitMsg &msg)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::Submit);
    writer.u64(msg.id);
    writer.u64(msg.retryKey);
    writer.u32(msg.clustered ? 1 : 0);
    writer.u32(msg.scheduler);
    writer.f64(msg.deadlineMs);
    writer.f64(msg.debugSleepMs);
    writer.str(msg.dfgBytes);
    writer.str(msg.machineBytes);
    writer.u64(msg.traceId);
    writer.u32(msg.traceSampled ? 1 : 0);
    return writer.take();
}

std::string
encodeCancel(uint64_t id)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::Cancel);
    writer.u64(id);
    return writer.take();
}

std::string
encodePing(uint64_t token)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::Ping);
    writer.u64(token);
    return writer.take();
}

std::string
encodeStatsRequest(uint64_t token)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::StatsRequest);
    writer.u64(token);
    return writer.take();
}

std::string
encodeHealthRequest(uint64_t token)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::HealthRequest);
    writer.u64(token);
    return writer.take();
}

std::string
encodeHelloAck(uint32_t workers, uint32_t queueCapacity)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::HelloAck);
    writer.u32(serveProtoVersion);
    writer.u32(workers);
    writer.u32(queueCapacity);
    return writer.take();
}

std::string
encodeAccepted(uint64_t id, uint32_t queueDepth)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::Accepted);
    writer.u64(id);
    writer.u32(queueDepth);
    return writer.take();
}

std::string
encodeShed(uint64_t id, const std::string &reason, uint32_t queueDepth,
           double retryAfterMs)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::Shed);
    writer.u64(id);
    writer.str(reason);
    writer.u32(queueDepth);
    writer.f64(retryAfterMs);
    return writer.take();
}

std::string
encodeResult(uint64_t id, const CompileResult &result, double queueMs,
             double compileMs)
{
    ByteWriter body;
    writeCompileResult(body, result);
    return encodeResultBytes(id, result.fromCache, result.hintUsed,
                             queueMs, compileMs, body.take());
}

std::string
encodeResultBytes(uint64_t id, bool fromCache, bool hintUsed,
                  double queueMs, double compileMs,
                  const std::string &resultBytes)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::Result);
    writer.u64(id);
    writer.u32(fromCache ? 1 : 0);
    writer.u32(hintUsed ? 1 : 0);
    writer.f64(queueMs);
    writer.f64(compileMs);
    writer.str(resultBytes);
    return writer.take();
}

std::string
encodeCancelled(uint64_t id, bool wasQueued)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::Cancelled);
    writer.u64(id);
    writer.u32(wasQueued ? 1 : 0);
    return writer.take();
}

std::string
encodeError(uint64_t id, const std::string &message)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::Error);
    writer.u64(id);
    writer.str(message);
    return writer.take();
}

std::string
encodePong(uint64_t token)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::Pong);
    writer.u64(token);
    return writer.take();
}

namespace
{

void
writeSummary(ByteWriter &writer, const HistogramSummary &summary)
{
    writer.u64(summary.count);
    writer.f64(summary.min);
    writer.f64(summary.mean);
    writer.f64(summary.max);
    writer.f64(summary.p50);
    writer.f64(summary.p90);
    writer.f64(summary.p99);
}

bool
readSummary(ByteReader &reader, HistogramSummary &summary)
{
    return reader.u64(summary.count) && reader.f64(summary.min) &&
           reader.f64(summary.mean) && reader.f64(summary.max) &&
           reader.f64(summary.p50) && reader.f64(summary.p90) &&
           reader.f64(summary.p99);
}

} // namespace

std::string
encodeStatsReply(const StatsReplyMsg &msg)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::StatsReply);
    writer.u64(msg.token);
    writer.f64(msg.uptimeSeconds);
    writer.f64(msg.windowSeconds);
    writer.u32(msg.queueDepth);
    writer.u32(msg.inFlight);
    writer.u32(msg.workers);
    writer.u32(msg.queueCapacity);
    writer.u32(msg.draining ? 1 : 0);
    writer.u32(static_cast<uint32_t>(msg.counters.size()));
    for (const StatsCounter &counter : msg.counters) {
        writer.str(counter.name);
        writer.u64(static_cast<uint64_t>(counter.total));
        writer.u64(static_cast<uint64_t>(counter.last1m));
        writer.u64(static_cast<uint64_t>(counter.last5m));
    }
    writer.u32(static_cast<uint32_t>(msg.histograms.size()));
    for (const StatsHistogram &histogram : msg.histograms) {
        writer.str(histogram.name);
        writeSummary(writer, histogram.total);
        writeSummary(writer, histogram.last1m);
        writeSummary(writer, histogram.last5m);
    }
    writer.u32(static_cast<uint32_t>(msg.tenants.size()));
    for (const TenantStats &tenant : msg.tenants) {
        writer.str(tenant.tenant);
        writer.u64(static_cast<uint64_t>(tenant.submitted));
        writer.u64(static_cast<uint64_t>(tenant.completed));
        writer.u64(static_cast<uint64_t>(tenant.shed));
        writer.u64(static_cast<uint64_t>(tenant.cacheHits));
    }
    return writer.take();
}

std::string
encodeHealthReply(const HealthReplyMsg &msg)
{
    ByteWriter writer;
    writeType(writer, ServeMsgType::HealthReply);
    writer.u64(msg.token);
    writer.str(msg.status);
    writer.u32(msg.version);
    writer.f64(msg.uptimeSeconds);
    writer.u32(msg.queueDepth);
    writer.u32(msg.queueCapacity);
    writer.u32(msg.inFlight);
    return writer.take();
}

bool
decodeClientMsg(const std::string &payload, ClientMsg &out)
{
    ByteReader reader(payload);
    uint32_t raw = 0;
    if (!reader.u32(raw))
        return false;
    out.type = static_cast<ServeMsgType>(raw);
    switch (out.type) {
        case ServeMsgType::Hello:
            if (!reader.u32(out.hello.version) ||
                !reader.str(out.hello.tenant))
                return false;
            break;
        case ServeMsgType::Submit: {
            uint32_t clustered = 0;
            SubmitMsg &msg = out.submit;
            if (!reader.u64(msg.id) || !reader.u64(msg.retryKey) ||
                !reader.u32(clustered) ||
                !reader.u32(msg.scheduler) ||
                !reader.f64(msg.deadlineMs) ||
                !reader.f64(msg.debugSleepMs) ||
                !reader.str(msg.dfgBytes) ||
                !reader.str(msg.machineBytes))
                return false;
            msg.clustered = clustered != 0;
            uint32_t sampled = 0;
            if (!reader.u64(msg.traceId) || !reader.u32(sampled))
                return false;
            msg.traceSampled = sampled != 0;
            break;
        }
        case ServeMsgType::Cancel:
            if (!reader.u64(out.id))
                return false;
            break;
        case ServeMsgType::Ping:
        case ServeMsgType::StatsRequest:
        case ServeMsgType::HealthRequest:
            if (!reader.u64(out.token))
                return false;
            break;
        default:
            return false; // server-to-client or unknown type
    }
    return reader.atEnd();
}

bool
decodeServerMsg(const std::string &payload, ServerMsg &out)
{
    ByteReader reader(payload);
    uint32_t raw = 0;
    if (!reader.u32(raw))
        return false;
    out.type = static_cast<ServeMsgType>(raw);
    switch (out.type) {
        case ServeMsgType::HelloAck:
            if (!reader.u32(out.version) || !reader.u32(out.workers) ||
                !reader.u32(out.queueCapacity))
                return false;
            break;
        case ServeMsgType::Accepted:
            if (!reader.u64(out.id) || !reader.u32(out.queueDepth))
                return false;
            break;
        case ServeMsgType::Shed:
            if (!reader.u64(out.id) || !reader.str(out.reason) ||
                !reader.u32(out.queueDepth) ||
                !reader.f64(out.retryAfterMs))
                return false;
            break;
        case ServeMsgType::Result: {
            uint32_t fromCache = 0;
            uint32_t hintUsed = 0;
            if (!reader.u64(out.id) || !reader.u32(fromCache) ||
                !reader.u32(hintUsed) || !reader.f64(out.queueMs) ||
                !reader.f64(out.compileMs) ||
                !reader.str(out.resultBytes))
                return false;
            out.fromCache = fromCache != 0;
            out.hintUsed = hintUsed != 0;
            break;
        }
        case ServeMsgType::Cancelled: {
            uint32_t wasQueued = 0;
            if (!reader.u64(out.id) || !reader.u32(wasQueued))
                return false;
            out.wasQueued = wasQueued != 0;
            break;
        }
        case ServeMsgType::Error:
            if (!reader.u64(out.id) || !reader.str(out.message))
                return false;
            break;
        case ServeMsgType::Pong:
            if (!reader.u64(out.token))
                return false;
            break;
        case ServeMsgType::StatsReply: {
            StatsReplyMsg &msg = out.stats;
            uint32_t draining = 0;
            uint32_t counters = 0;
            if (!reader.u64(msg.token) ||
                !reader.f64(msg.uptimeSeconds) ||
                !reader.f64(msg.windowSeconds) ||
                !reader.u32(msg.queueDepth) ||
                !reader.u32(msg.inFlight) ||
                !reader.u32(msg.workers) ||
                !reader.u32(msg.queueCapacity) ||
                !reader.u32(draining) || !reader.u32(counters))
                return false;
            // Element counts are bounded by the payload itself (every
            // entry costs multiple bytes), so a corrupt count cannot
            // drive a huge allocation before the read fails.
            if (counters > payload.size())
                return false;
            msg.draining = draining != 0;
            msg.counters.resize(counters);
            for (StatsCounter &counter : msg.counters) {
                uint64_t total = 0;
                uint64_t last1m = 0;
                uint64_t last5m = 0;
                if (!reader.str(counter.name) ||
                    !reader.u64(total) || !reader.u64(last1m) ||
                    !reader.u64(last5m))
                    return false;
                counter.total = static_cast<int64_t>(total);
                counter.last1m = static_cast<int64_t>(last1m);
                counter.last5m = static_cast<int64_t>(last5m);
            }
            uint32_t histograms = 0;
            if (!reader.u32(histograms) ||
                histograms > payload.size())
                return false;
            msg.histograms.resize(histograms);
            for (StatsHistogram &histogram : msg.histograms) {
                if (!reader.str(histogram.name) ||
                    !readSummary(reader, histogram.total) ||
                    !readSummary(reader, histogram.last1m) ||
                    !readSummary(reader, histogram.last5m))
                    return false;
            }
            uint32_t tenants = 0;
            if (!reader.u32(tenants) || tenants > payload.size())
                return false;
            msg.tenants.resize(tenants);
            for (TenantStats &tenant : msg.tenants) {
                uint64_t submitted = 0;
                uint64_t completed = 0;
                uint64_t shed = 0;
                uint64_t cacheHits = 0;
                if (!reader.str(tenant.tenant) ||
                    !reader.u64(submitted) ||
                    !reader.u64(completed) || !reader.u64(shed) ||
                    !reader.u64(cacheHits))
                    return false;
                tenant.submitted = static_cast<int64_t>(submitted);
                tenant.completed = static_cast<int64_t>(completed);
                tenant.shed = static_cast<int64_t>(shed);
                tenant.cacheHits = static_cast<int64_t>(cacheHits);
            }
            out.token = msg.token;
            break;
        }
        case ServeMsgType::HealthReply: {
            HealthReplyMsg &msg = out.health;
            if (!reader.u64(msg.token) || !reader.str(msg.status) ||
                !reader.u32(msg.version) ||
                !reader.f64(msg.uptimeSeconds) ||
                !reader.u32(msg.queueDepth) ||
                !reader.u32(msg.queueCapacity) ||
                !reader.u32(msg.inFlight))
                return false;
            out.token = msg.token;
            break;
        }
        default:
            return false; // client-to-server or unknown type
    }
    return reader.atEnd();
}

} // namespace cams
