#include "pipeline/serve/retry_client.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <vector>

#include <unistd.h>

#include "pipeline/cache/hash.hh"
#include "support/time.hh"

namespace cams
{

namespace
{

/** Distinguishes client instances sharing a process. */
uint64_t
nextClientNonce(uint64_t seed)
{
    static std::atomic<uint64_t> counter{0};
    uint64_t nonce = hashCombine(
        static_cast<uint64_t>(::getpid()),
        counter.fetch_add(1, std::memory_order_relaxed) + 1);
    return mix64(hashCombine(nonce, seed)) | 1u; // never 0
}

std::chrono::steady_clock::time_point
microsTimePoint(int64_t micros)
{
    return std::chrono::steady_clock::time_point(
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::microseconds(micros)));
}

constexpr size_t doneRingCapacity = 8192;

} // namespace

CamsClient::~CamsClient()
{
    close();
}

void
CamsClient::setTerminalHandler(TerminalHandler handler)
{
    std::lock_guard<std::mutex> lock(mutex_);
    terminalHandler_ = std::move(handler);
}

void
CamsClient::setEventHandler(EventHandler handler)
{
    std::lock_guard<std::mutex> lock(mutex_);
    eventHandler_ = std::move(handler);
}

bool
CamsClient::start(const CamsClientConfig &config, std::string &error)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (started_ || closed_) {
            error = "client already started";
            return false;
        }
        config_ = config;
        nonce_ = nextClientNonce(config.retry.seed);
        rng_ = Rng(hashCombine(config.retry.seed, nonce_));
    }
    if (!reconnectLoop(/*initial=*/true)) {
        error = "could not connect to " + config.socketPath +
                " within the connect budget";
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = true;
    reader_ = std::thread(&CamsClient::readerLoop, this);
    timer_ = std::thread(&CamsClient::timerLoop, this);
    return true;
}

bool
CamsClient::submit(SubmitMsg msg)
{
    std::shared_ptr<ServeClient> conn;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_ || closed_ || dead_)
            return false;
        if (msg.retryKey == 0)
            msg.retryKey = nonce_ ^ mix64(msg.id);
        Pending pending;
        pending.msg = msg;
        if (config_.retry.requestBudgetMs > 0.0)
            pending.deadlineMicros =
                nowMicros() + static_cast<int64_t>(
                                  config_.retry.requestBudgetMs * 1000.0);
        const auto inserted = pending_.emplace(msg.id, pending);
        if (!inserted.second)
            return false; // duplicate id
        if (connected_) {
            inserted.first->second.everSent = true;
            conn = conn_;
        }
    }
    if (conn) {
        // A failed send tears the connection down; the reader thread
        // notices and resubmits every pending request on reconnect.
        std::string error;
        conn->submit(msg, error);
    }
    return true;
}

bool
CamsClient::compile(SubmitMsg msg, ServerMsg &out, std::string &error)
{
    const uint64_t id = msg.id;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        waiters_.insert(id);
    }
    if (!submit(std::move(msg))) {
        std::lock_guard<std::mutex> lock(mutex_);
        waiters_.erase(id);
        error = "client closed or gave up";
        return false;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
        return closed_ || delivered_.count(id) != 0;
    });
    waiters_.erase(id);
    const auto it = delivered_.find(id);
    if (it == delivered_.end()) {
        error = "client closed";
        return false;
    }
    out = it->second;
    delivered_.erase(it);
    if (out.type == ServeMsgType::Error) {
        error = out.message;
        return false;
    }
    return true;
}

void
CamsClient::cancel(uint64_t id)
{
    std::shared_ptr<ServeClient> conn;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (connected_)
            conn = conn_;
    }
    if (conn) {
        std::string error;
        conn->cancel(id, error);
    }
}

bool
CamsClient::healthy() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return started_ && !closed_ && !dead_;
}

size_t
CamsClient::pendingCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
}

uint32_t
CamsClient::serverWorkers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return workers_;
}

uint32_t
CamsClient::serverQueueCapacity() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queueCapacity_;
}

CamsClient::Stats
CamsClient::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
CamsClient::close()
{
    std::shared_ptr<ServeClient> conn;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        connected_ = false;
        conn = conn_;
    }
    cv_.notify_all();
    if (conn)
        conn->close();
    if (reader_.joinable())
        reader_.join();
    if (timer_.joinable())
        timer_.join();
}

void
CamsClient::readerLoop()
{
    for (;;) {
        std::shared_ptr<ServeClient> conn;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                return;
            if (connected_)
                conn = conn_;
        }
        if (conn) {
            ServerMsg msg;
            std::string error;
            if (conn->readMsg(msg, error)) {
                handleServerMsg(msg);
                continue;
            }
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                return;
            connected_ = false;
            conn_.reset();
        }
        if (!reconnectLoop(/*initial=*/false))
            return;
    }
}

bool
CamsClient::reconnectLoop(bool initial)
{
    double backoff = config_.retry.initialBackoffMs;
    Deadline budget(config_.retry.connectBudgetMs);
    std::string error;
    for (;;) {
        uint64_t seq = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                return false;
            seq = connSeq_++;
        }
        auto fresh = std::make_shared<ServeClient>();
        if (config_.chaos.any()) {
            ChaosConfig chaos = config_.chaos;
            chaos.seed = hashCombine(config_.chaos.seed, seq);
            fresh->enableChaos(chaos);
        }
        // The handshake answer is one tiny frame. Bound its read
        // separately: a corrupted length prefix would otherwise park
        // this attempt on the full read timeout and could eat the
        // whole outage budget in one bite.
        const double handshakeTimeoutMs =
            config_.retry.readTimeoutMs > 0.0
                ? std::min(config_.retry.readTimeoutMs, 5000.0)
                : 5000.0;
        fresh->setReadTimeoutMs(handshakeTimeoutMs);
        if (fresh->connect(config_.socketPath, config_.tenant, error)) {
            fresh->setReadTimeoutMs(config_.retry.readTimeoutMs);
            std::vector<uint64_t> exhausted;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                if (closed_)
                    return false;
                conn_ = fresh;
                connected_ = true;
                workers_ = fresh->serverWorkers();
                queueCapacity_ = fresh->serverQueueCapacity();
                if (!initial)
                    ++stats_.reconnects;
                const int64_t now = nowMicros();
                for (auto &entry : pending_) {
                    Pending &pending = entry.second;
                    const bool overBudget =
                        pending.deadlineMicros > 0 &&
                        now >= pending.deadlineMicros;
                    if (pending.everSent &&
                        (overBudget ||
                         pending.resubmits >=
                             config_.retry.maxResubmits)) {
                        exhausted.push_back(entry.first);
                        continue;
                    }
                    // Mark due-now; the timer thread does the actual
                    // resubmission. This runs on the reader thread,
                    // which must get back to draining the socket: a
                    // reader that bulk-writes while nobody reads
                    // deadlocks against a server whose writer is
                    // likewise blocked on our full inbound buffer.
                    pending.dueMicros = now;
                }
                for (uint64_t id : exhausted)
                    failPendingLocked(lock, id,
                                      "retry budget exhausted");
            }
            if (!initial)
                emitEvent(0, Event::Reconnect);
            cv_.notify_all();
            return true;
        }
        if (budget.expired()) {
            std::unique_lock<std::mutex> lock(mutex_);
            dead_ = true;
            std::vector<uint64_t> ids;
            ids.reserve(pending_.size());
            for (const auto &entry : pending_)
                ids.push_back(entry.first);
            for (uint64_t id : ids)
                failPendingLocked(lock, id,
                                  "reconnect budget exhausted: " +
                                      error);
            return false;
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            const double jittered =
                backoff *
                (1.0 - config_.retry.jitter * rng_.uniformReal());
            cv_.wait_for(
                lock,
                std::chrono::duration<double, std::milli>(jittered),
                [&] { return closed_; });
            if (closed_)
                return false;
        }
        backoff = std::min(backoff * config_.retry.backoffFactor,
                           config_.retry.maxBackoffMs);
    }
}

void
CamsClient::timerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!closed_) {
        int64_t nextDue = 0;
        for (const auto &entry : pending_) {
            const int64_t due = entry.second.dueMicros;
            if (due > 0 && (nextDue == 0 || due < nextDue))
                nextDue = due;
        }
        if (nextDue == 0) {
            cv_.wait(lock);
            continue;
        }
        cv_.wait_until(lock, microsTimePoint(nextDue));
        if (closed_)
            break;
        const int64_t now = nowMicros();
        std::vector<std::pair<SubmitMsg, bool>> toSend;
        std::vector<uint64_t> toFail;
        for (auto &entry : pending_) {
            Pending &pending = entry.second;
            if (pending.dueMicros == 0 || pending.dueMicros > now)
                continue;
            pending.dueMicros = 0;
            const bool overBudget = pending.deadlineMicros > 0 &&
                                    now >= pending.deadlineMicros;
            if (overBudget ||
                pending.resubmits >= config_.retry.maxResubmits) {
                toFail.push_back(entry.first);
                continue;
            }
            if (!connected_)
                continue; // marked due again on the next reconnect
            const bool isResubmit = pending.everSent;
            if (isResubmit) {
                ++pending.resubmits;
                ++stats_.resubmissions;
            }
            pending.everSent = true;
            toSend.push_back({pending.msg, isResubmit});
        }
        auto conn = conn_;
        for (uint64_t id : toFail)
            failPendingLocked(lock, id, "retry budget exhausted");
        if (!toSend.empty() && conn) {
            lock.unlock();
            for (const auto &[msg, isResubmit] : toSend) {
                if (isResubmit)
                    emitEvent(msg.id, Event::Resubmit);
                std::string error;
                conn->submit(msg, error);
            }
            lock.lock();
        }
    }
}

void
CamsClient::handleServerMsg(const ServerMsg &msg)
{
    switch (msg.type) {
    case ServeMsgType::Accepted:
    case ServeMsgType::Pong:
        return;
    case ServeMsgType::Shed: {
        std::unique_lock<std::mutex> lock(mutex_);
        const auto it = pending_.find(msg.id);
        if (it == pending_.end())
            return;
        if (config_.retry.retryOnShed) {
            Pending &pending = it->second;
            const int64_t now = nowMicros();
            const bool overBudget = pending.deadlineMicros > 0 &&
                                    now >= pending.deadlineMicros;
            if (!overBudget &&
                pending.resubmits < config_.retry.maxResubmits) {
                const double delayMs =
                    std::max(msg.retryAfterMs,
                             backoffForLocked(pending.resubmits));
                pending.dueMicros =
                    now + static_cast<int64_t>(delayMs * 1000.0);
                ++stats_.shedRetries;
                lock.unlock();
                emitEvent(msg.id, Event::ShedRetry);
                cv_.notify_all();
                return;
            }
            failPendingLocked(lock, msg.id,
                              "shed and retry budget exhausted");
            return;
        }
        pending_.erase(it);
        recordDoneLocked(msg.id);
        lock.unlock();
        deliverTerminal(msg);
        return;
    }
    case ServeMsgType::Result:
    case ServeMsgType::Cancelled:
    case ServeMsgType::Error: {
        if (msg.type == ServeMsgType::Error && msg.id == 0)
            return; // connection-level; the read loop sees the close
        std::unique_lock<std::mutex> lock(mutex_);
        const auto it = pending_.find(msg.id);
        if (it == pending_.end()) {
            // A retry raced the original answer: both were served,
            // the second is suppressed here. The server's dedup
            // table guarantees the two carried identical bytes.
            if (doneIds_.count(msg.id) != 0) {
                ++stats_.duplicatesSuppressed;
                lock.unlock();
                emitEvent(msg.id, Event::DuplicateSuppressed);
            }
            return;
        }
        pending_.erase(it);
        recordDoneLocked(msg.id);
        lock.unlock();
        deliverTerminal(msg);
        return;
    }
    default:
        return;
    }
}

void
CamsClient::deliverTerminal(const ServerMsg &msg)
{
    TerminalHandler handler;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (waiters_.count(msg.id) != 0) {
            delivered_[msg.id] = msg;
            cv_.notify_all();
            return;
        }
        handler = terminalHandler_;
    }
    if (handler)
        handler(msg);
}

void
CamsClient::failPendingLocked(std::unique_lock<std::mutex> &lock,
                              uint64_t id, const std::string &message)
{
    pending_.erase(id);
    recordDoneLocked(id);
    ++stats_.gaveUp;
    ServerMsg terminal;
    terminal.type = ServeMsgType::Error;
    terminal.id = id;
    terminal.message = message;
    lock.unlock();
    emitEvent(id, Event::GaveUp);
    deliverTerminal(terminal);
    lock.lock();
}

void
CamsClient::recordDoneLocked(uint64_t id)
{
    if (doneIds_.insert(id).second) {
        doneOrder_.push_back(id);
        while (doneOrder_.size() > doneRingCapacity) {
            doneIds_.erase(doneOrder_.front());
            doneOrder_.pop_front();
        }
    }
}

double
CamsClient::backoffForLocked(int step)
{
    double backoff = config_.retry.initialBackoffMs;
    for (int i = 0; i < step && backoff < config_.retry.maxBackoffMs;
         ++i)
        backoff *= config_.retry.backoffFactor;
    backoff = std::min(backoff, config_.retry.maxBackoffMs);
    return backoff * (1.0 - config_.retry.jitter * rng_.uniformReal());
}

void
CamsClient::emitEvent(uint64_t id, Event event)
{
    EventHandler handler;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        handler = eventHandler_;
    }
    if (handler)
        handler(id, event);
}

} // namespace cams
