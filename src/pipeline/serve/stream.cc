#include "pipeline/serve/stream.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include <sys/socket.h>

#include "pipeline/cache/hash.hh"
#include "support/socket.hh"

namespace cams
{

namespace
{

void
sleepMs(double ms)
{
    if (ms > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double,
                                                          std::milli>(ms));
}

void
putU32(std::string &out, uint32_t value)
{
    out.push_back(static_cast<char>(value & 0xff));
    out.push_back(static_cast<char>((value >> 8) & 0xff));
    out.push_back(static_cast<char>((value >> 16) & 0xff));
    out.push_back(static_cast<char>((value >> 24) & 0xff));
}

void
putU64(std::string &out, uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xff));
}

uint64_t
getU64(const unsigned char *bytes)
{
    uint64_t value = 0;
    for (int i = 7; i >= 0; --i)
        value = (value << 8) | bytes[i];
    return value;
}

} // namespace

const char *
chaosSiteName(ChaosSite site)
{
    switch (site) {
    case ChaosSite::Delay:
        return "delay";
    case ChaosSite::PartialWrite:
        return "partial_write";
    case ChaosSite::BitFlip:
        return "bit_flip";
    case ChaosSite::Stall:
        return "stall";
    case ChaosSite::Disconnect:
        return "disconnect";
    }
    return "?";
}

bool
ChaosConfig::any() const
{
    return pDelay > 0.0 || pPartialWrite > 0.0 || pBitFlip > 0.0 ||
           pStall > 0.0 || pDisconnect > 0.0;
}

ChaosConfig
ChaosConfig::uniform(double p, uint64_t seed)
{
    ChaosConfig config;
    config.seed = seed;
    config.pDelay = p;
    config.pPartialWrite = p;
    config.pBitFlip = p;
    config.pStall = p;
    config.pDisconnect = p;
    return config;
}

void
ServeStream::enableChaos(const ChaosConfig &config)
{
    std::lock_guard<std::mutex> lock(mutex_);
    config_ = config;
    rng_ = Rng(config.seed);
    chaosOn_ = config.any();
}

long
ServeStream::injectedFaults() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    long total = 0;
    for (long count : injected_)
        total += count;
    return total;
}

long
ServeStream::injectedAt(ChaosSite site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return injected_[static_cast<int>(site)];
}

ServeStream::Plan
ServeStream::drawSendPlan(size_t wireBytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Plan plan;
    // One coin per site per frame, in a fixed order, so the fault
    // pattern is a pure function of the seed and frame sequence.
    plan.delay = rng_.chance(config_.pDelay);
    plan.partial = rng_.chance(config_.pPartialWrite);
    plan.bitFlip = rng_.chance(config_.pBitFlip);
    plan.stall = rng_.chance(config_.pStall);
    plan.disconnect = rng_.chance(config_.pDisconnect);
    if (plan.delay) {
        plan.delayMs = config_.delayMs * rng_.uniformReal();
        ++injected_[static_cast<int>(ChaosSite::Delay)];
    }
    if (plan.partial)
        ++injected_[static_cast<int>(ChaosSite::PartialWrite)];
    if (plan.bitFlip) {
        plan.flipBit = static_cast<size_t>(rng_.next()) %
                       (wireBytes * 8);
        ++injected_[static_cast<int>(ChaosSite::BitFlip)];
    }
    if (plan.stall)
        ++injected_[static_cast<int>(ChaosSite::Stall)];
    if (plan.disconnect) {
        plan.cutAt = static_cast<size_t>(rng_.next()) % wireBytes;
        ++injected_[static_cast<int>(ChaosSite::Disconnect)];
    }
    return plan;
}

ServeStream::Plan
ServeStream::drawRecvPlan()
{
    std::lock_guard<std::mutex> lock(mutex_);
    Plan plan;
    // The receive path only injects faults it can act on locally:
    // a delay before reading, or dropping the connection outright.
    plan.delay = rng_.chance(config_.pDelay);
    plan.disconnect = rng_.chance(config_.pDisconnect);
    if (plan.delay) {
        plan.delayMs = config_.delayMs * rng_.uniformReal();
        ++injected_[static_cast<int>(ChaosSite::Delay)];
    }
    if (plan.disconnect)
        ++injected_[static_cast<int>(ChaosSite::Disconnect)];
    return plan;
}

bool
ServeStream::writeFrame(int fd, const std::string &payload,
                        std::string &error)
{
    std::string wire;
    wire.reserve(serveFrameOverhead + payload.size());
    putU32(wire, static_cast<uint32_t>(payload.size()));
    putU64(wire, hashBytes(payload));
    wire.append(payload);

    if (!chaosOn_)
        return sendAll(fd, wire.data(), wire.size(), error);

    const Plan plan = drawSendPlan(wire.size());
    if (plan.delay)
        sleepMs(plan.delayMs);
    if (plan.bitFlip)
        wire[plan.flipBit / 8] ^=
            static_cast<char>(1u << (plan.flipBit % 8));
    if (plan.disconnect) {
        // Send a prefix of the frame, then tear the socket down: the
        // peer sees a frame that starts and never finishes.
        if (plan.cutAt > 0 &&
            !sendAll(fd, wire.data(), plan.cutAt, error))
            return false;
        ::shutdown(fd, SHUT_RDWR);
        error = "chaos: injected disconnect mid-frame";
        return false;
    }
    if (plan.stall) {
        const size_t half = wire.size() / 2;
        if (!sendAll(fd, wire.data(), half, error))
            return false;
        sleepMs(config_.stallMs);
        return sendAll(fd, wire.data() + half, wire.size() - half,
                       error);
    }
    if (plan.partial) {
        // Dribble the frame in tiny chunks to exercise reassembly.
        std::lock_guard<std::mutex> lock(mutex_);
        size_t sent = 0;
        while (sent < wire.size()) {
            const size_t chunk =
                std::min(wire.size() - sent,
                         static_cast<size_t>(rng_.uniformInt(1, 23)));
            if (!sendAll(fd, wire.data() + sent, chunk, error))
                return false;
            sent += chunk;
        }
        return true;
    }
    return sendAll(fd, wire.data(), wire.size(), error);
}

bool
ServeStream::readFrame(int fd, std::string &payload, uint32_t maxBytes,
                       double midFrameTimeoutMs, std::string &error,
                       bool *cleanEof, bool *timedOut)
{
    if (cleanEof)
        *cleanEof = false;
    if (timedOut)
        *timedOut = false;

    if (chaosOn_) {
        const Plan plan = drawRecvPlan();
        if (plan.delay)
            sleepMs(plan.delayMs);
        if (plan.disconnect) {
            ::shutdown(fd, SHUT_RDWR);
            error = "chaos: injected disconnect before read";
            return false;
        }
    }

    // The first byte of a frame may take arbitrarily long (an idle
    // peer is healthy); everything after it is on the clock.
    unsigned char header[serveFrameOverhead];
    if (!recvAll(fd, header, 1, error, cleanEof))
        return false;
    if (!recvAllDeadline(fd, header + 1, sizeof(header) - 1,
                         midFrameTimeoutMs, error, nullptr, timedOut))
        return false;

    const uint32_t size = static_cast<uint32_t>(header[0]) |
                          static_cast<uint32_t>(header[1]) << 8 |
                          static_cast<uint32_t>(header[2]) << 16 |
                          static_cast<uint32_t>(header[3]) << 24;
    const uint64_t checksum = getU64(header + 4);
    if (size > maxBytes) {
        error = "frame of " + std::to_string(size) +
                " bytes exceeds the " + std::to_string(maxBytes) +
                "-byte ceiling";
        return false;
    }
    payload.resize(size);
    if (size > 0 &&
        !recvAllDeadline(fd, payload.data(), size, midFrameTimeoutMs,
                         error, nullptr, timedOut))
        return false;
    if (hashBytes(payload) != checksum) {
        error = "frame checksum mismatch";
        return false;
    }
    return true;
}

} // namespace cams
