#include "pipeline/serve/server.hh"

#include <algorithm>
#include <chrono>
#include <exception>

#include "pipeline/cache/hash.hh"
#include "pipeline/cache/serialize.hh"
#include "support/logging.hh"
#include "support/time.hh"

namespace cams
{

std::string
sanitizeTenant(const std::string &tenant)
{
    if (tenant.empty())
        return "default";
    std::string safe;
    safe.reserve(tenant.size());
    for (const char c : tenant) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        safe.push_back(ok ? c : '_');
    }
    return safe;
}

CamsServer::CamsServer(ServeConfig config) : config_(std::move(config))
{
    if (config_.workers < 1)
        config_.workers = 1;
    if (config_.queueCapacity < 1)
        config_.queueCapacity = 1;
}

CamsServer::~CamsServer()
{
    stop();
}

bool
CamsServer::start(std::string &error)
{
    if (started_.load()) {
        error = "server already started";
        return false;
    }
    if (!listener_.open(config_.socketPath, error))
        return false;
    workerThreads_.reserve(config_.workers);
    for (int i = 0; i < config_.workers; ++i)
        workerThreads_.emplace_back([this] { workerLoop(); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
    started_.store(true);
    return true;
}

void
CamsServer::requestDrain()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (draining_)
            return;
        draining_ = true;
    }
    // Unblocks acceptLoop; already-queued work keeps flowing.
    listener_.close();
    std::lock_guard<std::mutex> lock(queueMutex_);
    notifyIfDrained();
}

void
CamsServer::waitDrained()
{
    std::unique_lock<std::mutex> lock(queueMutex_);
    drainedCv_.wait(lock, [this] {
        return queue_.empty() && inFlight_.empty();
    });
}

void
CamsServer::stop()
{
    if (!started_.load())
        return;
    requestDrain();
    waitDrained();
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &worker : workerThreads_)
        worker.join();
    workerThreads_.clear();
    if (acceptThread_.joinable())
        acceptThread_.join();
    {
        std::unique_lock<std::mutex> lock(connMutex_);
        for (const std::shared_ptr<Conn> &conn : conns_) {
            conn->alive.store(false);
            conn->fd.shutdownBoth();
        }
        readersDone_.wait(lock,
                          [this] { return activeReaders_ == 0; });
        conns_.clear();
    }
    started_.store(false);
}

ServeStats
CamsServer::stats() const
{
    ServeStats stats;
    stats.connections = registry_.counter("serve.connections");
    stats.accepted = registry_.counter("serve.accepted");
    stats.shedFull = registry_.counter("serve.shed_full");
    stats.shedDraining = registry_.counter("serve.shed_draining");
    stats.completed = registry_.counter("serve.completed");
    stats.compiled = registry_.counter("serve.compiled");
    stats.cacheHits = registry_.counter("serve.cache_hits");
    stats.deadlineExpired =
        registry_.counter("serve.deadline_expired");
    stats.cancelledQueued =
        registry_.counter("serve.cancelled_queued");
    stats.cancelledInFlight =
        registry_.counter("serve.cancelled_in_flight");
    stats.protocolErrors =
        registry_.counter("serve.protocol_errors");
    return stats;
}

std::string
CamsServer::metricsJson() const
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    for (const auto &[tenant, cache] : tenantCaches_) {
        (void)tenant;
        if (cache && cache->enabled())
            cache->publish(registry_);
    }
    return registry_.toJson();
}

void
CamsServer::acceptLoop()
{
    for (;;) {
        std::string error;
        const int fd = listener_.acceptFd(error);
        if (fd < 0)
            return; // listener closed (drain) or fatal accept error
        auto conn = std::make_shared<Conn>();
        conn->fd = SocketFd(fd);
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            // Refuse connections that raced the drain: the reader
            // would shed every submit anyway.
            bool draining;
            {
                std::lock_guard<std::mutex> qlock(queueMutex_);
                draining = draining_;
            }
            if (draining)
                continue; // conn drops; client sees EOF
            conns_.push_back(conn);
            ++activeReaders_;
        }
        std::thread([this, conn] { connectionLoop(conn); }).detach();
    }
}

void
CamsServer::send(Conn &conn, const std::string &payload)
{
    if (!conn.alive.load())
        return;
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    std::string error;
    if (!writeFrame(conn.fd.fd(), payload, error))
        conn.alive.store(false);
}

void
CamsServer::connectionLoop(std::shared_ptr<Conn> conn)
{
    std::string payload;
    std::string error;
    bool cleanEof = false;

    // The handshake must come first and must match our version.
    bool handshakeOk = false;
    if (readFrame(conn->fd.fd(), payload, serveMaxFrameBytes, error,
                  &cleanEof)) {
        ClientMsg msg;
        if (!decodeClientMsg(payload, msg) ||
            msg.type != ServeMsgType::Hello) {
            registry_.add("serve.protocol_errors");
            send(*conn, encodeError(0, "expected hello"));
        } else if (msg.hello.version != serveProtoVersion) {
            registry_.add("serve.protocol_errors");
            send(*conn,
                 encodeError(0, detail::concat(
                                    "protocol version mismatch: "
                                    "server ",
                                    serveProtoVersion, ", client ",
                                    msg.hello.version)));
        } else {
            conn->tenant = msg.hello.tenant;
            registry_.add("serve.connections");
            send(*conn,
                 encodeHelloAck(
                     static_cast<uint32_t>(config_.workers),
                     static_cast<uint32_t>(config_.queueCapacity)));
            handshakeOk = true;
        }
    } else if (!cleanEof) {
        registry_.add("serve.protocol_errors");
    }

    while (handshakeOk && conn->alive.load()) {
        if (!readFrame(conn->fd.fd(), payload, serveMaxFrameBytes,
                       error, &cleanEof)) {
            // Clean EOF and torn sockets both just end the session;
            // an oversized frame is the peer's protocol bug.
            if (!cleanEof && error.find("ceiling") != std::string::npos) {
                registry_.add("serve.protocol_errors");
                send(*conn, encodeError(0, error));
            }
            break;
        }
        ClientMsg msg;
        if (!decodeClientMsg(payload, msg)) {
            registry_.add("serve.protocol_errors");
            send(*conn, encodeError(0, "malformed message"));
            break;
        }
        switch (msg.type) {
            case ServeMsgType::Submit:
                handleSubmit(conn, msg.submit);
                break;
            case ServeMsgType::Cancel:
                handleCancel(conn, msg.id);
                break;
            case ServeMsgType::Ping:
                send(*conn, encodePong(msg.token));
                break;
            default:
                registry_.add("serve.protocol_errors");
                send(*conn,
                     encodeError(0, detail::concat(
                                        "unexpected ",
                                        serveMsgTypeName(msg.type),
                                        " message")));
                conn->alive.store(false);
                break;
        }
    }

    dropConnection(conn);
    conn->alive.store(false);
    conn->fd.shutdownBoth();
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        --activeReaders_;
        conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
                     conns_.end());
    }
    readersDone_.notify_all();
}

bool
CamsServer::handleSubmit(const std::shared_ptr<Conn> &conn,
                         const SubmitMsg &msg)
{
    // Admission decision and reply happen under the queue lock, so
    // the Accepted frame is on the wire before any worker can pop
    // the request and answer it.
    std::lock_guard<std::mutex> lock(queueMutex_);
    const uint32_t depth = static_cast<uint32_t>(queue_.size());
    if (draining_ || stopping_) {
        registry_.add("serve.shed_draining");
        send(*conn, encodeShed(msg.id, "draining", depth));
        return false;
    }
    if (static_cast<int>(queue_.size()) >= config_.queueCapacity) {
        registry_.add("serve.shed_full");
        send(*conn, encodeShed(msg.id, "queue_full", depth));
        return false;
    }
    auto request = std::make_shared<Request>();
    request->conn = conn;
    request->msg = msg;
    request->arrivalMicros = nowMicros();
    queue_.push_back(request);
    registry_.add("serve.accepted");
    send(*conn, encodeAccepted(
                    msg.id, static_cast<uint32_t>(queue_.size())));
    workAvailable_.notify_one();
    return true;
}

void
CamsServer::handleCancel(const std::shared_ptr<Conn> &conn, uint64_t id)
{
    std::lock_guard<std::mutex> lock(queueMutex_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if ((*it)->conn == conn && (*it)->msg.id == id) {
            queue_.erase(it);
            registry_.add("serve.cancelled_queued");
            send(*conn, encodeCancelled(id, /*wasQueued=*/true));
            notifyIfDrained();
            return;
        }
    }
    for (const std::shared_ptr<Request> &request : inFlight_) {
        if (request->conn == conn && request->msg.id == id) {
            request->cancelled.store(true);
            return; // the worker answers Cancelled
        }
    }
    // Unknown id: the Result already went out (a benign race) or the
    // client never submitted it. Either way there is nothing to undo.
}

void
CamsServer::workerLoop()
{
    for (;;) {
        std::shared_ptr<Request> request;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            workAvailable_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping, nothing left
            request = queue_.front();
            queue_.pop_front();
            inFlight_.push_back(request);
        }
        process(request);
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            inFlight_.erase(std::remove(inFlight_.begin(),
                                        inFlight_.end(), request),
                            inFlight_.end());
            notifyIfDrained();
        }
    }
}

void
CamsServer::process(const std::shared_ptr<Request> &request)
{
    Conn &conn = *request->conn;
    const SubmitMsg &msg = request->msg;
    const double queueMs =
        static_cast<double>(nowMicros() - request->arrivalMicros) /
        1000.0;
    registry_.record("serve.queue_ms", queueMs);

    if (!conn.alive.load())
        return; // the client is gone; compiling would be waste
    if (request->cancelled.load()) {
        registry_.add("serve.cancelled_in_flight");
        send(conn, encodeCancelled(msg.id, /*wasQueued=*/false));
        return;
    }

    // A request that outlived its deadline in the queue is answered
    // with the same classified failure an in-compile expiry gets.
    if (msg.deadlineMs > 0.0 && queueMs >= msg.deadlineMs) {
        CompileResult expired;
        expired.failure = FailureKind::Timeout;
        expired.failureDetail = detail::concat(
            "deadline of ", msg.deadlineMs, " ms expired after ",
            queueMs, " ms in the admission queue");
        registry_.add("serve.deadline_expired");
        registry_.add("serve.completed");
        send(conn, encodeResult(msg.id, expired, queueMs, 0.0));
        return;
    }

    if (config_.allowDebugSleep && msg.debugSleepMs > 0.0) {
        const Deadline nap(msg.debugSleepMs);
        while (!nap.expired() && !request->cancelled.load() &&
               conn.alive.load()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
        if (request->cancelled.load()) {
            registry_.add("serve.cancelled_in_flight");
            send(conn, encodeCancelled(msg.id, /*wasQueued=*/false));
            return;
        }
    }

    Dfg graph;
    MachineDesc machine;
    if (!readDfg(msg.dfgBytes, graph) ||
        !readMachine(msg.machineBytes, machine) ||
        msg.scheduler > 1) {
        registry_.add("serve.protocol_errors");
        send(conn, encodeError(msg.id, "malformed submit payload"));
        return;
    }
    // compileUnified's single-cluster precondition is a panic (an
    // abort) inside the driver; a server must refuse the request,
    // never die on it.
    if (!msg.clustered && machine.numClusters() != 1) {
        registry_.add("serve.protocol_errors");
        send(conn, encodeError(
                       msg.id,
                       "unified compile requires a single-cluster "
                       "machine"));
        return;
    }

    CompileOptions options = config_.baseOptions;
    options.scheduler = msg.scheduler == 1 ? SchedulerKind::Iterative
                                           : SchedulerKind::Swing;
    options.trace = TraceConfig{};
    options.faults = nullptr;
    options.cache = tenantCache(conn.tenant);
    options.cacheSalt =
        options.cache ? hashBytes(conn.tenant) : 0;

    // The server-wide budget keeps cache keys stable; a tight
    // deadline shrinks it for this one request only.
    double budget = config_.compileBudgetMs;
    if (msg.deadlineMs > 0.0) {
        const double remaining = msg.deadlineMs - queueMs;
        if (budget <= 0.0 || remaining < budget)
            budget = remaining;
    }
    options.timeBudgetMs = budget;

    const Stopwatch watch;
    CompileResult result;
    try {
        result = msg.clustered
                     ? compileClustered(graph, machine, options)
                     : compileUnified(graph, machine, options);
    } catch (const std::exception &err) {
        result = CompileResult{};
        result.failure = FailureKind::InternalInvariant;
        result.failureDetail = detail::concat(
            "uncaught exception escaped the compile: ", err.what());
    }
    const double compileMs = watch.elapsedMs();
    registry_.record("serve.compile_ms", compileMs);
    registry_.add("serve.compiled");
    if (result.fromCache)
        registry_.add("serve.cache_hits");

    if (request->cancelled.load()) {
        registry_.add("serve.cancelled_in_flight");
        send(conn, encodeCancelled(msg.id, /*wasQueued=*/false));
        return;
    }
    registry_.add("serve.completed");
    send(conn, encodeResult(msg.id, result, queueMs, compileMs));
}

void
CamsServer::dropConnection(const std::shared_ptr<Conn> &conn)
{
    std::lock_guard<std::mutex> lock(queueMutex_);
    for (auto it = queue_.begin(); it != queue_.end();) {
        if ((*it)->conn == conn)
            it = queue_.erase(it);
        else
            ++it;
    }
    // In-flight compiles for a dead client finish but skip the send.
    for (const std::shared_ptr<Request> &request : inFlight_) {
        if (request->conn == conn)
            request->cancelled.store(true);
    }
    notifyIfDrained();
}

CompileCache *
CamsServer::tenantCache(const std::string &tenant)
{
    if (config_.cacheRoot.empty() ||
        config_.cacheMode == CacheMode::Off)
        return nullptr;
    std::lock_guard<std::mutex> lock(cacheMutex_);
    auto it = tenantCaches_.find(tenant);
    if (it == tenantCaches_.end()) {
        const std::string dir =
            config_.cacheRoot + "/" + sanitizeTenant(tenant);
        it = tenantCaches_
                 .emplace(tenant, std::make_unique<CompileCache>(
                                      dir, config_.cacheMode))
                 .first;
    }
    return it->second->enabled() ? it->second.get() : nullptr;
}

void
CamsServer::notifyIfDrained()
{
    if (queue_.empty() && inFlight_.empty())
        drainedCv_.notify_all();
}

} // namespace cams
