#include "pipeline/serve/server.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <filesystem>

#include "pipeline/cache/hash.hh"
#include "pipeline/cache/serialize.hh"
#include "support/logging.hh"
#include "support/time.hh"

namespace cams
{

namespace
{

/**
 * Identity of a Submit's compile-relevant payload, guarding the
 * dedup table against retry-key reuse: a key that comes back with a
 * *different* payload is new work, never a replay.
 */
uint64_t
submitPayloadHash(const SubmitMsg &msg)
{
    return hashCombine(
        hashCombine(hashBytes(msg.dfgBytes),
                    hashBytes(msg.machineBytes)),
        hashCombine(msg.scheduler, msg.clustered ? 1 : 0));
}

} // namespace

std::string
sanitizeTenant(const std::string &tenant)
{
    if (tenant.empty())
        return "default";
    std::string safe;
    safe.reserve(tenant.size());
    for (const char c : tenant) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        safe.push_back(ok ? c : '_');
    }
    return safe;
}

CamsServer::CamsServer(ServeConfig config) : config_(std::move(config))
{
    if (config_.workers < 1)
        config_.workers = 1;
    if (config_.queueCapacity < 1)
        config_.queueCapacity = 1;
    ids_.connections = registry_.counterId("serve.connections");
    ids_.accepted = registry_.counterId("serve.accepted");
    ids_.shedFull = registry_.counterId("serve.shed_full");
    ids_.shedDraining = registry_.counterId("serve.shed_draining");
    ids_.completed = registry_.counterId("serve.completed");
    ids_.compiled = registry_.counterId("serve.compiled");
    ids_.cacheHits = registry_.counterId("serve.cache_hits");
    ids_.deadlineExpired =
        registry_.counterId("serve.deadline_expired");
    ids_.cancelledQueued =
        registry_.counterId("serve.cancelled_queued");
    ids_.cancelledInFlight =
        registry_.counterId("serve.cancelled_in_flight");
    ids_.protocolErrors =
        registry_.counterId("serve.protocol_errors");
    ids_.readTimeouts = registry_.counterId("serve.read_timeouts");
    ids_.watchdogFired = registry_.counterId("serve.watchdog_fired");
    ids_.dedupReplayed = registry_.counterId("serve.dedup_replayed");
    ids_.dedupJoined = registry_.counterId("serve.dedup_joined");
    ids_.dedupMismatch = registry_.counterId("serve.dedup_mismatch");
    ids_.statsPolls = registry_.counterId("serve.stats_polls");
    ids_.queueMs = registry_.histogramId("serve.queue_ms");
    ids_.compileMs = registry_.histogramId("serve.compile_ms");
    ids_.queueDepth = registry_.histogramId("serve.queue_depth");
}

CamsServer::~CamsServer()
{
    stop();
}

bool
CamsServer::start(std::string &error)
{
    if (started_.load()) {
        error = "server already started";
        return false;
    }
    if (config_.scrubOnStart)
        scrubTenantCaches();
    if (!listener_.open(config_.socketPath, error))
        return false;
    workerThreads_.reserve(config_.workers);
    for (int i = 0; i < config_.workers; ++i)
        workerThreads_.emplace_back([this] { workerLoop(); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
    if (config_.watchdogMs > 0.0) {
        watchdogStop_.store(false);
        watchdogThread_ = std::thread([this] { watchdogLoop(); });
    }
    startMicros_ = nowMicros();
    started_.store(true);
    return true;
}

void
CamsServer::requestDrain()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (draining_)
            return;
        draining_ = true;
    }
    // Unblocks acceptLoop; already-queued work keeps flowing.
    listener_.close();
    std::lock_guard<std::mutex> lock(queueMutex_);
    notifyIfDrained();
}

void
CamsServer::waitDrained()
{
    std::unique_lock<std::mutex> lock(queueMutex_);
    drainedCv_.wait(lock, [this] {
        return queue_.empty() && inFlight_.empty();
    });
}

void
CamsServer::stop()
{
    if (!started_.load())
        return;
    requestDrain();
    waitDrained();
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &worker : workerThreads_)
        worker.join();
    workerThreads_.clear();
    watchdogStop_.store(true);
    if (watchdogThread_.joinable())
        watchdogThread_.join();
    if (acceptThread_.joinable())
        acceptThread_.join();
    {
        std::unique_lock<std::mutex> lock(connMutex_);
        for (const std::shared_ptr<Conn> &conn : conns_) {
            conn->alive.store(false);
            conn->fd.shutdownBoth();
        }
        readersDone_.wait(lock,
                          [this] { return activeReaders_ == 0; });
        conns_.clear();
    }
    started_.store(false);
}

ServeStats
CamsServer::stats() const
{
    ServeStats stats;
    stats.connections = registry_.counter("serve.connections");
    stats.accepted = registry_.counter("serve.accepted");
    stats.shedFull = registry_.counter("serve.shed_full");
    stats.shedDraining = registry_.counter("serve.shed_draining");
    stats.completed = registry_.counter("serve.completed");
    stats.compiled = registry_.counter("serve.compiled");
    stats.cacheHits = registry_.counter("serve.cache_hits");
    stats.deadlineExpired =
        registry_.counter("serve.deadline_expired");
    stats.cancelledQueued =
        registry_.counter("serve.cancelled_queued");
    stats.cancelledInFlight =
        registry_.counter("serve.cancelled_in_flight");
    stats.protocolErrors =
        registry_.counter("serve.protocol_errors");
    stats.readTimeouts = registry_.counter("serve.read_timeouts");
    stats.watchdogFired = registry_.counter("serve.watchdog_fired");
    stats.dedupReplayed = registry_.counter("serve.dedup_replayed");
    stats.dedupJoined = registry_.counter("serve.dedup_joined");
    stats.dedupMismatch = registry_.counter("serve.dedup_mismatch");
    stats.quarantined =
        registry_.counter("serve.cache_quarantined");
    return stats;
}

std::string
CamsServer::metricsJson() const
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    for (const auto &[tenant, cache] : tenantCaches_) {
        (void)tenant;
        if (cache && cache->enabled())
            cache->publish(registry_);
    }
    return registry_.toJson();
}

const CamsServer::TenantIds *
CamsServer::tenantIds(const std::string &tenant)
{
    const std::string safe = sanitizeTenant(tenant);
    std::lock_guard<std::mutex> lock(tenantIdsMutex_);
    const auto it = tenantMetricIds_.find(safe);
    if (it != tenantMetricIds_.end())
        return &it->second;
    const std::string prefix = "serve.tenant." + safe + ".";
    TenantIds ids;
    ids.submitted = registry_.counterId(prefix + "submitted");
    ids.completed = registry_.counterId(prefix + "completed");
    ids.shed = registry_.counterId(prefix + "shed");
    ids.cacheHits = registry_.counterId(prefix + "cache_hits");
    return &tenantMetricIds_.emplace(safe, ids).first->second;
}

StatsReplyMsg
CamsServer::statsReply(uint64_t token) const
{
    // Fold the per-tenant cache tallies in first (their own lock),
    // so cache.* counters appear alongside serve.*.
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        for (const auto &[tenant, cache] : tenantCaches_) {
            (void)tenant;
            if (cache && cache->enabled())
                cache->publish(registry_);
        }
    }

    StatsReplyMsg msg;
    msg.token = token;
    msg.uptimeSeconds =
        static_cast<double>(nowMicros() - startMicros_) / 1e6;
    msg.windowSeconds = registry_.windowSeconds();
    msg.workers = static_cast<uint32_t>(config_.workers);
    msg.queueCapacity = static_cast<uint32_t>(config_.queueCapacity);
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        msg.queueDepth = static_cast<uint32_t>(queue_.size());
        msg.inFlight = static_cast<uint32_t>(inFlight_.size());
        msg.draining = draining_;
    }

    // Tenant counters travel in the dedicated per-tenant section,
    // not the flat list.
    const auto isTenantCounter = [](const std::string &name) {
        return name.rfind("serve.tenant.", 0) == 0;
    };
    for (const std::string &name : registry_.counterNames()) {
        if (isTenantCounter(name))
            continue;
        StatsCounter counter;
        counter.name = name;
        counter.total = registry_.counter(name);
        counter.last1m = registry_.counterWindow(name, 60.0);
        counter.last5m = registry_.counterWindow(name, 300.0);
        msg.counters.push_back(std::move(counter));
    }
    for (const std::string &name : registry_.histogramNames()) {
        StatsHistogram histogram;
        histogram.name = name;
        histogram.total = registry_.histogram(name);
        histogram.last1m = registry_.histogramWindow(name, 60.0);
        histogram.last5m = registry_.histogramWindow(name, 300.0);
        msg.histograms.push_back(std::move(histogram));
    }
    {
        std::lock_guard<std::mutex> lock(tenantIdsMutex_);
        for (const auto &[tenant, ids] : tenantMetricIds_) {
            (void)ids;
            const std::string prefix = "serve.tenant." + tenant + ".";
            TenantStats stats;
            stats.tenant = tenant;
            stats.submitted =
                registry_.counter(prefix + "submitted");
            stats.completed =
                registry_.counter(prefix + "completed");
            stats.shed = registry_.counter(prefix + "shed");
            stats.cacheHits =
                registry_.counter(prefix + "cache_hits");
            msg.tenants.push_back(std::move(stats));
        }
    }
    return msg;
}

HealthReplyMsg
CamsServer::healthReply(uint64_t token) const
{
    HealthReplyMsg msg;
    msg.token = token;
    msg.version = serveProtoVersion;
    msg.uptimeSeconds =
        static_cast<double>(nowMicros() - startMicros_) / 1e6;
    msg.queueCapacity = static_cast<uint32_t>(config_.queueCapacity);
    std::lock_guard<std::mutex> lock(queueMutex_);
    msg.queueDepth = static_cast<uint32_t>(queue_.size());
    msg.inFlight = static_cast<uint32_t>(inFlight_.size());
    msg.status = draining_ ? "draining" : "ok";
    return msg;
}

void
CamsServer::acceptLoop()
{
    for (;;) {
        std::string error;
        const int fd = listener_.acceptFd(error);
        if (fd < 0)
            return; // listener closed (drain) or fatal accept error
        auto conn = std::make_shared<Conn>();
        conn->fd = SocketFd(fd);
        if (config_.chaos.any()) {
            // Every connection gets its own deterministic coin
            // stream; a reconnecting client sees fresh faults, not a
            // replay of the ones that just killed it.
            ChaosConfig chaos = config_.chaos;
            chaos.seed = hashCombine(config_.chaos.seed, ++connSeq_);
            conn->stream.enableChaos(chaos);
        }
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            // Refuse connections that raced the drain: the reader
            // would shed every submit anyway.
            bool draining;
            {
                std::lock_guard<std::mutex> qlock(queueMutex_);
                draining = draining_;
            }
            if (draining)
                continue; // conn drops; client sees EOF
            conns_.push_back(conn);
            ++activeReaders_;
        }
        std::thread([this, conn] { connectionLoop(conn); }).detach();
    }
}

void
CamsServer::send(Conn &conn, const std::string &payload)
{
    if (!conn.alive.load())
        return;
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    std::string error;
    if (!conn.stream.writeFrame(conn.fd.fd(), payload, error))
        conn.alive.store(false);
}

void
CamsServer::connectionLoop(std::shared_ptr<Conn> conn)
{
    std::string payload;
    std::string error;
    bool cleanEof = false;
    bool timedOut = false;

    // The handshake must come first and must match our version.
    bool handshakeOk = false;
    if (conn->stream.readFrame(conn->fd.fd(), payload,
                               serveMaxFrameBytes,
                               config_.readTimeoutMs, error, &cleanEof,
                               &timedOut)) {
        ClientMsg msg;
        if (!decodeClientMsg(payload, msg) ||
            msg.type != ServeMsgType::Hello) {
            registry_.add(ids_.protocolErrors);
            send(*conn, encodeError(0, "expected hello"));
        } else if (msg.hello.version != serveProtoVersion) {
            registry_.add(ids_.protocolErrors);
            send(*conn,
                 encodeError(0, detail::concat(
                                    "protocol version mismatch: "
                                    "server ",
                                    serveProtoVersion, ", client ",
                                    msg.hello.version)));
        } else {
            conn->tenant = msg.hello.tenant;
            conn->tenantIds = tenantIds(msg.hello.tenant);
            registry_.add(ids_.connections);
            send(*conn,
                 encodeHelloAck(
                     static_cast<uint32_t>(config_.workers),
                     static_cast<uint32_t>(config_.queueCapacity)));
            handshakeOk = true;
        }
    } else if (timedOut) {
        registry_.add(ids_.readTimeouts);
    } else if (!cleanEof) {
        registry_.add(ids_.protocolErrors);
    }

    while (handshakeOk && conn->alive.load()) {
        timedOut = false;
        if (!conn->stream.readFrame(conn->fd.fd(), payload,
                                    serveMaxFrameBytes,
                                    config_.readTimeoutMs, error,
                                    &cleanEof, &timedOut)) {
            // Clean EOF and torn sockets both just end the session;
            // a slow-loris peer costs a read timeout; an oversized or
            // corrupted frame is the peer's protocol bug.
            if (timedOut) {
                registry_.add(ids_.readTimeouts);
                send(*conn, encodeError(0, error));
            } else if (!cleanEof &&
                       (error.find("ceiling") != std::string::npos ||
                        error.find("checksum") !=
                            std::string::npos)) {
                registry_.add(ids_.protocolErrors);
                send(*conn, encodeError(0, error));
            }
            break;
        }
        ClientMsg msg;
        if (!decodeClientMsg(payload, msg)) {
            registry_.add(ids_.protocolErrors);
            send(*conn, encodeError(0, "malformed message"));
            break;
        }
        switch (msg.type) {
            case ServeMsgType::Submit:
                handleSubmit(conn, msg.submit);
                break;
            case ServeMsgType::Cancel:
                handleCancel(conn, msg.id);
                break;
            case ServeMsgType::Ping:
                send(*conn, encodePong(msg.token));
                break;
            case ServeMsgType::StatsRequest:
                registry_.add(ids_.statsPolls);
                send(*conn, encodeStatsReply(statsReply(msg.token)));
                break;
            case ServeMsgType::HealthRequest:
                send(*conn,
                     encodeHealthReply(healthReply(msg.token)));
                break;
            default:
                registry_.add(ids_.protocolErrors);
                send(*conn,
                     encodeError(0, detail::concat(
                                        "unexpected ",
                                        serveMsgTypeName(msg.type),
                                        " message")));
                conn->alive.store(false);
                break;
        }
    }

    dropConnection(conn);
    conn->alive.store(false);
    conn->fd.shutdownBoth();
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        --activeReaders_;
        conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
                     conns_.end());
    }
    readersDone_.notify_all();
}

bool
CamsServer::handleSubmit(const std::shared_ptr<Conn> &conn,
                         const SubmitMsg &msg)
{
    // Admission decision and reply happen under the queue lock, so
    // the Accepted frame is on the wire before any worker can pop
    // the request and answer it. All submits serialize here, which
    // also makes the dedup check-or-create atomic.
    std::lock_guard<std::mutex> lock(queueMutex_);
    const uint32_t depth = static_cast<uint32_t>(queue_.size());
    if (conn->tenantIds)
        registry_.add(conn->tenantIds->submitted);
    registry_.record(ids_.queueDepth, static_cast<double>(depth));

    // Idempotent retries come first: a replay or join must work even
    // while draining or shedding, or a crash-retry loop could never
    // collect a result the server already computed.
    if (msg.retryKey != 0) {
        std::lock_guard<std::mutex> dlock(dedupMutex_);
        const auto it =
            dedup_.find(DedupKey{conn->tenant, msg.retryKey});
        if (it != dedup_.end()) {
            DedupEntry &entry = *it->second;
            if (entry.payloadHash != submitPayloadHash(msg)) {
                // Key reuse with a different payload: new work, and
                // the admission below repoints the key at it.
                registry_.add(ids_.dedupMismatch);
            } else if (entry.done) {
                registry_.add(ids_.dedupReplayed);
                send(*conn, encodeAccepted(msg.id, depth));
                registry_.add(ids_.completed);
                if (conn->tenantIds)
                    registry_.add(conn->tenantIds->completed);
                send(*conn,
                     encodeResultBytes(msg.id, entry.fromCache,
                                       entry.hintUsed, entry.queueMs,
                                       entry.compileMs,
                                       entry.resultBytes));
                return true;
            } else {
                registry_.add(ids_.dedupJoined);
                entry.waiters.emplace_back(conn, msg.id);
                send(*conn, encodeAccepted(msg.id, depth));
                return true;
            }
        }
    }

    if (draining_ || stopping_) {
        registry_.add(ids_.shedDraining);
        if (conn->tenantIds)
            registry_.add(conn->tenantIds->shed);
        send(*conn, encodeShed(msg.id, "draining", depth,
                               /*retryAfterMs=*/100.0));
        return false;
    }
    if (static_cast<int>(queue_.size()) >= config_.queueCapacity) {
        registry_.add(ids_.shedFull);
        if (conn->tenantIds)
            registry_.add(conn->tenantIds->shed);
        send(*conn, encodeShed(msg.id, "queue_full", depth,
                               /*retryAfterMs=*/25.0));
        return false;
    }
    auto request = std::make_shared<Request>();
    request->conn = conn;
    request->msg = msg;
    request->tenant = conn->tenant;
    request->tenantIds = conn->tenantIds;
    request->arrivalMicros = nowMicros();
    if (config_.traceSink && msg.traceSampled && msg.traceId != 0) {
        config_.traceSink->instant(
            detail::concat("req-", msg.traceId, "/admitted"), "serve",
            {{"trace_id", detail::concat(msg.traceId)},
             {"tenant", sanitizeTenant(conn->tenant)},
             {"queue_depth", detail::concat(depth)}});
    }
    if (msg.retryKey != 0) {
        auto entry = std::make_shared<DedupEntry>();
        entry->payloadHash = submitPayloadHash(msg);
        request->dedup = entry;
        std::lock_guard<std::mutex> dlock(dedupMutex_);
        dedup_[DedupKey{conn->tenant, msg.retryKey}] = entry;
    }
    queue_.push_back(request);
    registry_.add(ids_.accepted);
    send(*conn, encodeAccepted(
                    msg.id, static_cast<uint32_t>(queue_.size())));
    workAvailable_.notify_one();
    return true;
}

void
CamsServer::handleCancel(const std::shared_ptr<Conn> &conn, uint64_t id)
{
    std::shared_ptr<Request> queued;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if ((*it)->conn == conn && (*it)->msg.id == id) {
                queued = *it;
                queue_.erase(it);
                notifyIfDrained();
                break;
            }
        }
        if (!queued) {
            for (const std::shared_ptr<Request> &request :
                 inFlight_) {
                if (request->conn == conn && request->msg.id == id) {
                    request->cancelled.store(true);
                    return; // the worker answers Cancelled
                }
            }
        }
    }
    if (queued)
        deliverCancelled(queued, /*wasQueued=*/true);
    // Unknown id: the Result already went out (a benign race) or the
    // client never submitted it. Either way there is nothing to undo.
}

void
CamsServer::workerLoop()
{
    for (;;) {
        std::shared_ptr<Request> request;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            workAvailable_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping, nothing left
            request = queue_.front();
            queue_.pop_front();
            request->startedMicros = nowMicros();
            inFlight_.push_back(request);
        }
        process(request);
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            inFlight_.erase(std::remove(inFlight_.begin(),
                                        inFlight_.end(), request),
                            inFlight_.end());
            notifyIfDrained();
        }
    }
}

void
CamsServer::process(const std::shared_ptr<Request> &request)
{
    Conn &conn = *request->conn;
    const SubmitMsg &msg = request->msg;
    const bool keyed = request->dedup != nullptr;
    const double queueMs =
        static_cast<double>(nowMicros() - request->arrivalMicros) /
        1000.0;
    registry_.record(ids_.queueMs, queueMs);

    // Sampled requests thread their client-chosen trace id through
    // every server-side phase: the queue wait is recorded as a scope
    // that ends now (it just did), and the compile below runs under
    // a "req-<id>" tag so the driver's own phase scopes join the
    // same correlated lane.
    TraceConfig trace;
    if (config_.traceSink && msg.traceSampled && msg.traceId != 0) {
        trace.sink = config_.traceSink;
        trace.tag = detail::concat("req-", msg.traceId);
        const int64_t queueUs =
            static_cast<int64_t>(queueMs * 1000.0);
        trace.sink->complete(
            trace.tag + "/queue_wait", "serve",
            trace.sink->now() - queueUs, queueUs,
            {{"trace_id", detail::concat(msg.traceId)},
             {"tenant", sanitizeTenant(request->tenant)}});
    }

    // The client is gone: unkeyed work is pure waste, but keyed work
    // must still finish into the dedup table -- its owner is probably
    // mid-reconnect and will resubmit for the answer.
    if (!conn.alive.load() && !keyed)
        return;
    if (request->cancelled.load()) {
        deliverCancelled(request, /*wasQueued=*/false);
        return;
    }

    // A request that outlived its deadline in the queue is answered
    // with the same classified failure an in-compile expiry gets.
    if (msg.deadlineMs > 0.0 && queueMs >= msg.deadlineMs) {
        CompileResult expired;
        expired.failure = FailureKind::Timeout;
        expired.failureDetail = detail::concat(
            "deadline of ", msg.deadlineMs, " ms expired after ",
            queueMs, " ms in the admission queue");
        registry_.add(ids_.deadlineExpired);
        deliverResult(request, expired, queueMs, 0.0);
        return;
    }

    if (config_.allowDebugSleep && msg.debugSleepMs > 0.0) {
        const Deadline nap(msg.debugSleepMs);
        while (!nap.expired() && !request->cancelled.load() &&
               !request->abandoned.load() &&
               (conn.alive.load() || keyed)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
        if (request->cancelled.load()) {
            deliverCancelled(request, /*wasQueued=*/false);
            return;
        }
        if (request->abandoned.load())
            return; // the watchdog already answered
    }

    Dfg graph;
    MachineDesc machine;
    if (!readDfg(msg.dfgBytes, graph) ||
        !readMachine(msg.machineBytes, machine) ||
        msg.scheduler > 1) {
        registry_.add(ids_.protocolErrors);
        deliverError(request, "malformed submit payload");
        return;
    }
    // compileUnified's single-cluster precondition is a panic (an
    // abort) inside the driver; a server must refuse the request,
    // never die on it.
    if (!msg.clustered && machine.numClusters() != 1) {
        registry_.add(ids_.protocolErrors);
        deliverError(request,
                     "unified compile requires a single-cluster "
                     "machine");
        return;
    }

    CompileOptions options = config_.baseOptions;
    options.scheduler = msg.scheduler == 1 ? SchedulerKind::Iterative
                                           : SchedulerKind::Swing;
    options.trace = trace;
    options.faults = nullptr;
    options.cache = tenantCache(request->tenant);
    options.cacheSalt =
        options.cache ? hashBytes(request->tenant) : 0;

    // The server-wide budget keeps cache keys stable; a tight
    // deadline shrinks it for this one request only.
    double budget = config_.compileBudgetMs;
    if (msg.deadlineMs > 0.0) {
        const double remaining = msg.deadlineMs - queueMs;
        if (budget <= 0.0 || remaining < budget)
            budget = remaining;
    }
    options.timeBudgetMs = budget;

    const Stopwatch watch;
    CompileResult result;
    {
        TraceScope compileScope(trace, TraceLevel::Phase,
                                "serve_compile", "serve");
        try {
            result = msg.clustered
                         ? compileClustered(graph, machine, options)
                         : compileUnified(graph, machine, options);
        } catch (const std::exception &err) {
            result = CompileResult{};
            result.failure = FailureKind::InternalInvariant;
            result.failureDetail = detail::concat(
                "uncaught exception escaped the compile: ",
                err.what());
        }
        compileScope.arg("from_cache",
                         result.fromCache ? "1" : "0");
    }
    const double compileMs = watch.elapsedMs();
    registry_.record(ids_.compileMs, compileMs);
    registry_.add(ids_.compiled);
    if (result.fromCache) {
        registry_.add(ids_.cacheHits);
        if (request->tenantIds)
            registry_.add(request->tenantIds->cacheHits);
    }

    if (request->cancelled.load()) {
        deliverCancelled(request, /*wasQueued=*/false);
        return;
    }
    deliverResult(request, result, queueMs, compileMs);
}

void
CamsServer::deliverResult(const std::shared_ptr<Request> &request,
                          const CompileResult &result, double queueMs,
                          double compileMs)
{
    ByteWriter body;
    writeCompileResult(body, result);
    deliverEncoded(request, result.fromCache, result.hintUsed,
                   queueMs, compileMs, body.take());
}

void
CamsServer::deliverEncoded(const std::shared_ptr<Request> &request,
                           bool fromCache, bool hintUsed,
                           double queueMs, double compileMs,
                           const std::string &resultBytes)
{
    // Exactly one of worker and watchdog wins the exchange; the
    // loser's answer (e.g. a hung compile finally finishing after
    // the watchdog classified it) is dropped on the floor.
    if (request->answered.exchange(true))
        return;
    if (request->tenantIds)
        registry_.add(request->tenantIds->completed);

    std::vector<std::pair<std::shared_ptr<Conn>, uint64_t>> targets;
    if (request->conn && request->conn->alive.load())
        targets.emplace_back(request->conn, request->msg.id);
    if (request->dedup) {
        std::lock_guard<std::mutex> lock(dedupMutex_);
        DedupEntry &entry = *request->dedup;
        if (!entry.done) {
            entry.done = true;
            entry.fromCache = fromCache;
            entry.hintUsed = hintUsed;
            entry.queueMs = queueMs;
            entry.compileMs = compileMs;
            entry.resultBytes = resultBytes;
            for (auto &[weakConn, id] : entry.waiters) {
                std::shared_ptr<Conn> waiter = weakConn.lock();
                if (waiter && waiter->alive.load())
                    targets.emplace_back(std::move(waiter), id);
            }
            entry.waiters.clear();
            dedupDone_.emplace_back(
                DedupKey{request->tenant, request->msg.retryKey},
                request->dedup);
            evictDedupLocked();
        }
    }
    for (const auto &[target, id] : targets) {
        registry_.add(ids_.completed);
        send(*target, encodeResultBytes(id, fromCache, hintUsed,
                                        queueMs, compileMs,
                                        resultBytes));
    }
}

void
CamsServer::deliverCancelled(const std::shared_ptr<Request> &request,
                             bool wasQueued)
{
    if (request->answered.exchange(true))
        return;
    registry_.add(wasQueued ? ids_.cancelledQueued
                            : ids_.cancelledInFlight);
    const auto waiters = abandonDedup(request);
    if (request->conn && request->conn->alive.load())
        send(*request->conn,
             encodeCancelled(request->msg.id, wasQueued));
    for (const auto &[waiter, id] : waiters)
        send(*waiter, encodeCancelled(id, wasQueued));
}

void
CamsServer::deliverError(const std::shared_ptr<Request> &request,
                         const std::string &message)
{
    if (request->answered.exchange(true))
        return;
    const auto waiters = abandonDedup(request);
    if (request->conn && request->conn->alive.load())
        send(*request->conn, encodeError(request->msg.id, message));
    for (const auto &[waiter, id] : waiters)
        send(*waiter, encodeError(id, message));
}

std::vector<std::pair<std::shared_ptr<CamsServer::Conn>, uint64_t>>
CamsServer::abandonDedup(const std::shared_ptr<Request> &request)
{
    std::vector<std::pair<std::shared_ptr<Conn>, uint64_t>> waiters;
    if (!request->dedup)
        return waiters;
    std::lock_guard<std::mutex> lock(dedupMutex_);
    DedupEntry &entry = *request->dedup;
    for (auto &[weakConn, id] : entry.waiters) {
        std::shared_ptr<Conn> waiter = weakConn.lock();
        if (waiter && waiter->alive.load())
            waiters.emplace_back(std::move(waiter), id);
    }
    entry.waiters.clear();
    // A cancelled/errored request leaves no replayable answer; drop
    // the key (only if it still points here -- a mismatch admission
    // may have repointed it) so a retry becomes fresh work.
    const auto it =
        dedup_.find(DedupKey{request->tenant, request->msg.retryKey});
    if (it != dedup_.end() && it->second == request->dedup)
        dedup_.erase(it);
    return waiters;
}

void
CamsServer::evictDedupLocked()
{
    const size_t capacity =
        config_.dedupCapacity < 1
            ? 1
            : static_cast<size_t>(config_.dedupCapacity);
    while (dedupDone_.size() > capacity) {
        const auto &[key, entry] = dedupDone_.front();
        const auto it = dedup_.find(key);
        if (it != dedup_.end() && it->second == entry)
            dedup_.erase(it);
        dedupDone_.pop_front();
    }
}

void
CamsServer::watchdogLoop()
{
    const double periodMs =
        std::max(5.0, std::min(50.0, config_.watchdogMs / 4.0));
    while (!watchdogStop_.load()) {
        std::vector<std::shared_ptr<Request>> hung;
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            const int64_t now = nowMicros();
            for (const std::shared_ptr<Request> &request :
                 inFlight_) {
                if (request->answered.load() ||
                    request->abandoned.load() ||
                    request->startedMicros == 0)
                    continue;
                const double runMs =
                    static_cast<double>(now -
                                        request->startedMicros) /
                    1000.0;
                if (runMs >= config_.watchdogMs) {
                    request->abandoned.store(true);
                    hung.push_back(request);
                }
            }
        }
        for (const std::shared_ptr<Request> &request : hung) {
            registry_.add(ids_.watchdogFired);
            CompileResult timedOut;
            timedOut.failure = FailureKind::Timeout;
            timedOut.failureDetail = detail::concat(
                "watchdog: compile still running after ",
                config_.watchdogMs, " ms");
            const double queueMs =
                static_cast<double>(request->startedMicros -
                                    request->arrivalMicros) /
                1000.0;
            deliverResult(request, timedOut, queueMs,
                          config_.watchdogMs);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<int>(periodMs)));
    }
}

void
CamsServer::scrubTenantCaches()
{
    if (config_.cacheRoot.empty() ||
        config_.cacheMode != CacheMode::ReadWrite)
        return;
    std::error_code ec;
    std::filesystem::directory_iterator it(config_.cacheRoot, ec);
    if (ec)
        return; // no cache directory yet: nothing to scrub
    long quarantined = 0;
    long tmpRemoved = 0;
    for (const auto &dirEntry : it) {
        if (!dirEntry.is_directory(ec) || ec)
            continue;
        const ScrubReport report =
            scrubCacheDir(dirEntry.path().string());
        quarantined += report.quarantined;
        tmpRemoved += report.tmpRemoved;
        if (!report.error.empty())
            cams_warn("cache scrub of ", dirEntry.path().string(),
                      " failed: ", report.error);
    }
    if (quarantined > 0)
        registry_.add("serve.cache_quarantined", quarantined);
    if (tmpRemoved > 0)
        registry_.add("serve.cache_tmp_removed", tmpRemoved);
}

void
CamsServer::dropConnection(const std::shared_ptr<Conn> &conn)
{
    std::lock_guard<std::mutex> lock(queueMutex_);
    // Keyed requests survive their connection: the client is
    // expected back with the same retryKey, and the dedup table is
    // where it collects the answer. Unkeyed work dies with the conn.
    for (auto it = queue_.begin(); it != queue_.end();) {
        if ((*it)->conn == conn && !(*it)->dedup)
            it = queue_.erase(it);
        else
            ++it;
    }
    // Unkeyed in-flight compiles for a dead client finish but skip
    // the send.
    for (const std::shared_ptr<Request> &request : inFlight_) {
        if (request->conn == conn && !request->dedup)
            request->cancelled.store(true);
    }
    notifyIfDrained();
}

CompileCache *
CamsServer::tenantCache(const std::string &tenant)
{
    if (config_.cacheRoot.empty() ||
        config_.cacheMode == CacheMode::Off)
        return nullptr;
    std::lock_guard<std::mutex> lock(cacheMutex_);
    auto it = tenantCaches_.find(tenant);
    if (it == tenantCaches_.end()) {
        const std::string dir =
            config_.cacheRoot + "/" + sanitizeTenant(tenant);
        it = tenantCaches_
                 .emplace(tenant, std::make_unique<CompileCache>(
                                      dir, config_.cacheMode))
                 .first;
    }
    return it->second->enabled() ? it->second.get() : nullptr;
}

void
CamsServer::notifyIfDrained()
{
    if (queue_.empty() && inFlight_.empty())
        drainedCv_.notify_all();
}

} // namespace cams
