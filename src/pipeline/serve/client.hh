/**
 * @file
 * A synchronous camsd client: one connection, thread-split so that
 * one thread submits/cancels while another blocks in readMsg()
 * collecting responses -- exactly the shape the open-loop load
 * generator and the serve tests need. Sends and receives are
 * independently serialized (sendMutex_ / recvMutex_), so a sender
 * thread and a reader thread share one ServeClient without external
 * locking.
 */

#ifndef CAMS_PIPELINE_SERVE_CLIENT_HH
#define CAMS_PIPELINE_SERVE_CLIENT_HH

#include <mutex>
#include <string>

#include "pipeline/serve/proto.hh"
#include "pipeline/serve/stream.hh"
#include "support/socket.hh"

namespace cams
{

/** Blocking client of one camsd connection. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient() { close(); }

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Arms chaos injection on this connection's stream. Call before
     * connect(); the handshake itself is then fair game for faults.
     */
    void enableChaos(const ChaosConfig &config)
    {
        stream_.enableChaos(config);
    }

    /**
     * Mid-frame read deadline for readMsg() (0 = none). A server
     * that starts a frame and stalls past the budget fails the read
     * instead of pinning the reader thread.
     */
    void setReadTimeoutMs(double timeoutMs)
    {
        readTimeoutMs_ = timeoutMs;
    }

    /** This connection's frame codec (fault counters live here). */
    const ServeStream &stream() const { return stream_; }

    /**
     * Connects and runs the Hello handshake under @p tenant. False
     * with @p error set when the socket, the handshake or the
     * version check fails.
     */
    bool connect(const std::string &socketPath,
                 const std::string &tenant, std::string &error);

    bool connected() const { return fd_.valid(); }

    /** Server-reported sizing from the handshake. */
    uint32_t serverWorkers() const { return workers_; }
    uint32_t serverQueueCapacity() const { return queueCapacity_; }

    bool submit(const SubmitMsg &msg, std::string &error);
    bool cancel(uint64_t id, std::string &error);
    bool ping(uint64_t token, std::string &error);

    /** Fire-and-forget polls; the reply arrives via readMsg(). */
    bool requestStats(uint64_t token, std::string &error);
    bool requestHealth(uint64_t token, std::string &error);

    /**
     * Blocking polls: send the request and read until its reply.
     * Only safe on a connection with no other traffic in flight (a
     * dedicated monitoring connection -- cams_top's shape); compile
     * responses encountered while waiting are discarded.
     */
    bool stats(StatsReplyMsg &out, std::string &error);
    bool health(HealthReplyMsg &out, std::string &error);

    /**
     * Blocks for the next server message. False on connection loss
     * or a malformed frame. Messages for different requests arrive
     * in server completion order, not submission order.
     */
    bool readMsg(ServerMsg &out, std::string &error);

    /** Shuts the socket down, unblocking any reader; the descriptor
     *  is released by the destructor. */
    void close();

  private:
    bool sendPayload(const std::string &payload, std::string &error);

    SocketFd fd_;
    ServeStream stream_;
    std::mutex sendMutex_;
    std::mutex recvMutex_;
    double readTimeoutMs_ = 0.0;
    uint32_t workers_ = 0;
    uint32_t queueCapacity_ = 0;
};

} // namespace cams

#endif // CAMS_PIPELINE_SERVE_CLIENT_HH
